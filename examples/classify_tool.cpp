// classify_tool: command-line classifier for linear recursive formulas.
//
// Usage:
//   classify_tool 'P(X, Y) :- A(X, Z), P(Z, Y).'
//   classify_tool --dot 'P(X, Y) :- A(X, Z), P(Z, Y).'
//   classify_tool --resolution 3 'P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).'
//   classify_tool            # reads one rule per line from stdin
//
// Prints the I-graph, the classification (class, stability,
// transformability, boundedness and rank bound), and the compiled plan
// that the plan generator would use (with a generic exit P :- E).

#include <cstring>
#include <iostream>
#include <string>

#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "graph/render.h"
#include "graph/resolution_graph.h"

using namespace recur;

namespace {

/// Builds the generic exit rule "P(X1..Xn) :- E(X1..Xn)." for a formula.
datalog::Rule GenericExit(const datalog::LinearRecursiveRule& formula,
                          SymbolTable* symbols) {
  std::vector<datalog::Term> args;
  for (const datalog::Term& t : formula.head().args()) args.push_back(t);
  datalog::Atom head(formula.recursive_predicate(), args);
  datalog::Atom body(symbols->Intern("E"), args);
  return datalog::Rule(std::move(head), {std::move(body)});
}

int ProcessRule(const std::string& text, bool dot, int resolution_k) {
  SymbolTable symbols;
  auto rule = datalog::ParseRule(text, &symbols);
  if (!rule.ok()) {
    std::cerr << rule.status() << "\n";
    return 1;
  }
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    return 1;
  }
  auto cls = classify::Classify(*formula);
  if (!cls.ok()) {
    std::cerr << cls.status() << "\n";
    return 1;
  }

  std::cout << "formula: " << formula->rule().ToString(symbols) << "\n\n";
  if (dot) {
    std::cout << graph::ToDot(cls->igraph.graph(), symbols, "igraph");
  } else {
    std::cout << "I-graph:\n"
              << graph::ToAscii(cls->igraph.graph(), symbols);
  }
  std::cout << "\n" << cls->Summary(symbols);

  if (resolution_k > 1) {
    auto rg = graph::ResolutionGraph::Build(*formula, resolution_k);
    if (rg.ok()) {
      std::cout << "\nresolution graph G_" << resolution_k << ":\n";
      if (dot) {
        std::cout << graph::ToDot(rg->graph(), symbols, "resolution");
      } else {
        std::cout << graph::ToAscii(rg->graph(), symbols);
      }
    }
  }

  datalog::Rule exit = GenericExit(*formula, &symbols);
  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, exit);
  if (plan.ok()) {
    std::cout << "\nquery plan (exit P :- E): " << plan->ToString()
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = false;
  int resolution_k = 1;
  std::string inline_rule;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(argv[i], "--resolution") == 0 && i + 1 < argc) {
      resolution_k = std::atoi(argv[++i]);
    } else {
      inline_rule = argv[i];
    }
  }
  if (!inline_rule.empty()) {
    return ProcessRule(inline_rule, dot, resolution_k);
  }
  std::string line;
  int status = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    status |= ProcessRule(line, dot, resolution_k);
    std::cout << "----------------------------------------\n";
  }
  return status;
}
