// Corporate deductive database: the kind of workload the paper's
// introduction motivates. An EDB of management edges and a handful of
// recursive views, each landing in a different class of the paper's
// taxonomy — so each gets a different compiled strategy.
//
//   ReportsTo(X, Y)   — transitive closure of Manages (stable, A-class)
//   Escalates(X, Y)   — alternating manager/deputy escalation chain
//                       (stable with two non-identity chains: the
//                       synchronized case)
//   PeerOf(X, Y)      — bounded "pseudo recursion": peers via a shared
//                       skip-level manager, rank-bounded
//
// Run: ./build/examples/corporate_db

#include <iostream>

#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "workload/generator.h"

using namespace recur;

namespace {

void ShowPlan(const char* name, const eval::QueryPlan& plan) {
  std::cout << name << "\n  strategy: " << ToString(plan.strategy())
            << "\n  class:    "
            << classify::ToString(plan.classification().formula_class)
            << "\n  plan:     " << plan.symbolic().ToString() << "\n";
}

}  // namespace

int main() {
  SymbolTable symbols;
  ra::Database edb;
  workload::Generator gen(2024);

  // The org chart: a 4-level binary management tree (15 employees,
  // employee 0 is the CEO), plus deputy assignments pairing each manager
  // with a deputy one id up.
  ra::Relation manages = gen.Tree(3, 2);
  (*edb.GetOrCreate(symbols.Intern("Manages"), 2))->InsertAll(manages);
  ra::Relation* deputy = *edb.GetOrCreate(symbols.Intern("Deputy"), 2);
  for (ra::TupleRef t : manages.rows()) {
    deputy->Insert({t[1], t[0]});  // each report deputizes for the boss
  }
  // Exit relations: direct relationships seed each view.
  (*edb.GetOrCreate(symbols.Intern("DirectReport"), 2))
      ->InsertAll(manages);
  ra::Relation* peer_seed = *edb.GetOrCreate(symbols.Intern("Sibling"), 2);
  for (ra::TupleRef a : manages.rows()) {
    for (int row : manages.RowsWithValue(0, a[0])) {
      ra::TupleRef b = manages.rows()[row];
      if (a[1] != b[1]) peer_seed->Insert({a[1], b[1]});
    }
  }

  eval::PlanGenerator generator(&symbols);

  // --- ReportsTo: plain transitive closure (classes {A1, A2} = A5). ----
  auto reports_rule = datalog::ParseRule(
      "ReportsTo(X, Y) :- Manages(Y, Z), ReportsTo(X, Z).", &symbols);
  auto reports_exit = datalog::ParseRule(
      "ReportsTo(X, Y) :- DirectReport(Y, X).", &symbols);
  auto reports =
      datalog::LinearRecursiveRule::Create(*reports_rule);
  auto reports_plan = generator.Plan(*reports, *reports_exit);
  if (!reports_plan.ok()) {
    std::cerr << reports_plan.status() << "\n";
    return 1;
  }
  ShowPlan("ReportsTo", *reports_plan);

  // Who does employee 11 report to (transitively)?
  eval::Query q1;
  q1.pred = symbols.Lookup("ReportsTo");
  q1.bindings = {ra::Value{11}, std::nullopt};
  auto bosses = reports_plan->Execute(q1, edb);
  if (!bosses.ok()) {
    std::cerr << bosses.status() << "\n";
    return 1;
  }
  std::cout << "  ReportsTo(11, Y) = " << bosses->ToString() << "\n\n";

  // --- Escalates: manager chain down, deputy chain back up — the
  // synchronized two-chain shape of (s2a). ------------------------------
  auto esc_rule = datalog::ParseRule(
      "Escalates(X, Y) :- Manages(X, Z), Escalates(Z, U), Deputy(U, Y).",
      &symbols);
  auto esc_exit = datalog::ParseRule(
      "Escalates(X, Y) :- DirectReport(X, Y).", &symbols);
  auto esc = datalog::LinearRecursiveRule::Create(*esc_rule);
  auto esc_plan = generator.Plan(*esc, *esc_exit);
  if (!esc_plan.ok()) {
    std::cerr << esc_plan.status() << "\n";
    return 1;
  }
  ShowPlan("Escalates", *esc_plan);

  eval::Query q2;
  q2.pred = symbols.Lookup("Escalates");
  q2.bindings = {ra::Value{0}, std::nullopt};
  eval::CompiledEvalStats stats;
  auto esc_answers = esc_plan->Execute(q2, edb, {}, &stats);
  if (!esc_answers.ok()) {
    std::cerr << esc_answers.status() << "\n";
    return 1;
  }
  std::cout << "  Escalates(0, Y) = " << esc_answers->ToString() << "  ("
            << stats.levels << " levels, synchronized)\n\n";

  // --- PeerOf: a view whose recursive call is decoupled from the head
  // variables (every recursive argument is fresh). The classifier proves
  // it bounded (class D, Ioannidis bound) and compiles the recursion away
  // into a finite union — "pseudo recursion" in the paper's words. ------
  auto peer_rule = datalog::ParseRule(
      "PeerOf(X, Y) :- Manages(X, X1), Manages(Y, Y1), PeerOf(X2, Y2).",
      &symbols);
  auto peer_exit =
      datalog::ParseRule("PeerOf(X, Y) :- Sibling(X, Y).", &symbols);
  auto peer = datalog::LinearRecursiveRule::Create(*peer_rule);
  if (!peer.ok()) {
    std::cerr << peer.status() << "\n";
    return 1;
  }
  auto peer_plan = generator.Plan(*peer, *peer_exit);
  if (!peer_plan.ok()) {
    std::cerr << peer_plan.status() << "\n";
    return 1;
  }
  ShowPlan("PeerOf", *peer_plan);
  std::cout << "  (bounded: rank "
            << peer_plan->classification().rank_bound
            << " — the optimizer proved the recursion is finite)\n\n";

  eval::Query q3;
  q3.pred = symbols.Lookup("PeerOf");
  q3.bindings = {ra::Value{1}, std::nullopt};
  auto peers = peer_plan->Execute(q3, edb);
  if (!peers.ok()) {
    std::cerr << peers.status() << "\n";
    return 1;
  }
  std::cout << "  PeerOf(1, Y) = " << peers->ToString() << "\n";
  return 0;
}
