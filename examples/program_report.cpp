// program_report: whole-program analysis. Reads a Datalog program from a
// file (or stdin), builds the predicate dependency graph, detects mutual
// and non-linear recursion, and classifies every predicate that fits the
// paper's single-linear-recursion setting.
//
// Usage:
//   program_report rules.dl
//   echo 'P(X,Y) :- E(X,Y). P(X,Y) :- A(X,Z), P(Z,Y).' | program_report

#include <fstream>
#include <iostream>
#include <sstream>

#include "classify/program_analysis.h"
#include "datalog/parser.h"

using namespace recur;

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  SymbolTable symbols;
  auto program = datalog::ParseProgram(text, &symbols);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  auto analysis = classify::AnalyzeProgram(*program);
  if (!analysis.ok()) {
    std::cerr << analysis.status() << "\n";
    return 1;
  }

  std::cout << analysis->Summary(symbols);
  if (!analysis->mutual_groups.empty()) {
    std::cout << "\nmutual recursion groups:\n";
    for (const auto& group : analysis->mutual_groups) {
      std::cout << "  {";
      for (size_t i = 0; i < group.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << symbols.NameOf(group[i]);
      }
      std::cout << "}\n";
    }
  }
  for (const classify::PredicateReport& r : analysis->predicates) {
    if (!r.classification.has_value()) continue;
    std::cout << "\n-- " << symbols.NameOf(r.predicate) << " --\n"
              << r.classification->Summary(symbols);
  }
  return 0;
}
