// Quickstart: parse a recursive formula, look at its I-graph, classify it,
// compile a query plan, and answer a query — the full pipeline in ~80 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "classify/classifier.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "graph/render.h"
#include "ra/database.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  SymbolTable symbols;

  // 1. Parse the classic ancestor-style rule (the paper's s1a) and its
  //    exit rule. Upper-case identifiers in argument position are
  //    variables.
  auto rule =
      datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols);
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols);
  if (!rule.ok() || !exit.ok()) {
    std::cerr << "parse error\n";
    return 1;
  }
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    return 1;
  }
  std::cout << "formula: " << formula->rule().ToString(symbols) << "\n\n";

  // 2. Build and print the I-graph.
  auto cls = classify::Classify(*formula);
  if (!cls.ok()) {
    std::cerr << cls.status() << "\n";
    return 1;
  }
  std::cout << "I-graph:\n"
            << graph::ToAscii(cls->igraph.graph(), symbols) << "\n";

  // 3. Classification: the formula has disjoint unit cycles, so it is
  //    strongly stable.
  std::cout << cls->Summary(symbols) << "\n";

  // 4. Compile a query plan.
  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::cout << "compiled plan: " << plan->ToString() << "\n\n";

  // 5. Load a small EDB: A is a chain 0 -> 1 -> ... -> 10, E is the same.
  ra::Database edb;
  workload::Generator gen(7);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))->InsertAll(gen.Chain(10));
  (*edb.GetOrCreate(symbols.Intern("E"), 2))->InsertAll(gen.Chain(10));

  // 6. Ask P(0, Y): everything reachable from node 0.
  eval::Query query;
  query.pred = symbols.Lookup("P");
  query.bindings = {ra::Value{0}, std::nullopt};
  eval::CompiledEvalStats stats;
  auto answers = plan->Execute(query, edb, {}, &stats);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "P(0, Y) has " << answers->size() << " answers: "
            << answers->ToString() << "\n";
  std::cout << "levels evaluated: " << stats.levels << "\n\n";

  // 7. The same program through the parallel semi-naive engine, with the
  //    per-round stats tree turned on.
  datalog::Program program;
  program.AddRule(*exit);
  program.AddRule(*rule);
  eval::FixpointOptions fixpoint;
  fixpoint.num_threads = 4;
  fixpoint.collect_stats = true;
  eval::EvalStats fix_stats;
  auto idb = eval::SemiNaiveEvaluate(program, edb, fixpoint, &fix_stats);
  if (!idb.ok()) {
    std::cerr << idb.status() << "\n";
    return 1;
  }
  std::cout << "semi-naive (" << fixpoint.num_threads << " threads): |P| = "
            << idb->at(query.pred).size() << "\n"
            << fix_stats.FormatTree();
  return 0;
}
