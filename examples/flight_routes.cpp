// Flight-route planning over a deductive database. Demonstrates the
// non-unit one-directional case (classes A3/A5): a round-trip view whose
// I-graph cycle has weight 2, which the library unfolds into an
// equivalent stable formula with two exits (Theorem 2) before compiling.
//
//   Leg(X, Y)        — EDB: a direct flight from X to Y
//   Back(X, Y)       — EDB: a direct return flight
//   Trip(O, D)       — base round trips (exit relation)
//   RoundTrip(O, D)  — O and D such that extending the trip by one
//                      outbound leg and one return leg (in alternating
//                      positions) still closes: the weight-2 rotation
//
// Run: ./build/examples/flight_routes

#include <iostream>

#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "transform/stable_form.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  SymbolTable symbols;
  ra::Database edb;

  // A small route network: hubs 0..4 in a cycle of outbound legs, return
  // legs shifted by one (so alternating out/back walks close).
  ra::Relation* leg = *edb.GetOrCreate(symbols.Intern("Leg"), 2);
  ra::Relation* back = *edb.GetOrCreate(symbols.Intern("Back"), 2);
  const int kHubs = 6;
  for (int i = 0; i < kHubs; ++i) {
    leg->Insert({i, (i + 1) % kHubs});
    back->Insert({(i + 1) % kHubs, i});
    leg->Insert({i, (i + 2) % kHubs});
    back->Insert({(i + 2) % kHubs, (i + 1) % kHubs});
  }
  ra::Relation* trip = *edb.GetOrCreate(symbols.Intern("Trip"), 2);
  trip->Insert({0, 3});
  trip->Insert({2, 5});

  // The weight-2 rotation: positions swap through Leg/Back each step.
  auto rule = datalog::ParseRule(
      "RoundTrip(O, D) :- Leg(O, D1), Back(D, O1), RoundTrip(O1, D1).",
      &symbols);
  auto exit =
      datalog::ParseRule("RoundTrip(O, D) :- Trip(O, D).", &symbols);
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    return 1;
  }

  auto cls = classify::Classify(*formula);
  std::cout << "classification:\n" << cls->Summary(symbols) << "\n";

  // Show the Theorem-2 transformation explicitly.
  auto sf = transform::ToStableForm(*formula, *exit, &symbols);
  if (!sf.ok()) {
    std::cerr << sf.status() << "\n";
    return 1;
  }
  std::cout << "stable form after " << sf->unfold_count
            << " unfoldings:\n  recursive: "
            << sf->recursive.rule().ToString(symbols) << "\n";
  for (const datalog::Rule& e : sf->exits) {
    std::cout << "  exit:      " << e.ToString(symbols) << "\n";
  }
  std::cout << "\n";

  // Compile and query: all destinations D with a derivable round trip
  // from hub 0.
  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::cout << "plan: " << plan->ToString() << "\n\n";

  eval::Query query;
  query.pred = symbols.Lookup("RoundTrip");
  query.bindings = {ra::Value{0}, std::nullopt};
  eval::CompiledEvalStats stats;
  auto answers = plan->Execute(query, edb, {}, &stats);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "RoundTrip(0, D) = " << answers->ToString() << "\n";
  if (stats.fell_back) {
    std::cout << "(the route network is cyclic; the evaluator detected "
                 "non-convergence of the synchronized frontier and fell "
                 "back to semi-naive — same answers, safe plan)\n";
  }

  // Cross-check against semi-naive.
  datalog::Program program;
  program.AddRule(formula->rule());
  program.AddRule(*exit);
  auto reference = eval::SemiNaiveAnswer(program, edb, query);
  std::cout << "semi-naive agrees: "
            << (reference.ok() &&
                        reference->ToString() == answers->ToString()
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
