#ifndef RECUR_BENCH_PERF_UTIL_H_
#define RECUR_BENCH_PERF_UTIL_H_

// Shared setup helpers for the google-benchmark binaries.

#include <cstdlib>
#include <memory>
#include <iostream>
#include <optional>
#include <string>

#include "datalog/parser.h"
#include "eval/naive.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "workload/generator.h"

namespace recur::bench {

/// Everything a perf benchmark needs for one formula: symbols, EDB,
/// program (recursive + exit), and the generated plan. Not movable: the
/// plan's compiled evaluator keeps a pointer to `symbols`, so Workbench
/// lives behind a unique_ptr.
struct Workbench {
  Workbench() = default;
  Workbench(const Workbench&) = delete;
  Workbench& operator=(const Workbench&) = delete;

  SymbolTable symbols;
  ra::Database edb;
  datalog::LinearRecursiveRule formula;
  datalog::Rule exit;
  datalog::Program program;
  eval::QueryPlan plan;

  ra::Relation* Rel(const char* name, int arity) {
    auto r = edb.GetOrCreate(symbols.Intern(name), arity);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      std::abort();
    }
    return *r;
  }

  eval::Query MakeQuery(std::vector<std::optional<ra::Value>> bindings) {
    eval::Query q;
    q.pred = formula.recursive_predicate();
    q.bindings = std::move(bindings);
    return q;
  }
};

/// Parses the rules and generates the plan; aborts on error (benchmarks
/// have no error channel worth using).
inline std::unique_ptr<Workbench> MakeWorkbench(const char* rule_text,
                                                const char* exit_text) {
  auto w = std::make_unique<Workbench>();
  auto rule = datalog::ParseRule(rule_text, &w->symbols);
  auto exit = datalog::ParseRule(exit_text, &w->symbols);
  if (!rule.ok() || !exit.ok()) {
    std::cerr << "parse error in benchmark setup\n";
    std::abort();
  }
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    std::abort();
  }
  w->formula = *formula;
  w->exit = *exit;
  w->program.AddRule(w->formula.rule());
  w->program.AddRule(w->exit);
  eval::PlanGenerator generator(&w->symbols);
  auto plan = generator.Plan(w->formula, w->exit);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    std::abort();
  }
  w->plan = *plan;
  return w;
}

}  // namespace recur::bench

#endif  // RECUR_BENCH_PERF_UTIL_H_
