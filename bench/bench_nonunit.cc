// PERF2 — non-unit one-directional formulas (classes A3/A5): one-time
// transformation cost (Theorem 2 unfolding) and compiled evaluation of
// the transformed form vs semi-naive evaluation of the original, on (s4a)
// (weight-3 rotation) and (s7) (four cycles, LCM 6).

#include <benchmark/benchmark.h>

#include "transform/stable_form.h"

#include "perf_util.h"

namespace recur::bench {
namespace {

constexpr const char* kS4aRule =
    "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).";
constexpr const char* kS4aExit = "P(X1, X2, X3) :- E(X1, X2, X3).";

std::unique_ptr<Workbench> MakeS4a(int64_t n) {
  auto w = MakeWorkbench(kS4aRule, kS4aExit);
  workload::Generator gen(201);
  int width = 8;
  int layers = static_cast<int>(n) / width;
  w->Rel("A", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("B", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("C", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("E", 3)->InsertAll(
      gen.RandomRows(3, static_cast<int>(n), 2 * static_cast<int>(n)));
  return w;
}

void BM_NonUnit_TransformCost(benchmark::State& state) {
  auto w = MakeWorkbench(kS4aRule, kS4aExit);
  for (auto _ : state) {
    auto sf = transform::ToStableForm(w->formula, w->exit, &w->symbols);
    if (!sf.ok()) state.SkipWithError("transform failed");
    benchmark::DoNotOptimize(sf);
  }
  state.SetLabel("Theorem 2 unfolding, one-time");
}
BENCHMARK(BM_NonUnit_TransformCost);

void BM_NonUnit_S4a_Compiled(benchmark::State& state) {
  auto w = MakeS4a(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{0}, ra::Value{1}, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("transformed + compiled");
}
BENCHMARK(BM_NonUnit_S4a_Compiled)->Arg(128)->Arg(512)->Arg(2048);

void BM_NonUnit_S4a_SemiNaive(benchmark::State& state) {
  auto w = MakeS4a(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{0}, ra::Value{1}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("original recursion, full fixpoint");
}
BENCHMARK(BM_NonUnit_S4a_SemiNaive)->Arg(64)->Arg(128);

constexpr const char* kS7Rule =
    "P(X, Y, Z, U, W, S, V) :- A(X, T), P(T, Z, Y, W, S, R, V), B(U, R).";
constexpr const char* kS7Exit =
    "P(X, Y, Z, U, W, S, V) :- E(X, Y, Z, U, W, S, V).";

std::unique_ptr<Workbench> MakeS7(int64_t n) {
  auto w = MakeWorkbench(kS7Rule, kS7Exit);
  workload::Generator gen(202);
  int width = 8;
  int layers = static_cast<int>(n) / width;
  w->Rel("A", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("B", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("E", 7)->InsertAll(
      gen.RandomRows(7, static_cast<int>(n), 2 * static_cast<int>(n)));
  return w;
}

void BM_NonUnit_S7_Compiled(benchmark::State& state) {
  auto w = MakeS7(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt, std::nullopt,
                               std::nullopt, std::nullopt, std::nullopt,
                               std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("LCM-6 transformed + compiled");
}
BENCHMARK(BM_NonUnit_S7_Compiled)->Arg(128)->Arg(512);

void BM_NonUnit_S7_SemiNaive(benchmark::State& state) {
  auto w = MakeS7(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt, std::nullopt,
                               std::nullopt, std::nullopt, std::nullopt,
                               std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("original recursion, full fixpoint");
}
BENCHMARK(BM_NonUnit_S7_SemiNaive)->Arg(64)->Arg(128);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
