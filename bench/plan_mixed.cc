// Reproduces §10 Example 14: executes the plan for the mixed formula
// (s12), query P(d, v, v) — the dependent pair walk plus the D^(k+1)
// chain — and cross-checks semi-naive evaluation.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  bench::Banner("Example 14 — executing the (s12) mixed-class plan");

  SymbolTable symbols;
  ra::Database edb;
  workload::Generator gen(79);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))
      ->InsertAll(gen.LayeredDag(6, 3, 2));
  (*edb.GetOrCreate(symbols.Intern("B"), 2))
      ->InsertAll(gen.LayeredDag(6, 3, 2));
  (*edb.GetOrCreate(symbols.Intern("C"), 2))
      ->InsertAll(gen.RandomGraph(18, 80));
  (*edb.GetOrCreate(symbols.Intern("D"), 2))
      ->InsertAll(gen.RandomGraph(18, 40));
  (*edb.GetOrCreate(symbols.Intern("E"), 3))
      ->InsertAll(gen.RandomRows(3, 18, 60));

  auto program = datalog::ParseProgram(
      "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).\n"
      "P(X, Y, Z) :- E(X, Y, Z).\n",
      &symbols);
  if (!program.ok()) return 1;

  bool all_agree = true;
  for (ra::Value d : {0, 1, 2}) {
    eval::EvalStats stats;
    auto answers = eval::S12Plan(edb, symbols, d, /*max_levels=*/64, &stats);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return 1;
    }
    eval::Query q;
    q.pred = symbols.Lookup("P");
    q.bindings = {d, std::nullopt, std::nullopt};
    auto reference = eval::SemiNaiveAnswer(*program, edb, q);
    bool agree =
        reference.ok() && reference->ToString() == answers->ToString();
    all_agree = all_agree && agree;
    std::cout << "P(" << d << ",v,v): " << answers->size() << " answers ("
              << stats.iterations
              << " levels); semi-naive agrees: " << (agree ? "yes" : "NO")
              << "\n";
  }
  std::cout << "(per level k the plan folds the answer z through D k+1 "
               "times while the dependent (u,v) pair advances — the "
               "formula behaves like a stable one from the second "
               "expansion on, as §10 observes)\n";
  return all_agree ? 0 : 1;
}
