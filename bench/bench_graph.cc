// PERF6 — graph-machinery micro-benchmarks: I-graph construction,
// condensation + cycle enumeration, full classification, resolution-graph
// growth in k, and the hash-join vs nested-loop join choice inside the RA
// substrate.

#include <benchmark/benchmark.h>

#include "catalog/paper_examples.h"
#include "classify/classifier.h"
#include "graph/cycles.h"
#include "graph/resolution_graph.h"
#include "ra/operators.h"
#include "workload/generator.h"

#include "perf_util.h"

namespace recur::bench {
namespace {

const catalog::PaperExample& Example(const char* id) {
  const catalog::PaperExample* e = catalog::FindExample(id);
  if (e == nullptr) std::abort();
  return *e;
}

void BM_Graph_IGraphBuild(benchmark::State& state, const char* id) {
  SymbolTable symbols;
  auto formula = catalog::ParseExample(Example(id), &symbols);
  if (!formula.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    auto g = graph::IGraph::Build(*formula);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK_CAPTURE(BM_Graph_IGraphBuild, s1a, "s1a");
BENCHMARK_CAPTURE(BM_Graph_IGraphBuild, s7, "s7");
BENCHMARK_CAPTURE(BM_Graph_IGraphBuild, s12, "s12");

void BM_Graph_CycleEnumeration(benchmark::State& state, const char* id) {
  SymbolTable symbols;
  auto formula = catalog::ParseExample(Example(id), &symbols);
  auto ig = graph::IGraph::Build(*formula);
  graph::CondensedGraph condensed =
      graph::CondensedGraph::Build(ig->graph());
  for (auto _ : state) {
    auto cycles = graph::EnumerateCycles(condensed);
    benchmark::DoNotOptimize(cycles);
  }
}
BENCHMARK_CAPTURE(BM_Graph_CycleEnumeration, s7, "s7");
BENCHMARK_CAPTURE(BM_Graph_CycleEnumeration, s11, "s11");

void BM_Graph_Classify(benchmark::State& state, const char* id) {
  SymbolTable symbols;
  auto formula = catalog::ParseExample(Example(id), &symbols);
  for (auto _ : state) {
    auto cls = classify::Classify(*formula);
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK_CAPTURE(BM_Graph_Classify, s1a, "s1a");
BENCHMARK_CAPTURE(BM_Graph_Classify, s7, "s7");
BENCHMARK_CAPTURE(BM_Graph_Classify, s12, "s12");

void BM_Graph_ResolutionGraph(benchmark::State& state) {
  SymbolTable symbols;
  auto formula = catalog::ParseExample(Example("s2a"), &symbols);
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = graph::ResolutionGraph::Build(*formula, k);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_Graph_ResolutionGraph)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Complexity();

void BM_Ra_HashJoin(benchmark::State& state) {
  workload::Generator gen(601);
  int n = static_cast<int>(state.range(0));
  ra::Relation l = gen.RandomGraph(n, 4 * n);
  ra::Relation r = gen.RandomGraph(n, 4 * n);
  for (auto _ : state) {
    auto j = ra::Join(l, r, {{1, 0}});
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_Ra_HashJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_Ra_NestedLoopJoin(benchmark::State& state) {
  workload::Generator gen(601);
  int n = static_cast<int>(state.range(0));
  ra::Relation l = gen.RandomGraph(n, 4 * n);
  ra::Relation r = gen.RandomGraph(n, 4 * n);
  for (auto _ : state) {
    auto j = ra::JoinNestedLoop(l, r, {{1, 0}});
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_Ra_NestedLoopJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_PlanGeneration(benchmark::State& state, const char* id) {
  SymbolTable symbols;
  const catalog::PaperExample& e = Example(id);
  auto formula = catalog::ParseExample(e, &symbols);
  auto exit = datalog::ParseRule(e.exit_rule, &symbols);
  eval::PlanGenerator generator(&symbols);
  for (auto _ : state) {
    auto plan = generator.Plan(*formula, *exit);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK_CAPTURE(BM_PlanGeneration, s1a_stable, "s1a");
BENCHMARK_CAPTURE(BM_PlanGeneration, s7_transform6, "s7");
BENCHMARK_CAPTURE(BM_PlanGeneration, s8_bounded, "s8");

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
