// Reproduces Figure 5: the 1st and 2nd resolution graphs of the dependent
// formula (s11) and the §9 plan for the query form P(d, v):
//   σE, σA-C-B-E, ∪_k σA-C-B-[{A ∥ B}-C]^k-C-E

#include "artifact_util.h"
#include "classify/stability.h"
#include "transform/compiled_expr.h"

using namespace recur;
using transform::CompiledExpr;

int main() {
  bench::Banner("Figure 5 — resolution graphs of (s11), class E plan");
  bench::ShowIGraph("s11");
  bench::ShowResolutionGraph("s11", 1);
  bench::ShowResolutionGraph("s11", 2);

  // The paper observes that from the second expansion on, *all* recursive
  // positions are determined for the query P(d, v).
  SymbolTable symbols;
  auto formula =
      catalog::ParseExample(*catalog::FindExample("s11"), &symbols);
  auto cls = classify::Classify(*formula);
  if (cls.ok()) {
    std::cout << classify::AdornmentTable(*cls, 0b01, 2)
              << "(both positions determined from the second expansion "
                 "on, as §9 observes)\n\n";
  }

  CompiledExpr plan = CompiledExpr::Sequence(
      {CompiledExpr::Select(CompiledExpr::Relation("E")),
       CompiledExpr::Select(CompiledExpr::JoinChain(
           {CompiledExpr::Relation("A"), CompiledExpr::Relation("C"),
            CompiledExpr::Relation("B"), CompiledExpr::Relation("E")})),
       CompiledExpr::UnionK(CompiledExpr::JoinChain(
           {CompiledExpr::Relation("σA"), CompiledExpr::Relation("C"),
            CompiledExpr::Relation("B"),
            CompiledExpr::Power(CompiledExpr::JoinChain(
                {CompiledExpr::Parallel({CompiledExpr::Relation("A"),
                                         CompiledExpr::Relation("B")}),
                 CompiledExpr::Relation("C")})),
            CompiledExpr::Relation("C"), CompiledExpr::Relation("E")}))});
  std::cout << "plan for P(d,v): " << plan.ToString() << "\n";
  std::cout << "(executed by eval::S11Plan; see bench_dependent_mixed)\n";
  return 0;
}
