// PERF4 — unbounded class C: the paper's resolution-graph-derived plans
// for (s9) (Cartesian product plan for P(d,v,v), existence-check plan for
// P(v,v,d)) vs semi-naive evaluation. The existence plan should win big:
// it short-circuits at the first witness depth.

#include <benchmark/benchmark.h>

#include "eval/special_plans.h"

#include "perf_util.h"

namespace recur::bench {
namespace {

std::unique_ptr<Workbench> MakeS9(int64_t n) {
  auto w =
      MakeWorkbench("P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).",
                    "P(X, Y, Z) :- E(X, Y, Z).");
  workload::Generator gen(401);
  int domain = static_cast<int>(n);
  w->Rel("A", 2)->InsertAll(gen.RandomGraph(domain, 3 * domain));
  w->Rel("B", 2)->InsertAll(gen.RandomGraph(domain, 3 * domain));
  w->Rel("E", 3)->InsertAll(gen.RandomRows(3, domain, 2 * domain));
  return w;
}

void BM_Unbounded_S9_PlanBoundFirst(benchmark::State& state) {
  auto w = MakeS9(state.range(0));
  for (auto _ : state) {
    auto answers = eval::S9PlanBoundFirst(w->edb, w->symbols, 1);
    if (!answers.ok()) state.SkipWithError("plan failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("σE, (σA) × ∪_k[(E⋈B)(BA)^k]");
}
BENCHMARK(BM_Unbounded_S9_PlanBoundFirst)->Arg(64)->Arg(256)->Arg(1024);

void BM_Unbounded_S9_PlanBoundThird(benchmark::State& state) {
  auto w = MakeS9(state.range(0));
  for (auto _ : state) {
    auto answers = eval::S9PlanBoundThird(w->edb, w->symbols, 1);
    if (!answers.ok()) state.SkipWithError("plan failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("σE, (∃ ∪_k[(AB)^k(E⋈B)]) A");
}
BENCHMARK(BM_Unbounded_S9_PlanBoundThird)->Arg(64)->Arg(256)->Arg(1024);

void BM_Unbounded_S9_SemiNaive_BoundFirst(benchmark::State& state) {
  auto w = MakeS9(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{1}, std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select (P(d,v,v))");
}
BENCHMARK(BM_Unbounded_S9_SemiNaive_BoundFirst)->Arg(64)->Arg(256);

void BM_Unbounded_S9_SemiNaive_BoundThird(benchmark::State& state) {
  auto w = MakeS9(state.range(0));
  eval::Query q =
      w->MakeQuery({std::nullopt, std::nullopt, ra::Value{1}});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select (P(v,v,d))");
}
BENCHMARK(BM_Unbounded_S9_SemiNaive_BoundThird)->Arg(64)->Arg(256);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
