// Reproduces Figure 6: the 1st and 2nd resolution graphs of the mixed
// formula (s12) and the §10 plan for P(d, v, v):
//   ∪_k σA-C-B-[{A ∥ B}-C]^k-E-D^(k+1)
//
// Note: the paper's text calls (s12) a combination of classes (D) and
// (A1); the {x,u,y,v} component is in fact the dependent pattern of (s11)
// (two unit cycles joined by C), so our classifier reports E ⊕ A1 = F.
// See EXPERIMENTS.md.

#include "artifact_util.h"
#include "classify/stability.h"
#include "transform/compiled_expr.h"

using namespace recur;
using transform::CompiledExpr;

int main() {
  bench::Banner("Figure 6 — resolution graphs of (s12), mixed plan");
  bench::ShowIGraph("s12");
  bench::ShowResolutionGraph("s12", 1);
  bench::ShowResolutionGraph("s12", 2);

  // The paper's adornment table: P(d,v,v) -> P(d,d,v) -> P(d,d,v) ...
  SymbolTable symbols;
  auto formula =
      catalog::ParseExample(*catalog::FindExample("s12"), &symbols);
  auto cls = classify::Classify(*formula);
  if (cls.ok()) {
    std::cout << classify::AdornmentTable(*cls, 0b001, 3)
              << "(paper: first expansion P(d,d,v), then P(d,d,v) for "
                 "all following expansions; cycle period 1)\n\n";
  }

  CompiledExpr plan = CompiledExpr::UnionK(CompiledExpr::JoinChain(
      {CompiledExpr::Relation("σA"), CompiledExpr::Relation("C"),
       CompiledExpr::Relation("B"),
       CompiledExpr::Power(CompiledExpr::JoinChain(
           {CompiledExpr::Parallel({CompiledExpr::Relation("A"),
                                    CompiledExpr::Relation("B")}),
            CompiledExpr::Relation("C")})),
       CompiledExpr::Relation("E"),
       CompiledExpr::Power(CompiledExpr::Relation("D"), 1)}));
  std::cout << "plan for P(d,v,v): " << plan.ToString() << "\n";
  std::cout << "(executed by eval::S12Plan; see bench_dependent_mixed)\n";
  return 0;
}
