// Reproduces §4.3 Example 4: the transformation of the non-unit
// rotational formula (s4a) into an equivalent stable formula with
// multiple exits — (s4b), (s4a'), (s4c') — and the compiled plan for
// P(a, b, Z); then runs it and cross-checks semi-naive evaluation.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "transform/stable_form.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  bench::Banner("Example 4 — transforming (s4a) and planning P(a,b,Z)");
  bench::ShowIGraph("s4a");

  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample("s4a");
  auto formula = catalog::ParseExample(*example, &symbols);
  auto exit = datalog::ParseRule(example->exit_rule, &symbols);
  if (!formula.ok() || !exit.ok()) return 1;

  auto sf = transform::ToStableForm(*formula, *exit, &symbols);
  if (!sf.ok()) {
    std::cerr << sf.status() << "\n";
    return 1;
  }
  std::cout << "unfold count (cycle weight): " << sf->unfold_count << "\n";
  std::cout << "new recursive rule (3rd expansion, cf. s4d):\n  "
            << sf->recursive.rule().ToString(symbols) << "\n";
  std::cout << "exit rules (cf. s4b, s4a', s4c'):\n";
  for (const datalog::Rule& e : sf->exits) {
    std::cout << "  " << e.ToString(symbols) << "\n";
  }

  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  if (!plan.ok()) return 1;
  std::cout << "\ncompiled plan: " << plan->ToString() << "\n\n";

  ra::Database edb;
  workload::Generator gen(9);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))
      ->InsertAll(gen.LayeredDag(6, 4, 2));
  (*edb.GetOrCreate(symbols.Intern("B"), 2))
      ->InsertAll(gen.LayeredDag(6, 4, 2));
  (*edb.GetOrCreate(symbols.Intern("C"), 2))
      ->InsertAll(gen.LayeredDag(6, 4, 2));
  (*edb.GetOrCreate(symbols.Intern("E"), 3))
      ->InsertAll(gen.RandomRows(3, 24, 80));

  eval::Query query;
  query.pred = symbols.Lookup("P");
  query.bindings = {ra::Value{0}, ra::Value{1}, std::nullopt};
  auto answers = plan->Execute(query, edb);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "P(0, 1, Z) = " << answers->ToString() << "\n";

  datalog::Program program;
  program.AddRule(formula->rule());
  program.AddRule(*exit);
  auto reference = eval::SemiNaiveAnswer(program, edb, query);
  std::cout << "semi-naive agrees: "
            << (reference.ok() &&
                        reference->ToString() == answers->ToString()
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
