// PERF1 — compiled evaluation vs semi-naive vs naive for stable formulas
// (classes A1/A2): the transitive-closure shape (s1a) and the 3-D stable
// formula (s3), varying EDB size. The paper's claim to validate: compiled
// plans answer selective queries without materializing the full fixpoint,
// so they win by a growing factor as the database grows; on unselective
// (all-free) queries the gap closes.

#include <benchmark/benchmark.h>

#include "perf_util.h"

namespace recur::bench {
namespace {

std::unique_ptr<Workbench> MakeS1a(int64_t n) {
  auto w = MakeWorkbench("P(X, Y) :- A(X, Z), P(Z, Y).",
                              "P(X, Y) :- E(X, Y).");
  workload::Generator gen(101);
  // A layered DAG: selective queries touch one source's cone only.
  int width = 16;
  int layers = static_cast<int>(n) / width;
  w->Rel("A", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("E", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  return w;
}

void BM_Stable_S1a_Compiled_Selective(benchmark::State& state) {
  auto w = MakeS1a(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(0,Y) forward BFS");
}
BENCHMARK(BM_Stable_S1a_Compiled_Selective)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Stable_S1a_SemiNaive_Selective(benchmark::State& state) {
  auto w = MakeS1a(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(0,Y) full fixpoint + select");
}
BENCHMARK(BM_Stable_S1a_SemiNaive_Selective)->Arg(256)->Arg(1024);

void BM_Stable_S1a_Naive_Selective(benchmark::State& state) {
  auto w = MakeS1a(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::NaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("naive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(0,Y) naive fixpoint + select");
}
BENCHMARK(BM_Stable_S1a_Naive_Selective)->Arg(256);

void BM_Stable_S1a_Compiled_AllFree(benchmark::State& state) {
  auto w = MakeS1a(state.range(0));
  eval::Query q = w->MakeQuery({std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(X,Y) unselective");
}
BENCHMARK(BM_Stable_S1a_Compiled_AllFree)->Arg(256)->Arg(1024);

void BM_Stable_S1a_SemiNaive_AllFree(benchmark::State& state) {
  auto w = MakeS1a(state.range(0));
  eval::Query q = w->MakeQuery({std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(X,Y) unselective");
}
BENCHMARK(BM_Stable_S1a_SemiNaive_AllFree)->Arg(256)->Arg(1024);

std::unique_ptr<Workbench> MakeS3(int64_t n) {
  auto w = MakeWorkbench(
      "P(X, Y, Z) :- A(X, U), B(Y, V), P(U, V, W), C(W, Z).",
      "P(X, Y, Z) :- E(X, Y, Z).");
  workload::Generator gen(102);
  int width = 8;
  int layers = static_cast<int>(n) / width;
  w->Rel("A", 2)->InsertAll(gen.LayeredDag(layers, width, 2, 0));
  w->Rel("B", 2)->InsertAll(gen.LayeredDag(layers, width, 2, 100000));
  w->Rel("C", 2)->InsertAll(gen.LayeredDag(layers, width, 2, 200000));
  ra::Relation* e = w->Rel("E", 3);
  workload::Generator gen2(103);
  ra::Relation raw =
      gen2.RandomRows(3, static_cast<int>(n), 2 * static_cast<int>(n));
  for (ra::TupleRef t : raw.rows()) {
    e->Insert({t[0], 100000 + t[1], 200000 + t[2]});
  }
  return w;
}

void BM_Stable_S3_Compiled(benchmark::State& state) {
  auto w = MakeS3(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{0}, ra::Value{100000}, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(a,b,Z) synchronized chains");
}
BENCHMARK(BM_Stable_S3_Compiled)->Arg(128)->Arg(512)->Arg(2048);

void BM_Stable_S3_SemiNaive(benchmark::State& state) {
  auto w = MakeS3(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{0}, ra::Value{100000}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("P(a,b,Z) full fixpoint + select");
}
BENCHMARK(BM_Stable_S3_SemiNaive)->Arg(128);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
