// PERF5 — dependent (E) and mixed (F) classes: the resolution-graph plans
// for (s11) and (s12) vs semi-naive evaluation. The plans restrict the
// pair walk to the query constant's forward cone, so they win on
// selective queries.

#include <benchmark/benchmark.h>

#include "eval/special_plans.h"

#include "perf_util.h"

namespace recur::bench {
namespace {

std::unique_ptr<Workbench> MakeS11(int64_t n) {
  auto w = MakeWorkbench(
      "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).",
      "P(X, Y) :- E(X, Y).");
  workload::Generator gen(501);
  int domain = static_cast<int>(n);
  w->Rel("A", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("B", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("C", 2)->InsertAll(gen.RandomGraph(domain, 4 * domain));
  w->Rel("E", 2)->InsertAll(gen.RandomGraph(domain, domain));
  return w;
}

void BM_Dependent_S11_Plan(benchmark::State& state) {
  auto w = MakeS11(state.range(0));
  for (auto _ : state) {
    auto answers = eval::S11Plan(w->edb, w->symbols, 1);
    if (!answers.ok()) state.SkipWithError("plan failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("σA-C-B pair walk + reach-E");
}
BENCHMARK(BM_Dependent_S11_Plan)->Arg(64)->Arg(256)->Arg(1024);

void BM_Dependent_S11_SemiNaive(benchmark::State& state) {
  auto w = MakeS11(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{1}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select");
}
BENCHMARK(BM_Dependent_S11_SemiNaive)->Arg(64)->Arg(256);

std::unique_ptr<Workbench> MakeS12(int64_t n) {
  auto w = MakeWorkbench(
      "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).",
      "P(X, Y, Z) :- E(X, Y, Z).");
  workload::Generator gen(502);
  int width = 8;
  int layers = static_cast<int>(n) / width;
  w->Rel("A", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  w->Rel("B", 2)->InsertAll(gen.LayeredDag(layers, width, 2));
  int domain = static_cast<int>(n);
  w->Rel("C", 2)->InsertAll(gen.RandomGraph(domain, 4 * domain));
  w->Rel("D", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("E", 3)->InsertAll(gen.RandomRows(3, domain, 2 * domain));
  return w;
}

void BM_Mixed_S12_Plan(benchmark::State& state) {
  auto w = MakeS12(state.range(0));
  int cap = static_cast<int>(w->edb.ActiveDomainSize()) + 1;
  for (auto _ : state) {
    auto answers = eval::S12Plan(w->edb, w->symbols, 1, cap);
    if (!answers.ok()) state.SkipWithError("plan failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("pair walk + E + D^(k+1)");
}
BENCHMARK(BM_Mixed_S12_Plan)->Arg(64)->Arg(256)->Arg(1024);

void BM_Mixed_S12_SemiNaive(benchmark::State& state) {
  auto w = MakeS12(state.range(0));
  eval::Query q =
      w->MakeQuery({ra::Value{1}, std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select");
}
BENCHMARK(BM_Mixed_S12_SemiNaive)->Arg(64)->Arg(256);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
