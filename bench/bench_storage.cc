// PERF8 — the arena-backed relation storage layer in isolation: bulk
// insert (checked and unchecked), membership probes, and a hash join,
// at 10^4 / 10^5 / 10^6 tuples. Every iteration verifies the resulting
// cardinality against the generator's contract (a mismatch aborts the
// benchmark), so the numbers can never come from a silently wrong
// dedup table.
//
// These microbenchmarks bound what the evaluators can gain from the
// storage layout alone: insert throughput is the fixpoint loop's floor,
// probe throughput bounds dedup, and Join covers the per-round rule
// body. Compare against bench_parallel for the end-to-end effect.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_json.h"
#include "datalog/parser.h"
#include "eval/naive.h"
#include "ra/database.h"
#include "ra/operators.h"
#include "ra/relation.h"
#include "workload/generator.h"

namespace recur::bench {
namespace {

/// Bulk load of constructively distinct rows through the checked Insert
/// path: every row probes the dedup table and misses.
void BM_Storage_Insert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ra::Relation r(2);
    r.Reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      r.Insert({i, i + 1});
    }
    if (r.size() != static_cast<size_t>(n)) {
      state.SkipWithError("insert count diverged");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_Insert)->Arg(10000)->Arg(100000)->Arg(1000000);

/// The same load through InsertUnchecked: no duplicate probe, rows still
/// enter the dedup table. The gap to BM_Storage_Insert is the probe cost.
void BM_Storage_InsertUnchecked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ra::Relation r(2);
    r.Reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      r.InsertUnchecked({i, i + 1});
    }
    if (r.size() != static_cast<size_t>(n)) {
      state.SkipWithError("insert count diverged");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_InsertUnchecked)->Arg(10000)->Arg(100000)->Arg(1000000);

/// Duplicate-heavy insert: every row is offered twice. Models the steady
/// state of a fixpoint round, where most derived tuples already exist.
void BM_Storage_InsertDuplicates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ra::Relation r(2);
    r.Reserve(static_cast<size_t>(n));
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < n; ++i) {
        r.Insert({i, i + 1});
      }
    }
    if (r.size() != static_cast<size_t>(n)) {
      state.SkipWithError("dedup diverged");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_Storage_InsertDuplicates)->Arg(10000)->Arg(100000)->Arg(1000000);

/// Membership probes, half hits and half misses, against a loaded arena.
void BM_Storage_Probe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ra::Relation r(2);
  r.Reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) r.InsertUnchecked({i, i + 1});
  for (auto _ : state) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      // Even i: present row. Odd i: absent row (second column off by one).
      if (r.Contains({i, i + 1 + (i & 1)})) ++hits;
    }
    if (hits != (n + 1) / 2) {
      state.SkipWithError("probe hit count diverged");
      return;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_Probe)->Arg(10000)->Arg(100000)->Arg(1000000);

/// Hash join of a chain with itself: n-1 two-step paths out, built
/// straight into the output arena. The column index on the probe side is
/// built once (lazily) and reused across iterations.
void BM_Storage_JoinChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  workload::Generator gen(301);
  ra::Relation edges = gen.Chain(n);
  for (auto _ : state) {
    auto paths = ra::Join(edges, edges, {{1, 0}});
    if (!paths.ok() || paths->size() != static_cast<size_t>(n - 1)) {
      state.SkipWithError("join cardinality diverged");
      return;
    }
    benchmark::DoNotOptimize(paths);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_JoinChain)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

/// Join over a random graph: duplicate output rows exercise the dedup
/// probe on the emit path. Cardinality is pinned by a first reference run.
void BM_Storage_JoinRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  workload::Generator gen(302);
  ra::Relation edges = gen.RandomGraph(n / 4, n);
  auto reference = ra::Join(edges, edges, {{1, 0}});
  if (!reference.ok()) {
    state.SkipWithError("reference join failed");
    return;
  }
  const size_t want = reference->size();
  for (auto _ : state) {
    auto paths = ra::Join(edges, edges, {{1, 0}});
    if (!paths.ok() || paths->size() != want) {
      state.SkipWithError("join cardinality diverged");
      return;
    }
    benchmark::DoNotOptimize(paths);
  }
  state.counters["out_tuples"] =
      benchmark::Counter(static_cast<double>(want));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_JoinRandom)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// The same two-atom join driven through the plan executor: a single
/// non-recursive rule P(X, Z) :- A(X, Y), A(Y, Z) evaluated to fixpoint.
/// The second argument selects the executor pipeline: 0 runs the
/// vectorized default (1024-lane register batches, Bloom-before-probe,
/// prefetch), 1 degenerates to tuple-at-a-time lanes. The gap between the
/// two at the same n is the batch pipeline's payoff with storage costs
/// held fixed — CI smokes both sides of this pair.
void BM_Storage_ExecJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t batch_rows = static_cast<size_t>(state.range(1));
  workload::Generator gen(303);
  SymbolTable symbols;
  ra::Database edb;
  auto program = datalog::ParseProgram("P(X, Z) :- A(X, Y), A(Y, Z).\n",
                                       &symbols);
  if (!program.ok()) std::abort();
  ra::Relation edges = gen.RandomGraph(n / 4, n);
  (*edb.GetOrCreate(symbols.Lookup("A"), 2))->InsertAll(edges);
  const SymbolId pred = symbols.Lookup("P");

  eval::FixpointOptions reference_options;
  auto reference = eval::NaiveEvaluate(*program, edb, reference_options);
  if (!reference.ok()) {
    state.SkipWithError("reference evaluation failed");
    return;
  }
  const size_t want = reference->at(pred).size();

  eval::FixpointOptions options;
  options.executor_batch_rows = batch_rows;
  for (auto _ : state) {
    auto idb = eval::NaiveEvaluate(*program, edb, options);
    if (!idb.ok() || idb->at(pred).size() != want) {
      state.SkipWithError("executor join cardinality diverged");
      return;
    }
    benchmark::DoNotOptimize(idb);
  }
  state.counters["tuples"] = benchmark::Counter(static_cast<double>(want));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Storage_ExecJoin)
    ->Args({10000, 0})->Args({10000, 1})
    ->Args({100000, 0})->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace recur::bench

RECUR_BENCH_MAIN("storage");
