// Reproduces Figure 1 of the paper: the I-graphs of (s1a) and (s1b).
//
// Paper: Figure 1(a) shows vertices x, y, z with the undirected edge x-z
// labeled A, the directed edge x->z and the self directed loop on y;
// Figure 1(b) shows the 5-vertex graph of the 3-D formula.

#include "artifact_util.h"

int main() {
  recur::bench::Banner("Figure 1 — I-graphs of (s1a) and (s1b)");
  int status = 0;
  status |= recur::bench::ShowIGraph("s1a", /*dot=*/true);
  status |= recur::bench::ShowIGraph("s1b", /*dot=*/true);
  return status;
}
