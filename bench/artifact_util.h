#ifndef RECUR_BENCH_ARTIFACT_UTIL_H_
#define RECUR_BENCH_ARTIFACT_UTIL_H_

// Shared helpers for the figure/table reproduction binaries in bench/.

#include <iostream>
#include <string>

#include "catalog/paper_examples.h"
#include "classify/classifier.h"
#include "datalog/parser.h"
#include "graph/render.h"
#include "graph/resolution_graph.h"
#include "util/symbol_table.h"

namespace recur::bench {

inline void Banner(const std::string& title) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "==============================================================\n";
}

/// Parses a catalog example and prints its I-graph (ASCII + DOT).
inline int ShowIGraph(const char* id, bool dot = false) {
  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample(id);
  if (example == nullptr) {
    std::cerr << "unknown example " << id << "\n";
    return 1;
  }
  auto formula = catalog::ParseExample(*example, &symbols);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    return 1;
  }
  auto ig = graph::IGraph::Build(*formula);
  if (!ig.ok()) {
    std::cerr << ig.status() << "\n";
    return 1;
  }
  std::cout << "(" << id << ")  " << formula->rule().ToString(symbols)
            << "\n"
            << graph::ToAscii(ig->graph(), symbols);
  if (dot) {
    std::cout << graph::ToDot(ig->graph(), symbols, id);
  }
  std::cout << "\n";
  return 0;
}

/// Prints the k-th resolution graph of a catalog example.
inline int ShowResolutionGraph(const char* id, int k) {
  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample(id);
  if (example == nullptr) {
    std::cerr << "unknown example " << id << "\n";
    return 1;
  }
  auto formula = catalog::ParseExample(*example, &symbols);
  if (!formula.ok()) {
    std::cerr << formula.status() << "\n";
    return 1;
  }
  auto rg = graph::ResolutionGraph::Build(*formula, k);
  if (!rg.ok()) {
    std::cerr << rg.status() << "\n";
    return 1;
  }
  std::cout << "resolution graph G_" << k << " of (" << id << "):\n"
            << graph::ToAscii(rg->graph(), symbols) << "\n";
  return 0;
}

}  // namespace recur::bench

#endif  // RECUR_BENCH_ARTIFACT_UTIL_H_
