// Reproduces §5 Example 8 and §7 Example 10: bounded ("pseudo
// recursive") formulas (s8) and (s10) expanded into equivalent finite
// non-recursive rule sets, evaluated with query constants pushed down,
// and cross-checked against semi-naive evaluation of the recursive form.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "workload/generator.h"

using namespace recur;

namespace {

int RunBounded(const char* id, std::vector<std::optional<ra::Value>> q) {
  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample(id);
  auto formula = catalog::ParseExample(*example, &symbols);
  auto exit = datalog::ParseRule(example->exit_rule, &symbols);
  if (!formula.ok() || !exit.ok()) return 1;

  auto cls = classify::Classify(*formula);
  std::cout << "(" << id << ") " << formula->rule().ToString(symbols)
            << "\n"
            << cls->Summary(symbols);

  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  if (!plan.ok()) return 1;
  std::cout << "plan: " << plan->ToString() << "\n";

  ra::Database edb;
  workload::Generator gen(31);
  for (const datalog::Atom& atom : formula->rule().body()) {
    if (atom.predicate() == formula->recursive_predicate()) continue;
    auto r = edb.GetOrCreate(atom.predicate(), atom.arity());
    if (r.ok() && (*r)->empty()) {
      (*r)->InsertAll(atom.arity() == 2 ? gen.RandomGraph(20, 50)
                                        : gen.RandomRows(atom.arity(), 20,
                                                         30));
    }
  }
  (*edb.GetOrCreate(symbols.Intern("E"), formula->dimension()))
      ->InsertAll(gen.RandomRows(formula->dimension(), 20, 50));

  eval::Query query;
  query.pred = formula->recursive_predicate();
  query.bindings = std::move(q);
  eval::CompiledEvalStats stats;
  auto answers = plan->Execute(query, edb, {}, &stats);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "query " << query.AdornmentString() << ": "
            << answers->size() << " answers in " << stats.levels
            << " bounded depths (no fixpoint iteration!)\n";

  datalog::Program program;
  program.AddRule(formula->rule());
  program.AddRule(*exit);
  auto reference = eval::SemiNaiveAnswer(program, edb, query);
  std::cout << "semi-naive agrees: "
            << (reference.ok() &&
                        reference->ToString() == answers->ToString()
                    ? "yes"
                    : "NO")
            << "\n\n";
  return 0;
}

}  // namespace

int main() {
  bench::Banner("Examples 8 & 10 — bounded formulas as finite expansions");
  int status = 0;
  status |= RunBounded(
      "s8", {ra::Value{1}, std::nullopt, std::nullopt, std::nullopt});
  status |= RunBounded("s10", {ra::Value{1}, std::nullopt});
  return status;
}
