// Reproduces Figure 4: the 1st and 2nd resolution graphs of the unbounded
// formula (s9), plus the two compiled plans of Example 9:
//   P(d,v,v):  σE, (σA) × (∪_k [(E ⋈ B)(BA)^k])
//   P(v,v,d):  σE, (∃ ∪_k [(AB)^k (E ⋈ B)]) A

#include "artifact_util.h"
#include "transform/compiled_expr.h"

using namespace recur;
using transform::CompiledExpr;

int main() {
  bench::Banner("Figure 4 — resolution graphs of (s9), class C plans");
  bench::ShowIGraph("s9");
  bench::ShowResolutionGraph("s9", 1);
  bench::ShowResolutionGraph("s9", 2);

  CompiledExpr plan1 = CompiledExpr::Sequence(
      {CompiledExpr::Select(CompiledExpr::Relation("E")),
       CompiledExpr::Product(
           CompiledExpr::Select(CompiledExpr::Relation("A")),
           CompiledExpr::UnionK(CompiledExpr::JoinChain(
               {CompiledExpr::JoinChain({CompiledExpr::Relation("E"),
                                         CompiledExpr::Relation("B")}),
                CompiledExpr::Power(CompiledExpr::Relation("BA"))})))});
  CompiledExpr plan2 = CompiledExpr::Sequence(
      {CompiledExpr::Select(CompiledExpr::Relation("E")),
       CompiledExpr::JoinChain(
           {CompiledExpr::Exists(CompiledExpr::UnionK(
                CompiledExpr::JoinChain(
                    {CompiledExpr::Power(CompiledExpr::Relation("AB")),
                     CompiledExpr::JoinChain(
                         {CompiledExpr::Relation("E"),
                          CompiledExpr::Relation("B")})}))),
            CompiledExpr::Relation("A")})});
  std::cout << "plan for P(d,v,v): " << plan1.ToString() << "\n";
  std::cout << "plan for P(v,v,d): " << plan2.ToString() << "\n";
  std::cout << "(executed by eval::S9PlanBoundFirst / S9PlanBoundThird; "
               "see bench_unbounded for measurements)\n";
  return 0;
}
