// PERF8 — overhead of the resource-governance layer: transitive closure
// with generous (never-breached) limits versus the ungoverned fixpoint, at
// 1 and 4 threads. Governance adds one atomic load plus a clock read per
// round and a footprint walk after each merge, so the governed/ungoverned
// ratio should be indistinguishable from noise on any non-trivial EDB;
// this benchmark exists to catch a regression that puts a check on a
// per-tuple path. Result cardinality is verified every iteration.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_json.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "workload/generator.h"

namespace recur::bench {
namespace {

struct Closure {
  SymbolTable symbols;
  ra::Database edb;
  datalog::Program program;
  SymbolId pred;
  size_t expected = 0;
};

std::unique_ptr<Closure> MakeClosure(const ra::Relation& edges) {
  auto c = std::make_unique<Closure>();
  auto program = datalog::ParseProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n",
      &c->symbols);
  if (!program.ok()) std::abort();
  c->program = *program;
  c->pred = c->symbols.Lookup("P");
  auto rel = c->edb.GetOrCreate(c->symbols.Lookup("A"), 2);
  if (!rel.ok()) std::abort();
  (*rel)->InsertAll(edges);
  auto reference = eval::SemiNaiveEvaluate(c->program, c->edb);
  if (!reference.ok()) std::abort();
  c->expected = reference->at(c->pred).size();
  return c;
}

void RunFixpoint(benchmark::State& state, Closure* c, bool governed) {
  eval::FixpointOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  if (governed) {
    // Generous enough that no run ever trips them: the benchmark measures
    // pure polling overhead, not early exit.
    options.limits.deadline_seconds = 3600.0;
    options.limits.max_total_tuples = size_t{1} << 40;
    options.limits.max_arena_bytes = size_t{1} << 40;
  }
  for (auto _ : state) {
    auto idb = eval::SemiNaiveEvaluate(c->program, c->edb, options);
    if (!idb.ok()) {
      state.SkipWithError(idb.status().ToString().c_str());
      return;
    }
    if (idb->at(c->pred).size() != c->expected) {
      state.SkipWithError("cardinality mismatch under governance");
      return;
    }
    benchmark::DoNotOptimize(idb->at(c->pred).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c->expected));
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(options.num_threads));
}

void BM_Ungoverned_RandomGraph(benchmark::State& state) {
  workload::Generator gen(101);
  auto c = MakeClosure(gen.RandomGraph(2000, 8000));
  RunFixpoint(state, c.get(), /*governed=*/false);
}
BENCHMARK(BM_Ungoverned_RandomGraph)->Arg(1)->Arg(4);

void BM_Governed_RandomGraph(benchmark::State& state) {
  workload::Generator gen(101);
  auto c = MakeClosure(gen.RandomGraph(2000, 8000));
  RunFixpoint(state, c.get(), /*governed=*/true);
}
BENCHMARK(BM_Governed_RandomGraph)->Arg(1)->Arg(4);

void BM_Ungoverned_Chain(benchmark::State& state) {
  workload::Generator gen(102);
  auto c = MakeClosure(gen.Chain(400));
  RunFixpoint(state, c.get(), /*governed=*/false);
}
BENCHMARK(BM_Ungoverned_Chain)->Arg(1)->Arg(4);

void BM_Governed_Chain(benchmark::State& state) {
  // Chain is the worst case for per-round overhead: many rounds, tiny
  // deltas, so the governance checks are maximally frequent relative to
  // useful work.
  workload::Generator gen(102);
  auto c = MakeClosure(gen.Chain(400));
  RunFixpoint(state, c.get(), /*governed=*/true);
}
BENCHMARK(BM_Governed_Chain)->Arg(1)->Arg(4);

}  // namespace
}  // namespace recur::bench

RECUR_BENCH_MAIN("governance");
