// Reproduces §9 Example 11: executes the plan for the dependent formula
// (s11), query P(d, v), and cross-checks semi-naive evaluation.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  bench::Banner("Example 11 — executing the (s11) dependent-cycle plan");

  SymbolTable symbols;
  ra::Database edb;
  workload::Generator gen(78);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))
      ->InsertAll(gen.RandomGraph(20, 50));
  (*edb.GetOrCreate(symbols.Intern("B"), 2))
      ->InsertAll(gen.RandomGraph(20, 50));
  (*edb.GetOrCreate(symbols.Intern("C"), 2))
      ->InsertAll(gen.RandomGraph(20, 80));
  (*edb.GetOrCreate(symbols.Intern("E"), 2))
      ->InsertAll(gen.RandomGraph(20, 30));

  auto program = datalog::ParseProgram(
      "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).\n"
      "P(X, Y) :- E(X, Y).\n",
      &symbols);
  if (!program.ok()) return 1;

  bool all_agree = true;
  for (ra::Value d : {0, 1, 5, 9}) {
    eval::EvalStats stats;
    auto answers = eval::S11Plan(edb, symbols, d, &stats);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return 1;
    }
    eval::Query q;
    q.pred = symbols.Lookup("P");
    q.bindings = {d, std::nullopt};
    auto reference = eval::SemiNaiveAnswer(*program, edb, q);
    bool agree =
        reference.ok() && reference->ToString() == answers->ToString();
    all_agree = all_agree && agree;
    std::cout << "P(" << d << ",v): " << answers->size() << " answers ("
              << stats.iterations
              << " pair-walk rounds); semi-naive agrees: "
              << (agree ? "yes" : "NO") << "\n";
  }
  std::cout << "(the dependent pair (x_i, y_i) walks through {A ∥ B}-C in "
               "lock step, exactly as the resolution graph prescribes)\n";
  return all_agree ? 0 : 1;
}
