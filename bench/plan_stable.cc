// Reproduces §4.1 Example 3: the compiled formula and query evaluation
// plan for the stable formula (s3) and the query P(a, b, Z), then runs the
// plan on a small database and cross-checks semi-naive evaluation.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  bench::Banner("Example 3 — compiled formula and plan for (s3), P(a,b,Z)");
  bench::ShowIGraph("s3");

  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample("s3");
  auto formula = catalog::ParseExample(*example, &symbols);
  auto exit = datalog::ParseRule(example->exit_rule, &symbols);
  if (!formula.ok() || !exit.ok()) return 1;

  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::cout << "compiled formula / plan: " << plan->ToString() << "\n";
  std::cout << "(each position's chain iterates independently in lock "
               "step and the frontiers join the exit relation — the σA^k "
               "/ σB^k branches of the paper's plan)\n\n";

  // Demo database: three layered DAGs and an exit relation spanning them.
  ra::Database edb;
  workload::Generator gen(5);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))
      ->InsertAll(gen.LayeredDag(5, 4, 2, 0));
  (*edb.GetOrCreate(symbols.Intern("B"), 2))
      ->InsertAll(gen.LayeredDag(5, 4, 2, 1000));
  (*edb.GetOrCreate(symbols.Intern("C"), 2))
      ->InsertAll(gen.LayeredDag(5, 4, 2, 2000));
  ra::Relation* e = *edb.GetOrCreate(symbols.Intern("E"), 3);
  workload::Generator gen2(6);
  ra::Relation raw = gen2.RandomRows(3, 20, 60);
  for (ra::TupleRef t : raw.rows()) {
    e->Insert({t[0], 1000 + t[1], 2000 + t[2]});
  }

  eval::Query query;
  query.pred = symbols.Lookup("P");
  query.bindings = {ra::Value{0}, ra::Value{1000}, std::nullopt};
  eval::CompiledEvalStats stats;
  auto answers = plan->Execute(query, edb, {}, &stats);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return 1;
  }
  std::cout << "P(0, 1000, Z) = " << answers->ToString() << "\n"
            << "levels: " << stats.levels
            << ", mode: synchronized chains\n";

  datalog::Program program;
  program.AddRule(formula->rule());
  program.AddRule(*exit);
  auto reference = eval::SemiNaiveAnswer(program, edb, query);
  std::cout << "semi-naive agrees: "
            << (reference.ok() &&
                        reference->ToString() == answers->ToString()
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}
