// Reproduces §6 Example 9: executes the paper's two plans for the
// unbounded formula (s9) — the Cartesian-product plan for P(d,v,v) and
// the existence-checking plan for P(v,v,d) — and cross-checks both
// against semi-naive evaluation.

#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "workload/generator.h"

using namespace recur;

int main() {
  bench::Banner("Example 9 — executing the (s9) plans");

  SymbolTable symbols;
  ra::Database edb;
  workload::Generator gen(77);
  (*edb.GetOrCreate(symbols.Intern("A"), 2))
      ->InsertAll(gen.RandomGraph(25, 60));
  (*edb.GetOrCreate(symbols.Intern("B"), 2))
      ->InsertAll(gen.RandomGraph(25, 60));
  (*edb.GetOrCreate(symbols.Intern("E"), 3))
      ->InsertAll(gen.RandomRows(3, 25, 80));

  datalog::Program program;
  {
    auto parsed = datalog::ParseProgram(
        "P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).\n"
        "P(X, Y, Z) :- E(X, Y, Z).\n",
        &symbols);
    if (!parsed.ok()) return 1;
    program = *parsed;
  }

  // P(d, v, v): σE, (σA) × (∪_k [(E ⋈ B)(BA)^k]).
  ra::Value d = 3;
  eval::EvalStats stats1;
  auto a1 = eval::S9PlanBoundFirst(edb, symbols, d, &stats1);
  if (!a1.ok()) {
    std::cerr << a1.status() << "\n";
    return 1;
  }
  eval::Query q1;
  q1.pred = symbols.Lookup("P");
  q1.bindings = {d, std::nullopt, std::nullopt};
  auto r1 = eval::SemiNaiveAnswer(program, edb, q1);
  std::cout << "P(" << d << ",v,v): " << a1->size() << " answers, "
            << stats1.iterations << " chain iterations; semi-naive agrees: "
            << (r1.ok() && r1->ToString() == a1->ToString() ? "yes" : "NO")
            << "\n";

  // P(v, v, d): σE, (∃ ∪_k [(AB)^k (E ⋈ B)]) A.
  eval::EvalStats stats2;
  auto a2 = eval::S9PlanBoundThird(edb, symbols, d, &stats2);
  if (!a2.ok()) {
    std::cerr << a2.status() << "\n";
    return 1;
  }
  eval::Query q2;
  q2.pred = symbols.Lookup("P");
  q2.bindings = {std::nullopt, std::nullopt, d};
  auto r2 = eval::SemiNaiveAnswer(program, edb, q2);
  std::cout << "P(v,v," << d << "): " << a2->size() << " answers, "
            << stats2.iterations
            << " existence-check rounds; semi-naive agrees: "
            << (r2.ok() && r2->ToString() == a2->ToString() ? "yes" : "NO")
            << "\n";
  std::cout << "(the existence check short-circuits: once a witness "
               "depth is found, every tuple of A answers the query)\n";
  return 0;
}
