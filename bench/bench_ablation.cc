// ABL1 — ablations of the compiled evaluator's design choices (DESIGN.md
// §5):
//   1. Horner backward fold vs the paper's level-wise chain powers
//      (O(K) vs O(K^2) column joins) on the two-chain formula (s2a).
//   2. Exact dedup modes (forward BFS) vs forced synchronized iteration
//      on the one-chain formula (s1a).

#include <benchmark/benchmark.h>

#include "perf_util.h"

namespace recur::bench {
namespace {

/// (s2a) over two long chains with exit pairs at every depth, so the
/// number of levels K scales with the data and the Horner/level-wise gap
/// shows.
std::unique_ptr<Workbench> MakeDeep(int64_t depth) {
  auto w = MakeWorkbench("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).",
                              "P(X, Y) :- E(X, Y).");
  workload::Generator gen(701);
  int d = static_cast<int>(depth);
  w->Rel("A", 2)->InsertAll(gen.Chain(d, 0));
  w->Rel("B", 2)->InsertAll(gen.Chain(d, 1000000));
  // A fat exit: every level's join produces a batch of rows, so the
  // level-wise plan pays its k chain re-applications on real data.
  ra::Relation* e = w->Rel("E", 2);
  for (int i = 0; i <= d; ++i) {
    for (int j = 0; j < 16; ++j) {
      e->Insert({i, 1000000 + (i >= j ? i - j : 0)});
    }
  }
  return w;
}

void BM_Ablation_Horner(benchmark::State& state) {
  auto w = MakeDeep(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  eval::CompiledEvalOptions options;
  options.free_mode = eval::FreeMode::kHorner;
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb, options);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("O(K) backward fold");
}
BENCHMARK(BM_Ablation_Horner)->Arg(32)->Arg(128)->Arg(512);

void BM_Ablation_Levelwise(benchmark::State& state) {
  auto w = MakeDeep(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  eval::CompiledEvalOptions options;
  options.free_mode = eval::FreeMode::kLevelwise;
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb, options);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("O(K^2) paper-literal chain powers");
}
BENCHMARK(BM_Ablation_Levelwise)->Arg(32)->Arg(128)->Arg(512);

/// (s1a) over a DAG with layer-skipping edges: nodes are reachable at many
/// different depths, so the forced synchronized mode re-derives them level
/// after level while the BFS visits each once.
std::unique_ptr<Workbench> MakeWide(int64_t n) {
  auto w = MakeWorkbench("P(X, Y) :- A(X, Z), P(Z, Y).",
                              "P(X, Y) :- E(X, Y).");
  workload::Generator gen(702);
  int width = 16;
  int layers = static_cast<int>(n) / width;
  ra::Relation* a = w->Rel("A", 2);
  a->InsertAll(gen.LayeredDag(layers, width, 3));
  for (int layer = 0; layer + 2 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      a->Insert({static_cast<int64_t>(layer) * width + i,
                 static_cast<int64_t>(layer + 2) * width +
                     (i * 7 + 3) % width});
    }
  }
  w->Rel("E", 2)->InsertAll(gen.LayeredDag(layers, width, 3));
  return w;
}

void BM_Ablation_DedupBfs(benchmark::State& state) {
  auto w = MakeWide(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("forward BFS with visited set");
}
BENCHMARK(BM_Ablation_DedupBfs)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Ablation_DedupOff(benchmark::State& state) {
  auto w = MakeWide(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{0}, std::nullopt});
  eval::CompiledEvalOptions options;
  options.allow_dedup = false;
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb, options);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("forced synchronized frontiers");
}
BENCHMARK(BM_Ablation_DedupOff)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
