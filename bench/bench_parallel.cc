// PERF7 — the parallel semi-naive engine: transitive closure over Chain,
// Grid, and RandomGraph EDBs at 1/2/4/8 threads. Every thread count must
// produce the same result cardinality (checked each iteration; a mismatch
// aborts the benchmark), so this doubles as a stress harness for the
// sharded evaluation and concurrent dedup paths.
//
// Expected shape on multi-core hardware: >= 2x at 4 threads over 1 thread
// on the RandomGraph workloads, whose per-round deltas are wide enough to
// shard well. On a single hardware thread the ratios collapse to ~1x and
// only the engine overhead is visible. The biggest preset
// (RandomGraph/50000x200000, single-source) is tagged with
// MinTime so casual runs stay short; use
// `bench_parallel --benchmark_min_time=...` to push it harder.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_json.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "workload/generator.h"

namespace recur::bench {
namespace {

struct Closure {
  SymbolTable symbols;
  ra::Database edb;
  datalog::Program program;
  SymbolId pred;
};

/// Transitive-closure program over edge relation A (also the exit).
std::unique_ptr<Closure> MakeClosure(const ra::Relation& edges) {
  auto c = std::make_unique<Closure>();
  auto program = datalog::ParseProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n",
      &c->symbols);
  if (!program.ok()) std::abort();
  c->program = *program;
  c->pred = c->symbols.Lookup("P");
  auto rel = c->edb.GetOrCreate(c->symbols.Lookup("A"), 2);
  if (!rel.ok()) std::abort();
  (*rel)->InsertAll(edges);
  return c;
}

/// Runs the fixpoint at state.range(0) threads and verifies the result
/// cardinality against the single-threaded engine (computed once).
void RunClosure(benchmark::State& state, Closure* c, bool plan_cache = true,
                size_t batch_rows = 0) {
  static_assert(sizeof(size_t) >= 8, "cardinalities fit");
  eval::FixpointOptions serial;
  auto reference = eval::SemiNaiveEvaluate(c->program, c->edb, serial);
  if (!reference.ok()) {
    state.SkipWithError("serial evaluation failed");
    return;
  }
  const size_t want = reference->at(c->pred).size();

  eval::FixpointOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.plan_cache = plan_cache;
  options.executor_batch_rows = batch_rows;
  size_t tuples = 0;
  for (auto _ : state) {
    auto idb = eval::SemiNaiveEvaluate(c->program, c->edb, options);
    if (!idb.ok()) {
      state.SkipWithError("parallel evaluation failed");
      return;
    }
    tuples = idb->at(c->pred).size();
    if (tuples != want) {
      state.SkipWithError("result cardinality diverged across threads");
      return;
    }
    benchmark::DoNotOptimize(idb);
  }
  state.counters["tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(options.num_threads));
}

void BM_Parallel_TC_Chain(benchmark::State& state) {
  workload::Generator gen(201);
  auto c = MakeClosure(gen.Chain(512));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_Chain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_Grid(benchmark::State& state) {
  workload::Generator gen(202);
  auto c = MakeClosure(gen.Grid(40, 40));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_Grid)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_RandomGraph(benchmark::State& state) {
  workload::Generator gen(203);
  // Subcritical density: the closure stays far from the n^2 blowup a
  // giant strongly connected component would cause, while the per-round
  // deltas are wide enough to shard across workers.
  auto c = MakeClosure(gen.RandomGraph(4000, 4400));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_RandomGraph)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// The acceptance-scale workload: 50k nodes / 200k edges. A full closure
/// there would hold billions of tuples (the graph is supercritical), so
/// the recursion is anchored at source nodes via an exit relation that
/// only seeds edges leaving [0, 32) — single-source-style reachability at
/// full EDB scale.
void BM_Parallel_Reach_RandomGraph50k(benchmark::State& state) {
  workload::Generator gen(204);
  SymbolTable symbols;
  ra::Database edb;
  auto program = datalog::ParseProgram(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- P(X, Z), A(Z, Y).\n",
      &symbols);
  if (!program.ok()) std::abort();
  ra::Relation edges = gen.RandomGraph(50000, 200000);
  ra::Relation seeds(2);
  for (ra::TupleRef t : edges.rows()) {
    if (t[0] < 32) seeds.Insert(t);
  }
  (*edb.GetOrCreate(symbols.Lookup("A"), 2))->InsertAll(edges);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(seeds);
  SymbolId pred = symbols.Lookup("P");

  auto reference = eval::SemiNaiveEvaluate(*program, edb);
  if (!reference.ok()) {
    state.SkipWithError("serial evaluation failed");
    return;
  }
  const size_t want = reference->at(pred).size();

  eval::FixpointOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto idb = eval::SemiNaiveEvaluate(*program, edb, options);
    if (!idb.ok() || idb->at(pred).size() != want) {
      state.SkipWithError("parallel evaluation diverged");
      return;
    }
    benchmark::DoNotOptimize(idb);
  }
  state.counters["tuples"] = benchmark::Counter(static_cast<double>(want));
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(options.num_threads));
}
BENCHMARK(BM_Parallel_Reach_RandomGraph50k)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

// Plan-cache ablation: the same closure fixpoints with the per-run plan
// cache disabled, so every (rule, delta position) evaluation replans from
// the current cardinalities. The gap to the cached series at the same
// thread count is the payoff of compiling each plan once per fixpoint.
void BM_Parallel_TC_Chain_NoPlanCache(benchmark::State& state) {
  workload::Generator gen(201);
  auto c = MakeClosure(gen.Chain(512));
  RunClosure(state, c.get(), /*plan_cache=*/false);
}
BENCHMARK(BM_Parallel_TC_Chain_NoPlanCache)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_Grid_NoPlanCache(benchmark::State& state) {
  workload::Generator gen(202);
  auto c = MakeClosure(gen.Grid(40, 40));
  RunClosure(state, c.get(), /*plan_cache=*/false);
}
BENCHMARK(BM_Parallel_TC_Grid_NoPlanCache)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_RandomGraph_NoPlanCache(benchmark::State& state) {
  workload::Generator gen(203);
  auto c = MakeClosure(gen.RandomGraph(4000, 4400));
  RunClosure(state, c.get(), /*plan_cache=*/false);
}
BENCHMARK(BM_Parallel_TC_RandomGraph_NoPlanCache)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Vectorization ablation: the same closures with executor_batch_rows=1,
// which degenerates the batch executor to tuple-at-a-time processing (one
// lane per register batch — no columnar gathers, no batched hashing, no
// Bloom-before-probe, no prefetch). Single-threaded only, so the gap to the
// Arg(1) rows of the vectorized series isolates the batch pipeline's
// payoff. Run with --benchmark_filter='Vector' and RECUR_BENCH_SUITE=vector
// to emit the BENCH_vector.json ablation artifact.
void BM_Parallel_TC_Chain_NoVector(benchmark::State& state) {
  workload::Generator gen(201);
  auto c = MakeClosure(gen.Chain(512));
  RunClosure(state, c.get(), /*plan_cache=*/true, /*batch_rows=*/1);
}
BENCHMARK(BM_Parallel_TC_Chain_NoVector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_Grid_NoVector(benchmark::State& state) {
  workload::Generator gen(202);
  auto c = MakeClosure(gen.Grid(40, 40));
  RunClosure(state, c.get(), /*plan_cache=*/true, /*batch_rows=*/1);
}
BENCHMARK(BM_Parallel_TC_Grid_NoVector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_RandomGraph_NoVector(benchmark::State& state) {
  workload::Generator gen(203);
  auto c = MakeClosure(gen.RandomGraph(4000, 4400));
  RunClosure(state, c.get(), /*plan_cache=*/true, /*batch_rows=*/1);
}
BENCHMARK(BM_Parallel_TC_RandomGraph_NoVector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The vectorized counterparts under Vector-filterable names, so the
// ablation artifact carries both sides of the comparison without rerunning
// the whole pipeline suite.
void BM_Parallel_TC_Chain_Vector(benchmark::State& state) {
  workload::Generator gen(201);
  auto c = MakeClosure(gen.Chain(512));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_Chain_Vector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_Grid_Vector(benchmark::State& state) {
  workload::Generator gen(202);
  auto c = MakeClosure(gen.Grid(40, 40));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_Grid_Vector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel_TC_RandomGraph_Vector(benchmark::State& state) {
  workload::Generator gen(203);
  auto c = MakeClosure(gen.RandomGraph(4000, 4400));
  RunClosure(state, c.get());
}
BENCHMARK(BM_Parallel_TC_RandomGraph_Vector)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace recur::bench

RECUR_BENCH_MAIN("pipeline");
