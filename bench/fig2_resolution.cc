// Reproduces Figure 2: the I-graph of (s2a), the renumbered second
// I-graph, the second resolution graph G_2 obtained by appending it, and
// the accumulated weight 2 from x to z1 that the paper highlights in
// Figure 2(c).

#include "artifact_util.h"
#include "catalog/paper_examples.h"
#include "datalog/expansion.h"

using namespace recur;

int main() {
  bench::Banner("Figure 2 — resolution graphs of (s2a)");
  SymbolTable symbols;
  auto formula =
      catalog::ParseExample(*catalog::FindExample("s2a"), &symbols);
  if (!formula.ok()) return 1;

  std::cout << "(a) I-graph:\n";
  bench::ShowIGraph("s2a");

  std::cout << "(b) renumbered second I-graph comes from the expansion\n";
  auto e2 = datalog::Expand(*formula, 2, &symbols);
  if (e2.ok()) {
    std::cout << "    (s2c) " << e2->ToString(symbols) << "\n\n";
  }

  std::cout << "(c) second resolution graph G_2 (arrows retained):\n";
  bench::ShowResolutionGraph("s2a", 2);

  auto rg = graph::ResolutionGraph::Build(*formula, 2);
  if (rg.ok()) {
    int x = rg->graph().FindVertex(symbols.Lookup("X"), 0);
    int z1 = rg->FrontierVertex(0);
    bool found = false;
    int w = rg->DirectedPathWeight(x, z1, &found);
    std::cout << "accumulated weight from x to z1: " << w
              << (found ? "" : " (no path!)")
              << "   (paper: \"the weight from x to z1 is two\")\n";
  }
  return 0;
}
