// Reproduces Figure 3: the I-graph of the bounded formula (s8), the zero
// weight of its multi-directional cycle, and the Ioannidis rank bound 2
// (the maximum path weight), together with the equivalent non-recursive
// rules (s8a') and (s8b').

#include "artifact_util.h"
#include "classify/boundedness.h"
#include "datalog/parser.h"
#include "transform/bounded_expand.h"

using namespace recur;

int main() {
  bench::Banner("Figure 3 — bounded cycle of (s8), Ioannidis bound");
  bench::ShowIGraph("s8");

  SymbolTable symbols;
  auto formula =
      catalog::ParseExample(*catalog::FindExample("s8"), &symbols);
  if (!formula.ok()) return 1;
  auto cls = classify::Classify(*formula);
  if (!cls.ok()) return 1;
  std::cout << cls->Summary(symbols) << "\n";

  auto info = classify::IoannidisBound(*formula);
  if (info.ok()) {
    std::cout << "Ioannidis bound: rank <= " << info->rank_bound
              << "   (paper: upper bound 2)\n\n";
  }

  auto exit = datalog::ParseRule(
      catalog::FindExample("s8")->exit_rule, &symbols);
  auto bf = transform::ExpandBounded(*formula, *exit, &symbols);
  if (bf.ok()) {
    std::cout << "equivalent non-recursive rules:\n";
    for (const datalog::Rule& r : bf->rules) {
      std::cout << "  " << r.ToString(symbols) << "\n";
    }
  }
  return 0;
}
