// Reproduces the paper's de-facto results table: the §3 classification
// applied to every running example (s1a)-(s12), including the properties
// the paper states per example — strong stability (Theorem 1),
// transformability and unfold count (Theorems 2/4, Examples 4-7),
// boundedness and rank bounds (Ioannidis's theorem, Theorems 10/11,
// Examples 5, 6, 8, 10) — plus the execution strategy our plan generator
// picks per class.

#include <cstdio>
#include <iostream>

#include "artifact_util.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"

using namespace recur;

int main() {
  bench::Banner(
      "Classification of the paper's examples (paper expectation in "
      "brackets)");
  std::printf("%-5s %-6s %-7s %-12s %-10s %-22s\n", "id", "class",
              "stable", "transform(L)", "bounded", "strategy");
  std::printf("%s\n", std::string(70, '-').c_str());

  bool all_match = true;
  for (const catalog::PaperExample& e : catalog::PaperExamples()) {
    SymbolTable symbols;
    auto formula = catalog::ParseExample(e, &symbols);
    if (!formula.ok()) {
      std::cerr << e.id << ": " << formula.status() << "\n";
      return 1;
    }
    auto cls = classify::Classify(*formula);
    if (!cls.ok()) {
      std::cerr << e.id << ": " << cls.status() << "\n";
      return 1;
    }
    auto exit = datalog::ParseRule(e.exit_rule, &symbols);
    eval::PlanGenerator generator(&symbols);
    auto plan = generator.Plan(*formula, *exit);

    char transform[32];
    if (cls->transformable_to_stable) {
      std::snprintf(transform, sizeof(transform), "yes (L=%d)",
                    cls->unfold_count);
    } else {
      std::snprintf(transform, sizeof(transform), "no");
    }
    char bounded[32];
    if (cls->bounded) {
      std::snprintf(bounded, sizeof(bounded), "rank<=%d", cls->rank_bound);
    } else {
      std::snprintf(bounded, sizeof(bounded), "no");
    }
    bool match = cls->formula_class == e.expected_class &&
                 cls->strongly_stable == e.strongly_stable &&
                 cls->transformable_to_stable == e.transformable &&
                 cls->bounded == e.bounded &&
                 (!e.transformable || cls->unfold_count == e.unfold_count) &&
                 (!e.bounded || cls->rank_bound == e.rank_bound);
    all_match = all_match && match;
    std::printf("%-5s %-6s %-7s %-12s %-10s %-22s [%s]%s\n", e.id,
                ToString(cls->formula_class),
                cls->strongly_stable ? "yes" : "no", transform, bounded,
                plan.ok() ? ToString(plan->strategy()) : "-",
                ToString(e.expected_class), match ? "" : "  << MISMATCH");
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::cout << (all_match ? "all examples match the paper's classification"
                          : "MISMATCHES FOUND")
            << "\n\nper-example notes:\n";
  for (const catalog::PaperExample& e : catalog::PaperExamples()) {
    std::cout << "  " << e.id << ": " << e.notes << "\n";
  }
  return all_match ? 0 : 1;
}
