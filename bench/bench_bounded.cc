// PERF3 — bounded formulas (classes B and D): the compiled bounded
// expansion evaluates a constant number of conjunctive queries with the
// query constants pushed down, while semi-naive iterates the fixpoint
// (which, per Ioannidis, converges after rank+1 rounds but still
// materializes everything). Formulas: (s8) and (s10).

#include <benchmark/benchmark.h>

#include "perf_util.h"

namespace recur::bench {
namespace {

std::unique_ptr<Workbench> MakeS8(int64_t n) {
  auto w = MakeWorkbench(
      "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), P(Z, Y1, Z1, U1).",
      "P(X, Y, Z, U) :- E(X, Y, Z, U).");
  workload::Generator gen(301);
  int domain = static_cast<int>(n);
  w->Rel("A", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("B", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("C", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("E", 4)->InsertAll(gen.RandomRows(4, domain, 2 * domain));
  return w;
}

void BM_Bounded_S8_Compiled(benchmark::State& state) {
  auto w = MakeS8(state.range(0));
  eval::Query q = w->MakeQuery(
      {ra::Value{1}, std::nullopt, std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("3 bounded depths, selection pushed");
}
BENCHMARK(BM_Bounded_S8_Compiled)->Arg(64)->Arg(256)->Arg(1024);

void BM_Bounded_S8_SemiNaive(benchmark::State& state) {
  auto w = MakeS8(state.range(0));
  eval::Query q = w->MakeQuery(
      {ra::Value{1}, std::nullopt, std::nullopt, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select");
}
BENCHMARK(BM_Bounded_S8_SemiNaive)->Arg(64)->Arg(256)->Arg(1024);

std::unique_ptr<Workbench> MakeS10(int64_t n) {
  auto w = MakeWorkbench("P(X, Y) :- B(Y), C(X, Y1), P(X1, Y1).",
                              "P(X, Y) :- E(X, Y).");
  workload::Generator gen(302);
  int domain = static_cast<int>(n);
  ra::Relation b(1);
  for (int i = 0; i < domain; i += 2) b.Insert({i});
  w->Rel("B", 1)->InsertAll(b);
  w->Rel("C", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  w->Rel("E", 2)->InsertAll(gen.RandomGraph(domain, 2 * domain));
  return w;
}

void BM_Bounded_S10_Compiled(benchmark::State& state) {
  auto w = MakeS10(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{1}, std::nullopt});
  for (auto _ : state) {
    auto answers = w->plan.Execute(q, w->edb);
    if (!answers.ok()) state.SkipWithError("execute failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("bounded depths 0..2");
}
BENCHMARK(BM_Bounded_S10_Compiled)->Arg(64)->Arg(256)->Arg(1024);

void BM_Bounded_S10_SemiNaive(benchmark::State& state) {
  auto w = MakeS10(state.range(0));
  eval::Query q = w->MakeQuery({ra::Value{1}, std::nullopt});
  for (auto _ : state) {
    auto answers = eval::SemiNaiveAnswer(w->program, w->edb, q);
    if (!answers.ok()) state.SkipWithError("seminaive failed");
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("fixpoint + select");
}
BENCHMARK(BM_Bounded_S10_SemiNaive)->Arg(64)->Arg(256);

}  // namespace
}  // namespace recur::bench

BENCHMARK_MAIN();
