#ifndef RECUR_BENCH_BENCH_JSON_H_
#define RECUR_BENCH_BENCH_JSON_H_

// Machine-readable benchmark artifacts. JsonArtifactReporter wraps the
// normal console table and additionally writes BENCH_<suite>.json — one
// record per run with {benchmark, workload, threads, wall_seconds,
// tuples_per_sec} — so CI and the evaluation docs can diff runs without
// scraping stdout. RECUR_BENCH_JSON_DIR overrides the output directory
// (default: the current working directory); RECUR_BENCH_SUITE overrides
// the suite name, so one binary can emit differently named artifacts for
// filtered runs (e.g. the vectorization ablation writes BENCH_vector.json
// from the same bench_parallel executable). RECUR_BENCH_APPEND=1 folds the
// new records into an existing artifact instead of truncating it, so runs
// of several binaries can share one suite file.
//
// Use RECUR_BENCH_MAIN(suite) in place of BENCHMARK_MAIN().

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace recur::bench {

class JsonArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonArtifactReporter(std::string suite)
      : suite_(std::move(suite)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      records_.push_back(ToRecord(run));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const char* dir = std::getenv("RECUR_BENCH_JSON_DIR");
    const char* suite_env = std::getenv("RECUR_BENCH_SUITE");
    const std::string suite =
        (suite_env != nullptr && suite_env[0] != '\0') ? suite_env : suite_;
    const std::string path = (dir != nullptr ? std::string(dir) + "/" : "") +
                             "BENCH_" + suite + ".json";
    const char* append = std::getenv("RECUR_BENCH_APPEND");
    if (append != nullptr && append[0] == '1') {
      // Re-read the records we wrote last time (the format is our own:
      // one "  {...}" line per record between the bracket lines) and
      // prepend them, so several binaries can contribute to one artifact.
      std::ifstream in(path);
      std::string line;
      std::vector<std::string> prior;
      while (std::getline(in, line)) {
        const size_t open = line.find('{');
        if (open == std::string::npos) continue;
        size_t close = line.rfind('}');
        if (close == std::string::npos || close < open) continue;
        prior.push_back(line.substr(open, close - open + 1));
      }
      records_.insert(records_.begin(), prior.begin(), prior.end());
    }
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    out << "[\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "  " << records_[i] << (i + 1 < records_.size() ? "," : "")
          << "\n";
    }
    out << "]\n";
  }

 private:
  std::string ToRecord(const Run& run) const {
    const std::string name = run.benchmark_name();
    // The workload is the benchmark family: the name up to the first
    // argument separator ("BM_Parallel_TC_Chain/4" -> "BM_Parallel_TC_Chain").
    const std::string workload = name.substr(0, name.find('/'));
    const double wall_seconds =
        run.iterations > 0
            ? run.real_accumulated_time / static_cast<double>(run.iterations)
            : run.real_accumulated_time;
    // Engine benchmarks report worker threads via a "threads" counter;
    // everything else is single-threaded (benchmark-level run.threads).
    double threads = static_cast<double>(run.threads);
    if (auto it = run.counters.find("threads"); it != run.counters.end()) {
      threads = it->second.value;
    }
    // Throughput: a "tuples" counter holds the result cardinality per
    // iteration; SetItemsProcessed surfaces as the already-finalized
    // "items_per_second" rate counter.
    double tuples_per_sec = 0.0;
    if (auto it = run.counters.find("tuples"); it != run.counters.end()) {
      if (wall_seconds > 0.0) tuples_per_sec = it->second.value / wall_seconds;
    } else if (auto rate = run.counters.find("items_per_second");
               rate != run.counters.end()) {
      tuples_per_sec = rate->second.value;
    }
    // Names pass through util::JsonEscape so a benchmark name with quotes
    // or control characters still yields a valid document (round-trip
    // tested in tests/json_test.cc).
    char numeric[160];
    std::snprintf(numeric, sizeof(numeric),
                  "\"threads\": %d, \"wall_seconds\": %.6f, "
                  "\"tuples_per_sec\": %.1f",
                  static_cast<int>(threads), wall_seconds, tuples_per_sec);
    return "{\"benchmark\": \"" + util::JsonEscape(name) +
           "\", \"workload\": \"" + util::JsonEscape(workload) + "\", " +
           numeric + "}";
  }

  std::string suite_;
  std::vector<std::string> records_;
};

}  // namespace recur::bench

#define RECUR_BENCH_MAIN(suite)                                   \
  int main(int argc, char** argv) {                               \
    benchmark::Initialize(&argc, argv);                           \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1;                                                   \
    }                                                             \
    recur::bench::JsonArtifactReporter reporter(suite);           \
    benchmark::RunSpecifiedBenchmarks(&reporter);                 \
    benchmark::Shutdown();                                        \
    return 0;                                                     \
  }

#endif  // RECUR_BENCH_BENCH_JSON_H_
