// traffic_runner — declarative workload harness over the fixpoint engines.
//
//   traffic_runner --spec FILE [--deterministic] [--out DIR]
//                  [--baseline FILE] [--tolerance T] [--slack-us S]
//                  [--expect-sheds PHASE]
//   traffic_runner --compare RUN_JSON BASELINE_JSON [--tolerance T]
//                  [--slack-us S]
//
// Runs the spec's phases, prints a per-op-node latency table, and writes
// BENCH_traffic_<workload>.json (to --out, else $RECUR_BENCH_JSON_DIR,
// else the current directory). With --baseline the fresh run's p95
// latencies are
// gated against the baseline file: any node violating
//   run_p95 <= baseline_p95 * (1 + tolerance) + slack
// exits nonzero — the CI perf-regression gate. --compare diffs two
// existing artifacts without running anything. --deterministic swaps in
// per-worker virtual clocks: the run still executes every op but reports
// synthetic latencies, so output is byte-identical for identical
// spec+seed (reproducibility checks, sanitizer smoke).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "traffic/report.h"
#include "traffic/runner.h"
#include "traffic/spec.h"

namespace {

int Usage() {
  std::cerr
      << "usage: traffic_runner --spec FILE [--deterministic] [--out DIR]\n"
         "                      [--baseline FILE] [--tolerance T] "
         "[--slack-us S]\n"
         "                      [--expect-sheds PHASE]\n"
         "       traffic_runner --compare RUN_JSON BASELINE_JSON\n"
         "                      [--tolerance T] [--slack-us S]\n";
  return 2;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "traffic_runner: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void PrintTable(const recur::traffic::TrafficReport& report) {
  std::printf("workload %s (seed %" PRIu64 "%s)\n", report.workload.c_str(),
              report.seed, report.deterministic ? ", deterministic" : "");
  for (const auto& phase : report.phases) {
    std::printf("phase %-12s threads %2d  ops %8" PRIu64
                "  wall %8.3fs  %10.1f ops/s\n",
                phase.name.c_str(), phase.threads, phase.total_ops,
                phase.wall_seconds,
                phase.wall_seconds > 0
                    ? static_cast<double>(phase.total_ops) / phase.wall_seconds
                    : 0.0);
  }
  std::printf("%-28s %8s %6s %10s %10s %10s %10s %12s\n", "node", "count",
              "err", "mean_us", "p50_us", "p95_us", "p99_us", "tuples");
  for (const auto& node : report.nodes) {
    std::printf("%-28s %8" PRIu64 " %6" PRIu64
                " %10.1f %10.1f %10.1f %10.1f %12" PRIu64 "\n",
                node.BenchmarkName().c_str(), node.latency.count(),
                node.errors, node.latency.MeanSeconds() * 1e6,
                node.latency.PercentileSeconds(0.50) * 1e6,
                node.latency.PercentileSeconds(0.95) * 1e6,
                node.latency.PercentileSeconds(0.99) * 1e6, node.tuples);
  }
}

int ReportViolations(const recur::traffic::Violations& violations) {
  if (violations.empty()) {
    std::printf("traffic gate: PASS\n");
    return 0;
  }
  std::printf("traffic gate: FAIL (%zu violation%s)\n", violations.size(),
              violations.size() == 1 ? "" : "s");
  for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_dir, baseline_path, expect_sheds_phase;
  std::string compare_run, compare_baseline;
  bool deterministic = false;
  double tolerance = 0.5;
  double slack_us = 50.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "traffic_runner: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--tolerance") {
      tolerance = std::atof(next("--tolerance").c_str());
    } else if (arg == "--slack-us") {
      slack_us = std::atof(next("--slack-us").c_str());
    } else if (arg == "--expect-sheds") {
      expect_sheds_phase = next("--expect-sheds");
    } else if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--compare") {
      compare_run = next("--compare");
      compare_baseline = next("--compare");
    } else {
      std::cerr << "traffic_runner: unknown argument " << arg << "\n";
      return Usage();
    }
  }

  if (!compare_run.empty()) {
    auto violations = recur::traffic::CompareTrafficJson(
        ReadFileOrDie(compare_run), ReadFileOrDie(compare_baseline),
        tolerance, slack_us);
    if (!violations.ok()) {
      std::cerr << "traffic_runner: " << violations.status() << "\n";
      return 2;
    }
    return ReportViolations(*violations);
  }

  if (spec_path.empty()) return Usage();

  auto spec = recur::traffic::LoadTrafficSpecFile(spec_path);
  if (!spec.ok()) {
    std::cerr << "traffic_runner: " << spec.status() << "\n";
    return 2;
  }
  recur::traffic::RunnerOptions options;
  options.deterministic = deterministic;
  auto report = recur::traffic::RunTraffic(*spec, options);
  if (!report.ok()) {
    std::cerr << "traffic_runner: " << report.status() << "\n";
    return 2;
  }
  PrintTable(*report);

  const std::string json = report->ToJson();
  if (out_dir.empty()) {
    const char* env = std::getenv("RECUR_BENCH_JSON_DIR");
    if (env != nullptr) out_dir = env;
  }
  // Name the artifact after the workload so several specs can write into
  // one artifact directory without clobbering each other.
  const std::string json_path = (out_dir.empty() ? std::string()
                                                 : out_dir + "/") +
                                "BENCH_traffic_" + report->workload + ".json";
  std::ofstream out(json_path);
  if (!out.good()) {
    std::cerr << "traffic_runner: cannot write " << json_path << "\n";
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s\n", json_path.c_str());

  if (report->shared_server.present) {
    const auto& s = report->shared_server;
    std::printf("shared server: submitted %" PRIu64 "  admitted %" PRIu64
                "  sheds %" PRIu64 "  groups %" PRIu64 " (max %" PRIu64
                ")  quarantined %" PRIu64 "  watchdog %" PRIu64
                "  epoch %" PRIu64 "\n",
                s.submitted, s.admitted, s.sheds, s.groups, s.max_group,
                s.quarantined, s.watchdog_trips, s.final_epoch);
  }
  if (!expect_sheds_phase.empty()) {
    // Overload sanity gate: the named phase must actually have shed load
    // (otherwise the spec no longer saturates admission and the overload
    // numbers are meaningless).
    uint64_t sheds = 0;
    bool phase_seen = false;
    for (const auto& node : report->nodes) {
      if (node.phase == expect_sheds_phase) {
        phase_seen = true;
        sheds += node.sheds;
      }
    }
    if (!phase_seen) {
      std::printf("shed gate: FAIL (phase '%s' not in the run)\n",
                  expect_sheds_phase.c_str());
      return 1;
    }
    if (sheds == 0) {
      std::printf("shed gate: FAIL (phase '%s' shed nothing — overload "
                  "did not saturate admission)\n",
                  expect_sheds_phase.c_str());
      return 1;
    }
    std::printf("shed gate: PASS (%" PRIu64 " sheds in phase '%s')\n", sheds,
                expect_sheds_phase.c_str());
  }

  if (!baseline_path.empty()) {
    auto violations = recur::traffic::CompareTrafficJson(
        json, ReadFileOrDie(baseline_path), tolerance, slack_us);
    if (!violations.ok()) {
      std::cerr << "traffic_runner: " << violations.status() << "\n";
      return 2;
    }
    return ReportViolations(*violations);
  }
  return 0;
}
