#include "ra/serialize.h"

#include <gtest/gtest.h>

#include <string>

#include "ra/database.h"
#include "ra/relation.h"
#include "util/io.h"
#include "util/symbol_table.h"

namespace recur::ra {
namespace {

using util::io::ByteReader;
using util::io::ByteWriter;

Relation RoundTrip(const Relation& rel) {
  ByteWriter w;
  SerializeRelation(rel, &w);
  ByteReader r(w.data());
  auto back = DeserializeRelation(&r);
  EXPECT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.AtEnd());
  return std::move(back).ValueOrDie();
}

TEST(SerializeRelationTest, RoundTripsRows) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Insert({3, 4});
  rel.Insert({-5, 9000000000});

  Relation back = RoundTrip(rel);
  EXPECT_EQ(back.arity(), 2);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.ToString(), rel.ToString());
  EXPECT_TRUE(back.Contains({-5, 9000000000}));
}

TEST(SerializeRelationTest, RoundTripsEmptyRelation) {
  Relation rel(3);
  Relation back = RoundTrip(rel);
  EXPECT_EQ(back.arity(), 3);
  EXPECT_TRUE(back.empty());
}

TEST(SerializeRelationTest, RoundTripsArityZero) {
  Relation empty(0);
  EXPECT_EQ(RoundTrip(empty).size(), 0u);

  Relation present(0);
  present.Insert(TupleRef(nullptr, 0));
  Relation back = RoundTrip(present);
  EXPECT_EQ(back.arity(), 0);
  EXPECT_EQ(back.size(), 1u);
}

TEST(SerializeRelationTest, StagedUncommittedRowIsExcluded) {
  Relation rel(2);
  rel.Insert({1, 2});
  Value* slot = rel.StageRow();
  slot[0] = 7;
  slot[1] = 8;  // staged, never committed

  Relation back = RoundTrip(rel);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_FALSE(back.Contains({7, 8}));
}

TEST(SerializeRelationTest, IndexesRebuildAfterLoad) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.Insert({1, 30});

  Relation back = RoundTrip(rel);
  ASSERT_EQ(back.index_rebuilds(), 0u);
  const std::vector<int>& rows = back.RowsWithValue(0, 1);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(back.index_rebuilds(), 1u);  // built lazily, on first probe
}

TEST(SerializeRelationTest, UnknownFormatVersionIsUnsupported) {
  ByteWriter w;
  w.PutU32(kRelationFormatVersion + 1);
  w.PutU32(2);   // arity
  w.PutU64(0);   // rows
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeRelation(&r).status().IsUnsupported());
}

TEST(SerializeRelationTest, LyingRowCountIsDataLoss) {
  ByteWriter w;
  w.PutU32(kRelationFormatVersion);
  w.PutU32(2);                     // arity
  w.PutU64(1000000000000ull);      // claims a trillion rows, provides none
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeRelation(&r).status().IsDataLoss());
}

TEST(SerializeRelationTest, WrappingArityIsDataLossNotSigfpe) {
  ByteWriter w;
  w.PutU32(kRelationFormatVersion);
  w.PutU32(1u << 29);  // 8 * arity wraps 32-bit arithmetic to zero
  w.PutU64(1);
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeRelation(&r).status().IsDataLoss());
}

TEST(SerializeRelationTest, ImplausibleArityWithZeroRowsIsDataLoss) {
  ByteWriter w;
  w.PutU32(kRelationFormatVersion);
  w.PutU32(0xFFFFFFFFu);  // would cast to a negative int for Relation()
  w.PutU64(0);
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeRelation(&r).status().IsDataLoss());
}

TEST(SerializeRelationTest, ArityZeroWithManyRowsIsDataLoss) {
  ByteWriter w;
  w.PutU32(kRelationFormatVersion);
  w.PutU32(0);  // arity 0 admits at most one row
  w.PutU64(2);
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeRelation(&r).status().IsDataLoss());
}

TEST(SerializeSymbolsTest, RoundTripsIntoFreshTable) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("P");
  SymbolId e = symbols.Intern("Edge");

  ByteWriter w;
  SerializeSymbols(symbols, &w);

  SymbolTable fresh;
  ByteReader r(w.data());
  ASSERT_TRUE(DeserializeSymbols(&r, &fresh).ok());
  EXPECT_EQ(fresh.Lookup("P"), p);
  EXPECT_EQ(fresh.Lookup("Edge"), e);
}

TEST(SerializeSymbolsTest, RoundTripsIntoTheSourceTable) {
  SymbolTable symbols;
  symbols.Intern("P");
  ByteWriter w;
  SerializeSymbols(symbols, &w);
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeSymbols(&r, &symbols).ok());
  EXPECT_EQ(symbols.size(), 1u);
}

TEST(SerializeSymbolsTest, DriftedTableIsUnsupported) {
  SymbolTable symbols;
  symbols.Intern("P");
  ByteWriter w;
  SerializeSymbols(symbols, &w);

  SymbolTable drifted;
  drifted.Intern("SomethingElse");  // "P" would land on id 2, not 1
  ByteReader r(w.data());
  EXPECT_TRUE(DeserializeSymbols(&r, &drifted).IsUnsupported());
}

TEST(SerializeDatabaseTest, RoundTripsRelations) {
  SymbolTable symbols;
  Database db;
  auto e = db.GetOrCreate(symbols.Intern("E"), 2);
  ASSERT_TRUE(e.ok());
  (*e)->Insert({1, 2});
  (*e)->Insert({2, 3});
  auto p = db.GetOrCreate(symbols.Intern("P"), 1);
  ASSERT_TRUE(p.ok());
  (*p)->Insert({42});

  ByteWriter w;
  ASSERT_TRUE(SerializeDatabase(db, symbols, &w).ok());

  SymbolTable fresh;
  ByteReader r(w.data());
  auto back = DeserializeDatabase(&r, &fresh);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(r.AtEnd());

  const Relation* e_back = back->Find(fresh.Lookup("E"));
  ASSERT_NE(e_back, nullptr);
  EXPECT_EQ(e_back->size(), 2u);
  EXPECT_TRUE(e_back->Contains({2, 3}));
  const Relation* p_back = back->Find(fresh.Lookup("P"));
  ASSERT_NE(p_back, nullptr);
  EXPECT_TRUE(p_back->Contains({42}));
}

TEST(SerializeDatabaseTest, SerializationIsNameOrderedAndDeterministic) {
  // Two databases populated in opposite insertion order must serialize to
  // identical bytes — snapshot equality checks depend on this.
  SymbolTable s1;
  Database d1;
  (*d1.GetOrCreate(s1.Intern("B"), 1))->Insert({1});
  (*d1.GetOrCreate(s1.Intern("A"), 1))->Insert({2});

  SymbolTable s2;
  s2.Intern("B");  // keep symbol ids identical across the two tables
  s2.Intern("A");
  Database d2;
  (*d2.GetOrCreate(s2.Lookup("A"), 1))->Insert({2});
  (*d2.GetOrCreate(s2.Lookup("B"), 1))->Insert({1});

  ByteWriter w1, w2;
  ASSERT_TRUE(SerializeDatabase(d1, s1, &w1).ok());
  ASSERT_TRUE(SerializeDatabase(d2, s2, &w2).ok());
  EXPECT_EQ(std::string(w1.data()), std::string(w2.data()));
}

TEST(SerializeDatabaseTest, TruncatedDatabaseIsDataLoss) {
  SymbolTable symbols;
  Database db;
  (*db.GetOrCreate(symbols.Intern("E"), 2))->Insert({1, 2});
  ByteWriter w;
  ASSERT_TRUE(SerializeDatabase(db, symbols, &w).ok());

  std::string_view bytes = w.data();
  SymbolTable fresh;
  ByteReader r(bytes.substr(0, bytes.size() - 6));
  EXPECT_TRUE(DeserializeDatabase(&r, &fresh).status().IsDataLoss());
}

}  // namespace
}  // namespace recur::ra
