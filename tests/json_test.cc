// util::JsonValue round-trip coverage: the parser, the escaper, and the
// dumper back the BENCH_*.json artifacts and the traffic-spec loader, so a
// name that breaks escaping or a malformed document that crashes the parser
// would corrupt the CI perf gate. Includes the bench_json.h regression: a
// benchmark name containing quotes/backslashes/control bytes must still
// yield a parseable record.

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"
#include "util/status.h"

namespace recur::util {
namespace {

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(JsonEscape("BM_Parallel_TC_Chain/8"), "BM_Parallel_TC_Chain/8");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscapeTest, EscapedBenchmarkNameRoundTrips) {
  // The exact failure mode the bench_json.h fix targets: a benchmark named
  // with quotes and separators used to produce an invalid record.
  const std::string nasty = "BM_\"Weird\"/args:{\\x}/\n8";
  const std::string record =
      "{\"benchmark\": \"" + JsonEscape(nasty) + "\", \"threads\": 8}";
  auto doc = ParseJson(record);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* name = doc->Find("benchmark");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value(), nasty);
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2")->number_value(), -1250.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonParseTest, ParsesNestedDocumentPreservingOrder) {
  auto doc = ParseJson(R"({"b": [1, 2, {"x": null}], "a": "s", "c": true})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->members().size(), 3u);
  EXPECT_EQ(doc->members()[0].first, "b");
  EXPECT_EQ(doc->members()[1].first, "a");
  EXPECT_EQ(doc->members()[2].first, "c");
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_DOUBLE_EQ(b->items()[1].number_value(), 2.0);
  EXPECT_TRUE(b->items()[2].Find("x")->is_null());
}

TEST(JsonParseTest, DecodesUnicodeEscapes) {
  auto doc = ParseJson(R"("a\u0041\u00e9b")");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->string_value(), "aA\xc3\xa9"
                                 "b");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",          "{",          "[1, 2",       "{\"a\": }",
      "{\"a\" 1}", "[1, 2,]",    "{,}",         "\"unterminated",
      "01",        "1.2.3",      "tru",         "nul",
      "[1] [2]",   "{\"a\": 1,}", "\"bad\\q\"", "\"\\u12G4\"",
  };
  for (const char* text : bad) {
    auto doc = ParseJson(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, RejectsAdversarialNestingWithStatusNotCrash) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  auto doc = ParseJson(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(JsonParseTest, AcceptsNestingBelowTheCap) {
  std::string depth32 = std::string(32, '[') + std::string(32, ']');
  EXPECT_TRUE(ParseJson(depth32).ok());
}

TEST(JsonDumpTest, RoundTripsThroughParse) {
  const std::string text =
      R"({"s": "q\"uote", "n": -3.25, "b": false, "z": null, "a": [1, "x", {}]})";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const std::string dumped = DumpJson(*doc);
  auto again = ParseJson(dumped);
  ASSERT_TRUE(again.ok()) << again.status() << " in " << dumped;
  // Dump is canonical, so a second round trip is byte-identical.
  EXPECT_EQ(DumpJson(*again), dumped);
  EXPECT_EQ(again->Find("s")->string_value(), "q\"uote");
  EXPECT_DOUBLE_EQ(again->Find("n")->number_value(), -3.25);
}

TEST(JsonValueTest, TypedAccessorsDistinguishAbsentFromMistyped) {
  auto doc = ParseJson(R"({"n": 4, "s": "x"})");
  ASSERT_TRUE(doc.ok());
  auto n = doc->NumberOr("n", -1.0);
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(*n, 4.0);
  auto absent = doc->NumberOr("missing", 7.0);
  ASSERT_TRUE(absent.ok());
  EXPECT_DOUBLE_EQ(*absent, 7.0);
  // Present but the wrong type is an error, not the fallback.
  EXPECT_FALSE(doc->NumberOr("s", 0.0).ok());
  EXPECT_FALSE(doc->StringOr("n", "d").ok());
  EXPECT_FALSE(doc->BoolOr("s", true).ok());
}

}  // namespace
}  // namespace recur::util
