// Coverage for API surfaces not exercised elsewhere: enum printers,
// hybrid-graph primitives, compiled-eval corner conditions, alternative
// surface syntax.

#include <gtest/gtest.h>

#include "classify/taxonomy.h"
#include "datalog/parser.h"
#include "eval/compiled_eval.h"
#include "eval/plan_generator.h"
#include "graph/hybrid_graph.h"
#include "graph/paths.h"
#include "ra/database.h"
#include "workload/generator.h"

namespace recur {
namespace {

TEST(TaxonomyTest, AllComponentClassesPrint) {
  using classify::ComponentClass;
  const ComponentClass all[] = {
      ComponentClass::kTrivial,          ComponentClass::kUnitRotational,
      ComponentClass::kUnitPermutational, ComponentClass::kNonUnitRotational,
      ComponentClass::kNonUnitPermutational, ComponentClass::kBoundedCycle,
      ComponentClass::kUnboundedCycle,   ComponentClass::kNoNontrivialCycle,
      ComponentClass::kDependent,
  };
  for (ComponentClass c : all) {
    EXPECT_STRNE(ToString(c), "?");
    EXPECT_FALSE(Describe(c).empty());
  }
  EXPECT_STREQ(ToString(ComponentClass::kUnitRotational), "A1");
  EXPECT_TRUE(IsOneDirectionalClass(ComponentClass::kNonUnitPermutational));
  EXPECT_FALSE(IsOneDirectionalClass(ComponentClass::kBoundedCycle));
  EXPECT_TRUE(IsPermutationalClass(ComponentClass::kUnitPermutational));
  EXPECT_FALSE(IsPermutationalClass(ComponentClass::kUnitRotational));
}

TEST(TaxonomyTest, AllFormulaClassesPrint) {
  using classify::FormulaClass;
  const FormulaClass all[] = {
      FormulaClass::kA1, FormulaClass::kA2, FormulaClass::kA3,
      FormulaClass::kA4, FormulaClass::kA5, FormulaClass::kB,
      FormulaClass::kC,  FormulaClass::kD,  FormulaClass::kE,
      FormulaClass::kF,
  };
  for (FormulaClass c : all) {
    EXPECT_STRNE(ToString(c), "?");
    EXPECT_FALSE(Describe(c).empty());
  }
}

TEST(TaxonomyTest, StrategyNames) {
  EXPECT_STREQ(ToString(eval::Strategy::kStableCompiled),
               "stable-compiled");
  EXPECT_STREQ(ToString(eval::Strategy::kTransformedCompiled),
               "transformed-compiled");
  EXPECT_STREQ(ToString(eval::Strategy::kBoundedExpansion),
               "bounded-expansion");
  EXPECT_STREQ(ToString(eval::Strategy::kSemiNaive), "semi-naive");
}

TEST(HybridGraphTest, Primitives) {
  graph::HybridGraph g;
  int a = g.AddVertex({1, 0});
  int b = g.AddVertex({2, 0});
  EXPECT_EQ(g.num_vertices(), 2);
  // Undirected self-loop dropped.
  EXPECT_EQ(g.AddEdge({a, a, graph::EdgeKind::kUndirected, 3, -1}), -1);
  // Directed self-loop kept; appears once in the incidence list.
  int loop = g.AddEdge({a, a, graph::EdgeKind::kDirected, 3, 0});
  EXPECT_GE(loop, 0);
  EXPECT_EQ(g.IncidentEdges(a).size(), 1u);
  int e = g.AddEdge({a, b, graph::EdgeKind::kUndirected, 4, -1});
  EXPECT_EQ(g.edge(e).weight(), 0);
  EXPECT_EQ(g.edge(loop).weight(), 1);
  EXPECT_EQ(g.IncidentEdges(b).size(), 1u);
  EXPECT_EQ(g.FindVertex(1, 0), a);
  EXPECT_EQ(g.FindVertex(1, 7), -1);
  EXPECT_EQ(g.DirectedEdges().size(), 1u);
  EXPECT_EQ(g.UndirectedEdges().size(), 1u);
}

TEST(PathsTest, ComponentRestriction) {
  // Two disjoint components: a weight-2 chain and a weight-1 arc.
  graph::HybridGraph g;
  int v0 = g.AddVertex({1, 0});
  int v1 = g.AddVertex({2, 0});
  int v2 = g.AddVertex({3, 0});
  int w0 = g.AddVertex({4, 0});
  int w1 = g.AddVertex({5, 0});
  g.AddEdge({v0, v1, graph::EdgeKind::kDirected, 9, 0});
  g.AddEdge({v1, v2, graph::EdgeKind::kDirected, 9, 1});
  g.AddEdge({w0, w1, graph::EdgeKind::kDirected, 9, 2});
  graph::CondensedGraph c = graph::CondensedGraph::Build(g);
  int n = 0;
  std::vector<int> comp = c.WeakComponents(&n);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(graph::MaxPathWeight(c), 2);
  int chain_component = comp[c.cluster_of(v0)];
  int arc_component = comp[c.cluster_of(w0)];
  EXPECT_EQ(
      graph::MaxPathWeightInComponent(c, comp, chain_component), 2);
  EXPECT_EQ(graph::MaxPathWeightInComponent(c, comp, arc_component), 1);
}

class CompiledCornerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto rule =
        datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols_);
    auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols_);
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(exit.ok());
    auto formula = datalog::LinearRecursiveRule::Create(*rule);
    ASSERT_TRUE(formula.ok());
    auto ev =
        eval::StableEvaluator::Create(*formula, {*exit}, &symbols_);
    ASSERT_TRUE(ev.ok());
    evaluator_.emplace(*std::move(ev));
  }
  eval::Query MakeQuery(std::vector<std::optional<ra::Value>> b) {
    eval::Query q;
    q.pred = symbols_.Lookup("P");
    q.bindings = std::move(b);
    return q;
  }
  SymbolTable symbols_;
  std::optional<eval::StableEvaluator> evaluator_;
};

TEST_F(CompiledCornerTest, EmptyDatabaseYieldsEmpty) {
  ra::Database empty;
  auto answers =
      evaluator_->Answer(MakeQuery({ra::Value{1}, std::nullopt}), empty);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_TRUE(answers->empty());
}

TEST_F(CompiledCornerTest, MissingStepRelationYieldsExitOnly) {
  // E present, A missing: only depth 0 can contribute.
  ra::Database edb;
  auto e = edb.GetOrCreate(symbols_.Lookup("E"), 2);
  ASSERT_TRUE(e.ok());
  (*e)->Insert({1, 9});
  (*e)->Insert({2, 8});
  auto answers =
      evaluator_->Answer(MakeQuery({ra::Value{1}, std::nullopt}), edb);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->ToString(), "{(1,9)}");
}

TEST_F(CompiledCornerTest, BoundValueAbsentFromDomain) {
  ra::Database edb;
  workload::Generator gen(61);
  auto a = edb.GetOrCreate(symbols_.Lookup("A"), 2);
  auto e = edb.GetOrCreate(symbols_.Lookup("E"), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(e.ok());
  (*a)->InsertAll(gen.Chain(5));
  (*e)->InsertAll(gen.Chain(5));
  auto answers = evaluator_->Answer(
      MakeQuery({ra::Value{777}, std::nullopt}), edb);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST_F(CompiledCornerTest, StatsReportModeAndLevels) {
  ra::Database edb;
  workload::Generator gen(62);
  (*edb.GetOrCreate(symbols_.Lookup("A"), 2))->InsertAll(gen.Chain(5));
  (*edb.GetOrCreate(symbols_.Lookup("E"), 2))->InsertAll(gen.Chain(5));
  eval::CompiledEvalStats stats;
  auto answers = evaluator_->Answer(
      MakeQuery({ra::Value{0}, std::nullopt}), edb, {}, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(stats.mode, eval::CompiledEvalStats::Mode::kForwardBfs);
  EXPECT_GE(stats.levels, 5);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_GT(stats.tuples_considered, 0u);
}

TEST(SyntaxTest, AmpersandAndArrowForms) {
  SymbolTable symbols;
  auto r1 = datalog::ParseRule("P(X, Y) <- A(X, Z) & P(Z, Y).", &symbols);
  ASSERT_TRUE(r1.ok()) << r1.status();
  auto r2 = datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST(SyntaxTest, PrimedVariableNames) {
  SymbolTable symbols;
  auto rule = datalog::ParseRule("P(X, X') :- A(X, X'), P(X', X).",
                                 &symbols);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->Variables().size(), 2u);
}

TEST(PlanGeneratorCoverageTest, QueryPlanToStringMentionsStrategy) {
  SymbolTable symbols;
  auto rule =
      datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols);
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols);
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  eval::PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*formula, *exit);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->ToString().find("stable-compiled"), std::string::npos);
}

}  // namespace
}  // namespace recur
