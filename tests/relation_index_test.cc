// Property tests for incremental column-index maintenance in ra::Relation:
// interleaved inserts and probes must answer exactly like an index rebuilt
// from scratch, copies/moves must leave indexes consistent, and the copy
// assignment must never expose a stale index over the new rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "ra/relation.h"

namespace recur::ra {
namespace {

/// The probe result as a sorted bag of tuples (row ids are an
/// implementation detail; the tuples they name are the contract).
std::vector<Tuple> ProbedTuples(const Relation& rel, int column, Value v) {
  std::vector<Tuple> out;
  for (int row : rel.RowsWithValue(column, v)) {
    out.push_back(rel.rows()[row].ToTuple());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A relation with the same rows but untouched (never probed) indexes, so
/// its first probe builds from scratch.
Relation Rebuilt(const Relation& rel) {
  Relation fresh(rel.arity());
  for (TupleRef t : rel.rows()) fresh.Insert(t);
  return fresh;
}

TEST(RelationIndexTest, InterleavedInsertsAndProbesMatchRebuild) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(seed);
    const int arity = 1 + static_cast<int>(rng() % 3);
    Relation rel(arity);
    for (int step = 0; step < 400; ++step) {
      if (rng() % 3 != 0) {
        Tuple t(arity);
        for (Value& v : t) v = static_cast<Value>(rng() % 12);
        rel.Insert(t);
      } else {
        int column = static_cast<int>(rng() % arity);
        Value v = static_cast<Value>(rng() % 12);
        ASSERT_EQ(ProbedTuples(rel, column, v),
                  ProbedTuples(Rebuilt(rel), column, v))
            << "seed " << seed << " step " << step << " col " << column
            << " val " << v;
      }
    }
  }
}

TEST(RelationIndexTest, AppendsDoNotRebuildIndexes) {
  Relation rel(2);
  for (Value i = 0; i < 50; ++i) rel.Insert({i, i + 1});
  EXPECT_EQ(rel.index_rebuilds(), 0u);
  rel.RowsWithValue(0, 7);  // builds column 0 once
  EXPECT_EQ(rel.index_rebuilds(), 1u);
  for (Value i = 50; i < 200; ++i) {
    rel.Insert({i, i + 1});
    ASSERT_EQ(rel.RowsWithValue(0, i).size(), 1u);
  }
  // 150 inserts with live probes: still just the one build.
  EXPECT_EQ(rel.index_rebuilds(), 1u);
  rel.RowsWithValue(1, 7);
  EXPECT_EQ(rel.index_rebuilds(), 2u);
}

TEST(RelationIndexTest, CopyAssignmentDropsStaleIndexes) {
  Relation a(2);
  a.Insert({1, 10});
  a.Insert({2, 20});
  // Build a's index, then overwrite a with b: probes must answer from b's
  // rows, exactly like a never-indexed relation with b's contents.
  EXPECT_EQ(ProbedTuples(a, 0, 1), (std::vector<Tuple>{{1, 10}}));
  Relation b(2);
  b.Insert({1, 99});
  b.Insert({3, 30});
  a = b;
  EXPECT_EQ(ProbedTuples(a, 0, 1), (std::vector<Tuple>{{1, 99}}));
  EXPECT_EQ(ProbedTuples(a, 0, 2), std::vector<Tuple>{});
  EXPECT_EQ(ProbedTuples(a, 0, 3), (std::vector<Tuple>{{3, 30}}));
  // Mutating the copy target afterwards keeps its index consistent.
  a.Insert({1, 100});
  EXPECT_EQ(ProbedTuples(a, 0, 1),
            (std::vector<Tuple>{{1, 99}, {1, 100}}));
}

TEST(RelationIndexTest, CopyAssignmentAcrossArities) {
  Relation a(3);
  a.Insert({1, 2, 3});
  EXPECT_EQ(ProbedTuples(a, 2, 3), (std::vector<Tuple>{{1, 2, 3}}));
  Relation b(1);
  b.Insert({7});
  a = b;
  EXPECT_EQ(a.arity(), 1);
  EXPECT_EQ(ProbedTuples(a, 0, 7), (std::vector<Tuple>{{7}}));
  EXPECT_EQ(a.RowsWithValue(2, 3).size(), 0u);  // out of range now
}

TEST(RelationIndexTest, CopyConstructorStartsWithFreshIndexes) {
  Relation a(2);
  for (Value i = 0; i < 10; ++i) a.Insert({i % 3, i});
  (void)a.RowsWithValue(0, 1);
  Relation b(a);
  // Diverge the copy; both must keep answering correctly.
  b.Insert({1, 100});
  EXPECT_EQ(ProbedTuples(b, 0, 1), ProbedTuples(Rebuilt(b), 0, 1));
  EXPECT_EQ(ProbedTuples(a, 0, 1), ProbedTuples(Rebuilt(a), 0, 1));
  EXPECT_NE(a.size(), b.size());
}

TEST(RelationIndexTest, MovePreservesBuiltIndexes) {
  Relation a(2);
  for (Value i = 0; i < 20; ++i) a.Insert({i % 5, i});
  std::vector<Tuple> want = ProbedTuples(a, 0, 2);
  ASSERT_FALSE(want.empty());
  size_t builds = a.index_rebuilds();
  Relation moved(std::move(a));
  EXPECT_EQ(ProbedTuples(moved, 0, 2), want);
  EXPECT_EQ(moved.index_rebuilds(), builds);  // no rebuild after move
  Relation assigned(7);
  assigned = std::move(moved);
  EXPECT_EQ(ProbedTuples(assigned, 0, 2), want);
  assigned.Insert({2, 1000});
  EXPECT_EQ(ProbedTuples(assigned, 0, 2),
            ProbedTuples(Rebuilt(assigned), 0, 2));
}

TEST(RelationIndexTest, ClearResetsIndexes) {
  Relation a(2);
  a.Insert({1, 2});
  (void)a.RowsWithValue(0, 1);
  a.Clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.RowsWithValue(0, 1).size(), 0u);
  a.Insert({1, 5});
  EXPECT_EQ(ProbedTuples(a, 0, 1), (std::vector<Tuple>{{1, 5}}));
}

TEST(RelationIndexTest, ReserveKeepsContentsAndIndexes) {
  Relation a(2);
  for (Value i = 0; i < 10; ++i) a.Insert({i, i * 2});
  (void)a.RowsWithValue(0, 4);
  a.Reserve(10000);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(ProbedTuples(a, 0, 4), (std::vector<Tuple>{{4, 8}}));
  for (Value i = 10; i < 500; ++i) a.Insert({i, i * 2});
  EXPECT_EQ(a.index_rebuilds(), 1u);
  EXPECT_EQ(ProbedTuples(a, 0, 400), ProbedTuples(Rebuilt(a), 0, 400));
}

// Regression for the traffic harness's EDB-churn delete op: a keyed point
// query served from a column index built *before* an erase must never
// return the erased row (or, after compaction renumbers the arena, some
// other row's stale id). Erase invalidates every index; the next probe
// rebuilds over the surviving rows.
TEST(RelationIndexTest, EraseNeverServesStaleIndexRows) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(seed);
    Relation rel(2);
    for (int i = 0; i < 300; ++i) {
      rel.Insert({static_cast<Value>(rng() % 20),
                  static_cast<Value>(rng() % 20)});
    }
    for (int step = 0; step < 60 && !rel.empty(); ++step) {
      // Build (or reuse) the index with a keyed probe...
      const Value probe = static_cast<Value>(rng() % 20);
      (void)rel.RowsWithValue(0, probe);
      // ...then erase a random row and probe the same key again.
      const Tuple victim =
          rel.rows()[static_cast<size_t>(rng() % rel.size())].ToTuple();
      ASSERT_TRUE(rel.Erase(victim));
      for (int row : rel.RowsWithValue(0, victim[0])) {
        ASSERT_NE(rel.rows()[row].ToTuple(), victim)
            << "stale index row after erase, seed " << seed << " step "
            << step;
      }
      ASSERT_EQ(ProbedTuples(rel, 0, victim[0]),
                ProbedTuples(Rebuilt(rel), 0, victim[0]))
          << "seed " << seed << " step " << step;
      ASSERT_FALSE(rel.Contains(victim));
    }
  }
}

// Same contract for bulk EraseRows and composite (multi-column) indexes.
TEST(RelationIndexTest, EraseRowsInvalidatesCompositeIndexes) {
  Relation rel(3);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    rel.Insert({static_cast<Value>(rng() % 8), static_cast<Value>(rng() % 8),
                static_cast<Value>(rng() % 8)});
  }
  const std::vector<int> columns = {0, 2};
  const Value key[] = {3, 5};
  (void)rel.RowsWithKey(columns, key);  // build the composite index

  Relation victims(3);
  RowsView rows = rel.rows();
  for (size_t i = 0; i < rows.size(); i += 3) victims.Insert(rows[i]);
  const size_t before = rel.size();
  rel.EraseRows(victims);
  EXPECT_EQ(rel.size(), before - victims.size());

  for (TupleRef gone : victims.rows()) {
    EXPECT_FALSE(rel.Contains(gone));
    // Keyed candidates must name only live rows, none equal to a victim.
    const Value victim_key[] = {gone[0], gone[2]};
    for (int row : rel.RowsWithKey(columns, victim_key)) {
      ASSERT_LT(static_cast<size_t>(row), rel.size());
      EXPECT_NE(rel.rows()[row].ToTuple(), gone.ToTuple());
    }
  }
  // And the single-column path agrees with a from-scratch rebuild.
  for (Value v = 0; v < 8; ++v) {
    EXPECT_EQ(ProbedTuples(rel, 1, v), ProbedTuples(Rebuilt(rel), 1, v));
  }
}

// Concurrent const probes racing to lazily build the same (and different)
// column indexes must be safe and agree with a serial rebuild. Run under
// ThreadSanitizer via `ctest -L tsan` in a RECUR_SANITIZE=thread build.
TEST(RelationIndexTest, ConcurrentLazyIndexBuildIsSafe) {
  Relation rel(3);
  std::mt19937_64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    rel.Insert({static_cast<Value>(rng() % 50),
                static_cast<Value>(rng() % 50),
                static_cast<Value>(rng() % 50)});
  }
  std::vector<size_t> counts(8, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rel, &counts, t] {
      size_t n = 0;
      for (Value v = 0; v < 50; ++v) {
        n += rel.RowsWithValue(t % 3, v).size();
        n += rel.Contains({v, v, v}) ? 1 : 0;
      }
      counts[t] = n;
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread saw the full relation through its column index.
  Relation fresh = Rebuilt(rel);
  for (int t = 0; t < 8; ++t) {
    size_t want = 0;
    for (Value v = 0; v < 50; ++v) {
      want += fresh.RowsWithValue(t % 3, v).size();
      want += fresh.Contains({v, v, v}) ? 1 : 0;
    }
    EXPECT_EQ(counts[t], want) << "thread " << t;
  }
  // At most one build per column despite eight racing readers.
  EXPECT_LE(rel.index_rebuilds(), 3u);
}

}  // namespace
}  // namespace recur::ra
