// Parser/lexer robustness sweep: truncated, mutated, and adversarially
// nested inputs must always come back as a Status — never a crash, hang, or
// silent acceptance of garbage. Every parse is timed; an input that stalls
// the lexer would trip the per-input budget long before CI's timeout.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>

#include "datalog/parser.h"

namespace recur::datalog {
namespace {

constexpr const char* kSeedPrograms[] = {
    "P(X, Y) :- A(X, Y).\nP(X, Y) :- A(X, Z), P(Z, Y).\n",
    "P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).\nP(X, Y, Z) :- E(X, Y, Z).\n",
    "A(a, b).\nA(b, c).\n?- P(a, Y).\n",
    "P(X, Y) <- A(X, Z) & B(Z, Y).\n",
};

/// Parses with a wall-clock budget. The parser is a single linear pass, so
/// 250 ms is orders of magnitude above any legitimate input in this sweep;
/// exceeding it means the lexer stopped making progress.
Result<Program> TimedParse(const std::string& input, SymbolTable* symbols) {
  auto start = std::chrono::steady_clock::now();
  auto result = ParseProgram(input, symbols);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 0.25) << "parser stalled on: " << input.substr(0, 80);
  return result;
}

TEST(ParserRobustnessTest, EveryTruncationReturnsCleanly) {
  for (const char* seed : kSeedPrograms) {
    std::string text(seed);
    for (size_t cut = 0; cut < text.size(); ++cut) {
      SymbolTable symbols;
      std::string truncated = text.substr(0, cut);
      auto result = TimedParse(truncated, &symbols);
      // A prefix that happens to end on a clause boundary may parse; all we
      // require is a clean Status either way.
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

TEST(ParserRobustnessTest, DanglingImplicationIsAnError) {
  for (const char* seed : kSeedPrograms) {
    SymbolTable symbols;
    std::string text = std::string(seed) + "Q(X, Y) :-";
    auto result = TimedParse(text, &symbols);
    EXPECT_FALSE(result.ok()) << text;
  }
}

TEST(ParserRobustnessTest, IllegalBytesAlwaysError) {
  // Bytes the grammar can never accept, spliced into every position of a
  // valid program.
  const char illegal[] = {'\x01', '@', '!', ';', '\x7f'};
  std::string text(kSeedPrograms[0]);
  for (char byte : illegal) {
    for (size_t pos = 0; pos <= text.size(); pos += 3) {
      SymbolTable symbols;
      std::string mutated = text;
      mutated.insert(pos, 1, byte);
      auto result = TimedParse(mutated, &symbols);
      EXPECT_FALSE(result.ok())
          << "byte " << static_cast<int>(byte) << " at " << pos;
    }
  }
}

TEST(ParserRobustnessTest, RandomMutationSweepNeverCrashes) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (const char* seed : kSeedPrograms) {
    std::string text(seed);
    std::uniform_int_distribution<size_t> pos_dist(0, text.size() - 1);
    for (int trial = 0; trial < 500; ++trial) {
      std::string mutated = text;
      int edits = 1 + trial % 4;
      for (int e = 0; e < edits; ++e) {
        size_t pos = pos_dist(rng);
        switch (trial % 3) {
          case 0:  // overwrite
            mutated[pos % mutated.size()] =
                static_cast<char>(byte_dist(rng));
            break;
          case 1:  // insert
            mutated.insert(pos % (mutated.size() + 1), 1,
                           static_cast<char>(byte_dist(rng)));
            break;
          case 2:  // delete
            if (!mutated.empty()) mutated.erase(pos % mutated.size(), 1);
            break;
        }
      }
      SymbolTable symbols;
      // ok() or error are both acceptable outcomes; the invariant is that
      // the parse terminates promptly and the Status is well-formed.
      auto result = TimedParse(mutated, &symbols);
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

TEST(ParserRobustnessTest, DeeplyNestedInputFailsFast) {
  for (int depth : {16, 256, 4096, 65536}) {
    SymbolTable symbols;
    std::string text = "P" + std::string(depth, '(');
    auto result = TimedParse(text, &symbols);
    EXPECT_FALSE(result.ok()) << "depth " << depth;

    // Balanced but absurd nesting in argument position is equally invalid:
    // the grammar has no nested terms.
    std::string balanced = "P(" + std::string(depth, '(') + "a" +
                           std::string(depth, ')') + ").";
    SymbolTable symbols2;
    auto result2 = TimedParse(balanced, &symbols2);
    EXPECT_FALSE(result2.ok()) << "balanced depth " << depth;
  }
}

TEST(ParserRobustnessTest, PathologicalRepetitionStaysLinear) {
  // A very long, syntactically valid program parses fine; the same program
  // with the final '.' removed errors — both promptly.
  std::string big;
  for (int i = 0; i < 20000; ++i) {
    big += "A(a, b).\n";
  }
  SymbolTable symbols;
  auto ok = TimedParse(big, &symbols);
  EXPECT_TRUE(ok.ok());

  big.resize(big.size() - 2);  // drop ".\n"
  SymbolTable symbols2;
  auto bad = TimedParse(big, &symbols2);
  EXPECT_FALSE(bad.ok());
}

TEST(ParserRobustnessTest, UnterminatedStringAndCommentAreErrors) {
  SymbolTable symbols;
  auto s = TimedParse("P(\"unterminated).", &symbols);
  EXPECT_FALSE(s.ok());

  // A comment that swallows the rest of the input leaves a dangling rule.
  SymbolTable symbols2;
  auto c = TimedParse("P(X, Y) :- % everything after is comment\n", &symbols2);
  EXPECT_FALSE(c.ok());
}

}  // namespace
}  // namespace recur::datalog
