// Assorted edge cases across modules: low-dimension formulas, degenerate
// graphs, container semantics, and printer corners.

#include <gtest/gtest.h>

#include "classify/classifier.h"
#include "classify/stability.h"
#include "datalog/parser.h"
#include "eval/query.h"
#include "graph/render.h"
#include "graph/resolution_graph.h"
#include "ra/operators.h"

namespace recur {
namespace {

class MiscTest : public ::testing::Test {
 protected:
  classify::Classification MustClassify(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = datalog::LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    auto cls = classify::Classify(*f);
    EXPECT_TRUE(cls.ok()) << cls.status();
    return *cls;
  }
  SymbolTable symbols_;
};

TEST_F(MiscTest, OneDimensionalRotational) {
  classify::Classification cls = MustClassify("P(X) :- A(X, Y), P(Y).");
  EXPECT_EQ(cls.formula_class, classify::FormulaClass::kA1);
  EXPECT_TRUE(cls.strongly_stable);
  EXPECT_FALSE(cls.bounded);
}

TEST_F(MiscTest, OneDimensionalPureSelfLoop) {
  classify::Classification cls = MustClassify("P(X) :- P(X).");
  EXPECT_EQ(cls.formula_class, classify::FormulaClass::kA2);
  EXPECT_TRUE(cls.strongly_stable);
  EXPECT_TRUE(cls.bounded);
  EXPECT_EQ(cls.rank_bound, 0);  // adds nothing beyond the exit
}

TEST_F(MiscTest, SelfLoopWithPendantFilter) {
  // The y-position self-loop carries a cluster atom: still A1-rotational
  // per the paper's definition? The cycle is the self directed loop plus
  // no undirected edge on the cycle... but the cluster atom makes the
  // arrival/leave vertex coincide, so it stays permutational — yet the
  // step is a *filter*, not the identity: evaluation must apply it.
  classify::Classification cls =
      MustClassify("P(X, Y) :- A(X, Z), Live(Y), P(Z, Y).");
  EXPECT_TRUE(cls.strongly_stable);
}

TEST_F(MiscTest, HeadVarSharedBetweenChainAtoms) {
  // X flows through two undirected atoms into a class-D shape.
  classify::Classification cls =
      MustClassify("P(X, Y) :- A(X, U), B(U, Y1), Tag(Y), P(X1, Y1).");
  EXPECT_EQ(cls.formula_class, classify::FormulaClass::kD);
  EXPECT_TRUE(cls.bounded);
}

TEST_F(MiscTest, ParallelArcsBetweenClustersAreDependent) {
  // Two directed edges between the same pair of clusters form a weight-0
  // two-arc cycle; it is the only cycle and covers all arcs ->
  // independent multi-directional -> class B.
  classify::Classification cls = MustClassify(
      "P(X, Y) :- A(X, Y), B(X1, Y1), P(X1, Y1).");
  EXPECT_EQ(cls.formula_class, classify::FormulaClass::kB);
  EXPECT_TRUE(cls.bounded);
  EXPECT_EQ(cls.rank_bound, 1);
}

TEST_F(MiscTest, ThreeArcDependentCluster) {
  // Three self-loops on one merged cluster: three cycles, dependent.
  classify::Classification cls = MustClassify(
      "P(X, Y, Z) :- A(X, X1), B(Y, Y1), C(Z, Z1), D(X1, Y1), "
      "D(Y1, Z1), P(X1, Y1, Z1).");
  EXPECT_EQ(cls.formula_class, classify::FormulaClass::kE);
}

TEST_F(MiscTest, ResolutionGraphK1EqualsIGraph) {
  auto rule =
      datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols_);
  auto f = datalog::LinearRecursiveRule::Create(*rule);
  auto ig = graph::IGraph::Build(*f);
  auto rg = graph::ResolutionGraph::Build(*f, 1);
  ASSERT_TRUE(ig.ok());
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->graph().num_vertices(), ig->graph().num_vertices());
  EXPECT_EQ(rg->graph().num_edges(), ig->graph().num_edges());
  EXPECT_EQ(rg->FrontierVertex(0), ig->BodyVertex(0));
}

TEST_F(MiscTest, DirectedPathWeightUnreachable) {
  auto rule =
      datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols_);
  auto f = datalog::LinearRecursiveRule::Create(*rule);
  auto rg = graph::ResolutionGraph::Build(*f, 2);
  ASSERT_TRUE(rg.ok());
  int z = rg->graph().FindVertex(symbols_.Lookup("Z"), 0);
  int x = rg->graph().FindVertex(symbols_.Lookup("X"), 0);
  bool found = true;
  rg->DirectedPathWeight(z, x, &found);  // against the arrows
  EXPECT_FALSE(found);
}

TEST_F(MiscTest, QueryFilterArityMismatch) {
  eval::Query q;
  q.pred = 1;
  q.bindings = {std::nullopt, std::nullopt};
  ra::Relation r(3);
  EXPECT_FALSE(q.Filter(r).ok());
}

TEST_F(MiscTest, RelationClearAndReuse) {
  ra::Relation r(2);
  r.Insert({1, 2});
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 1u);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.arity(), 2);
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 0u);
  EXPECT_TRUE(r.Insert({1, 2}));  // reusable after Clear
}

TEST_F(MiscTest, ProgramToStringIncludesQueries) {
  auto program = datalog::ParseProgram(
      "A(a, b).\n?- A(a, X).\n", &symbols_);
  ASSERT_TRUE(program.ok());
  std::string text = program->ToString(symbols_);
  EXPECT_NE(text.find("A(a, b)."), std::string::npos);
  EXPECT_NE(text.find("?- A(a, X)."), std::string::npos);
}

TEST_F(MiscTest, AdornmentTableHandlesAllFree) {
  classify::Classification cls =
      MustClassify("P(X, Y) :- A(X, Z), P(Z, Y).");
  std::string table = classify::AdornmentTable(cls, 0, 2);
  EXPECT_NE(table.find("P(v,v)"), std::string::npos) << table;
  EXPECT_NE(table.find("cycle period 1"), std::string::npos) << table;
}

TEST_F(MiscTest, PaperStyleRenderingLowercases) {
  auto rule = datalog::ParseRule("P(Abc, Y) :- A(Abc, Y), P(Abc, Y).",
                                 &symbols_);
  auto f = datalog::LinearRecursiveRule::Create(*rule);
  ASSERT_TRUE(f.ok());
  auto ig = graph::IGraph::Build(*f);
  ASSERT_TRUE(ig.ok());
  std::string ascii = graph::ToAscii(ig->graph(), symbols_);
  EXPECT_NE(ascii.find("abc"), std::string::npos) << ascii;
  graph::RenderOptions plain;
  plain.paper_style = false;
  std::string raw = graph::ToAscii(ig->graph(), symbols_, plain);
  EXPECT_NE(raw.find("Abc"), std::string::npos) << raw;
}

TEST_F(MiscTest, SelectInEmptySet) {
  ra::Relation r(1);
  r.Insert({1});
  auto s = ra::SelectIn(r, 0, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST_F(MiscTest, ProductWithEmptyIsEmpty) {
  ra::Relation a(1);
  a.Insert({1});
  ra::Relation empty(1);
  EXPECT_TRUE(ra::Product(a, empty).empty());
  EXPECT_TRUE(ra::Product(empty, a).empty());
}

}  // namespace
}  // namespace recur
