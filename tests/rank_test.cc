#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "classify/classifier.h"
#include "datalog/parser.h"
#include "eval/rank.h"
#include "workload/formula_generator.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

class RankTest : public ::testing::Test {
 protected:
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }
  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(RankTest, S8EmpiricalRankRespectsBound) {
  workload::Generator gen(51);
  Load("A", gen.RandomGraph(10, 25));
  Load("B", gen.RandomGraph(10, 25));
  Load("C", gen.RandomGraph(10, 25));
  Load("E", gen.RandomRows(4, 10, 30));
  auto f = catalog::ParseExample(*catalog::FindExample("s8"), &symbols_);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule(catalog::FindExample("s8")->exit_rule,
                                 &symbols_);
  auto rank = EmpiricalRank(*f, *exit, edb_, &symbols_, 6);
  ASSERT_TRUE(rank.ok()) << rank.status();
  EXPECT_LE(*rank, 2);  // Ioannidis bound for (s8)
}

TEST_F(RankTest, S8BoundIsTight) {
  // A hand-built database achieving rank exactly 2: the depth-2 rule
  // (s8b') derives a tuple the shallower depths cannot.
  // Depth-2 body: A(x,y), B(y1,u), C(z1,u1), A(z,y1), B(y2,u1),
  //               C(z2,u2), E(z1,y2,z2,u2).
  ra::Relation a(2);
  a.Insert({1, 2});    // A(x=1, y=2)
  a.Insert({3, 40});   // A(z=3, y1=40)
  Load("A", a);
  ra::Relation b(2);
  b.Insert({40, 5});   // B(y1=40, u=5)
  b.Insert({41, 60});  // B(y2=41, u1=60)
  Load("B", b);
  ra::Relation c(2);
  c.Insert({7, 60});   // C(z1=7, u1=60)
  c.Insert({8, 90});   // C(z2=8, u2=90)
  Load("C", c);
  ra::Relation e(4);
  e.Insert({7, 41, 8, 90});  // E(z1, y2, z2, u2)
  Load("E", e);
  auto f = catalog::ParseExample(*catalog::FindExample("s8"), &symbols_);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule(catalog::FindExample("s8")->exit_rule,
                                 &symbols_);
  auto rank = EmpiricalRank(*f, *exit, edb_, &symbols_, 5);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 2);  // the paper's "tight upper bound" is achieved
}

TEST_F(RankTest, PermutationalRankMatchesTheorem10) {
  // (s5): rank bound LCM-1 = 2, achieved when E is asymmetric.
  ra::Relation e(3);
  e.Insert({1, 2, 3});
  Load("E", e);
  auto f = catalog::ParseExample(*catalog::FindExample("s5"), &symbols_);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule(catalog::FindExample("s5")->exit_rule,
                                 &symbols_);
  auto rank = EmpiricalRank(*f, *exit, edb_, &symbols_, 8);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 2);
}

TEST_F(RankTest, UnboundedFormulaKeepsDeriving) {
  // (s1a) on a long chain: every depth up to the chain length derives new
  // tuples — no finite rank.
  workload::Generator gen(52);
  Load("A", gen.Chain(9));
  Load("E", gen.Chain(9));
  auto f = catalog::ParseExample(*catalog::FindExample("s1a"), &symbols_);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule(catalog::FindExample("s1a")->exit_rule,
                                 &symbols_);
  auto rank = EmpiricalRank(*f, *exit, edb_, &symbols_, 8);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 8);  // hits the probe limit: unbounded in practice
}

// Property: for every random bounded formula, the empirical rank on a
// random database never exceeds the classifier's bound.
class RankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankPropertyTest, EmpiricalRankWithinBound) {
  SymbolTable symbols;
  workload::FormulaGeneratorOptions options;
  options.max_dimension = 3;
  options.max_extra_atoms = 2;
  options.max_atom_arity = 2;
  workload::FormulaGenerator gen(GetParam() + 7000, options);
  for (int i = 0; i < 8; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    if (!cls->bounded || cls->rank_bound > 6) continue;

    ra::Database edb;
    workload::Generator data(GetParam() * 3 + i);
    for (const datalog::Atom& atom : g->formula.rule().body()) {
      if (atom.predicate() == g->formula.recursive_predicate()) continue;
      auto r = edb.GetOrCreate(atom.predicate(), atom.arity());
      ASSERT_TRUE(r.ok());
      if ((*r)->empty()) {
        (*r)->InsertAll(data.RandomRows(atom.arity(), 8, 20));
      }
    }
    auto e = edb.GetOrCreate(symbols.Lookup("E"), g->formula.dimension());
    ASSERT_TRUE(e.ok());
    (*e)->InsertAll(data.RandomRows(g->formula.dimension(), 8, 20));

    auto rank = EmpiricalRank(g->formula, g->exit, edb, &symbols,
                              cls->rank_bound + 3);
    ASSERT_TRUE(rank.ok()) << g->formula.rule().ToString(symbols);
    EXPECT_LE(*rank, cls->rank_bound)
        << g->formula.rule().ToString(symbols);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace recur::eval
