#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

class SpecialPlansTest : public ::testing::Test {
 protected:
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }

  ra::Relation Reference(const char* program_text, const Query& q) {
    auto program = datalog::ParseProgram(program_text, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    auto answers = SemiNaiveAnswer(*program, edb_, q);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return answers.ok() ? *answers : ra::Relation(q.arity());
  }

  Query MakeQuery(std::vector<std::optional<ra::Value>> bindings) {
    Query q;
    q.pred = symbols_.Intern("P");
    q.bindings = std::move(bindings);
    return q;
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

constexpr const char* kS9Program =
    "P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).\n"
    "P(X, Y, Z) :- E(X, Y, Z).\n";

TEST_F(SpecialPlansTest, S9BoundFirstMatchesSemiNaive) {
  workload::Generator gen(41);
  Load("A", gen.RandomGraph(15, 30));
  Load("B", gen.RandomGraph(15, 30));
  Load("E", gen.RandomRows(3, 15, 40));

  for (ra::Value d : {0, 3, 7, 99}) {
    auto plan = S9PlanBoundFirst(edb_, symbols_, d);
    ASSERT_TRUE(plan.ok()) << plan.status();
    Query q = MakeQuery({d, std::nullopt, std::nullopt});
    EXPECT_EQ(plan->ToString(), Reference(kS9Program, q).ToString())
        << "d=" << d;
  }
}

TEST_F(SpecialPlansTest, S9BoundThirdMatchesSemiNaive) {
  workload::Generator gen(42);
  Load("A", gen.RandomGraph(12, 25));
  Load("B", gen.RandomGraph(12, 25));
  Load("E", gen.RandomRows(3, 12, 30));

  for (ra::Value d : {0, 2, 5, 11, 99}) {
    auto plan = S9PlanBoundThird(edb_, symbols_, d);
    ASSERT_TRUE(plan.ok()) << plan.status();
    Query q = MakeQuery({std::nullopt, std::nullopt, d});
    EXPECT_EQ(plan->ToString(), Reference(kS9Program, q).ToString())
        << "d=" << d;
  }
}

TEST_F(SpecialPlansTest, S9ExistenceSemantics) {
  // Hand-built instance where the ∃ part succeeds only at depth 2.
  ra::Relation a(2);
  a.Insert({1, 2});    // answer tuple of A
  a.Insert({20, 30});  // u-chain: A(20, 30) with m=30
  Load("A", a);
  ra::Relation b(2);
  b.Insert({20, 21});  // B(u=20, v=21): M_2 gets 21
  b.Insert({40, 41});  // witness pair for E
  Load("B", b);
  ra::Relation e(3);
  e.Insert({40, 21, 41});  // E(u, m=21∈M_2, v) with B(40,41)
  Load("E", e);

  // d = 30: M_1 = {30}; A(20,30) ∧ B(20,21) -> M_2 = {21};
  // E(40,21,41) ∧ B(40,41) -> witness. All of A × {30} answers.
  auto plan = S9PlanBoundThird(edb_, symbols_, 30);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Contains({1, 2, 30}));
  EXPECT_TRUE(plan->Contains({20, 30, 30}));
  EXPECT_EQ(plan->size(), 2u);

  // d = 999: no witness, no exit rows -> empty.
  auto none = S9PlanBoundThird(edb_, symbols_, 999);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

constexpr const char* kS11Program =
    "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).\n"
    "P(X, Y) :- E(X, Y).\n";

TEST_F(SpecialPlansTest, S11MatchesSemiNaive) {
  workload::Generator gen(43);
  Load("A", gen.RandomGraph(12, 30));
  Load("B", gen.RandomGraph(12, 30));
  Load("C", gen.RandomGraph(12, 40));
  Load("E", gen.RandomGraph(12, 20));

  for (ra::Value d : {0, 1, 4, 8, 11, 99}) {
    auto plan = S11Plan(edb_, symbols_, d);
    ASSERT_TRUE(plan.ok()) << plan.status();
    Query q = MakeQuery({d, std::nullopt});
    EXPECT_EQ(plan->ToString(), Reference(kS11Program, q).ToString())
        << "d=" << d;
  }
}

TEST_F(SpecialPlansTest, S11CyclicDataStillExact) {
  // The pair walk is deduplicated, so cycles in A/B/C are fine.
  ra::Relation a(2);
  a.Insert({1, 2});
  a.Insert({2, 1});
  Load("A", a);
  ra::Relation b(2);
  b.Insert({5, 6});
  b.Insert({6, 5});
  Load("B", b);
  ra::Relation c(2);
  c.Insert({2, 6});
  c.Insert({1, 5});
  Load("C", c);
  ra::Relation e(2);
  e.Insert({1, 5});
  Load("E", e);

  for (ra::Value d : {1, 2}) {
    auto plan = S11Plan(edb_, symbols_, d);
    ASSERT_TRUE(plan.ok());
    Query q = MakeQuery({d, std::nullopt});
    EXPECT_EQ(plan->ToString(), Reference(kS11Program, q).ToString())
        << "d=" << d;
  }
}

constexpr const char* kS12Program =
    "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).\n"
    "P(X, Y, Z) :- E(X, Y, Z).\n";

TEST_F(SpecialPlansTest, S12MatchesSemiNaiveOnAcyclicData) {
  workload::Generator gen(44);
  Load("A", gen.LayeredDag(5, 3, 2, 0));
  Load("B", gen.LayeredDag(5, 3, 2, 0));
  Load("C", gen.RandomGraph(15, 60));
  Load("D", gen.RandomGraph(15, 30));
  Load("E", gen.RandomRows(3, 15, 40));

  for (ra::Value d : {0, 1, 2, 5}) {
    auto plan = S12Plan(edb_, symbols_, d, /*max_levels=*/32);
    ASSERT_TRUE(plan.ok()) << plan.status();
    Query q = MakeQuery({d, std::nullopt, std::nullopt});
    EXPECT_EQ(plan->ToString(), Reference(kS12Program, q).ToString())
        << "d=" << d;
  }
}

TEST_F(SpecialPlansTest, MissingRelationReported) {
  EXPECT_TRUE(S9PlanBoundFirst(edb_, symbols_, 0).status().IsNotFound());
  EXPECT_TRUE(S11Plan(edb_, symbols_, 0).status().IsNotFound());
}

}  // namespace
}  // namespace recur::eval
