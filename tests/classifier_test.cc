#include <set>
#include <string>

#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "classify/boundedness.h"
#include "classify/classifier.h"
#include "classify/stability.h"
#include "datalog/parser.h"

namespace recur::classify {
namespace {

using catalog::PaperExample;
using catalog::PaperExamples;

class ClassifierTest : public ::testing::Test {
 protected:
  Classification MustClassify(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = datalog::LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    auto cls = Classify(*f);
    EXPECT_TRUE(cls.ok()) << cls.status();
    return *cls;
  }
  SymbolTable symbols_;
};

// ---- TAB1: the paper's examples classify exactly as stated. -------------

class PaperExampleTest : public ::testing::TestWithParam<PaperExample> {};

TEST_P(PaperExampleTest, MatchesPaper) {
  const PaperExample& e = GetParam();
  SymbolTable symbols;
  auto f = catalog::ParseExample(e, &symbols);
  ASSERT_TRUE(f.ok()) << f.status();
  auto cls = Classify(*f);
  ASSERT_TRUE(cls.ok()) << cls.status();
  EXPECT_EQ(cls->formula_class, e.expected_class)
      << e.id << ": got " << ToString(cls->formula_class) << "\n"
      << cls->Summary(symbols);
  EXPECT_EQ(cls->strongly_stable, e.strongly_stable) << e.id;
  EXPECT_EQ(cls->transformable_to_stable, e.transformable) << e.id;
  if (e.transformable) {
    EXPECT_EQ(cls->unfold_count, e.unfold_count) << e.id;
  }
  EXPECT_EQ(cls->bounded, e.bounded) << e.id;
  if (e.bounded) {
    EXPECT_EQ(cls->rank_bound, e.rank_bound) << e.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperExamples, PaperExampleTest,
    ::testing::ValuesIn(PaperExamples()),
    [](const ::testing::TestParamInfo<PaperExample>& info) {
      return std::string(info.param.id);
    });

// ---- Component-level details. --------------------------------------------

TEST_F(ClassifierTest, S3HasThreeUnitRotationalComponents) {
  Classification cls = MustClassify(
      "P(X, Y, Z) :- A(X, U), B(Y, V), P(U, V, W), C(W, Z).");
  int a1 = 0;
  for (const ComponentInfo& c : cls.components) {
    if (c.component_class == ComponentClass::kUnitRotational) ++a1;
  }
  EXPECT_EQ(a1, 3);
  EXPECT_TRUE(cls.strongly_stable);
}

TEST_F(ClassifierTest, S6ComponentWeights) {
  Classification cls = MustClassify(
      "P(X, Y, Z, U, V, W) :- P(Z, Y, U, X, W, V).");
  std::multiset<int> weights;
  for (const ComponentInfo& c : cls.components) {
    if (c.component_class != ComponentClass::kTrivial) {
      weights.insert(c.cycle_weight);
    }
  }
  EXPECT_EQ(weights, (std::multiset<int>{1, 2, 3}));
  EXPECT_TRUE(cls.permutational);
  EXPECT_EQ(cls.unfold_count, 6);
  EXPECT_EQ(cls.rank_bound, 5);  // Theorem 10: LCM - 1
}

TEST_F(ClassifierTest, S7FourCycles) {
  Classification cls = MustClassify(
      "P(X, Y, Z, U, W, S, V) :- A(X, T), P(T, Z, Y, W, S, R, V), "
      "B(U, R).");
  std::multiset<int> weights;
  for (const ComponentInfo& c : cls.components) {
    if (c.component_class != ComponentClass::kTrivial) {
      weights.insert(c.cycle_weight);
    }
  }
  EXPECT_EQ(weights, (std::multiset<int>{1, 1, 2, 3}));
  EXPECT_EQ(cls.unfold_count, 6);
  EXPECT_FALSE(cls.bounded);
  EXPECT_FALSE(cls.permutational);
}

TEST_F(ClassifierTest, S12MixedComponents) {
  Classification cls = MustClassify(
      "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).");
  std::multiset<ComponentClass> classes;
  for (const ComponentInfo& c : cls.components) {
    if (c.component_class != ComponentClass::kTrivial) {
      classes.insert(c.component_class);
    }
  }
  EXPECT_EQ(classes, (std::multiset<ComponentClass>{
                         ComponentClass::kUnitRotational,
                         ComponentClass::kDependent}));
}

TEST_F(ClassifierTest, PositionsTrackComponents) {
  Classification cls = MustClassify("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  // Two components, each owning one position.
  ASSERT_EQ(cls.components.size(), 2u);
  std::set<int> all_positions;
  for (const ComponentInfo& c : cls.components) {
    for (int p : c.positions) all_positions.insert(p);
  }
  EXPECT_EQ(all_positions, (std::set<int>{0, 1}));
}

TEST_F(ClassifierTest, DependentViaChord) {
  // Theorem 8 CASE 3: an extra undirected edge across a one-directional
  // cycle makes it dependent.
  Classification cls = MustClassify(
      "P(X1, X2) :- A(X1, Y2), B(X2, Y1), C(X1, Y1), P(Y1, Y2).");
  EXPECT_EQ(cls.formula_class, FormulaClass::kE);
  EXPECT_FALSE(cls.transformable_to_stable);
}

TEST_F(ClassifierTest, UndirectedEdgeBetweenTwoTails) {
  // Theorem 8 CASE 1: undirected edge whose both nodes are tails of
  // directed edges cannot be stable.
  Classification cls = MustClassify("P(X, Y) :- A(X, Y), P(X1, Y1), "
                                    "B(X1, X2), C(Y1, Y2), D(X2, Y2).");
  EXPECT_FALSE(cls.strongly_stable);
}

TEST_F(ClassifierTest, PendantUndirectedEdgeKeepsIndependence) {
  // A pendant non-recursive atom hanging off a permutational cycle leaves
  // the cycle independent and one-directional (weight 2, still A4-shaped).
  Classification cls =
      MustClassify("P(X, Y) :- A(Y, W), P(Y, X).");
  ASSERT_EQ(cls.components.size(), 1u);
  EXPECT_EQ(cls.components[0].component_class,
            ComponentClass::kNonUnitPermutational);
  EXPECT_EQ(cls.components[0].cycle_weight, 2);
}

// ---- Theorem 1: syntactic vs semantic strong stability agree. ------------

TEST_P(PaperExampleTest, Theorem1SemanticAgreement) {
  const PaperExample& e = GetParam();
  SymbolTable symbols;
  auto f = catalog::ParseExample(e, &symbols);
  ASSERT_TRUE(f.ok());
  auto cls = Classify(*f);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(SemanticallyStronglyStable(*cls), cls->strongly_stable) << e.id;
}

// ---- Theorems 2/4: the semantic stability period equals the LCM. ---------

TEST_P(PaperExampleTest, Theorem4PeriodMatchesUnfoldCount) {
  const PaperExample& e = GetParam();
  if (!e.transformable) return;
  SymbolTable symbols;
  auto f = catalog::ParseExample(e, &symbols);
  ASSERT_TRUE(f.ok());
  auto cls = Classify(*f);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(SemanticStabilityPeriod(*cls), cls->unfold_count) << e.id;
}

TEST_F(ClassifierTest, NonTransformableHasNoIdentityPeriod) {
  // (s9) loses determinedness information; f^L is never the identity.
  Classification cls =
      MustClassify("P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).");
  EXPECT_EQ(SemanticStabilityPeriod(cls, 64), 0);
}

TEST_F(ClassifierTest, AdornmentPropagationS4a) {
  // Positions rotate 1 -> 3 -> 2 -> 1 in (s4a).
  Classification cls = MustClassify(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  EXPECT_EQ(PropagateAdornment(cls, 0b001), 0b100u);
  EXPECT_EQ(PropagateAdornment(cls, 0b100), 0b010u);
  EXPECT_EQ(PropagateAdornment(cls, 0b010), 0b001u);
  EXPECT_EQ(PropagateAdornment(cls, 0b111), 0b111u);
  EXPECT_EQ(PropagateAdornment(cls, 0), 0u);
}

TEST_F(ClassifierTest, AdornmentPropagationDependent) {
  // (s11): binding x determines both recursive positions after one step.
  Classification cls = MustClassify(
      "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).");
  EXPECT_EQ(PropagateAdornment(cls, 0b01), 0b11u);
}

// ---- Boundedness. ---------------------------------------------------------

TEST_F(ClassifierTest, IoannidisBoundMatchesClassifier) {
  SymbolTable symbols;
  const PaperExample* s8 = catalog::FindExample("s8");
  ASSERT_NE(s8, nullptr);
  auto f = catalog::ParseExample(*s8, &symbols);
  ASSERT_TRUE(f.ok());
  auto info = IoannidisBound(*f);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->bounded);
  EXPECT_EQ(info->rank_bound, 2);
}

TEST_F(ClassifierTest, IoannidisRejectsPermutational) {
  SymbolTable symbols;
  auto f = catalog::ParseExample(*catalog::FindExample("s5"), &symbols);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(IoannidisBound(*f).ok());
}

TEST_F(ClassifierTest, IoannidisUnboundedForNonZeroCycle) {
  SymbolTable symbols;
  auto f = catalog::ParseExample(*catalog::FindExample("s9"), &symbols);
  ASSERT_TRUE(f.ok());
  auto info = IoannidisBound(*f);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->bounded);
}

TEST_F(ClassifierTest, BoundednessSourceReporting) {
  SymbolTable symbols;
  auto s5 = catalog::ParseExample(*catalog::FindExample("s5"), &symbols);
  auto cls5 = Classify(*s5);
  ASSERT_TRUE(cls5.ok());
  EXPECT_EQ(ComputeBoundedness(*cls5).source,
            BoundednessSource::kPermutational);

  SymbolTable symbols8;
  auto s8 = catalog::ParseExample(*catalog::FindExample("s8"), &symbols8);
  auto cls8 = Classify(*s8);
  ASSERT_TRUE(cls8.ok());
  EXPECT_EQ(ComputeBoundedness(*cls8).source, BoundednessSource::kIoannidis);
}

TEST_F(ClassifierTest, CombinedBoundedness) {
  // A2 self-loop (Y) + class-D part: bounded via the combined bound
  // r + LCM - 1 (Theorem 11 gives boundedness; our bound composes the two
  // parts).
  Classification cls = MustClassify(
      "P(X, Y, Z) :- C(X, Z1), B(Y), P(X1, Z1, Z).");
  // Directed: X->X1, Y->Z1, Z->Z; undirected: X~Z1. The {Y}->{X,Z1}->{X1}
  // chain is a class-D component with max path weight 2; Z->Z is a unit
  // permutational (A2) component.
  EXPECT_TRUE(cls.bounded);
  EXPECT_EQ(cls.rank_bound, 2);  // r=2, LCM=1 -> 2 + 1 - 1
  EXPECT_EQ(ComputeBoundedness(cls).source, BoundednessSource::kCombined);
}

TEST_F(ClassifierTest, AdornmentQueryFormNotation) {
  EXPECT_EQ(AdornmentToQueryForm(0b001, 3), "P(d,v,v)");
  EXPECT_EQ(AdornmentToQueryForm(0b110, 3), "P(v,d,d)");
  EXPECT_EQ(AdornmentToQueryForm(0, 2), "P(v,v)");
}

TEST_F(ClassifierTest, AdornmentTableS12MatchesPaper) {
  // §10: "incoming query: P(d,v,v); first expansion: P(d,d,v); second
  // expansion: P(d,d,v)" with cycle period 1.
  Classification cls = MustClassify(
      "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).");
  std::string table = AdornmentTable(cls, 0b001, 3);
  EXPECT_NE(table.find("incoming query : P(d,v,v)"), std::string::npos)
      << table;
  EXPECT_NE(table.find("expansion 1    : P(d,d,v)"), std::string::npos)
      << table;
  EXPECT_NE(table.find("expansion 2    : P(d,d,v)"), std::string::npos)
      << table;
  EXPECT_NE(table.find("cycle period 1"), std::string::npos) << table;
}

TEST_F(ClassifierTest, AdornmentTableS4aPeriodThree) {
  Classification cls = MustClassify(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  std::string table = AdornmentTable(cls, 0b001, 6);
  EXPECT_NE(table.find("cycle period 3"), std::string::npos) << table;
}

TEST_F(ClassifierTest, SummaryMentionsClassAndBound) {
  SymbolTable symbols;
  auto f = catalog::ParseExample(*catalog::FindExample("s8"), &symbols);
  auto cls = Classify(*f);
  ASSERT_TRUE(cls.ok());
  std::string summary = cls->Summary(symbols);
  EXPECT_NE(summary.find("formula class: B"), std::string::npos) << summary;
  EXPECT_NE(summary.find("bounded with rank <= 2"), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace recur::classify
