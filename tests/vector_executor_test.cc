// Edge-case and ablation coverage for the vectorized batch executor:
// arity-0 relations through the batch sink, empty frontiers, selections
// that filter every lane, result identity across register-batch widths
// (tuple-at-a-time vs. mid-size vs. default), governance faults and
// cancellation at per-batch poll points, the batch/Bloom telemetry in
// EvalStats and ExplainPlan, and a tsan-labeled parallel batch stress.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/conjunctive.h"
#include "eval/execution_context.h"
#include "eval/plan/executor.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

using util::FaultSpec;
using util::ScopedFault;

class VectorExecutorTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Instance().Reset(); }

  datalog::Rule MustRule(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }
  datalog::Program MustProgram(const char* text) {
    auto program = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    return *program;
  }
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }
  RelationLookup Lookup() {
    return [this](SymbolId p) { return edb_.Find(p); };
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(VectorExecutorTest, ArityZeroHeadThroughBatchSink) {
  ra::Relation a(2);
  for (int i = 0; i < 100; ++i) a.Insert({i, i + 1});
  Load("A", a);
  datalog::Rule rule = MustRule("P() :- A(X, Y).");
  for (size_t batch : {size_t{0}, size_t{1}, size_t{3}}) {
    ConjunctiveOptions conj;
    conj.batch_rows = batch;
    auto result = EvaluateRule(rule, Lookup(), conj);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->arity(), 0);
    // Every input row emits the same empty tuple; dedup keeps exactly one.
    EXPECT_EQ(result->size(), 1u);
  }
}

TEST_F(VectorExecutorTest, ArityZeroGuardActsAsExistence) {
  ra::Relation a(1);
  a.Insert({1});
  a.Insert({2});
  Load("A", a);
  Load("T", ra::Relation(0));  // empty nullary guard
  datalog::Rule rule = MustRule("P(X) :- A(X), T().");
  auto empty = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ra::Relation t(0);
  t.Insert(std::initializer_list<ra::Value>{});
  Load("T", t);
  auto full = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->ToString(), "{(1), (2)}");
}

TEST_F(VectorExecutorTest, EmptyFrontierOverrideProducesNothing) {
  ra::Relation a(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  Load("A", a);
  Load("P", a);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X, Z), P(Z, Y).");
  // Semi-naive shape: the recursive atom reads an empty delta.
  ra::Relation empty_delta(2);
  ConjunctiveOptions conj;
  conj.override_index = 1;
  conj.override_relation = &empty_delta;
  auto result = EvaluateRule(rule, Lookup(), conj);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->empty());
}

TEST_F(VectorExecutorTest, SelectionFiltersEveryLane) {
  ra::Relation a(2);
  for (int i = 0; i < 3000; ++i) a.Insert({i, i + 1});
  Load("A", a);
  // The repeated-variable selection never matches: every lane of every
  // batch is filtered before it reaches the sink.
  datalog::Rule rule = MustRule("P(X) :- A(X, X).");
  for (size_t batch : {size_t{0}, size_t{1}}) {
    ConjunctiveOptions conj;
    conj.batch_rows = batch;
    auto result = EvaluateRule(rule, Lookup(), conj);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->empty());
  }
}

TEST_F(VectorExecutorTest, ResultsIdenticalAcrossBatchWidths) {
  // A join whose output (~8k rows) straddles many 3-lane batches and
  // several default-width batches, so staged commits land mid-batch at
  // every width. Identity across widths is the core batching invariant.
  workload::Generator gen(77);
  ra::Relation edges = gen.RandomGraph(400, 2000);
  Load("A", edges);
  datalog::Rule rule = MustRule("P(X, Z) :- A(X, Y), A(Y, Z).");
  ConjunctiveOptions base;
  base.batch_rows = 1;  // tuple-at-a-time reference
  auto reference = EvaluateRule(rule, Lookup(), base);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->size(), 1000u);
  for (size_t batch : {size_t{3}, size_t{1024}, size_t{0}}) {
    ConjunctiveOptions conj;
    conj.batch_rows = batch;
    auto result = EvaluateRule(rule, Lookup(), conj);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->ToString(), reference->ToString())
        << "batch_rows=" << batch;
  }
}

TEST_F(VectorExecutorTest, FixpointIdenticalAcrossBatchWidths) {
  workload::Generator gen(78);
  ra::Relation edges = gen.RandomGraph(300, 700);
  Load("A", edges);
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  const SymbolId pred = symbols_.Lookup("P");
  FixpointOptions no_vector;
  no_vector.executor_batch_rows = 1;
  auto reference = SemiNaiveEvaluate(program, edb_, no_vector);
  ASSERT_TRUE(reference.ok());
  for (size_t batch : {size_t{5}, size_t{0}}) {
    FixpointOptions options;
    options.executor_batch_rows = batch;
    auto idb = SemiNaiveEvaluate(program, edb_, options);
    ASSERT_TRUE(idb.ok());
    EXPECT_EQ(idb->at(pred).ToString(), reference->at(pred).ToString())
        << "batch_rows=" << batch;
  }
}

TEST_F(VectorExecutorTest, MidBatchFaultSurfacesStatus) {
  // >4096 candidate rows guarantee at least one per-batch governance poll;
  // the armed fault fires there and must surface as the rule's status.
  ra::Relation a(2);
  for (int i = 0; i < 6000; ++i) a.Insert({i, i + 1});
  Load("A", a);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X, Y).");
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kStatus;
  spec.code = StatusCode::kInternal;
  spec.message = "injected mid-batch";
  ScopedFault fault("plan.executor.batch", spec);
  auto result = EvaluateRule(rule, Lookup());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST_F(VectorExecutorTest, CancelledContextStopsMidBatch) {
  ra::Relation a(2);
  for (int i = 0; i < 6000; ++i) a.Insert({i, i + 1});
  Load("A", a);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X, Y).");
  ExecutionContext context;
  context.Cancel();
  ConjunctiveOptions conj;
  conj.context = &context;
  auto result = EvaluateRule(rule, Lookup(), conj);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST_F(VectorExecutorTest, StatsRecordBatchesAndBloomCounters) {
  workload::Generator gen(79);
  ra::Relation edges = gen.RandomGraph(500, 1500);
  Load("A", edges);
  datalog::Rule rule = MustRule("P(X, Z) :- A(X, Y), A(Y, Z).");
  ConjunctiveOptions conj;
  conj.explain = true;
  EvalStats stats;
  auto result = EvaluateRule(rule, Lookup(), conj, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(stats.batches, 0u);
  // Every probe lane consults the index's Bloom filter first.
  EXPECT_GT(stats.bloom_probes, 0u);
  EXPECT_LE(stats.bloom_skips, stats.bloom_probes);
  ASSERT_EQ(stats.plans.size(), 1u);
  EXPECT_NE(stats.plans[0].find("batches="), std::string::npos);
  EXPECT_NE(stats.plans[0].find("bloom probes="), std::string::npos);
}

TEST_F(VectorExecutorTest, BloomFilterPrunesMissingKeys) {
  // Probe keys drawn from a disjoint value range: every probe misses, and
  // the Bloom filter should prune (nearly) all of them without touching a
  // bucket. Assert it prunes at least one — exactness is hash-dependent.
  ra::Relation build(2);
  for (int i = 0; i < 2000; ++i) build.Insert({i, i});
  ra::Relation probe(2);
  for (int i = 10000; i < 12000; ++i) probe.Insert({i, i});
  Load("B", build);
  Load("A", probe);
  datalog::Rule rule = MustRule("P(X) :- A(X, Y), B(Y, Z).");
  EvalStats stats;
  auto result = EvaluateRule(rule, Lookup(), {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_GT(stats.bloom_skips, 0u);
}

// tsan: the parallel engine pushes register batches through per-worker
// runners that flush telemetry into the shared plan's atomic counters.
TEST_F(VectorExecutorTest, ParallelBatchStressMatchesSerial) {
  workload::Generator gen(80);
  ra::Relation edges = gen.RandomGraph(600, 1800);
  Load("A", edges);
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  const SymbolId pred = symbols_.Lookup("P");
  auto reference = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(reference.ok());
  const size_t want = reference->at(pred).size();
  for (size_t batch : {size_t{0}, size_t{1}, size_t{7}}) {
    FixpointOptions options;
    options.num_threads = 4;
    options.executor_batch_rows = batch;
    EvalStats stats;
    auto idb = SemiNaiveEvaluate(program, edb_, options, &stats);
    ASSERT_TRUE(idb.ok()) << idb.status();
    EXPECT_EQ(idb->at(pred).size(), want) << "batch_rows=" << batch;
    EXPECT_GT(stats.batches, 0u);
  }
}

TEST_F(VectorExecutorTest, InsertBatchMatchesPointInserts) {
  // The executor's bulk sink and the point Insert path must agree on
  // dedup semantics, including duplicates inside one batch.
  std::vector<ra::Value> rows;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 500; ++i) {
      rows.push_back(i);
      rows.push_back(i % 7);
    }
  }
  ra::Relation batched(2);
  EXPECT_EQ(batched.InsertBatch(rows.data(), rows.size() / 2), 500u);
  EXPECT_EQ(batched.InsertBatch(rows.data(), rows.size() / 2), 0u);
  ra::Relation pointwise(2);
  for (size_t i = 0; i < rows.size() / 2; ++i) {
    pointwise.Insert({rows[2 * i], rows[2 * i + 1]});
  }
  EXPECT_EQ(batched.ToString(), pointwise.ToString());
}

}  // namespace
}  // namespace recur::eval
