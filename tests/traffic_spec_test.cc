// Traffic-spec parser coverage: the committed specs under bench/specs/
// must load (they are what CI runs), structural mistakes must come back as
// typed Statuses, and — mirroring parser_robustness_test.cc — every
// truncation and a randomized mutation sweep of a seed spec must return
// cleanly rather than crash or hang.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>

#include "traffic/spec.h"
#include "util/status.h"

namespace recur::traffic {
namespace {

constexpr const char* kSeedSpec = R"({
  "name": "seed",
  "seed": 11,
  "example": "s1a",
  "query_pred": "P",
  "edb": [
    {"relation": "A", "kind": "chain", "n": 16},
    {"relation": "E", "kind": "random_graph", "n": 16, "m": 32}
  ],
  "phases": [
    {
      "name": "p0",
      "threads": 2,
      "ops": 10,
      "arrival_rate": 25.0,
      "mix": [
        {"op": "fixpoint", "weight": 1, "engine": "seminaive",
         "deadline_seconds": 1.0},
        {"op": "query", "weight": 3, "bind": [0]},
        {"op": "insert", "weight": 1, "relation": "A", "count": 2}
      ],
      "faults": [
        {"site": "plan.executor.batch", "kind": "status",
         "code": "internal", "trigger_on_hit": 3, "sticky": false}
      ]
    }
  ]
})";

/// Parse with a wall-clock budget, as in parser_robustness_test.cc: the
/// spec parser is one linear JSON pass plus validation, so stalling means
/// a loop stopped making progress.
Result<TrafficSpec> TimedParse(const std::string& text) {
  auto start = std::chrono::steady_clock::now();
  auto result = ParseTrafficSpec(text);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 0.25) << "spec parser stalled";
  return result;
}

TEST(TrafficSpecTest, ParsesSeedSpec) {
  auto spec = ParseTrafficSpec(kSeedSpec);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "seed");
  EXPECT_EQ(spec->seed, 11u);
  EXPECT_EQ(spec->example, "s1a");
  ASSERT_EQ(spec->edb.size(), 2u);
  EXPECT_EQ(spec->edb[1].kind, "random_graph");
  ASSERT_EQ(spec->phases.size(), 1u);
  const PhaseSpec& phase = spec->phases[0];
  EXPECT_EQ(phase.threads, 2);
  EXPECT_EQ(phase.ops, 10u);
  EXPECT_DOUBLE_EQ(phase.arrival_rate, 25.0);
  ASSERT_EQ(phase.mix.size(), 3u);
  EXPECT_EQ(phase.mix[0].kind, OpSpec::Kind::kFixpoint);
  EXPECT_DOUBLE_EQ(phase.mix[0].deadline_seconds, 1.0);
  EXPECT_EQ(phase.mix[1].kind, OpSpec::Kind::kQuery);
  ASSERT_EQ(phase.mix[1].bind_positions.size(), 1u);
  EXPECT_EQ(phase.mix[2].relation, "A");
  ASSERT_EQ(phase.faults.size(), 1u);
  EXPECT_EQ(phase.faults[0].site, "plan.executor.batch");
  EXPECT_EQ(phase.faults[0].trigger_on_hit, 3);
  EXPECT_FALSE(phase.faults[0].sticky);
}

// The resident-server op kinds parse, carry their relation/bind fields,
// and enforce the same relation-required validation as plain writes.
TEST(TrafficSpecTest, ServerOpKindsParse) {
  auto spec = TimedParse(R"({
    "name": "server_ops", "seed": 2,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 8}],
    "phases": [{"name": "p", "ops": 4, "mix": [
      {"op": "server_query", "weight": 4, "bind": [0]},
      {"op": "server_insert", "weight": 1, "relation": "E", "count": 3},
      {"op": "server_delete", "weight": 1, "relation": "E", "count": 1}
    ]}]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  const PhaseSpec& phase = spec->phases[0];
  ASSERT_EQ(phase.mix.size(), 3u);
  EXPECT_EQ(phase.mix[0].kind, OpSpec::Kind::kServerQuery);
  ASSERT_EQ(phase.mix[0].bind_positions.size(), 1u);
  EXPECT_EQ(phase.mix[1].kind, OpSpec::Kind::kServerInsert);
  EXPECT_EQ(phase.mix[1].relation, "E");
  EXPECT_EQ(phase.mix[1].count, 3);
  EXPECT_EQ(phase.mix[2].kind, OpSpec::Kind::kServerDelete);

  for (const char* op : {"server_insert", "server_delete"}) {
    auto bad = TimedParse(std::string(R"({
      "name": "x", "example": "s1a",
      "edb": [{"relation": "A", "kind": "chain", "n": 4}],
      "phases": [{"name": "p", "ops": 1, "mix": [{"op": ")") +
                          op + R"("}]}]})");
    ASSERT_FALSE(bad.ok()) << op << " without relation accepted";
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument) << op;
  }
}

// Durability op kinds and the retry knobs parse; nonsense values are
// rejected as kInvalidArgument.
TEST(TrafficSpecTest, DurabilityOpKindsAndRetriesParse) {
  auto spec = TimedParse(R"({
    "name": "durable", "seed": 3,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 8}],
    "phases": [{"name": "p", "ops": 6, "mix": [
      {"op": "server_insert", "weight": 4, "relation": "E", "count": 2,
       "retries": 3, "retry_backoff_seconds": 0.002},
      {"op": "server_snapshot", "weight": 1},
      {"op": "server_restart", "weight": 1}
    ]}]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  const PhaseSpec& phase = spec->phases[0];
  ASSERT_EQ(phase.mix.size(), 3u);
  EXPECT_EQ(phase.mix[0].retries, 3);
  EXPECT_DOUBLE_EQ(phase.mix[0].retry_backoff_seconds, 0.002);
  EXPECT_EQ(phase.mix[1].kind, OpSpec::Kind::kServerSnapshot);
  EXPECT_EQ(phase.mix[2].kind, OpSpec::Kind::kServerRestart);
  // Ops default to no retries.
  EXPECT_EQ(phase.mix[1].retries, 0);

  for (const char* field :
       {R"("retries": -1)", R"("retry_backoff_seconds": 0.0)",
        R"("retry_backoff_seconds": -2.0)"}) {
    auto bad = TimedParse(std::string(R"({
      "name": "x", "example": "s1a",
      "edb": [{"relation": "A", "kind": "chain", "n": 4}],
      "phases": [{"name": "p", "ops": 1, "mix": [
        {"op": "insert", "relation": "A", )") +
                          field + "}]}]}");
    ASSERT_FALSE(bad.ok()) << field << " accepted";
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument) << field;
  }
}

TEST(TrafficSpecTest, SharedServerAndAdmissionParse) {
  auto spec = TimedParse(R"({
    "name": "shared", "seed": 5,
    "rules": "P(X, Y) :- E(X, Y).\n",
    "query_pred": "P",
    "shared_server": true,
    "admission": {"queue_depth": 16, "group_batches": 4,
                  "watchdog_seconds": 0.5},
    "edb": [{"relation": "E", "kind": "chain", "n": 8}],
    "phases": [{"name": "p", "ops": 6, "mix": [
      {"op": "server_query", "weight": 2, "bind": [0]},
      {"op": "server_insert", "weight": 1, "relation": "E",
       "deadline_seconds": 0.05}
    ]}]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->shared_server);
  EXPECT_EQ(spec->admission_queue_depth, 16);
  EXPECT_EQ(spec->admission_group_batches, 4);
  EXPECT_DOUBLE_EQ(spec->watchdog_seconds, 0.5);

  // Defaults apply when the admission block is omitted.
  auto defaults = TimedParse(R"({
    "name": "shared", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
    "shared_server": true,
    "edb": [{"relation": "E", "kind": "chain", "n": 8}],
    "phases": [{"name": "p", "ops": 2,
                "mix": [{"op": "server_query", "bind": [0]}]}]
  })");
  ASSERT_TRUE(defaults.ok()) << defaults.status();
  EXPECT_TRUE(defaults->shared_server);
  EXPECT_EQ(defaults->admission_queue_depth, 64);
  EXPECT_EQ(defaults->admission_group_batches, 8);
  EXPECT_DOUBLE_EQ(defaults->watchdog_seconds, 0.0);

  struct Case {
    const char* what;
    const char* text;
  } cases[] = {
      {"admission without shared_server", R"({
        "name": "x", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
        "admission": {"queue_depth": 8},
        "edb": [{"relation": "E", "kind": "chain", "n": 8}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "server_query", "bind": [0]}]}]})"},
      {"zero queue_depth", R"({
        "name": "x", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
        "shared_server": true, "admission": {"queue_depth": 0},
        "edb": [{"relation": "E", "kind": "chain", "n": 8}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "server_query", "bind": [0]}]}]})"},
      {"negative watchdog", R"({
        "name": "x", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
        "shared_server": true, "admission": {"watchdog_seconds": -1.0},
        "edb": [{"relation": "E", "kind": "chain", "n": 8}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "server_query", "bind": [0]}]}]})"},
      // One server serves every worker, so per-worker restart/snapshot
      // ops make no sense in shared mode.
      {"server_restart in shared mode", R"({
        "name": "x", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
        "shared_server": true,
        "edb": [{"relation": "E", "kind": "chain", "n": 8}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "server_restart"}]}]})"},
      {"server_snapshot in shared mode", R"({
        "name": "x", "rules": "P(X, Y) :- E(X, Y).\n", "query_pred": "P",
        "shared_server": true,
        "edb": [{"relation": "E", "kind": "chain", "n": 8}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "server_snapshot"}]}]})"},
  };
  for (const Case& c : cases) {
    auto bad = TimedParse(c.text);
    ASSERT_FALSE(bad.ok()) << c.what << " accepted";
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument) << c.what;
  }
}

TEST(TrafficSpecTest, CommittedSpecsLoad) {
  for (const char* name : {"smoke.json", "paper_mixed.json", "resident.json",
                           "resident_shared.json"}) {
    const std::string path = std::string(RECUR_SPEC_DIR) + "/" + name;
    auto spec = LoadTrafficSpecFile(path);
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status();
    EXPECT_FALSE(spec->phases.empty()) << path;
    for (const PhaseSpec& phase : spec->phases) {
      EXPECT_FALSE(phase.mix.empty()) << path << " phase " << phase.name;
    }
  }
}

TEST(TrafficSpecTest, MalformedJsonIsParseError) {
  auto spec = TimedParse("{\"name\": \"x\", ");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

TEST(TrafficSpecTest, StructuralMistakesAreInvalidArgument) {
  struct Case {
    const char* what;
    const char* text;
  } cases[] = {
      {"top level not an object", "[1, 2]"},
      {"no phases", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}], "phases": []})"},
      {"both example and rules", R"({"name": "x", "example": "s1a",
        "rules": "P(X,Y) :- A(X,Y).",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "query"}]}]})"},
      {"unknown generator kind", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "torus", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "query"}]}]})"},
      {"unknown op kind", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "compact"}]}]})"},
      {"unknown engine", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "fixpoint", "engine": "magic"}]}]})"},
      {"op against undeclared relation", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "insert", "relation": "Z"}]}]})"},
      {"duplicate op labels", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "query", "label": "q"},
                            {"op": "query", "label": "q", "bind": [0]}]}]})"},
      {"nonpositive weight", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1,
                    "mix": [{"op": "query", "weight": 0}]}]})"},
      {"neither ops nor duration", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "mix": [{"op": "query"}]}]})"},
      {"unknown fault kind", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1, "mix": [{"op": "query"}],
                    "faults": [{"site": "s", "kind": "jitter"}]}]})"},
      {"unknown fault code", R"({"name": "x", "example": "s1a",
        "edb": [{"relation": "A", "kind": "chain", "n": 4}],
        "phases": [{"name": "p", "ops": 1, "mix": [{"op": "query"}],
                    "faults": [{"site": "s", "code": "eaten_by_grue"}]}]})"},
  };
  for (const Case& c : cases) {
    auto spec = TimedParse(c.text);
    ASSERT_FALSE(spec.ok()) << c.what;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << c.what;
    EXPECT_FALSE(spec.status().message().empty()) << c.what;
  }
}

TEST(TrafficSpecTest, MissingFileIsNotFound) {
  auto spec = LoadTrafficSpecFile("/nonexistent/zzz.json");
  ASSERT_FALSE(spec.ok());
}

// Robustness sweep, mirroring ParserRobustnessTest: every prefix of the
// seed spec must come back as a clean Status (truncated JSON is never
// valid here, since the document only closes at the end).
TEST(TrafficSpecRobustnessTest, EveryTruncationReturnsCleanly) {
  const std::string text(kSeedSpec);
  for (size_t cut = 0; cut < text.size(); ++cut) {
    auto spec = TimedParse(text.substr(0, cut));
    ASSERT_FALSE(spec.ok()) << "accepted truncation at " << cut;
    EXPECT_FALSE(spec.status().message().empty());
  }
}

// Byte-level mutation sweep: flip, delete, or insert one byte at a random
// position. The parser must return (ok or error) without crashing; when it
// errors the Status carries a message.
TEST(TrafficSpecRobustnessTest, RandomSingleByteMutationsReturnCleanly) {
  const std::string base(kSeedSpec);
  std::mt19937_64 rng(1234);
  const char alphabet[] = "{}[]\",:0123456789.eE+-azAZ \n\x01\x7f";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = base;
    size_t pos = rng() % text.size();
    char c = alphabet[rng() % (sizeof(alphabet) - 1)];
    switch (rng() % 3) {
      case 0:
        text[pos] = c;
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, c);
        break;
    }
    auto spec = TimedParse(text);
    if (!spec.ok()) {
      EXPECT_FALSE(spec.status().message().empty()) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace recur::traffic
