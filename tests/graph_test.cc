#include <algorithm>

#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "datalog/parser.h"
#include "graph/components.h"
#include "graph/cycles.h"
#include "graph/igraph.h"
#include "graph/paths.h"
#include "graph/render.h"
#include "graph/resolution_graph.h"

namespace recur::graph {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  datalog::LinearRecursiveRule MustFormula(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = datalog::LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }

  IGraph MustIGraph(const char* text) {
    auto g = IGraph::Build(MustFormula(text));
    EXPECT_TRUE(g.ok()) << g.status();
    return *g;
  }

  SymbolTable symbols_;
};

TEST_F(GraphTest, S1aIGraphShape) {
  // Figure 1(a): vertices x, y, z; undirected x-z labeled A; directed
  // x->z and self-loop y->y labeled P.
  IGraph ig = MustIGraph("P(X, Y) :- A(X, Z), P(Z, Y).");
  const HybridGraph& g = ig.graph();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.UndirectedEdges().size(), 1u);
  EXPECT_EQ(g.DirectedEdges().size(), 2u);
  // Position 0: x -> z.
  const Edge& e0 = g.edge(ig.PositionEdge(0));
  EXPECT_EQ(symbols_.NameOf(g.vertex(e0.from).var), "X");
  EXPECT_EQ(symbols_.NameOf(g.vertex(e0.to).var), "Z");
  EXPECT_EQ(e0.weight(), 1);
  // Position 1: y -> y (self-loop).
  const Edge& e1 = g.edge(ig.PositionEdge(1));
  EXPECT_EQ(e1.from, e1.to);
}

TEST_F(GraphTest, S1bIGraphShape) {
  // Figure 1(b): P(x,y,z) :- A(x,y) ∧ P(u,z,v) ∧ B(u,v).
  IGraph ig = MustIGraph("P(X, Y, Z) :- A(X, Y), P(U, Z, V), B(U, V).");
  EXPECT_EQ(ig.graph().num_vertices(), 5);  // x y z u v
  EXPECT_EQ(ig.graph().UndirectedEdges().size(), 2u);
  EXPECT_EQ(ig.graph().DirectedEdges().size(), 3u);
}

TEST_F(GraphTest, UndirectedSelfLoopDropped) {
  // A(Z, Z) would create an undirected self-loop; it must be dropped.
  IGraph ig = MustIGraph("P(X, Y) :- A(Y, Y), P(X, Y).");
  EXPECT_EQ(ig.graph().UndirectedEdges().size(), 0u);
}

TEST_F(GraphTest, TernaryAtomConnectsAllPairs) {
  IGraph ig = MustIGraph("P(X, Y) :- A(X, Y, Z), P(Z, Y).");
  EXPECT_EQ(ig.graph().UndirectedEdges().size(), 3u);  // XY XZ YZ
}

TEST_F(GraphTest, ResolutionGraphGrowsByLayer) {
  // (s2a): 4 vertices in G_1; each further layer adds 2 fresh variables
  // (z_i, u_i) and 4 edges.
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  for (int k = 1; k <= 4; ++k) {
    auto g = ResolutionGraph::Build(f, k);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->graph().num_vertices(), 4 + 2 * (k - 1));
    EXPECT_EQ(g->graph().num_edges(), 4 * k);
    EXPECT_EQ(g->k(), k);
  }
}

TEST_F(GraphTest, ResolutionGraphAccumulatedWeight) {
  // Figure 2(c): in G_2 of (s2a) the weight from x to z1 is two.
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  auto g2 = ResolutionGraph::Build(f, 2);
  ASSERT_TRUE(g2.ok());
  int x = g2->graph().FindVertex(symbols_.Lookup("X"), 0);
  int z1 = g2->FrontierVertex(0);
  ASSERT_NE(x, -1);
  EXPECT_EQ(g2->graph().vertex(z1).layer, 1);
  bool found = false;
  EXPECT_EQ(g2->DirectedPathWeight(x, z1, &found), 2);
  EXPECT_TRUE(found);
  // y is not reachable from x by arrows.
  int y = g2->graph().FindVertex(symbols_.Lookup("Y"), 0);
  g2->DirectedPathWeight(x, y, &found);
  EXPECT_FALSE(found);
}

TEST_F(GraphTest, ResolutionGraphFrontierPermutes) {
  // (s5) P(x,y,z):-P(y,z,x): no new vertices are ever created; the
  // frontier cycles with period 3.
  datalog::LinearRecursiveRule f = MustFormula("P(X, Y, Z) :- P(Y, Z, X).");
  auto g1 = ResolutionGraph::Build(f, 1);
  auto g4 = ResolutionGraph::Build(f, 4);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g4.ok());
  EXPECT_EQ(g4->graph().num_vertices(), 3);
  EXPECT_EQ(g4->graph().num_edges(), 12);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(g4->FrontierVertex(i), g1->FrontierVertex(i));
  }
}

TEST_F(GraphTest, CondensationClustersBySharedAtoms) {
  IGraph ig = MustIGraph(
      "P(X, Y, Z) :- A(X, U), B(Y, V), P(U, V, W), C(W, Z).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  EXPECT_EQ(c.num_clusters(), 3);  // {x,u} {y,v} {w,z}
  EXPECT_EQ(c.arcs().size(), 3u);
  for (const CondensedArc& arc : c.arcs()) {
    EXPECT_EQ(arc.from_cluster, arc.to_cluster);  // all unit self-loops
  }
}

TEST_F(GraphTest, CondensationWeakComponents) {
  IGraph ig = MustIGraph(
      "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), P(U, V, W).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  int n = 0;
  std::vector<int> comp = c.WeakComponents(&n);
  EXPECT_EQ(n, 2);  // {x,u,y,v} and {w,z}
}

TEST_F(GraphTest, CycleEnumerationUnitSelfLoop) {
  IGraph ig = MustIGraph("P(X, Y) :- A(X, Z), P(Z, Y).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  ASSERT_EQ(cycles->size(), 2u);
  for (const Cycle& cycle : *cycles) {
    EXPECT_EQ(cycle.weight, 1);
    EXPECT_TRUE(cycle.one_directional);
    EXPECT_EQ(cycle.steps.size(), 1u);
  }
  // One rotational (x->z via A), one permutational (y self-loop).
  int rotational = 0;
  for (const Cycle& cycle : *cycles) rotational += cycle.rotational ? 1 : 0;
  EXPECT_EQ(rotational, 1);
}

TEST_F(GraphTest, CycleEnumerationWeightThree) {
  IGraph ig = MustIGraph(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  ASSERT_EQ(cycles->size(), 1u);
  EXPECT_EQ((*cycles)[0].weight, 3);
  EXPECT_TRUE((*cycles)[0].one_directional);
  EXPECT_TRUE((*cycles)[0].rotational);
}

TEST_F(GraphTest, CycleEnumerationMultiDirectional) {
  // (s9): one cycle, weight 1, multi-directional.
  IGraph ig = MustIGraph("P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  ASSERT_EQ(cycles->size(), 1u);
  EXPECT_FALSE((*cycles)[0].one_directional);
  EXPECT_EQ((*cycles)[0].weight, 1);
}

TEST_F(GraphTest, CycleEnumerationZeroWeight) {
  // (s8): one cycle of weight 0.
  IGraph ig = MustIGraph(
      "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), P(Z, Y1, Z1, U1).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  ASSERT_EQ(cycles->size(), 1u);
  EXPECT_EQ((*cycles)[0].weight, 0);
  EXPECT_FALSE((*cycles)[0].one_directional);
}

TEST_F(GraphTest, CycleEnumerationDependent) {
  // (s11): two unit self-loops on one merged cluster.
  IGraph ig = MustIGraph(
      "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  EXPECT_EQ(c.num_clusters(), 1);
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(cycles->size(), 2u);
}

TEST_F(GraphTest, CycleEnumerationNoCycle) {
  // (s10): no non-trivial cycle.
  IGraph ig = MustIGraph("P(X, Y) :- B(Y), C(X, Y1), P(X1, Y1).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  auto cycles = EnumerateCycles(c);
  ASSERT_TRUE(cycles.ok());
  EXPECT_TRUE(cycles->empty());
}

TEST_F(GraphTest, MaxPathWeightS10) {
  IGraph ig = MustIGraph("P(X, Y) :- B(Y), C(X, Y1), P(X1, Y1).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  EXPECT_EQ(MaxPathWeight(c), 2);
}

TEST_F(GraphTest, MaxPathWeightS8) {
  IGraph ig = MustIGraph(
      "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), P(Z, Y1, Z1, U1).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  EXPECT_EQ(MaxPathWeight(c), 2);  // Figure 3: tight bound 2
}

TEST_F(GraphTest, MaxPathWeightSelfLoopChain) {
  // Unit self-loop only: the max path is the single forward traversal.
  IGraph ig = MustIGraph("P(X) :- A(X, Y), P(Y).");
  CondensedGraph c = CondensedGraph::Build(ig.graph());
  EXPECT_EQ(MaxPathWeight(c), 1);
}

TEST_F(GraphTest, RenderAscii) {
  IGraph ig = MustIGraph("P(X, Y) :- A(X, Z), P(Z, Y).");
  std::string ascii = ToAscii(ig.graph(), symbols_);
  EXPECT_NE(ascii.find("x --A-- z"), std::string::npos) << ascii;
  EXPECT_NE(ascii.find("x -->P--> z"), std::string::npos) << ascii;
  EXPECT_NE(ascii.find("y -->P--> y"), std::string::npos) << ascii;
}

TEST_F(GraphTest, RenderAsciiLayers) {
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  auto g2 = ResolutionGraph::Build(f, 2);
  ASSERT_TRUE(g2.ok());
  std::string ascii = ToAscii(g2->graph(), symbols_);
  EXPECT_NE(ascii.find("z1"), std::string::npos) << ascii;
  EXPECT_NE(ascii.find("u1"), std::string::npos) << ascii;
}

TEST_F(GraphTest, RenderDot) {
  IGraph ig = MustIGraph("P(X, Y) :- A(X, Z), P(Z, Y).");
  std::string dot = ToDot(ig.graph(), symbols_, "s1a");
  EXPECT_NE(dot.find("digraph \"s1a\""), std::string::npos);
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
}

TEST_F(GraphTest, AllCatalogExamplesBuildGraphs) {
  for (const catalog::PaperExample& e : catalog::PaperExamples()) {
    SymbolTable symbols;
    auto f = catalog::ParseExample(e, &symbols);
    ASSERT_TRUE(f.ok()) << e.id << ": " << f.status();
    auto g = IGraph::Build(*f);
    ASSERT_TRUE(g.ok()) << e.id;
    EXPECT_EQ(static_cast<int>(g->graph().DirectedEdges().size()),
              f->dimension())
        << e.id;
  }
}

}  // namespace
}  // namespace recur::graph
