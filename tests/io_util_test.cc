#include "util/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/fault_injection.h"

namespace recur::util::io {
namespace {

std::string TestPath(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "recur_io_test";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::string RawFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, SeedChainsAcrossBuffers) {
  const std::string all = "hello, durability";
  const uint32_t whole = Crc32c(all.data(), all.size());
  const uint32_t part = Crc32c(all.data() + 5, all.size() - 5,
                               Crc32c(all.data(), 5));
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, EmptyInputIsStable) {
  EXPECT_EQ(Crc32c(nullptr, 0), Crc32c("x", 0));
}

TEST(ByteCodecTest, RoundTripsAllTypes) {
  ByteWriter w;
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutString("pred");
  w.PutString("");

  ByteReader r(w.data());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string s;
  ASSERT_TRUE(r.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(r.GetI64(&i64).ok());
  EXPECT_EQ(i64, -42);
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "pred");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteCodecTest, ReadPastEndIsDataLoss) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.data());
  uint64_t u64 = 0;
  EXPECT_TRUE(r.GetU64(&u64).IsDataLoss());
}

TEST(ByteCodecTest, StringWithLyingLengthIsDataLoss) {
  ByteWriter w;
  w.PutU32(1000);  // declares 1000 bytes, provides none
  ByteReader r(w.data());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsDataLoss());
}

TEST(ContainerTest, RoundTripsSmallPayload) {
  const std::string path = TestPath("small.snap");
  ASSERT_TRUE(WriteContainerFile(path, "payload bytes", false).ok());
  auto read = ReadContainerFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "payload bytes");
}

TEST(ContainerTest, RoundTripsEmptyAndMultiPagePayloads) {
  const std::string empty_path = TestPath("empty.snap");
  ASSERT_TRUE(WriteContainerFile(empty_path, "", false).ok());
  auto empty = ReadContainerFile(empty_path);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(*empty, "");

  std::string big(kContainerPageBytes * 2 + 1234, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 131 + 7);
  }
  const std::string big_path = TestPath("big.snap");
  ASSERT_TRUE(WriteContainerFile(big_path, big, false).ok());
  auto read = ReadContainerFile(big_path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, big);
}

TEST(ContainerTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      ReadContainerFile(TestPath("never-written.snap")).status().IsNotFound());
}

TEST(ContainerTest, ForeignBytesAreUnsupported) {
  const std::string path = TestPath("foreign.snap");
  WriteRawFile(path, "this is not a container file at all");
  EXPECT_TRUE(ReadContainerFile(path).status().IsUnsupported());
}

TEST(ContainerTest, FutureVersionIsUnsupported) {
  const std::string path = TestPath("future.snap");
  ASSERT_TRUE(WriteContainerFile(path, "abc", false).ok());
  std::string bytes = RawFileBytes(path);
  bytes[8] = static_cast<char>(kContainerVersion + 1);  // version field
  WriteRawFile(path, bytes);
  EXPECT_TRUE(ReadContainerFile(path).status().IsUnsupported());
}

TEST(ContainerTest, FlippedBodyBitIsDataLoss) {
  const std::string path = TestPath("flipped.snap");
  ASSERT_TRUE(WriteContainerFile(path, "payload bytes", false).ok());
  std::string bytes = RawFileBytes(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  WriteRawFile(path, bytes);
  EXPECT_TRUE(ReadContainerFile(path).status().IsDataLoss());
}

TEST(ContainerTest, FlippedHeaderBitIsDataLoss) {
  const std::string path = TestPath("flipped-header.snap");
  ASSERT_TRUE(WriteContainerFile(path, "payload bytes", false).ok());
  std::string bytes = RawFileBytes(path);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x40);  // payload_len field
  WriteRawFile(path, bytes);
  EXPECT_TRUE(ReadContainerFile(path).status().IsDataLoss());
}

TEST(ContainerTest, WrappingPayloadLengthIsDataLossNotOutOfBoundsRead) {
  const std::string path = TestPath("wrap-len.snap");
  const std::string payload(kContainerPageBytes, 'x');
  ASSERT_TRUE(WriteContainerFile(path, payload, false).ok());
  std::string bytes = RawFileBytes(path);
  // Craft a payload_len near 2^64 for which `n_pages * 4 + payload_len`
  // wraps to below the bytes actually present: an additive truncation
  // guard passes, and the header-CRC pass then reads ~2^50 bytes out of
  // bounds. The subtraction-style guard must reject it before that.
  const uint64_t n_total = ~uint64_t{0} / kContainerPageBytes + 1;
  const uint64_t k = 4 * n_total / (kContainerPageBytes + 4);
  const uint64_t evil = uint64_t{0} - k * kContainerPageBytes;
  for (int i = 0; i < 8; ++i) {  // payload_len field: bytes 16..23
    bytes[16 + i] = static_cast<char>((evil >> (8 * i)) & 0xFFu);
  }
  WriteRawFile(path, bytes);
  EXPECT_TRUE(ReadContainerFile(path).status().IsDataLoss());
}

TEST(ContainerTest, TruncatedFileIsDataLoss) {
  const std::string path = TestPath("truncated.snap");
  ASSERT_TRUE(WriteContainerFile(path, "payload bytes", false).ok());
  std::string bytes = RawFileBytes(path);
  WriteRawFile(path, bytes.substr(0, bytes.size() - 4));
  EXPECT_TRUE(ReadContainerFile(path).status().IsDataLoss());
}

TEST(ContainerTest, RewriteIsAtomicReplacement) {
  const std::string path = TestPath("rewrite.snap");
  ASSERT_TRUE(WriteContainerFile(path, "old payload", false).ok());
  ASSERT_TRUE(WriteContainerFile(path, "new payload", false).ok());
  auto read = ReadContainerFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new payload");
  // No temp files left behind.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "stale temp file: " << entry.path();
  }
}

TEST(AppendLogTest, AppendsAndScansRecords) {
  const std::string path = TestPath("scan.log");
  std::remove(path.c_str());
  {
    auto log = AppendLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("first", false).ok());
    ASSERT_TRUE(log->Append("", false).ok());  // empty payloads are legal
    ASSERT_TRUE(log->Append("third record", true).ok());
  }
  auto scan = ScanLog(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0], "first");
  EXPECT_EQ(scan->records[1], "");
  EXPECT_EQ(scan->records[2], "third record");
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, RawFileBytes(path).size());
}

TEST(AppendLogTest, MissingLogScansEmpty) {
  auto scan = ScanLog(TestPath("never-written.log"));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(AppendLogTest, TornTailIsDiscardedCleanly) {
  const std::string path = TestPath("torn.log");
  std::remove(path.c_str());
  {
    auto log = AppendLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("intact record", false).ok());
    ASSERT_TRUE(log->Append("doomed record", false).ok());
  }
  std::string bytes = RawFileBytes(path);
  // Crash mid-append: the second record loses its last 3 bytes.
  WriteRawFile(path, bytes.substr(0, bytes.size() - 3));
  auto scan = ScanLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], "intact record");
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, 8u + 13u);  // frame + "intact record"
}

TEST(AppendLogTest, CorruptedRecordStopsTheScan) {
  const std::string path = TestPath("bitflip.log");
  std::remove(path.c_str());
  {
    auto log = AppendLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("record one", false).ok());
    ASSERT_TRUE(log->Append("record two", false).ok());
  }
  std::string bytes = RawFileBytes(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x10);
  WriteRawFile(path, bytes);
  auto scan = ScanLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
}

TEST(AppendLogTest, OpenWithTruncateCutsTheTail) {
  const std::string path = TestPath("cut.log");
  std::remove(path.c_str());
  uint64_t first_record_end = 0;
  {
    auto log = AppendLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("keep me", false).ok());
    first_record_end = RawFileBytes(path).size();
    ASSERT_TRUE(log->Append("drop me", false).ok());
  }
  {
    auto log =
        AppendLog::Open(path, static_cast<int64_t>(first_record_end));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("appended after cut", false).ok());
  }
  auto scan = ScanLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], "keep me");
  EXPECT_EQ(scan->records[1], "appended after cut");
}

TEST(AppendLogTest, FailedWriteSealsWhenRollbackIsImpossible) {
  // /dev/full accepts the open but fails every write with ENOSPC, and a
  // character device refuses ftruncate — the torn frame cannot be rolled
  // back, so the log must seal and refuse all further appends.
  auto log = AppendLog::Open("/dev/full");
  if (!log.ok()) GTEST_SKIP() << "no /dev/full on this platform";
  EXPECT_TRUE(log->Append("never lands", false).IsInternal());
  Status sealed = log->Append("after failure", false);
  EXPECT_TRUE(sealed.IsInternal());
  EXPECT_NE(sealed.ToString().find("sealed"), std::string::npos) << sealed;
}

TEST(AppendLogTest, TruncateRestartsTheLogEmpty) {
  const std::string path = TestPath("rotate.log");
  std::remove(path.c_str());
  auto log = AppendLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("pre-rotation", false).ok());
  ASSERT_TRUE(log->Truncate(false).ok());
  ASSERT_TRUE(log->Append("post-rotation", false).ok());
  auto scan = ScanLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], "post-rotation");
}

TEST(IoFaultSiteTest, SnapshotWriteFaultIsTyped) {
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  ScopedFault fault("io.snapshot.write", spec);
  const std::string path = TestPath("faulted-write.snap");
  std::remove(path.c_str());
  Status status = WriteContainerFile(path, "x", false);
  EXPECT_TRUE(status.IsInternal());
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing partially written
}

TEST(IoFaultSiteTest, SnapshotReadFaultIsTyped) {
  const std::string path = TestPath("faulted-read.snap");
  ASSERT_TRUE(WriteContainerFile(path, "x", false).ok());
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  ScopedFault fault("io.snapshot.read", spec);
  EXPECT_TRUE(ReadContainerFile(path).status().IsInternal());
}

TEST(IoFaultSiteTest, WalAppendFaultLeavesLogUntouched) {
  const std::string path = TestPath("faulted-append.log");
  std::remove(path.c_str());
  auto log = AppendLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("before fault", false).ok());
  const std::string before = RawFileBytes(path);
  {
    FaultSpec spec;
    spec.code = StatusCode::kResourceExhausted;
    ScopedFault fault("io.wal.append", spec);
    EXPECT_TRUE(log->Append("never lands", false).IsResourceExhausted());
  }
  EXPECT_EQ(RawFileBytes(path), before);
}

TEST(IoFaultSiteTest, WalReplayFaultIsTyped) {
  const std::string path = TestPath("faulted-replay.log");
  std::remove(path.c_str());
  {
    auto log = AppendLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("record", false).ok());
  }
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  ScopedFault fault("io.wal.replay", spec);
  EXPECT_TRUE(ScanLog(path).status().IsInternal());
}

}  // namespace
}  // namespace recur::util::io
