// Differential testing harness across every evaluator in the repo: for
// randomly generated linear recursive programs crossed with every workload
// EDB shape, Naive, SemiNaive (serial and parallel), the compiled
// evaluator, and the class-specialized plans must all compute the same
// relations. Any disagreement fails the test and prints the offending
// program, EDB shape, and evaluator pair.
//
// Every case is additionally pinned against tests/golden/
// differential_results.txt — result cardinality and an FNV fingerprint of
// the full printed relation, captured at the seed commit — so a refactor
// of the execution pipeline cannot silently shift any engine's output.
// Regenerate with RECUR_REGEN_GOLDEN=1 (only when results are *supposed*
// to change, which for pure execution refactors is never).
//
// Scale: kSeeds instantiations x kFormulasPerSeed formulas x kEdbKinds
// EDBs = 200 program x EDB cases per run (checked in CaseCountIsAtLeast200).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "classify/classifier.h"
#include "differential_corpus.h"
#include "eval/compiled_eval.h"
#include "eval/naive.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "server/admission.h"
#include "server/database.h"
#include "workload/formula_generator.h"
#include "workload/generator.h"

namespace recur {
namespace {

using corpus::EdbKind;
using corpus::kEdbKinds;
using corpus::kFormulasPerSeed;
using corpus::kSeeds;
using corpus::ToString;

/// The golden map is loaded once; an empty map with regen off fails every
/// case loudly instead of silently passing.
const std::map<std::string, std::string>& Golden() {
  static const std::map<std::string, std::string> golden =
      corpus::LoadGolden();
  return golden;
}

bool RegenGolden() {
  const char* env = std::getenv("RECUR_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEvaluatorsAgree) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam(), corpus::DifferentialOptions());
  int cases = 0;
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    const std::string formula_text = g->formula.rule().ToString(symbols);
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();

    eval::PlanGenerator plan_generator(&symbols);
    auto plan = plan_generator.Plan(g->formula, g->exit);
    ASSERT_TRUE(plan.ok()) << formula_text;

    for (EdbKind kind : kEdbKinds) {
      ++cases;
      const std::string label = formula_text + std::string(" [class ") +
                                classify::ToString(cls->formula_class) +
                                ", EDB " + ToString(kind) + "]";
      ra::Database edb;
      corpus::LoadEdb(g->formula, g->exit, kind, GetParam() * 31 + i, &edb);

      // 1. Naive is the ground truth.
      eval::EvalStats naive_stats;
      auto naive = eval::NaiveEvaluate(program, edb, {}, &naive_stats);
      ASSERT_TRUE(naive.ok()) << label;
      const std::string want = naive->at(pred).ToString();

      // 1b. The case must match its golden fingerprint captured at seed.
      if (!RegenGolden()) {
        const std::string key = corpus::CaseKey(GetParam(), i, kind);
        auto it = Golden().find(key);
        ASSERT_TRUE(it != Golden().end())
            << "no golden entry for " << key << " (" << label
            << "); regenerate with RECUR_REGEN_GOLDEN=1";
        EXPECT_EQ(corpus::GoldenPayload(naive->at(pred)), it->second)
            << "result drifted from the seed golden on " << label;
      }

      // 1c. Stats invariants tying the flat counters to the physical
      // plans that ran: probes can only come from a plan containing an
      // index-probe (join) operator, and every fixpoint executes plans.
      EXPECT_GT(naive_stats.plans_executed, 0u) << label;
      if (naive_stats.join_probes > 0) {
        EXPECT_GT(naive_stats.plans_with_joins, 0u)
            << "probes counted without any join-bearing plan on " << label;
        EXPECT_GT(naive_stats.tuples_considered, 0u) << label;
      }
      // The reverse implication is deliberately not asserted: a
      // join-bearing plan whose upstream scan finds no rows (empty IDB on
      // round one) never reaches its probe operator and counts nothing.

      // 2. Serial semi-naive.
      auto semi = eval::SemiNaiveEvaluate(program, edb);
      ASSERT_TRUE(semi.ok()) << label;
      ASSERT_EQ(semi->at(pred).ToString(), want)
          << "naive vs semi-naive(serial) on " << label;

      // 3. Parallel semi-naive.
      eval::FixpointOptions parallel;
      parallel.num_threads = 4;
      auto semi_mt = eval::SemiNaiveEvaluate(program, edb, parallel);
      ASSERT_TRUE(semi_mt.ok()) << label;
      ASSERT_EQ(semi_mt->at(pred).ToString(), want)
          << "naive vs semi-naive(4 threads) on " << label;

      // 4. Compiled evaluator on the classes it claims (A1-A5).
      if ((cls->strongly_stable || cls->transformable_to_stable) &&
          cls->unfold_count <= 6) {
        auto compiled = eval::StableEvaluator::CreateWithTransform(
            g->formula, g->exit, &symbols);
        ASSERT_TRUE(compiled.ok()) << label;
        eval::Query free;
        free.pred = pred;
        free.bindings.assign(g->formula.dimension(), std::nullopt);
        auto answer = compiled->Answer(free, edb);
        ASSERT_TRUE(answer.ok()) << label;
        ASSERT_EQ(answer->ToString(), want)
            << "naive vs compiled on " << label;
      }

      // 5. Class-specialized plans (stable/transformed A1-A5, bounded
      // expansion for B and D) against semi-naive. kSemiNaive plans would
      // compare the engine with itself, so skip those.
      if (plan->strategy() != eval::Strategy::kSemiNaive &&
          cls->unfold_count <= 6) {
        eval::Query free;
        free.pred = pred;
        free.bindings.assign(g->formula.dimension(), std::nullopt);
        auto got = plan->Execute(free, edb);
        ASSERT_TRUE(got.ok()) << label;
        ASSERT_EQ(got->ToString(), want)
            << "plan [" << ToString(plan->strategy()) << "] vs naive on "
            << label;
      }
    }
  }
  EXPECT_EQ(cases, kFormulasPerSeed *
                       static_cast<int>(std::size(kEdbKinds)));
}

// Robustness face of the harness: the same generated program x EDB cases,
// but with a canceller thread flipping the context's flag at a random point
// mid-run. The contract is all-or-nothing — either the engine finished
// before the flag landed and the result is byte-identical to the serial
// reference, or it reports kCancelled. Anything else (a crash, a wrong
// result, a mistyped error) is a bug.
TEST_P(DifferentialTest, EnginesUnderRandomizedCancellation) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam(), corpus::DifferentialOptions());
  std::mt19937 rng(GetParam() * 7919 + 17);
  std::uniform_int_distribution<int> delay_us(0, 500);
  for (int i = 0; i < 2; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();

    for (EdbKind kind : kEdbKinds) {
      const std::string label = g->formula.rule().ToString(symbols) +
                                " [EDB " + ToString(kind) + "]";
      ra::Database edb;
      corpus::LoadEdb(g->formula, g->exit, kind, GetParam() * 131 + i, &edb);
      auto reference = eval::SemiNaiveEvaluate(program, edb);
      ASSERT_TRUE(reference.ok()) << label;
      const std::string want = reference->at(pred).ToString();

      for (int threads : {1, 4}) {
        eval::ExecutionContext context;
        eval::FixpointOptions options;
        options.context = &context;
        options.num_threads = threads;
        const int delay = delay_us(rng);
        std::thread canceller([&context, delay] {
          std::this_thread::sleep_for(std::chrono::microseconds(delay));
          context.Cancel();
        });
        auto result = eval::SemiNaiveEvaluate(program, edb, options);
        canceller.join();
        if (result.ok()) {
          EXPECT_EQ(result->at(pred).ToString(), want)
              << label << ", " << threads
              << " threads: cancelled run finished but disagrees";
        } else {
          EXPECT_TRUE(result.status().IsCancelled())
              << label << ", " << threads
              << " threads: wrong error type: " << result.status();
        }
      }

      // Deterministic budget face: capping the tuple budget at half the
      // known fixpoint size must trip kResourceExhausted on every engine.
      size_t final_total = reference->at(pred).size();
      if (final_total >= 2) {
        for (int threads : {1, 4}) {
          eval::FixpointOptions options;
          options.num_threads = threads;
          options.limits.max_total_tuples = final_total / 2;
          auto result = eval::SemiNaiveEvaluate(program, edb, options);
          ASSERT_FALSE(result.ok())
              << label << ", " << threads << " threads";
          EXPECT_TRUE(result.status().IsResourceExhausted())
              << label << ": " << result.status();
        }
      }
    }
  }
}

// Resident-server face of the harness: every generated program also runs
// an insert/delete stream through server::Database. After each applied
// batch the resident IDB (incrementally maintained, possibly answered
// through a classification fast path) must be *byte-identical* to a
// from-scratch semi-naive fixpoint over the server's current EDB — same
// rows, same order, same printing. This pins DRed deletion/rederivation
// and insert propagation against recomputation across the whole corpus.
TEST_P(DifferentialTest, ServerStreamsMatchRecomputation) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam(), corpus::DifferentialOptions());
  std::mt19937_64 rng(GetParam() * 104729 + 1);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();

    // Two EDB shapes per formula keep the stream face at corpus scale
    // without doubling the suite's runtime; rotation still covers every
    // shape across the seeds.
    for (int k = 0; k < 2; ++k) {
      EdbKind kind = kEdbKinds[(i + 3 * k) % std::size(kEdbKinds)];
      const std::string label = g->formula.rule().ToString(symbols) +
                                " [EDB " + ToString(kind) + "]";
      ra::Database edb;
      corpus::LoadEdb(g->formula, g->exit, kind, GetParam() * 57 + i, &edb);
      ra::Database shadow = edb;  // mutated in lockstep with the server

      auto server =
          server::Database::Create(program, std::move(edb), &symbols);
      ASSERT_TRUE(server.ok()) << label << ": " << server.status();

      for (int batch = 0; batch < 4; ++batch) {
        // One mixed batch over every extensional relation: a couple of
        // random inserts, and on odd batches a delete of an existing row.
        eval::EdbDeltas deltas;
        for (const auto& [rel_pred, rel] : shadow.relations()) {
          eval::EdbDelta delta(rel->arity());
          for (int n = 0; n < 2; ++n) {
            ra::Tuple t(static_cast<size_t>(rel->arity()));
            for (ra::Value& v : t) v = static_cast<ra::Value>(rng() % 14);
            delta.inserts.Insert(t);
          }
          if (batch % 2 == 1 && !rel->empty()) {
            delta.deletes.Insert(rel->rows()[rng() % rel->size()]);
          }
          deltas.emplace(rel_pred, delta);
          ra::Relation* mutable_rel = shadow.FindMutable(rel_pred);
          mutable_rel->EraseRows(delta.deletes);
          mutable_rel->InsertAll(delta.inserts);
        }
        ASSERT_TRUE((*server)->Apply(deltas).ok())
            << label << " batch " << batch;

        auto want = eval::SemiNaiveEvaluate(program, shadow);
        ASSERT_TRUE(want.ok()) << label << " batch " << batch;
        server::Database::Snapshot snap = (*server)->snapshot();
        const ra::Relation* resident = snap.idb().Find(pred);
        ASSERT_NE(resident, nullptr) << label;
        ASSERT_EQ(resident->ToString(), want->at(pred).ToString())
            << "resident IDB diverged from recomputation on " << label
            << " after batch " << batch;
      }

      // And the dispatch-table answer agrees with the resident relation.
      eval::Query free;
      free.pred = pred;
      free.bindings.assign(g->formula.dimension(), std::nullopt);
      auto answer = (*server)->Query(free);
      ASSERT_TRUE(answer.ok()) << label << ": " << answer.status();
      auto want = eval::SemiNaiveEvaluate(program, shadow);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(answer->rows.size(), want->at(pred).size())
          << label << " via route "
          << server::ToString(answer->route);
    }
  }
}

// Group-commit face of the harness: the admission layer's merged fold must
// be invisible to consumers. For every corpus program, server A applies
// each random batch individually while server B receives the same batches
// through the group committer as ONE coalesced group (Pause, submit all,
// Resume). After every round the two resident IDBs and a from-scratch
// fixpoint over the shadow EDB must be byte-identical, and B must have
// spent exactly one epoch per round — grouping changes the batching, never
// the fixpoint.
TEST_P(DifferentialTest, GroupedCommitsMatchUngrouped) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam(), corpus::DifferentialOptions());
  std::mt19937_64 rng(GetParam() * 216091 + 7);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();

    // One EDB shape per formula: the grouped face checks batching algebra,
    // not EDB coverage (the stream face above rotates the shapes).
    EdbKind kind = kEdbKinds[i % std::size(kEdbKinds)];
    const std::string label = g->formula.rule().ToString(symbols) +
                              " [EDB " + ToString(kind) + ", grouped]";
    ra::Database edb;
    corpus::LoadEdb(g->formula, g->exit, kind, GetParam() * 57 + i, &edb);
    ra::Database shadow = edb;
    ra::Database edb_copy = edb;

    auto ungrouped =
        server::Database::Create(program, std::move(edb), &symbols);
    ASSERT_TRUE(ungrouped.ok()) << label << ": " << ungrouped.status();
    auto grouped =
        server::Database::Create(program, std::move(edb_copy), &symbols);
    ASSERT_TRUE(grouped.ok()) << label << ": " << grouped.status();
    server::AdmissionOptions admission;
    admission.max_group_batches = 8;  // every round coalesces fully
    (*grouped)->EnableAdmission(admission);

    for (int round = 0; round < 2; ++round) {
      const uint64_t epoch_before = (*grouped)->epoch();
      (*grouped)->committer()->Pause();
      std::vector<server::GroupCommitter::Ticket> tickets;
      for (int batch = 0; batch < 3; ++batch) {
        // Same mixed-batch recipe as the stream face: random inserts per
        // extensional relation, plus a delete of an existing row on odd
        // batches. The shadow advances sequentially, which is exactly the
        // semantics the merged fold must reproduce.
        eval::EdbDeltas deltas;
        for (const auto& [rel_pred, rel] : shadow.relations()) {
          eval::EdbDelta delta(rel->arity());
          for (int n = 0; n < 2; ++n) {
            ra::Tuple t(static_cast<size_t>(rel->arity()));
            for (ra::Value& v : t) v = static_cast<ra::Value>(rng() % 14);
            delta.inserts.Insert(t);
          }
          if (batch % 2 == 1 && !rel->empty()) {
            delta.deletes.Insert(rel->rows()[rng() % rel->size()]);
          }
          deltas.emplace(rel_pred, delta);
          ra::Relation* mutable_rel = shadow.FindMutable(rel_pred);
          mutable_rel->EraseRows(delta.deletes);
          mutable_rel->InsertAll(delta.inserts);
        }
        ASSERT_TRUE((*ungrouped)->Apply(deltas).ok())
            << label << " round " << round << " batch " << batch;
        tickets.push_back((*grouped)->committer()->SubmitAsync(deltas));
      }
      (*grouped)->committer()->Resume();
      for (auto& ticket : tickets) {
        const Status status = ticket.Wait();
        ASSERT_TRUE(status.ok()) << label << " round " << round << ": "
                                 << status;
      }
      // The whole round published under a single epoch.
      ASSERT_EQ((*grouped)->epoch(), epoch_before + 1) << label;

      auto want = eval::SemiNaiveEvaluate(program, shadow);
      ASSERT_TRUE(want.ok()) << label << " round " << round;
      const ra::Relation* a =
          (*ungrouped)->snapshot().idb().Find(pred);
      const ra::Relation* b = (*grouped)->snapshot().idb().Find(pred);
      ASSERT_NE(a, nullptr) << label;
      ASSERT_NE(b, nullptr) << label;
      ASSERT_EQ(b->ToString(), a->ToString())
          << "grouped commit diverged from per-batch commits on " << label
          << " round " << round;
      ASSERT_EQ(b->ToString(), want->at(pred).ToString())
          << "grouped commit diverged from recomputation on " << label
          << " round " << round;
    }
  }
}

// Crash-recovery face of the harness: stream random batches through a
// *durable* server, kill it at a random prefix (sometimes after a snapshot,
// sometimes with the WAL tail torn at a random byte offset), and revive it
// with OpenOrRecover. The recovered EDB must equal the shadow EDB of some
// applied prefix (snapshot epoch + replayed batches — never a mix of two
// epochs), the recovered IDB must be byte-identical to a from-scratch
// fixpoint over that EDB, and the revived server must keep accepting
// batches. Tearing the tail may lose the final batch; it must never lose
// more, corrupt state, or crash.
TEST_P(DifferentialTest, CrashRecoveryMatchesRecomputation) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam(), corpus::DifferentialOptions());
  std::mt19937_64 rng(GetParam() * 86243 + 5);
  for (int i = 0; i < 2; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();
    const std::string program_text = program.ToString(symbols);

    EdbKind kind = kEdbKinds[(GetParam() + i) % std::size(kEdbKinds)];
    const std::string label = g->formula.rule().ToString(symbols) +
                              " [EDB " + ToString(kind) + "]";
    ra::Database edb;
    corpus::LoadEdb(g->formula, g->exit, kind, GetParam() * 89 + i, &edb);

    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         ("recur_crash_" + std::to_string(GetParam()) + "_" +
          std::to_string(i)))
            .string();
    std::filesystem::remove_all(dir);

    // states[e] is the shadow EDB after epoch e; recovery must land on
    // exactly one of these, never between two.
    std::vector<ra::Database> states;
    states.push_back(edb);

    server::ServerOptions options;
    options.durability.dir = dir;
    options.durability.program_text = program_text;
    options.durability.fsync = server::FsyncPolicy::kNone;
    {
      auto server = server::Database::Create(program, std::move(edb),
                                             &symbols, options);
      ASSERT_TRUE(server.ok()) << label << ": " << server.status();

      const int batches = 2 + static_cast<int>(rng() % 3);
      const int snapshot_after =
          rng() % 2 == 0 ? 1 + static_cast<int>(rng() % batches) : -1;
      for (int batch = 1; batch <= batches; ++batch) {
        eval::EdbDeltas deltas;
        ra::Database shadow = states.back();
        for (const auto& [rel_pred, rel] : shadow.relations()) {
          eval::EdbDelta delta(rel->arity());
          for (int n = 0; n < 2; ++n) {
            ra::Tuple t(static_cast<size_t>(rel->arity()));
            for (ra::Value& v : t) v = static_cast<ra::Value>(rng() % 14);
            delta.inserts.Insert(t);
          }
          if (batch % 2 == 0 && !rel->empty()) {
            delta.deletes.Insert(rel->rows()[rng() % rel->size()]);
          }
          deltas.emplace(rel_pred, delta);
        }
        for (auto& [rel_pred, delta] : deltas) {
          ra::Relation* mutable_rel = shadow.FindMutable(rel_pred);
          mutable_rel->EraseRows(delta.deletes);
          mutable_rel->InsertAll(delta.inserts);
        }
        ASSERT_TRUE((*server)->Apply(deltas).ok())
            << label << " batch " << batch;
        states.push_back(std::move(shadow));
        if (batch == snapshot_after) {
          ASSERT_TRUE((*server)->SaveSnapshot().ok()) << label;
        }
      }
      // Crash: the server dies here without any orderly shutdown.
    }

    // Sometimes the crash also tears the WAL tail at a random offset.
    const std::string wal = dir + "/" + server::kWalFileName;
    bool tore_tail = false;
    if (rng() % 2 == 0 && std::filesystem::exists(wal)) {
      const auto size = std::filesystem::file_size(wal);
      const uintmax_t cut = 1 + rng() % 16;
      if (size > cut) {
        std::filesystem::resize_file(wal, size - cut);
        tore_tail = true;
      }
    }

    server::RecoveryInfo info;
    auto revived = server::Database::OpenOrRecover(dir, program_text,
                                                   &symbols, {}, &info);
    ASSERT_TRUE(revived.ok()) << label << ": " << revived.status();
    const uint64_t epoch = (*revived)->epoch();
    ASSERT_LT(epoch, states.size()) << label;
    EXPECT_EQ(epoch, info.snapshot_epoch + info.replayed_batches) << label;
    if (!tore_tail) {
      EXPECT_EQ(epoch, states.size() - 1)
          << label << ": untorn recovery lost a batch";
    } else {
      EXPECT_GE(epoch + 1, states.size() - 1)
          << label << ": a torn tail may lose only the final record";
    }

    // The recovered EDB is exactly the shadow EDB of the revived epoch.
    server::Database::Snapshot snap = (*revived)->snapshot();
    const ra::Database& expect_edb = states[epoch];
    for (const auto& [rel_pred, rel] : expect_edb.relations()) {
      const ra::Relation* got = snap.edb().Find(rel_pred);
      ASSERT_NE(got, nullptr) << label;
      EXPECT_EQ(got->ToString(), rel->ToString())
          << label << ": EDB relation " << symbols.NameOf(rel_pred)
          << " diverged after recovery to epoch " << epoch;
    }

    // And the recovered IDB is the fixpoint of that EDB, byte for byte.
    auto want = eval::SemiNaiveEvaluate(program, expect_edb);
    ASSERT_TRUE(want.ok()) << label;
    const ra::Relation* resident = snap.idb().Find(pred);
    ASSERT_NE(resident, nullptr) << label;
    ASSERT_EQ(resident->ToString(), want->at(pred).ToString())
        << "recovered IDB diverged from recomputation on " << label
        << " (epoch " << epoch << ", replayed " << info.replayed_batches
        << ", torn=" << tore_tail << ")";

    // The revived server is fully live: one more batch applies cleanly.
    eval::EdbDeltas deltas;
    ra::Database shadow = states[epoch];
    for (const auto& [rel_pred, rel] : shadow.relations()) {
      eval::EdbDelta delta(rel->arity());
      ra::Tuple t(static_cast<size_t>(rel->arity()));
      for (ra::Value& v : t) v = static_cast<ra::Value>(rng() % 14);
      delta.inserts.Insert(t);
      deltas.emplace(rel_pred, delta);
    }
    for (auto& [rel_pred, delta] : deltas) {
      shadow.FindMutable(rel_pred)->InsertAll(delta.inserts);
    }
    ASSERT_TRUE((*revived)->Apply(deltas).ok()) << label;
    auto after = eval::SemiNaiveEvaluate(program, shadow);
    ASSERT_TRUE(after.ok()) << label;
    EXPECT_EQ((*revived)->snapshot().idb().Find(pred)->ToString(),
              after->at(pred).ToString())
        << label << ": post-recovery batch diverged";

    revived->reset();
    std::filesystem::remove_all(dir);
  }
}

// The harness must cover at least the advertised 200 program x EDB cases.
TEST(DifferentialCoverage, CaseCountIsAtLeast200) {
  EXPECT_GE(kSeeds * kFormulasPerSeed * std::size(kEdbKinds), 200u);
}

// Golden capture: with RECUR_REGEN_GOLDEN=1 this test rewrites
// tests/golden/differential_results.txt from the current engines (naive is
// the fingerprinted reference; AllEvaluatorsAgree pins every other engine
// to it byte-for-byte). Without the env var it only checks the file exists
// and covers the full corpus.
TEST(DifferentialGolden, GoldenFileCoversCorpus) {
  if (RegenGolden()) {
    std::ofstream out(corpus::GoldenPath());
    ASSERT_TRUE(out.good()) << corpus::GoldenPath();
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      SymbolTable symbols;
      workload::FormulaGenerator gen(seed, corpus::DifferentialOptions());
      for (int i = 0; i < kFormulasPerSeed; ++i) {
        auto g = gen.Next(&symbols);
        ASSERT_TRUE(g.ok()) << g.status();
        datalog::Program program;
        program.AddRule(g->formula.rule());
        program.AddRule(g->exit);
        SymbolId pred = g->formula.recursive_predicate();
        for (EdbKind kind : kEdbKinds) {
          ra::Database edb;
          corpus::LoadEdb(g->formula, g->exit, kind, seed * 31 + i, &edb);
          auto naive = eval::NaiveEvaluate(program, edb);
          ASSERT_TRUE(naive.ok());
          out << corpus::CaseKey(seed, i, kind) << " "
              << corpus::GoldenPayload(naive->at(pred)) << "\n";
        }
      }
    }
    return;
  }
  EXPECT_EQ(Golden().size(),
            kSeeds * kFormulasPerSeed * std::size(kEdbKinds))
      << "golden file missing or stale: " << corpus::GoldenPath();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{0}, kSeeds));

}  // namespace
}  // namespace recur
