// LatencyHistogram properties. The traffic runner's determinism guarantee
// leans on two facts proven here: Merge is order-independent (bucket-wise
// sums and exact moments commute), and every statistic is a pure function
// of the recorded multiset. Accuracy checks pin the geometric-bucket error
// bound so a bucketing regression shows up as a failed tolerance, not a
// silently wrong percentile.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "traffic/histogram.h"

namespace recur::traffic {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 0.0);
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndMidpointLandsInBucket) {
  int last = -1;
  for (uint64_t ns : std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 7, 8, 15, 16,
                                           100, 1000, 123456, 1000000000,
                                           (uint64_t{1} << 62) + 17}) {
    int idx = LatencyHistogram::BucketIndex(ns);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    EXPECT_GE(idx, last) << "ns=" << ns;
    last = idx;
    // The representative value maps back to the same bucket.
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  LatencyHistogram::BucketMidpointNanos(idx)),
              idx)
        << "ns=" << ns;
  }
}

TEST(LatencyHistogramTest, ExactMomentsAndBoundedPercentileError) {
  std::mt19937_64 rng(99);
  std::vector<double> samples;
  LatencyHistogram h;
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    // Latencies spread over ~5 orders of magnitude, like a real mixed run.
    double exponent = (rng() % 500) / 100.0;  // 0.00 .. 4.99
    double seconds = 1e-7 * std::pow(10.0, exponent);
    samples.push_back(seconds);
    sum += seconds;
    h.Record(seconds);
  }
  ASSERT_EQ(h.count(), samples.size());
  std::sort(samples.begin(), samples.end());
  // min/max/sum are tracked exactly (up to 1ns rounding of each sample).
  EXPECT_NEAR(h.MinSeconds(), samples.front(), 1e-9);
  EXPECT_NEAR(h.MaxSeconds(), samples.back(), 1e-9);
  EXPECT_NEAR(h.MeanSeconds(), sum / samples.size(),
              sum / samples.size() * 1e-4);
  // Percentiles come from bucket midpoints: 4 sub-buckets per power of two
  // bounds relative error by ~12.5%; allow 20% for rank-vs-midpoint slop.
  for (double q : {0.5, 0.95, 0.99}) {
    double exact =
        samples[std::min(samples.size() - 1,
                         static_cast<size_t>(q * samples.size()))];
    EXPECT_NEAR(h.PercentileSeconds(q), exact, exact * 0.20) << "q=" << q;
  }
  // Percentiles are monotone in q and clamped into [min, max].
  EXPECT_LE(h.PercentileSeconds(0.5), h.PercentileSeconds(0.95));
  EXPECT_LE(h.PercentileSeconds(0.95), h.PercentileSeconds(0.99));
  EXPECT_GE(h.PercentileSeconds(0.0), h.MinSeconds());
  EXPECT_LE(h.PercentileSeconds(1.0), h.MaxSeconds());
}

TEST(LatencyHistogramTest, NegativeDurationsClampToZero) {
  LatencyHistogram h;
  h.Record(-1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.0);
}

TEST(LatencyHistogramTest, StddevMatchesTwoPointDistribution) {
  LatencyHistogram h;
  // 1000ns and 3000ns in equal measure: mean 2000ns, stddev 1000ns.
  for (int i = 0; i < 10; ++i) {
    h.RecordNanos(1000);
    h.RecordNanos(3000);
  }
  EXPECT_NEAR(h.MeanSeconds(), 2000e-9, 1e-12);
  EXPECT_NEAR(h.StddevSeconds(), 1000e-9, 1e-12);
}

// The property the deterministic merge order rests on: merging any
// permutation, or any parenthesization, of per-worker histograms yields an
// identical histogram (operator== compares full state).
TEST(LatencyHistogramTest, MergeIsOrderIndependent) {
  std::mt19937_64 rng(7);
  constexpr int kWorkers = 6;
  std::vector<LatencyHistogram> parts(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    int n = 50 + static_cast<int>(rng() % 200);
    for (int i = 0; i < n; ++i) {
      parts[w].RecordNanos(1 + rng() % 10000000);
    }
  }

  LatencyHistogram forward;
  for (const auto& p : parts) forward.Merge(p);

  LatencyHistogram reverse;
  for (int w = kWorkers - 1; w >= 0; --w) reverse.Merge(parts[w]);
  EXPECT_EQ(forward, reverse);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> order(kWorkers);
    for (int w = 0; w < kWorkers; ++w) order[w] = w;
    std::shuffle(order.begin(), order.end(), rng);
    // Random parenthesization: fold a shuffled prefix tree.
    LatencyHistogram left, right;
    int split = 1 + static_cast<int>(rng() % (kWorkers - 1));
    for (int i = 0; i < split; ++i) left.Merge(parts[order[i]]);
    for (int i = split; i < kWorkers; ++i) right.Merge(parts[order[i]]);
    left.Merge(right);
    EXPECT_EQ(left, forward) << "trial " << trial;
  }
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.RecordNanos(500);
  h.RecordNanos(1500);
  LatencyHistogram merged = h;
  merged.Merge(empty);
  EXPECT_EQ(merged, h);
  LatencyHistogram other;
  other.Merge(h);
  EXPECT_EQ(other, h);
}

}  // namespace
}  // namespace recur::traffic
