// Tests for the fixed-size thread pool and the parallel semi-naive engine
// built on it. These are the primary ThreadSanitizer targets: run them via
// `ctest -L tsan` in a RECUR_SANITIZE=thread build.

#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "eval/thread_pool.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsABarrierAcrossBatches) {
  ThreadPool pool(3);
  std::vector<int> data(64, 0);
  for (int batch = 0; batch < 10; ++batch) {
    for (size_t i = 0; i < data.size(); ++i) {
      pool.Submit([&data, i] { ++data[i]; });
    }
    pool.Wait();  // no task of batch k+1 may race a task of batch k
    for (int v : data) ASSERT_EQ(v, batch + 1);
  }
}

TEST(ThreadPoolTest, ParallelForCoversTheRange) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  ParallelFor(&pool, 257, [&hits](int i) { hits[i] = i; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i], i);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  ParallelFor(&pool, 100, [&count](int) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // ~ThreadPool must run all queued tasks before joining
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesAsStatusFromWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count, i] {
      if (i == 10) throw std::runtime_error("task 10 failed");
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal()) << status;
  EXPECT_NE(status.message().find("task 10 failed"), std::string::npos);
  // Fail-fast: the failure dropped the tasks still queued at that moment.
  EXPECT_LT(count.load(), 100);

  // Wait() re-armed the pool: the next batch runs clean.
  count = 0;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, BadAllocBecomesResourceExhausted) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::bad_alloc(); });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
}

TEST(ThreadPoolTest, OnlyTheFirstExceptionIsReported) {
  ThreadPool pool(1);  // single worker: deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("first"), std::string::npos);
  EXPECT_EQ(status.message().find("second"), std::string::npos);
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasksOnly) {
  ThreadPool pool(2);
  // Park both workers so everything submitted after is provably queued.
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  for (int w = 0; w < 2; ++w) {
    pool.Submit([&release, &started] {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (started.load() < 2) std::this_thread::yield();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.CancelPending();
  release = true;
  EXPECT_TRUE(pool.Wait().ok());  // cancellation is not an error
  EXPECT_EQ(count.load(), 0);     // none of the queued tasks ran

  // The pool is reusable after a cancelled batch.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskFailure) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  Status status = ParallelFor(&pool, 200, [&count](int i) {
    if (i == 17) throw std::runtime_error("iteration 17");
    count.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("iteration 17"), std::string::npos);
}

class ParallelSemiNaiveTest : public ::testing::Test {
 protected:
  datalog::Program MustProgram(const char* text) {
    auto p = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(p.ok()) << p.status();
    return *p;
  }

  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(ParallelSemiNaiveTest, MatchesSerialOnTransitiveClosure) {
  workload::Generator gen(11);
  Load("A", gen.RandomGraph(60, 150));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  auto serial = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 4, 8}) {
    FixpointOptions options;
    options.num_threads = threads;
    auto parallel = SemiNaiveEvaluate(program, edb_, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(serial->at(symbols_.Lookup("P")).ToString(),
              parallel->at(symbols_.Lookup("P")).ToString())
        << threads << " threads";
  }
}

TEST_F(ParallelSemiNaiveTest, MatchesSerialWithMutualRecursion) {
  workload::Generator gen(12);
  Load("A", gen.LayeredDag(5, 6, 2));
  datalog::Program program = MustProgram(
      "Odd(X, Y) :- A(X, Y).\n"
      "Odd(X, Y) :- A(X, Z), Even(Z, Y).\n"
      "Even(X, Y) :- A(X, Z), Odd(Z, Y).\n");
  FixpointOptions options;
  options.num_threads = 4;
  options.shard_count = 7;  // deliberately not a multiple of threads
  auto serial = SemiNaiveEvaluate(program, edb_);
  auto parallel = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (const char* pred : {"Odd", "Even"}) {
    EXPECT_EQ(serial->at(symbols_.Lookup(pred)).ToString(),
              parallel->at(symbols_.Lookup(pred)).ToString())
        << pred;
  }
}

TEST_F(ParallelSemiNaiveTest, ManyShardsAndTinyDeltasStayExact) {
  workload::Generator gen(13);
  Load("A", gen.Chain(40));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  FixpointOptions options;
  options.num_threads = 4;
  options.shard_count = 64;  // far more shards than delta tuples
  auto serial = SemiNaiveEvaluate(program, edb_);
  auto parallel = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->at(symbols_.Lookup("P")).size(), 40u * 41u / 2u);
  EXPECT_EQ(serial->at(symbols_.Lookup("P")).ToString(),
            parallel->at(symbols_.Lookup("P")).ToString());
}

TEST_F(ParallelSemiNaiveTest, StatsTreeIsConsistent) {
  workload::Generator gen(14);
  Load("A", gen.Grid(6, 6));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  FixpointOptions options;
  options.num_threads = 4;
  options.collect_stats = true;
  EvalStats stats;
  auto idb = SemiNaiveEvaluate(program, edb_, options, &stats);
  ASSERT_TRUE(idb.ok());
  const ra::Relation& p = idb->at(symbols_.Lookup("P"));

  // The final (empty-delta) round is counted in iterations but records no
  // round entry.
  EXPECT_EQ(stats.rounds.size() + 1, static_cast<size_t>(stats.iterations));
  size_t fresh_total = 0;
  for (const RoundStats& r : stats.rounds) {
    ASSERT_GE(r.tuples_derived, r.tuples_deduped);
    fresh_total += r.tuples_derived - r.tuples_deduped;
    size_t rule_derived = 0;
    for (const RuleRoundStats& rr : r.rules) {
      rule_derived += rr.tuples_derived;
    }
    EXPECT_EQ(rule_derived, r.tuples_derived) << "round " << r.round;
  }
  // Every P tuple beyond the round-0 exit seeding came through a recorded
  // round.
  size_t exit_tuples = edb_.Find(symbols_.Lookup("A"))->size();
  EXPECT_EQ(fresh_total + exit_tuples, p.size());
  EXPECT_GT(stats.join_probes, 0u);
  EXPECT_GT(stats.index_rebuilds, 0u);
  EXPECT_FALSE(stats.FormatTree().empty());

  // Serial stats agree on the logical (non-timing) tree.
  EvalStats serial_stats;
  FixpointOptions serial_options;
  serial_options.collect_stats = true;
  ASSERT_TRUE(
      SemiNaiveEvaluate(program, edb_, serial_options, &serial_stats).ok());
  // The same tuple may be derived once per shard, so per-round derived
  // counts can exceed the serial ones — but the *fresh* tuples per round
  // (derived minus deduped) are the engine contract and must match.
  ASSERT_EQ(serial_stats.rounds.size(), stats.rounds.size());
  for (size_t i = 0; i < stats.rounds.size(); ++i) {
    EXPECT_LE(serial_stats.rounds[i].tuples_derived,
              stats.rounds[i].tuples_derived)
        << "round " << i;
    EXPECT_EQ(serial_stats.rounds[i].tuples_derived -
                  serial_stats.rounds[i].tuples_deduped,
              stats.rounds[i].tuples_derived -
                  stats.rounds[i].tuples_deduped)
        << "round " << i;
  }
}

TEST_F(ParallelSemiNaiveTest, PlanAndCompiledFallbackUseFixpointOptions) {
  // The fixpoint options plumb through CompiledEvalOptions into the
  // semi-naive paths of plans; results are unchanged.
  workload::Generator gen(15);
  Load("A", gen.RandomGraph(25, 60));
  Load("E", gen.RandomGraph(25, 40));
  datalog::Program program = MustProgram(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  Query q;
  q.pred = symbols_.Lookup("P");
  q.bindings = {std::nullopt, std::nullopt};
  FixpointOptions fp;
  fp.num_threads = 4;
  auto serial = SemiNaiveAnswer(program, edb_, q);
  auto parallel = SemiNaiveAnswer(program, edb_, q, fp);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->ToString(), parallel->ToString());
}

}  // namespace
}  // namespace recur::eval
