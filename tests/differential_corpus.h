#ifndef RECUR_TESTS_DIFFERENTIAL_CORPUS_H_
#define RECUR_TESTS_DIFFERENTIAL_CORPUS_H_

// The differential-testing corpus: seeds x formulas x EDB shapes shared by
// the agreement tests and the golden-file capture/compare machinery. The
// corpus must stay byte-stable across refactors — goldens captured at the
// seed commit pin every engine's output forever.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "datalog/linear_rule.h"
#include "ra/database.h"
#include "ra/relation.h"
#include "workload/formula_generator.h"
#include "workload/generator.h"

namespace recur::corpus {

constexpr uint64_t kSeeds = 10;
constexpr int kFormulasPerSeed = 4;

enum class EdbKind { kChain, kTree, kLayeredDag, kRandomGraph, kGrid };
constexpr EdbKind kEdbKinds[] = {EdbKind::kChain, EdbKind::kTree,
                                 EdbKind::kLayeredDag,
                                 EdbKind::kRandomGraph, EdbKind::kGrid};

inline const char* ToString(EdbKind kind) {
  switch (kind) {
    case EdbKind::kChain: return "Chain";
    case EdbKind::kTree: return "Tree";
    case EdbKind::kLayeredDag: return "LayeredDag";
    case EdbKind::kRandomGraph: return "RandomGraph";
    case EdbKind::kGrid: return "Grid";
  }
  return "?";
}

/// Binary predicates draw the case's graph shape; other arities get random
/// rows over the same small domain so naive evaluation stays feasible.
inline ra::Relation MakeRelation(workload::Generator* gen, EdbKind kind,
                                 int arity) {
  if (arity == 2) {
    switch (kind) {
      case EdbKind::kChain: return gen->Chain(10);
      case EdbKind::kTree: return gen->Tree(3, 2);
      case EdbKind::kLayeredDag: return gen->LayeredDag(4, 3, 2);
      case EdbKind::kRandomGraph: return gen->RandomGraph(12, 24);
      case EdbKind::kGrid: return gen->Grid(4, 3);
    }
  }
  return gen->RandomRows(arity, 12, 18);
}

inline void LoadEdb(const datalog::LinearRecursiveRule& formula,
                    const datalog::Rule& exit, EdbKind kind, uint64_t seed,
                    ra::Database* edb) {
  workload::Generator gen(seed);
  auto load = [&](const datalog::Atom& atom) {
    if (atom.predicate() == formula.recursive_predicate()) return;
    auto r = edb->GetOrCreate(atom.predicate(), atom.arity());
    ASSERT_TRUE(r.ok());
    if ((*r)->empty()) {
      (*r)->InsertAll(MakeRelation(&gen, kind, atom.arity()));
    }
  };
  for (const datalog::Atom& atom : formula.rule().body()) load(atom);
  for (const datalog::Atom& atom : exit.body()) load(atom);
}

/// Keeps the reference (full-materialization) evaluations small enough to
/// run 200 cases: modest dimension and atom fan-out.
inline workload::FormulaGeneratorOptions DifferentialOptions() {
  workload::FormulaGeneratorOptions options;
  options.max_dimension = 3;
  options.max_extra_atoms = 2;
  options.max_atom_arity = 2;
  return options;
}

/// FNV-1a over the printed relation, the golden fingerprint of one case's
/// result. The full sorted ToString feeds the hash, so any byte-level
/// difference in the result set changes it.
inline uint64_t ResultFingerprint(const std::string& printed) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : printed) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Stable key of one (seed, formula index, EDB kind) case.
inline std::string CaseKey(uint64_t seed, int formula_index, EdbKind kind) {
  return std::to_string(seed) + "/" + std::to_string(formula_index) + "/" +
         ToString(kind);
}

inline std::string GoldenPath() {
  return std::string(RECUR_GOLDEN_DIR) + "/differential_results.txt";
}

/// Loads the golden file: case key -> "cardinality hash" line remainder.
inline std::map<std::string, std::string> LoadGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(GoldenPath());
  std::string key, rest;
  while (in >> key && std::getline(in, rest)) {
    if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
    golden[key] = rest;
  }
  return golden;
}

/// The golden line payload for one result.
inline std::string GoldenPayload(const ra::Relation& result) {
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    ResultFingerprint(result.ToString())));
  return std::to_string(result.size()) + " " + hex;
}

}  // namespace recur::corpus

#endif  // RECUR_TESTS_DIFFERENTIAL_CORPUS_H_
