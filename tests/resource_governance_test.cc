// Resource-governance contract tests: deadlines, tuple/arena budgets,
// max_iterations, and cooperative cancellation across every engine. The
// headline case is the paper's class-C (unbounded) example s9 under a 50 ms
// deadline — the classifier cannot tame that recursion, so the runtime
// guardrails must.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "datalog/parser.h"
#include "eval/compiled_eval.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

using util::FaultInjector;
using util::FaultSpec;
using util::ScopedFault;

class ResourceGovernanceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }

  datalog::Program MustProgram(const char* text) {
    auto p = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(p.ok()) << p.status();
    return *p;
  }

  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }

  /// The paper's s9 (class C, unbounded — no compiled form exists) over an
  /// EDB built so the fixpoint walks the z position forward one step per
  /// round: ~n rounds of work from a single exit tuple.
  ///   A = {(i, i+2)},  B = {(i, i+1)}  (chains),  E = {(n-1, 1, n)}.
  datalog::Program LoadClassCWorkload(int n) {
    ra::Relation a(2);
    for (int i = 0; i + 2 <= n; ++i) a.Insert({i, i + 2});
    ra::Relation b(2);
    for (int i = 0; i + 1 <= n; ++i) b.Insert({i, i + 1});
    ra::Relation e(3);
    e.Insert({n - 1, 1, n});
    Load("A", a);
    Load("B", b);
    Load("E", e);
    return MustProgram(
        "P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).\n"
        "P(X, Y, Z) :- E(X, Y, Z).\n");
  }

  datalog::Program LoadTransitiveClosure(int chain_length) {
    workload::Generator gen(5);
    Load("A", gen.Chain(chain_length));
    return MustProgram(
        "P(X, Y) :- A(X, Y).\n"
        "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

// Acceptance: the class-C workload under a 50 ms deadline returns
// kDeadlineExceeded with non-empty partial stats on every engine and thread
// count. Sticky 10 ms round delays make the breach deterministic.
TEST_F(ResourceGovernanceTest, ClassCDeadlineExceededOnEveryEngine) {
  datalog::Program program = LoadClassCWorkload(60);
  FaultSpec slow;
  slow.kind = FaultSpec::Kind::kDelay;
  slow.delay_ms = 10;
  FaultInjector::Instance().Arm("naive.round", slow);
  FaultInjector::Instance().Arm("seminaive.serial.round", slow);
  FaultInjector::Instance().Arm("seminaive.parallel.round", slow);

  for (int threads : {1, 4, 8}) {
    FixpointOptions options;
    options.num_threads = threads;
    options.limits.deadline_seconds = 0.05;
    EvalStats stats;
    auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << threads << " threads: " << result.status();
    EXPECT_GE(stats.iterations, 1) << threads << " threads";
    EXPECT_GT(stats.total_tuples, 0u) << threads << " threads";
    EXPECT_GT(stats.arena_bytes, 0u) << threads << " threads";
  }

  FixpointOptions options;
  options.limits.deadline_seconds = 0.05;
  EvalStats stats;
  auto naive = NaiveEvaluate(program, edb_, options, &stats);
  ASSERT_FALSE(naive.ok());
  EXPECT_TRUE(naive.status().IsDeadlineExceeded()) << naive.status();
  EXPECT_GE(stats.iterations, 1);
  EXPECT_GT(stats.total_tuples, 0u);
}

// Satellite: every engine reports a max_iterations overrun as
// kResourceExhausted with the round cap in the message.
TEST_F(ResourceGovernanceTest, MaxIterationsIsResourceExhaustedEverywhere) {
  datalog::Program program = LoadTransitiveClosure(30);
  FixpointOptions options;
  options.limits.max_iterations = 5;  // the closure needs ~30 rounds

  auto check = [](const Status& s, const char* engine) {
    EXPECT_TRUE(s.IsResourceExhausted()) << engine << ": " << s;
    EXPECT_NE(s.message().find("max_iterations"), std::string::npos)
        << engine;
    EXPECT_NE(s.message().find("5"), std::string::npos) << engine;
  };

  auto naive = NaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(naive.ok());
  check(naive.status(), "naive");

  auto serial = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(serial.ok());
  check(serial.status(), "semi-naive serial");

  options.num_threads = 4;
  auto parallel = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(parallel.ok());
  check(parallel.status(), "semi-naive parallel");

  // Compiled engine: cyclic data with dedup disabled forces synchronized
  // mode, whose frontier state cycles, so it falls back to semi-naive —
  // which must honor the same (shared-context) iteration cap.
  SymbolTable csyms;
  ra::Database cyc;
  ra::Relation ring(2);
  for (int i = 0; i < 30; ++i) ring.Insert({i, (i + 1) % 30});
  auto ar = cyc.GetOrCreate(csyms.Intern("A"), 2);
  ASSERT_TRUE(ar.ok());
  (*ar)->InsertAll(ring);
  auto er = cyc.GetOrCreate(csyms.Intern("E"), 2);
  ASSERT_TRUE(er.ok());
  (*er)->InsertAll(ring);
  auto rule = datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &csyms);
  ASSERT_TRUE(rule.ok());
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  ASSERT_TRUE(formula.ok());
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &csyms);
  ASSERT_TRUE(exit.ok());
  auto ev = StableEvaluator::Create(*formula, {*exit}, &csyms);
  ASSERT_TRUE(ev.ok()) << ev.status();
  Query q;
  q.pred = csyms.Lookup("P");
  q.bindings = {ra::Value{0}, std::nullopt};
  CompiledEvalOptions copts;
  copts.allow_dedup = false;
  copts.fixpoint.limits.max_iterations = 5;
  CompiledEvalStats cstats;
  auto compiled = ev->Answer(q, cyc, copts, &cstats);
  ASSERT_FALSE(compiled.ok());
  EXPECT_TRUE(cstats.fell_back);
  check(compiled.status(), "compiled (fallback)");
}

TEST_F(ResourceGovernanceTest, TupleBudgetBreachIsResourceExhausted) {
  datalog::Program program = LoadTransitiveClosure(40);  // closure: 820
  for (int threads : {1, 4}) {
    FixpointOptions options;
    options.num_threads = threads;
    options.limits.max_total_tuples = 100;
    EvalStats stats;
    auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
    EXPECT_NE(result.status().message().find("tuple budget"),
              std::string::npos);
    EXPECT_GT(stats.total_tuples, 100u);  // partial progress was recorded
  }
  FixpointOptions options;
  options.limits.max_total_tuples = 100;
  auto naive = NaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(naive.ok());
  EXPECT_TRUE(naive.status().IsResourceExhausted());
}

TEST_F(ResourceGovernanceTest, ArenaBudgetBreachIsResourceExhausted) {
  datalog::Program program = LoadTransitiveClosure(40);
  for (int threads : {1, 4}) {
    FixpointOptions options;
    options.num_threads = threads;
    options.limits.max_arena_bytes = 2048;
    EvalStats stats;
    auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
    EXPECT_NE(result.status().message().find("arena budget"),
              std::string::npos);
    EXPECT_GT(stats.arena_bytes, 2048u);
  }
}

TEST_F(ResourceGovernanceTest, GenerousLimitsLeaveResultsUntouched) {
  datalog::Program program = LoadTransitiveClosure(40);
  auto ungoverned = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(ungoverned.ok());
  FixpointOptions options;
  options.limits.deadline_seconds = 60.0;
  options.limits.max_total_tuples = 1u << 20;
  options.limits.max_arena_bytes = 1u << 30;
  for (int threads : {1, 4}) {
    options.num_threads = threads;
    auto governed = SemiNaiveEvaluate(program, edb_, options);
    ASSERT_TRUE(governed.ok()) << governed.status();
    EXPECT_EQ(governed->at(symbols_.Lookup("P")).ToString(),
              ungoverned->at(symbols_.Lookup("P")).ToString());
  }
}

TEST_F(ResourceGovernanceTest, PreCancelledContextStopsImmediately) {
  datalog::Program program = LoadTransitiveClosure(40);
  ExecutionContext context;
  context.Cancel();
  FixpointOptions options;
  options.context = &context;
  for (int threads : {1, 4}) {
    options.num_threads = threads;
    EvalStats stats;
    auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsCancelled()) << result.status();
    EXPECT_EQ(stats.iterations, 1);  // observed at the first poll
    stats = EvalStats();
  }
  auto naive = NaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(naive.ok());
  EXPECT_TRUE(naive.status().IsCancelled());
}

TEST_F(ResourceGovernanceTest, CancelFromAnotherThreadStopsTheFixpoint) {
  datalog::Program program = LoadClassCWorkload(60);
  FaultSpec slow;
  slow.kind = FaultSpec::Kind::kDelay;
  slow.delay_ms = 5;
  FaultInjector::Instance().Arm("seminaive.parallel.round", slow);

  ExecutionContext context;
  FixpointOptions options;
  options.context = &context;
  options.num_threads = 4;
  std::thread canceller([&context] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    context.Cancel();
  });
  EvalStats stats;
  auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  EXPECT_GE(stats.iterations, 1);
}

TEST_F(ResourceGovernanceTest, CompiledEngineHonorsDeadline) {
  workload::Generator gen(6);
  Load("A", gen.Chain(40));
  Load("E", gen.Chain(40));
  auto rule = datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols_);
  ASSERT_TRUE(rule.ok());
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  ASSERT_TRUE(formula.ok());
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols_);
  ASSERT_TRUE(exit.ok());
  auto ev = StableEvaluator::Create(*formula, {*exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  FaultSpec slow;
  slow.kind = FaultSpec::Kind::kDelay;
  slow.delay_ms = 10;
  ScopedFault fault("compiled.level", slow);
  Query q;
  q.pred = symbols_.Lookup("P");
  q.bindings = {ra::Value{0}, std::nullopt};
  CompiledEvalOptions options;
  options.fixpoint.limits.deadline_seconds = 0.05;
  auto result = ev->Answer(q, edb_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
}

TEST_F(ResourceGovernanceTest, SpecialPlansObserveCancellation) {
  workload::Generator gen(41);
  Load("A", gen.RandomGraph(15, 30));
  Load("B", gen.RandomGraph(15, 30));
  Load("E", gen.RandomRows(3, 15, 40));
  ExecutionContext context;
  context.Cancel();
  auto result = S9PlanBoundFirst(edb_, symbols_, 0, nullptr, &context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
}

TEST_F(ResourceGovernanceTest, FilterIntoPollsTheContext) {
  ra::Relation full(2);
  for (int i = 0; i < 10; ++i) full.Insert({i, i + 1});
  Query q;
  q.pred = symbols_.Intern("P");
  q.bindings = {std::nullopt, std::nullopt};
  ExecutionContext context;
  context.Cancel();
  ra::Relation out(2);
  auto result = q.FilterInto(full, &out, &context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_TRUE(out.empty());  // cancelled before the first row
}

TEST_F(ResourceGovernanceTest, SharedContextCarriesTheDeadlineAcrossCalls) {
  // One context, two evaluations: the second inherits the already-elapsed
  // clock instead of restarting its budget.
  datalog::Program program = LoadTransitiveClosure(20);
  ExecutionContext context(
      ResourceLimits{.deadline_seconds = 0.02});
  FixpointOptions options;
  options.context = &context;
  auto first = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_TRUE(first.ok()) << first.status();  // fast enough to finish
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EvalStats stats;
  auto second = SemiNaiveEvaluate(program, edb_, options, &stats);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsDeadlineExceeded()) << second.status();
  EXPECT_EQ(stats.iterations, 1);
}

}  // namespace
}  // namespace recur::eval
