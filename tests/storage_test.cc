// Edge-case coverage for the arena-backed relation layout and the ra
// operators on top of it: arity-0 relations, empty-frontier Step, self
// joins, the rows() view invalidation contract (re-acquire after
// mutation, aliasing inserts), and the staged-row / unchecked insert
// surface used by bulk loaders.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ra/operators.h"
#include "ra/relation.h"

namespace recur::ra {
namespace {

TEST(StorageTest, ArityZeroRelationHoldsAtMostOneRow) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains(Tuple{}));

  // The empty tuple is the only possible row; inserting it twice dedups.
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{}));

  // Iteration yields exactly one empty TupleRef.
  size_t count = 0;
  for (TupleRef t : r.rows()) {
    EXPECT_EQ(t.arity(), 0);
    EXPECT_TRUE(t.empty());
    ++count;
  }
  EXPECT_EQ(count, 1u);

  // Copies carry the zero-arity row along.
  Relation copy = r;
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_TRUE(copy.Contains(Tuple{}));
}

TEST(StorageTest, ArityZeroStagedRowCommits) {
  Relation r(0);
  r.StageRow();  // nothing to write: the row has no columns
  EXPECT_TRUE(r.CommitStagedRow());
  r.StageRow();
  EXPECT_FALSE(r.CommitStagedRow());
  EXPECT_EQ(r.size(), 1u);
}

TEST(StorageTest, EmptyFrontierStepIsEmpty) {
  Relation edges(2);
  edges.Insert({1, 2});
  edges.Insert({2, 3});
  auto next = Step(edges, 0, 1, ValueSet{});
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->empty());

  // A frontier that misses every source also steps to nothing.
  auto miss = Step(edges, 0, 1, ValueSet{99});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST(StorageTest, StepOverEmptyRelation) {
  Relation edges(2);
  auto next = Step(edges, 0, 1, ValueSet{1, 2, 3});
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->empty());
}

TEST(StorageTest, SelfJoinComposesEdges) {
  Relation edges(2);
  edges.Insert({1, 2});
  edges.Insert({2, 3});
  edges.Insert({3, 4});
  // edges ⋈ edges on (to, from): two-step paths.
  auto paths = Join(edges, edges, {{1, 0}});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->ToString(), "{(1,2,3), (2,3,4)}");

  // Nested-loop variant must agree on the self join.
  auto nl = JoinNestedLoop(edges, edges, {{1, 0}});
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(nl->ToString(), paths->ToString());
}

TEST(StorageTest, SelfJoinOnBothColumnsIsIdentityFilter) {
  Relation r(2);
  r.Insert({1, 1});
  r.Insert({1, 2});
  auto j = Join(r, r, {{0, 0}, {1, 1}});
  ASSERT_TRUE(j.ok());
  // Every row matches itself; right contributes no non-join columns.
  EXPECT_EQ(j->size(), r.size());
}

TEST(StorageTest, RowsViewReacquiredAfterMutationSeesNewRows) {
  Relation r(2);
  r.Insert({1, 2});
  RowsView before = r.rows();
  EXPECT_EQ(before.size(), 1u);
  // Grow enough to force arena reallocation; `before` is now invalid and
  // must not be used — re-acquiring is the contract.
  for (int i = 0; i < 1000; ++i) r.Insert({i, i + 10000});
  RowsView after = r.rows();
  EXPECT_EQ(after.size(), 1001u);
  EXPECT_EQ(after[0], (TupleRef{Tuple{1, 2}}));
}

TEST(StorageTest, InsertOfOwnRowSurvivesReallocation) {
  // Insert(t) where t points into the relation's own arena must be safe
  // even when staging the row reallocates the arena out from under t.
  Relation r(2);
  for (int i = 0; i < 100; ++i) r.Insert({i, i + 1});
  const size_t n = r.size();
  // Re-inserting every existing row is a no-op (all duplicates)...
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(r.Insert(r.rows()[i]));
  }
  EXPECT_EQ(r.size(), n);
  // ...and InsertAll from self is guarded too.
  EXPECT_EQ(r.InsertAll(r), 0u);
  EXPECT_EQ(r.size(), n);
}

TEST(StorageTest, StagedRowAbandonedIsHarmless) {
  Relation r(2);
  Value* slot = r.StageRow();
  slot[0] = 7;
  slot[1] = 8;
  // Abandon without committing: the next StageRow reuses the slot.
  Value* again = r.StageRow();
  again[0] = 1;
  again[1] = 2;
  EXPECT_TRUE(r.CommitStagedRow());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({7, 8}));
}

TEST(StorageTest, CommitStagedRowDedups) {
  Relation r(2);
  for (int round = 0; round < 2; ++round) {
    Value* slot = r.StageRow();
    slot[0] = 5;
    slot[1] = 6;
    EXPECT_EQ(r.CommitStagedRow(), round == 0);
  }
  EXPECT_EQ(r.size(), 1u);
}

TEST(StorageTest, InsertUncheckedStillVisibleToDedup) {
  Relation r(2);
  r.Reserve(4);
  EXPECT_TRUE(r.InsertUnchecked({1, 2}));
  EXPECT_TRUE(r.InsertUnchecked({3, 4}));
  // The unchecked rows entered the dedup table: plain Insert sees them.
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Contains({3, 4}));
  // Wrong arity is rejected, not stored.
  EXPECT_FALSE(r.InsertUnchecked({1, 2, 3}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(StorageTest, TupleAndTupleRefHashIdentically) {
  Tuple owned{42, -7, 0};
  TupleRef view(owned);
  TupleHash h;
  EXPECT_EQ(h(owned), h(view));
  EXPECT_EQ(owned, view.ToTuple());
  EXPECT_TRUE(view == TupleRef(owned));
}

TEST(StorageTest, ByteWiseHashSeparatesSequentialValues) {
  // Sequential ints must not collide pairwise (the regression the
  // byte-wise FNV-1a mix fixes: word-XOR folded them together).
  std::vector<uint64_t> hashes;
  for (Value i = 0; i < 64; ++i) {
    Tuple t{i, i + 1};
    hashes.push_back(HashValueSpan(t.data(), t.size()));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(StorageTest, LargeInsertProbeRoundTrip) {
  // Push through several arena and dedup-table growths.
  Relation r(3);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert({i, i * 2, i % 7}));
  }
  EXPECT_EQ(r.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; i += 997) {
    EXPECT_TRUE(r.Contains({i, i * 2, i % 7}));
    EXPECT_FALSE(r.Contains({i, i * 2 + 1, i % 7}));
  }
}

}  // namespace
}  // namespace recur::ra
