#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/compiled_eval.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

/// Fixture that builds a formula + exit, an EDB, and compares the compiled
/// evaluator against semi-naive for given queries.
class CompiledEvalTest : public ::testing::Test {
 protected:
  datalog::LinearRecursiveRule MustFormula(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = datalog::LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }
  datalog::Rule MustRule(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok()) << r.status();
    (*r)->InsertAll(rel);
  }

  /// Reference answers by semi-naive materialization + selection.
  ra::Relation Reference(const datalog::LinearRecursiveRule& f,
                         const datalog::Rule& exit, const Query& q) {
    datalog::Program program;
    program.AddRule(f.rule());
    program.AddRule(exit);
    auto answers = SemiNaiveAnswer(program, edb_, q);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return answers.ok() ? *answers : ra::Relation(q.arity());
  }

  Query MakeQuery(const char* pred,
                  std::vector<std::optional<ra::Value>> bindings) {
    Query q;
    q.pred = symbols_.Lookup(pred);
    q.bindings = std::move(bindings);
    return q;
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(CompiledEvalTest, S1aForwardBfsOnChain) {
  workload::Generator gen(21);
  Load("A", gen.Chain(40));
  Load("E", gen.Chain(40));  // E == A: P is "one A step then reachability"
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();

  Query q = MakeQuery("P", {ra::Value{0}, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kForwardBfs);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
  EXPECT_EQ(answers->size(), 40u);  // 0 -> 1..40
}

TEST_F(CompiledEvalTest, S1aBackwardClosure) {
  workload::Generator gen(22);
  Load("A", gen.Tree(4, 2));
  Load("E", gen.Tree(4, 2));
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  // Free first position (the chained one), bound second (identity):
  // backward closure mode.
  Query q = MakeQuery("P", {std::nullopt, ra::Value{14}});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kBackwardClosure);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, S1aFullyBoundAndFullyFree) {
  workload::Generator gen(23);
  Load("A", gen.LayeredDag(5, 4, 2));
  Load("E", gen.LayeredDag(5, 4, 2));
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  // Fully free: backward-closure mode (no bound non-identity position).
  Query all = MakeQuery("P", {std::nullopt, std::nullopt});
  auto a1 = ev->Answer(all, edb_);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->ToString(), Reference(f, exit, all).ToString());

  // Fully bound: pick one known answer and one non-answer.
  ASSERT_FALSE(a1->empty());
  ra::Tuple yes = a1->rows()[0].ToTuple();
  Query qyes = MakeQuery("P", {yes[0], yes[1]});
  auto a2 = ev->Answer(qyes, edb_);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->size(), 1u);

  Query qno = MakeQuery("P", {ra::Value{999}, ra::Value{998}});
  auto a3 = ev->Answer(qno, edb_);
  ASSERT_TRUE(a3.ok());
  EXPECT_TRUE(a3->empty());
}

TEST_F(CompiledEvalTest, S2aSynchronizedOnAcyclicData) {
  // (s2a) needs level synchronization for P(a, Y): A^k forward, B^k
  // backward with the same k.
  workload::Generator gen(24);
  Load("A", gen.Chain(30, 0));
  Load("B", gen.Chain(30, 1000));
  Load("E", gen.RandomPairs(31, 31, 60, 0, 1000));
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  Query q = MakeQuery("P", {ra::Value{0}, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kSynchronized);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, HornerMatchesLevelwise) {
  workload::Generator gen(25);
  Load("A", gen.LayeredDag(6, 3, 2, 0));
  Load("B", gen.LayeredDag(6, 3, 2, 1000));
  Load("E", gen.RandomPairs(18, 18, 40, 0, 1000));
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  Query q = MakeQuery("P", {ra::Value{0}, std::nullopt});
  CompiledEvalOptions horner;
  horner.free_mode = FreeMode::kHorner;
  CompiledEvalOptions levelwise;
  levelwise.free_mode = FreeMode::kLevelwise;
  auto a1 = ev->Answer(q, edb_, horner);
  auto a2 = ev->Answer(q, edb_, levelwise);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1->ToString(), a2->ToString());
  EXPECT_EQ(a1->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, DedupOffStillCorrectOnAcyclicData) {
  workload::Generator gen(26);
  Load("A", gen.Tree(5, 2));
  Load("E", gen.Tree(5, 2));
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  Query q = MakeQuery("P", {ra::Value{0}, std::nullopt});
  CompiledEvalOptions no_dedup;
  no_dedup.allow_dedup = false;
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, no_dedup, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kSynchronized);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, CyclicDataFallsBackAndStaysCorrect) {
  // A 3-cycle in A: the synchronized frontier never empties, the state
  // cycles, and the evaluator falls back to semi-naive.
  ra::Relation a(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  a.Insert({3, 1});
  Load("A", a);
  ra::Relation b(2);
  b.Insert({10, 11});
  b.Insert({11, 12});
  b.Insert({12, 10});
  Load("B", b);
  ra::Relation e(2);
  e.Insert({1, 10});
  e.Insert({2, 11});
  Load("E", e);
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  Query q = MakeQuery("P", {ra::Value{1}, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_TRUE(stats.fell_back);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());

  CompiledEvalOptions strict;
  strict.fallback_to_seminaive = false;
  EXPECT_TRUE(ev->Answer(q, edb_, strict).status().IsUnsupported());
}

TEST_F(CompiledEvalTest, CyclicDataForwardBfsIsExactWithoutFallback) {
  // For the BFS-able adornment the visited set makes cyclic data fine.
  ra::Relation a(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  a.Insert({3, 1});
  Load("A", a);
  ra::Relation e(2);
  e.Insert({2, 50});
  e.Insert({3, 60});
  Load("E", e);
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());

  Query q = MakeQuery("P", {ra::Value{1}, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kForwardBfs);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, S3ThreePositionQuery) {
  // Example 3 with query P(a, b, Z).
  workload::Generator gen(27);
  Load("A", gen.LayeredDag(4, 3, 2, 0));
  Load("B", gen.LayeredDag(4, 3, 2, 1000));
  Load("C", gen.LayeredDag(4, 3, 2, 2000));
  Load("E", gen.RandomRows(3, 12, 40, 0));
  // Make E span the three node ranges so joins can succeed.
  ra::Relation* e = edb_.FindMutable(symbols_.Lookup("E"));
  workload::Generator gen2(28);
  ra::Relation extra = gen2.RandomRows(3, 12, 40, 0);
  for (ra::TupleRef t : extra.rows()) {
    e->Insert({t[0], 1000 + t[1], 2000 + t[2]});
  }
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X, Y, Z) :- A(X, U), B(Y, V), P(U, V, W), C(W, Z).");
  datalog::Rule exit = MustRule("P(X, Y, Z) :- E(X, Y, Z).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();

  Query q = MakeQuery("P", {ra::Value{0}, ra::Value{1000}, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kSynchronized);
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, TransformedNonUnitFormula) {
  // (s4a) via CreateWithTransform: unfolds 3x, then compiled evaluation.
  workload::Generator gen(29);
  Load("A", gen.LayeredDag(4, 3, 2, 0));
  Load("B", gen.LayeredDag(4, 3, 2, 0));
  Load("C", gen.LayeredDag(4, 3, 2, 0));
  Load("E", gen.RandomRows(3, 12, 50, 0));
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  datalog::Rule exit = MustRule("P(X1, X2, X3) :- E(X1, X2, X3).");
  auto ev = StableEvaluator::CreateWithTransform(f, exit, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();
  EXPECT_EQ(ev->exits().size(), 3u);

  for (auto& q :
       {MakeQuery("P", {ra::Value{0}, std::nullopt, std::nullopt}),
        MakeQuery("P", {std::nullopt, std::nullopt, std::nullopt})}) {
    auto answers = ev->Answer(q, edb_);
    ASSERT_TRUE(answers.ok()) << answers.status();
    EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString())
        << q.AdornmentString();
  }
}

TEST_F(CompiledEvalTest, PermutationalViaTransform) {
  // (s5) P(X,Y,Z) :- P(Y,Z,X): the stable form's recursive rule is the
  // identity; answers are the three rotations of E.
  ra::Relation e(3);
  e.Insert({1, 2, 3});
  e.Insert({4, 5, 6});
  Load("E", e);
  datalog::LinearRecursiveRule f = MustFormula("P(X, Y, Z) :- P(Y, Z, X).");
  datalog::Rule exit = MustRule("P(X, Y, Z) :- E(X, Y, Z).");
  auto ev = StableEvaluator::CreateWithTransform(f, exit, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();

  Query q = MakeQuery("P", {std::nullopt, std::nullopt, std::nullopt});
  CompiledEvalStats stats;
  auto answers = ev->Answer(q, edb_, {}, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(stats.mode, CompiledEvalStats::Mode::kSingleLevel);
  EXPECT_EQ(answers->size(), 6u);
  EXPECT_TRUE(answers->Contains({1, 2, 3}));
  EXPECT_TRUE(answers->Contains({2, 3, 1}));
  EXPECT_TRUE(answers->Contains({3, 1, 2}));
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, GuardAtomKillsDeeperLevels) {
  // A non-recursive atom disconnected from every position guards the
  // recursion: with W empty, only the exit level contributes.
  workload::Generator gen(30);
  Load("A", gen.Chain(10));
  Load("E", gen.Chain(10));
  Load("W", ra::Relation(1));  // empty guard relation
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), W(V), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();
  ASSERT_FALSE(ev->chains().guard_atoms.empty());

  Query q = MakeQuery("P", {ra::Value{0}, std::nullopt});
  auto answers = ev->Answer(q, edb_);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);  // only E(0,1)
  EXPECT_EQ(answers->ToString(), Reference(f, exit, q).ToString());

  // With a non-empty guard, deeper levels flow again.
  ra::Relation w(1);
  w.Insert({7});
  Load("W", w);
  auto answers2 = ev->Answer(q, edb_);
  ASSERT_TRUE(answers2.ok());
  EXPECT_EQ(answers2->size(), 10u);
  EXPECT_EQ(answers2->ToString(), Reference(f, exit, q).ToString());
}

TEST_F(CompiledEvalTest, CreateRejectsBadInputs) {
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  // No exits.
  EXPECT_FALSE(StableEvaluator::Create(f, {}, &symbols_).ok());
  // Exit for the wrong predicate.
  datalog::Rule bad_exit = MustRule("Q(X, Y) :- E(X, Y).");
  EXPECT_FALSE(StableEvaluator::Create(f, {bad_exit}, &symbols_).ok());
  // Recursive "exit".
  datalog::Rule rec_exit = MustRule("P(X, Y) :- P(X, Y).");
  EXPECT_FALSE(StableEvaluator::Create(f, {rec_exit}, &symbols_).ok());
  // Unstable rule via Create.
  datalog::LinearRecursiveRule s9 =
      MustFormula("P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).");
  datalog::Rule exit3 = MustRule("P(X, Y, Z) :- E(X, Y, Z).");
  EXPECT_FALSE(StableEvaluator::Create(s9, {exit3}, &symbols_).ok());
  // Untransformable via CreateWithTransform.
  EXPECT_FALSE(StableEvaluator::CreateWithTransform(s9, exit3, &symbols_)
                   .ok());
  // Query mismatch.
  auto ev = StableEvaluator::Create(f, {exit}, &symbols_);
  ASSERT_TRUE(ev.ok());
  Query q;
  q.pred = symbols_.Lookup("P");
  q.bindings = {std::nullopt};  // wrong arity
  EXPECT_FALSE(ev->Answer(q, edb_).ok());
}

}  // namespace
}  // namespace recur::eval
