#include <gtest/gtest.h>

#include "datalog/linear_rule.h"
#include "datalog/parser.h"
#include "datalog/program.h"
#include "datalog/substitution.h"
#include "datalog/unify.h"

namespace recur::datalog {
namespace {

class DatalogTest : public ::testing::Test {
 protected:
  Rule MustParseRule(const char* text) {
    auto r = ParseRule(text, &symbols_);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }
  Atom MustParseAtom(const char* text) {
    auto r = ParseAtom(text, &symbols_);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }
  SymbolTable symbols_;
};

TEST_F(DatalogTest, TermKinds) {
  SymbolId x = symbols_.Intern("X");
  Term var = Term::Variable(x);
  Term con = Term::Constant(x);
  EXPECT_TRUE(var.IsVariable());
  EXPECT_TRUE(con.IsConstant());
  EXPECT_NE(var, con);
  EXPECT_EQ(var, Term::Variable(x));
}

TEST_F(DatalogTest, AtomVariables) {
  Atom a = MustParseAtom("A(X, b, Y, X)");
  EXPECT_EQ(a.arity(), 4);
  EXPECT_EQ(a.Variables().size(), 2u);  // X, Y (deduplicated)
  EXPECT_TRUE(a.ContainsVariable(symbols_.Lookup("X")));
  EXPECT_FALSE(a.ContainsVariable(symbols_.Lookup("b")));
}

TEST_F(DatalogTest, RuleRecursive) {
  Rule tc = MustParseRule("P(X, Y) :- A(X, Z), P(Z, Y).");
  EXPECT_TRUE(tc.IsRecursive());
  Rule exit = MustParseRule("P(X, Y) :- E(X, Y).");
  EXPECT_FALSE(exit.IsRecursive());
  EXPECT_EQ(tc.BodyIndexesOf(symbols_.Lookup("P")),
            (std::vector<int>{1}));
  EXPECT_EQ(tc.BodyAtomsExcept(symbols_.Lookup("P")).size(), 1u);
}

TEST_F(DatalogTest, RuleVariablesInOrder) {
  Rule r = MustParseRule("P(X, Y) :- A(X, Z), P(Z, Y).");
  std::vector<SymbolId> vars = r.Variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(symbols_.NameOf(vars[0]), "X");
  EXPECT_EQ(symbols_.NameOf(vars[1]), "Y");
  EXPECT_EQ(symbols_.NameOf(vars[2]), "Z");
}

TEST_F(DatalogTest, RangeRestriction) {
  EXPECT_TRUE(MustParseRule("P(X) :- A(X, Y).").IsRangeRestricted());
  EXPECT_FALSE(MustParseRule("P(X, W) :- A(X, Y).").IsRangeRestricted());
  EXPECT_TRUE(MustParseRule("A(a, b).").IsRangeRestricted());  // ground fact
}

TEST_F(DatalogTest, RoundTripPrinting) {
  const char* text = "P(X, Y) :- A(X, Z), P(Z, Y).";
  Rule r = MustParseRule(text);
  EXPECT_EQ(r.ToString(symbols_), text);
}

TEST_F(DatalogTest, ProgramPredicateSets) {
  auto program = ParseProgram(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n"
      "?- P(a, Y).\n",
      &symbols_);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 2u);
  EXPECT_EQ(program->queries().size(), 1u);
  EXPECT_EQ(program->IdbPredicates(),
            (std::vector<SymbolId>{symbols_.Lookup("P")}));
  std::vector<SymbolId> edb = program->EdbPredicates();
  EXPECT_EQ(edb.size(), 2u);  // E, A
  EXPECT_EQ(program->RulesFor(symbols_.Lookup("P")).size(), 2u);
  EXPECT_TRUE(program->Validate().ok());
}

TEST_F(DatalogTest, ProgramValidateRejectsUnrestrictedRule) {
  auto program = ParseProgram("P(X, W) :- A(X, Y).", &symbols_);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->Validate().ok());
}

TEST_F(DatalogTest, SubstitutionApplies) {
  Substitution s;
  SymbolId x = symbols_.Intern("X");
  s.Bind(x, Term::Constant(symbols_.Intern("a")));
  Atom atom = MustParseAtom("A(X, Y)");
  Atom applied = s.Apply(atom);
  EXPECT_TRUE(applied.args()[0].IsConstant());
  EXPECT_TRUE(applied.args()[1].IsVariable());
}

TEST_F(DatalogTest, SubstitutionWalksChains) {
  Substitution s;
  SymbolId x = symbols_.Intern("X");
  SymbolId y = symbols_.Intern("Y");
  s.Bind(x, Term::Variable(y));
  s.Bind(y, Term::Constant(symbols_.Intern("c")));
  EXPECT_TRUE(s.Apply(Term::Variable(x)).IsConstant());
}

TEST_F(DatalogTest, UnifySuccess) {
  Atom a = MustParseAtom("A(X, b)");
  Atom b = MustParseAtom("A(a, Y)");
  auto subst = Unify(a, b);
  ASSERT_TRUE(subst.ok());
  EXPECT_EQ(subst->Apply(a).ToString(symbols_), "A(a, b)");
  EXPECT_EQ(subst->Apply(b).ToString(symbols_), "A(a, b)");
}

TEST_F(DatalogTest, UnifyFailures) {
  EXPECT_FALSE(Unify(MustParseAtom("A(a)"), MustParseAtom("A(b)")).ok());
  EXPECT_FALSE(Unify(MustParseAtom("A(a)"), MustParseAtom("B(a)")).ok());
  EXPECT_FALSE(Unify(MustParseAtom("A(a)"), MustParseAtom("A(a, b)")).ok());
}

TEST_F(DatalogTest, UnifyVariableToVariable) {
  Atom a = MustParseAtom("A(X, X)");
  Atom b = MustParseAtom("A(Y, c)");
  auto subst = Unify(a, b);
  ASSERT_TRUE(subst.ok());
  EXPECT_EQ(subst->Apply(a).ToString(symbols_), "A(c, c)");
}

TEST_F(DatalogTest, LinearRuleAcceptsValidFormula) {
  auto f = LinearRecursiveRule::Create(
      MustParseRule("P(X, Y) :- A(X, Z), P(Z, Y)."));
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->dimension(), 2);
  EXPECT_EQ(f->recursive_index(), 1);
  EXPECT_EQ(f->NonRecursiveAtoms().size(), 1u);
}

TEST_F(DatalogTest, LinearRuleRejectsFact) {
  EXPECT_FALSE(LinearRecursiveRule::Create(MustParseRule("A(a, b).")).ok());
}

TEST_F(DatalogTest, LinearRuleRejectsNonRecursive) {
  auto f = LinearRecursiveRule::Create(
      MustParseRule("P(X, Y) :- E(X, Y)."));
  EXPECT_TRUE(f.status().IsInvalidArgument());
}

TEST_F(DatalogTest, LinearRuleRejectsNonLinear) {
  auto f = LinearRecursiveRule::Create(
      MustParseRule("P(X, Y) :- P(X, Z), P(Z, Y)."));
  EXPECT_TRUE(f.status().IsUnsupported());
}

TEST_F(DatalogTest, LinearRuleRejectsConstants) {
  EXPECT_FALSE(LinearRecursiveRule::Create(
                   MustParseRule("P(X, Y) :- A(X, a), P(X, Y)."))
                   .ok());
  EXPECT_FALSE(LinearRecursiveRule::Create(
                   MustParseRule("P(X, a) :- A(X, Z), P(Z, a)."))
                   .ok());
}

TEST_F(DatalogTest, LinearRuleRejectsRepeatedVariableUnderP) {
  auto head_repeat = LinearRecursiveRule::Create(
      MustParseRule("P(X, X) :- A(X, Z), P(Z, X)."));
  EXPECT_TRUE(head_repeat.status().IsUnsupported());
  auto body_repeat = LinearRecursiveRule::Create(
      MustParseRule("P(X, Y) :- A(X, Z), P(Z, Z)."));
  EXPECT_TRUE(body_repeat.status().IsUnsupported());
}

TEST_F(DatalogTest, LinearRuleRejectsArityMismatch) {
  EXPECT_FALSE(LinearRecursiveRule::Create(
                   MustParseRule("P(X, Y) :- A(X, Z), P(Z)."))
                   .ok());
}

TEST_F(DatalogTest, LinearRuleRejectsUnrestrictedHead) {
  auto f = LinearRecursiveRule::Create(
      MustParseRule("P(X, Y, W) :- A(X, Z), P(Z, Y, U)."));
  // W never occurs in the body.
  EXPECT_TRUE(f.status().IsInvalidArgument());
}

}  // namespace
}  // namespace recur::datalog
