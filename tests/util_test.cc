#include <gtest/gtest.h>

#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/symbol_table.h"

namespace recur {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad rule");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "Parse error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "Deadline exceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "Data loss");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, DataLossToString) {
  Status s = Status::DataLoss("checksum mismatch");
  EXPECT_EQ(s.ToString(), "Data loss: checksum mismatch");
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::NotFound("no value"); }

Result<int> UsesAssignOrReturn(bool fail) {
  RECUR_ASSIGN_OR_RETURN(int v, fail ? ReturnsError() : ReturnsValue());
  return v + 1;
}

Status UsesReturnIfError(bool fail) {
  RECUR_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*UsesAssignOrReturn(false), 43);
  EXPECT_TRUE(UsesAssignOrReturn(true).status().IsNotFound());
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_TRUE(UsesReturnIfError(true).IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abc", "ab"));
  EXPECT_FALSE(StartsWith("abc", "bc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(StringUtilTest, Repeat) {
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("ab", 0), "");
  EXPECT_EQ(Repeat("ab", -1), "");
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  SymbolId a = t.Intern("P");
  SymbolId b = t.Intern("P");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidSymbol);
  EXPECT_EQ(t.NameOf(a), "P");
}

TEST(SymbolTableTest, DistinctNamesDistinctIds) {
  SymbolTable t;
  EXPECT_NE(t.Intern("P"), t.Intern("Q"));
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, LookupWithoutIntern) {
  SymbolTable t;
  EXPECT_EQ(t.Lookup("missing"), kInvalidSymbol);
  t.Intern("present");
  EXPECT_NE(t.Lookup("present"), kInvalidSymbol);
}

TEST(SymbolTableTest, InvalidName) {
  SymbolTable t;
  EXPECT_EQ(t.NameOf(kInvalidSymbol), "<invalid>");
  EXPECT_EQ(t.NameOf(9999), "<invalid>");
}

TEST(SymbolTableTest, FreshAvoidsCollisions) {
  SymbolTable t;
  SymbolId x = t.Intern("x@0");
  SymbolId f = t.Fresh("x");
  EXPECT_NE(f, x);
  EXPECT_NE(t.NameOf(f), "x@0");
}

}  // namespace
}  // namespace recur
