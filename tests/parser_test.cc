#include <gtest/gtest.h>

#include "datalog/lexer.h"
#include "datalog/parser.h"

namespace recur::datalog {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("P(X, y1) :- .");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdentifier, TokenKind::kLeftParen,
                       TokenKind::kIdentifier, TokenKind::kComma,
                       TokenKind::kIdentifier, TokenKind::kRightParen,
                       TokenKind::kImplies, TokenKind::kPeriod,
                       TokenKind::kEnd}));
}

TEST(LexerTest, AlternativeSyntax) {
  auto tokens = Lex("P(X) <- A(X) & B(X).");
  ASSERT_TRUE(tokens.ok());
  int implies = 0;
  int commas = 0;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kImplies) ++implies;
    if (t.kind == TokenKind::kComma) ++commas;
  }
  EXPECT_EQ(implies, 1);
  EXPECT_EQ(commas, 1);
}

TEST(LexerTest, CommentsAndNumbersAndStrings) {
  auto tokens = Lex("% comment line\nA(1, \"two\"). # tail comment");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 7u);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[2].text, "1");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[4].text, "two");
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = Lex("A.\nB.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[2].line, 2);
  EXPECT_EQ((*tokens)[2].column, 1);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("A(\"unterminated").ok());
  EXPECT_FALSE(Lex("A $ B").ok());
  EXPECT_FALSE(Lex("A ? B").ok());  // lone '?' is invalid
}

TEST(LexerTest, QueryToken) {
  auto tokens = Lex("?- P(a).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kQuery);
}

class ParserTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
};

TEST_F(ParserTest, VariableVsConstantConvention) {
  auto atom = ParseAtom("A(X, x, _y, 42, \"lit\")", &symbols_);
  ASSERT_TRUE(atom.ok()) << atom.status();
  EXPECT_TRUE(atom->args()[0].IsVariable());   // X
  EXPECT_TRUE(atom->args()[1].IsConstant());   // x
  EXPECT_TRUE(atom->args()[2].IsVariable());   // _y
  EXPECT_TRUE(atom->args()[3].IsConstant());   // 42
  EXPECT_TRUE(atom->args()[4].IsConstant());   // "lit"
}

TEST_F(ParserTest, PredicateCaseDoesNotMatter) {
  auto rule = ParseRule("p(X) :- Edge(X, Y).", &symbols_);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(symbols_.NameOf(rule->head().predicate()), "p");
  EXPECT_EQ(symbols_.NameOf(rule->body()[0].predicate()), "Edge");
}

TEST_F(ParserTest, ZeroArityAtom) {
  auto rule = ParseRule("Flag :- Cond.", &symbols_);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head().arity(), 0);
}

TEST_F(ParserTest, FactAndRuleAndQuery) {
  auto program = ParseProgram(
      "A(a, b).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n"
      "?- P(a, Y).\n",
      &symbols_);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 2u);
  EXPECT_TRUE(program->rules()[0].IsFact());
  EXPECT_EQ(program->queries().size(), 1u);
  EXPECT_TRUE(program->queries()[0].args()[0].IsConstant());
  EXPECT_TRUE(program->queries()[0].args()[1].IsVariable());
}

TEST_F(ParserTest, ErrorMissingPeriod) {
  EXPECT_FALSE(ParseRule("P(X) :- A(X)", &symbols_).ok());
}

TEST_F(ParserTest, ErrorMissingParen) {
  EXPECT_FALSE(ParseRule("P(X :- A(X).", &symbols_).ok());
}

TEST_F(ParserTest, ErrorEmptyBody) {
  EXPECT_FALSE(ParseRule("P(X) :- .", &symbols_).ok());
}

TEST_F(ParserTest, ErrorTrailingInput) {
  EXPECT_FALSE(ParseRule("P(X) :- A(X). extra", &symbols_).ok());
  EXPECT_FALSE(ParseAtom("A(X) extra", &symbols_).ok());
}

TEST_F(ParserTest, ErrorMessageHasLocation) {
  auto rule = ParseRule("P(X) :-\n  A(X,).", &symbols_);
  ASSERT_FALSE(rule.ok());
  EXPECT_NE(rule.status().message().find("line 2"), std::string::npos)
      << rule.status();
}

TEST_F(ParserTest, PaperExamplesAllParse) {
  const char* examples[] = {
      "P(X, Y) :- A(X, Z), P(Z, Y).",
      "P(X, Y, Z) :- A(X, Y), P(U, Z, V), B(U, V).",
      "P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).",
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).",
      "P(X, Y, Z) :- P(Y, Z, X).",
      "P(X, Y, Z, U, V, W) :- P(Z, Y, U, X, W, V).",
  };
  for (const char* text : examples) {
    EXPECT_TRUE(ParseRule(text, &symbols_).ok()) << text;
  }
}

}  // namespace
}  // namespace recur::datalog
