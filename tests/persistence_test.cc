// Durability layer (server/durability.h + server::Database::OpenOrRecover):
// a restart must revive the exact resident state — warm restarts load the
// snapshot without running a single fixpoint iteration, WAL replay
// reconstructs every acknowledged batch after the snapshot, torn tails and
// corrupt snapshots degrade to typed errors or explicit data-loss reports,
// and an armed io.* fault site never crashes or publishes partial state.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "datalog/parser.h"
#include "eval/maintenance.h"
#include "eval/seminaive.h"
#include "server/database.h"
#include "server/durability.h"
#include "util/fault_injection.h"
#include "util/io.h"

namespace recur {
namespace {

constexpr char kProgram[] =
    "P(X, Y) :- E(X, Y).\n"
    "P(X, Y) :- E(X, Z), P(Z, Y).\n";

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) / "recur_persist" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name())
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  datalog::Program Parse() {
    auto program = datalog::ParseProgram(kProgram, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    return *program;
  }

  ra::Database ChainEdb(int n) {
    ra::Database edb;
    ra::Relation* e = *edb.GetOrCreate(symbols_.Intern("E"), 2);
    for (int i = 0; i < n; ++i) e->Insert({i, i + 1});
    return edb;
  }

  server::ServerOptions DurableOptions() {
    server::ServerOptions options;
    options.durability.dir = dir_;
    options.durability.program_text = kProgram;
    options.durability.fsync = server::FsyncPolicy::kNone;  // tests: no I/O tax
    return options;
  }

  std::unique_ptr<server::Database> MakeDurableServer(int chain = 4) {
    auto db = server::Database::Create(Parse(), ChainEdb(chain), &symbols_,
                                       DurableOptions());
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(*db);
  }

  /// One batch inserting edge (from, to) into E.
  eval::EdbDeltas InsertEdge(ra::Value from, ra::Value to) {
    eval::EdbDeltas deltas;
    eval::EdbDelta delta(2);
    delta.inserts.Insert({from, to});
    deltas.emplace(symbols_.Lookup("E"), std::move(delta));
    return deltas;
  }

  /// The key recovery invariant: the revived IDB must equal the fixpoint
  /// of the revived EDB, byte for byte.
  void ExpectIdbMatchesFixpoint(const server::Database& db) {
    auto snap = db.snapshot();
    auto idb = eval::SemiNaiveEvaluate(db.program(), snap.edb());
    ASSERT_TRUE(idb.ok()) << idb.status();
    const ra::Relation* resident = snap.idb().Find(symbols_.Lookup("P"));
    ASSERT_NE(resident, nullptr);
    auto it = idb->find(symbols_.Lookup("P"));
    ASSERT_NE(it, idb->end());
    EXPECT_EQ(resident->ToString(), it->second.ToString());
  }

  std::vector<std::string> SnapshotPaths() {
    auto files = server::ListSnapshotFiles(dir_);
    EXPECT_TRUE(files.ok());
    std::vector<std::string> paths;
    for (const auto& [epoch, path] : *files) paths.push_back(path);
    return paths;
  }

  void FlipByteNearEnd(const std::string& path) {
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string WalPath() {
    return dir_ + "/" + server::kWalFileName;
  }

  SymbolTable symbols_;
  std::string dir_;
};

TEST_F(PersistenceTest, CreateArmsDurabilityAndWritesEpochZeroSnapshot) {
  auto db = MakeDurableServer();
  EXPECT_TRUE(db->durability_armed());
  auto files = server::ListSnapshotFiles(dir_);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  EXPECT_EQ((*files)[0].first, 0u);
}

TEST_F(PersistenceTest, NonDurableServerRejectsSaveSnapshot) {
  auto db = server::Database::Create(Parse(), ChainEdb(3), &symbols_);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->durability_armed());
  EXPECT_TRUE((*db)->SaveSnapshot().IsInvalidArgument());
}

TEST_F(PersistenceTest, CreateRefusesDirectoryWithExistingSnapshots) {
  MakeDurableServer();
  auto again = server::Database::Create(Parse(), ChainEdb(3), &symbols_,
                                        DurableOptions());
  EXPECT_TRUE(again.status().IsInvalidArgument());
}

TEST_F(PersistenceTest, WarmRestartRunsZeroFixpointIterations) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
    ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());
    ASSERT_TRUE(db->SaveSnapshot().ok());
  }
  server::RecoveryInfo info;
  auto revived = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                                 {}, &info);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_TRUE(info.warm_start);
  EXPECT_EQ(info.snapshot_epoch, 2u);
  EXPECT_EQ(info.replayed_batches, 0u);
  EXPECT_FALSE(info.data_loss);
  // The zero-fixpoint-restart guarantee: the snapshot alone revived the
  // IDB; no maintenance round ran.
  EXPECT_EQ(info.stats.iterations, 0);
  EXPECT_EQ((*revived)->epoch(), 2u);
  ExpectIdbMatchesFixpoint(**revived);
}

TEST_F(PersistenceTest, WalReplayRestoresBatchesAfterTheSnapshot) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
    ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());
    ASSERT_TRUE(db->Apply(InsertEdge(12, 13)).ok());
    // No SaveSnapshot: only the epoch-0 snapshot from Create exists, so
    // every batch must come back through the log.
  }
  server::RecoveryInfo info;
  auto revived = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                                 {}, &info);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_TRUE(info.warm_start);
  EXPECT_EQ(info.snapshot_epoch, 0u);
  EXPECT_EQ(info.replayed_batches, 3u);
  EXPECT_FALSE(info.data_loss);
  EXPECT_GT(info.stats.iterations, 0);  // replay runs real maintenance
  EXPECT_EQ((*revived)->epoch(), 3u);
  ExpectIdbMatchesFixpoint(**revived);
  EXPECT_TRUE(
      (*revived)->snapshot().idb().Find(symbols_.Lookup("P"))->Contains(
          {10, 13}));
}

TEST_F(PersistenceTest, RecoveredServerKeepsAcceptingBatches) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  }
  auto revived =
      server::Database::OpenOrRecover(dir_, kProgram, &symbols_, {});
  ASSERT_TRUE(revived.ok()) << revived.status();
  ASSERT_TRUE((*revived)->Apply(InsertEdge(11, 12)).ok());
  ASSERT_TRUE((*revived)->SaveSnapshot().ok());
  revived->reset();

  server::RecoveryInfo info;
  auto again = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                               {}, &info);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->epoch(), 2u);
  EXPECT_EQ(info.replayed_batches, 0u);
  ExpectIdbMatchesFixpoint(**again);
}

TEST_F(PersistenceTest, TornWalTailIsDiscardedNotFatal) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
    ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());
    ASSERT_TRUE(db->Apply(InsertEdge(12, 13)).ok());
  }
  // Crash mid-append: the last record loses its final bytes.
  const auto full = std::filesystem::file_size(WalPath());
  std::filesystem::resize_file(WalPath(), full - 3);

  server::RecoveryInfo info;
  auto revived = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                                 {}, &info);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(info.replayed_batches, 2u);
  EXPECT_EQ(info.discarded_wal_records, 1u);
  EXPECT_EQ((*revived)->epoch(), 2u);
  ExpectIdbMatchesFixpoint(**revived);
  const ra::Relation* p =
      (*revived)->snapshot().idb().Find(symbols_.Lookup("P"));
  EXPECT_TRUE(p->Contains({10, 12}));
  EXPECT_FALSE(p->Contains({12, 13}));  // the torn batch is gone

  // The revived server appends past the truncation point cleanly.
  ASSERT_TRUE((*revived)->Apply(InsertEdge(20, 21)).ok());
  EXPECT_EQ((*revived)->epoch(), 3u);
}

TEST_F(PersistenceTest, EpochGapRecordsAreCutSoLaterBatchesSurviveRecovery) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());  // epoch 1
    ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());  // epoch 2
  }
  // Simulate acknowledged batches vanishing ahead of the tail (the
  // corrupt-snapshot-fallback scenario): a CRC-intact record whose epoch
  // skips past the replayable prefix.
  {
    auto poison = server::EncodeWalRecord(5, InsertEdge(90, 91), symbols_);
    ASSERT_TRUE(poison.ok());
    auto log = util::io::AppendLog::Open(WalPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(*poison, /*sync=*/false).ok());
  }

  server::RecoveryInfo info;
  auto revived = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                                 {}, &info);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(info.replayed_batches, 2u);
  EXPECT_EQ(info.discarded_wal_records, 1u);
  EXPECT_TRUE(info.data_loss);
  EXPECT_EQ((*revived)->epoch(), 2u);

  // The gap record must have been cut from the log, so this acknowledged
  // batch lands after the replayed prefix — not behind a record every
  // later recovery would stop at, silently discarding the batch.
  ASSERT_TRUE((*revived)->Apply(InsertEdge(12, 13)).ok());  // epoch 3
  revived->reset();

  server::RecoveryInfo again_info;
  auto again = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                               {}, &again_info);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again_info.replayed_batches, 3u);
  EXPECT_EQ(again_info.discarded_wal_records, 0u);
  EXPECT_FALSE(again_info.data_loss);
  EXPECT_EQ((*again)->epoch(), 3u);
  ExpectIdbMatchesFixpoint(**again);
  const ra::Relation* p =
      (*again)->snapshot().idb().Find(symbols_.Lookup("P"));
  EXPECT_TRUE(p->Contains({10, 13}));   // replayed prefix + revived batch
  EXPECT_FALSE(p->Contains({90, 91}));  // the gap record never applied
}

TEST_F(PersistenceTest, OversizedSnapshotNamesAreSkippedNotFatal) {
  MakeDurableServer();
  // 21 digits, and 20 digits above UINT64_MAX: foreign files that must be
  // skipped, not fed to std::stoull (out_of_range would escape the
  // Status-based API and abort while merely listing the directory).
  std::ofstream(dir_ + "/snapshot-999999999999999999999.snap").put('x');
  std::ofstream(dir_ + "/snapshot-99999999999999999999.snap").put('x');
  auto files = server::ListSnapshotFiles(dir_);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  EXPECT_EQ((*files)[0].first, 0u);
}

TEST_F(PersistenceTest, CorruptSnapshotFallsBackToOlderWithDataLoss) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
    ASSERT_TRUE(db->SaveSnapshot().ok());  // snapshot-1
    ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());
    ASSERT_TRUE(db->SaveSnapshot().ok());  // snapshot-2, keeps {2, 1}
  }
  auto paths = SnapshotPaths();
  ASSERT_EQ(paths.size(), 2u);
  FlipByteNearEnd(paths[0]);  // newest-first: corrupt epoch 2

  server::RecoveryInfo info;
  auto revived = server::Database::OpenOrRecover(dir_, kProgram, &symbols_,
                                                 {}, &info);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(info.corrupt_snapshots, 1);
  EXPECT_TRUE(info.data_loss);  // epoch 2 was acknowledged and is gone
  EXPECT_TRUE(info.warm_start);
  EXPECT_EQ(info.snapshot_epoch, 1u);
  EXPECT_EQ((*revived)->epoch(), 1u);
  ExpectIdbMatchesFixpoint(**revived);
}

TEST_F(PersistenceTest, EverySnapshotCorruptIsTypedDataLoss) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
    ASSERT_TRUE(db->SaveSnapshot().ok());
  }
  for (const std::string& path : SnapshotPaths()) FlipByteNearEnd(path);
  auto revived =
      server::Database::OpenOrRecover(dir_, kProgram, &symbols_, {});
  EXPECT_TRUE(revived.status().IsDataLoss()) << revived.status();
}

TEST_F(PersistenceTest, ChangedProgramTextIsUnsupported) {
  MakeDurableServer();
  const char* other =
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- P(X, Z), E(Z, Y).\n";
  auto revived = server::Database::OpenOrRecover(dir_, other, &symbols_, {});
  EXPECT_TRUE(revived.status().IsUnsupported()) << revived.status();
}

TEST_F(PersistenceTest, ColdOpenOfFreshDirectoryBootstraps) {
  std::filesystem::remove_all(dir_);
  server::RecoveryInfo info;
  auto db = server::Database::OpenOrRecover(dir_, kProgram, &symbols_, {},
                                            &info);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE(info.warm_start);
  EXPECT_FALSE(info.data_loss);
  EXPECT_EQ((*db)->epoch(), 0u);
  EXPECT_TRUE((*db)->durability_armed());
  // The cold open leaves a recoverable directory behind.
  EXPECT_EQ(SnapshotPaths().size(), 1u);
}

TEST_F(PersistenceTest, WalAppendFaultPublishesNothing) {
  auto db = MakeDurableServer();
  ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  const std::string before =
      db->snapshot().idb().Find(symbols_.Lookup("P"))->ToString();

  util::FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  util::ScopedFault fault("io.wal.append", spec);
  Status status = db->Apply(InsertEdge(11, 12));
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
  // All-or-nothing: the failed batch left no trace in the resident state.
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->snapshot().idb().Find(symbols_.Lookup("P"))->ToString(),
            before);
}

TEST_F(PersistenceTest, SnapshotWriteFaultIsTypedAndRecoverable) {
  auto db = MakeDurableServer();
  ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  {
    util::FaultSpec spec;
    spec.code = StatusCode::kInternal;
    util::ScopedFault fault("io.snapshot.write", spec);
    EXPECT_TRUE(db->SaveSnapshot().IsInternal());
  }
  // The failed save changed nothing: the next attempt succeeds and the
  // server kept serving in between.
  EXPECT_EQ(db->epoch(), 1u);
  ASSERT_TRUE(db->SaveSnapshot().ok());
  auto files = server::ListSnapshotFiles(dir_);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ((*files)[0].first, 1u);
}

TEST_F(PersistenceTest, SnapshotReadFaultDuringRecoveryIsTyped) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  }
  util::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  util::ScopedFault fault("io.snapshot.read", spec);
  // Every snapshot read fails, so recovery reports total data loss — a
  // typed error, not a crash.
  auto revived =
      server::Database::OpenOrRecover(dir_, kProgram, &symbols_, {});
  EXPECT_TRUE(revived.status().IsDataLoss()) << revived.status();
}

TEST_F(PersistenceTest, WalReplayFaultDuringRecoveryIsTyped) {
  {
    auto db = MakeDurableServer();
    ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  }
  util::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  util::ScopedFault fault("io.wal.replay", spec);
  auto revived =
      server::Database::OpenOrRecover(dir_, kProgram, &symbols_, {});
  EXPECT_TRUE(revived.status().IsInternal()) << revived.status();
}

TEST_F(PersistenceTest, SnapshotPruningKeepsTheConfiguredCount) {
  auto options = DurableOptions();
  options.durability.keep_snapshots = 2;
  auto db = server::Database::Create(Parse(), ChainEdb(4), &symbols_,
                                     options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*db)->Apply(InsertEdge(100 + i, 101 + i)).ok());
    ASSERT_TRUE((*db)->SaveSnapshot().ok());
  }
  auto files = server::ListSnapshotFiles(dir_);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_EQ((*files)[0].first, 4u);
  EXPECT_EQ((*files)[1].first, 3u);
}

TEST_F(PersistenceTest, WalIsTruncatedBySnapshot) {
  auto db = MakeDurableServer();
  ASSERT_TRUE(db->Apply(InsertEdge(10, 11)).ok());
  ASSERT_TRUE(db->Apply(InsertEdge(11, 12)).ok());
  EXPECT_GT(std::filesystem::file_size(WalPath()), 0u);
  ASSERT_TRUE(db->SaveSnapshot().ok());
  EXPECT_EQ(std::filesystem::file_size(WalPath()), 0u);
}

}  // namespace
}  // namespace recur
