// Property-based tests: random linear recursive formulas (far beyond the
// paper's examples) must satisfy the paper's theorems and our evaluator
// contracts. Each seed generates a batch of formulas; failures print the
// offending formula.

#include <gtest/gtest.h>

#include "classify/boundedness.h"
#include "classify/classifier.h"
#include "classify/stability.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "transform/bounded_expand.h"
#include "transform/stable_form.h"
#include "workload/formula_generator.h"
#include "workload/generator.h"

namespace recur {
namespace {

constexpr int kFormulasPerSeed = 8;

/// Generator options for tests that *evaluate* formulas: a random 4-D
/// formula with several disconnected high-arity atoms can make the
/// reference full-materialization evaluation blow up, which tests nothing
/// interesting. Classifier-only tests use the unconstrained generator.
workload::FormulaGeneratorOptions EvalFriendlyOptions() {
  workload::FormulaGeneratorOptions options;
  options.max_dimension = 3;
  options.max_extra_atoms = 2;
  options.max_atom_arity = 2;
  return options;
}

/// Fills an EDB with random rows for every non-recursive predicate of the
/// formula and the exit relation.
void LoadRandomEdb(const datalog::LinearRecursiveRule& f,
                   const datalog::Rule& exit, uint64_t seed,
                   ra::Database* edb, int domain = 10, int rows = 25) {
  workload::Generator gen(seed);
  auto load = [&](const datalog::Atom& atom) {
    if (atom.predicate() == f.recursive_predicate()) return;
    auto r = edb->GetOrCreate(atom.predicate(), atom.arity());
    ASSERT_TRUE(r.ok());
    if ((*r)->empty()) {
      (*r)->InsertAll(gen.RandomRows(atom.arity(), domain, rows));
    }
  };
  for (const datalog::Atom& atom : f.rule().body()) load(atom);
  for (const datalog::Atom& atom : exit.body()) load(atom);
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Theorem 12 (completeness): every generated formula classifies, and the
// graph invariants hold (one directed edge per position; every cycle of an
// independent component covers all its arcs).
TEST_P(PropertyTest, ClassificationIsTotal) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam());
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok()) << g->formula.rule().ToString(symbols);
    EXPECT_EQ(
        static_cast<int>(cls->igraph.graph().DirectedEdges().size()),
        g->formula.dimension());
    int covered_positions = 0;
    for (const classify::ComponentInfo& c : cls->components) {
      covered_positions += static_cast<int>(c.positions.size());
    }
    EXPECT_EQ(covered_positions, g->formula.dimension())
        << g->formula.rule().ToString(symbols);
  }
}

// Theorem 1: the syntactic characterization (disjoint unit cycles) and
// the semantic one (determined positions preserved for every query form)
// must agree.
TEST_P(PropertyTest, Theorem1SyntacticSemanticAgreement) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam() + 1000);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    EXPECT_EQ(classify::SemanticallyStronglyStable(*cls),
              cls->strongly_stable)
        << g->formula.rule().ToString(symbols);
  }
}

// Corollary 3 + Theorem 4, semantic side: a formula has an identity
// period for determined-variable propagation iff it is transformable, and
// the period is exactly the LCM of the cycle weights.
TEST_P(PropertyTest, PeriodIffTransformable) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam() + 2000);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    int period = classify::SemanticStabilityPeriod(*cls, 64);
    if (cls->transformable_to_stable) {
      EXPECT_EQ(period, cls->unfold_count)
          << g->formula.rule().ToString(symbols);
    } else {
      EXPECT_EQ(period, 0) << g->formula.rule().ToString(symbols);
    }
  }
}

// Theorem 2(2): the stable form is logically equivalent to the original
// formula — semi-naive evaluation of both programs produces identical P.
TEST_P(PropertyTest, StableFormEquivalence) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam() + 3000, EvalFriendlyOptions());
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    if (!cls->transformable_to_stable || cls->unfold_count > 6) continue;
    auto sf = transform::ToStableForm(g->formula, *cls, g->exit, &symbols);
    ASSERT_TRUE(sf.ok()) << g->formula.rule().ToString(symbols);

    // The transformed recursive rule must itself be strongly stable.
    auto cls2 = classify::Classify(sf->recursive);
    ASSERT_TRUE(cls2.ok());
    EXPECT_TRUE(cls2->strongly_stable)
        << g->formula.rule().ToString(symbols) << "\n -> "
        << sf->recursive.rule().ToString(symbols);

    ra::Database edb;
    LoadRandomEdb(g->formula, g->exit, GetParam() * 7 + i, &edb,
                  /*domain=*/8, /*rows=*/16);
    datalog::Program original;
    original.AddRule(g->formula.rule());
    original.AddRule(g->exit);
    datalog::Program transformed;
    transformed.AddRule(sf->recursive.rule());
    for (const datalog::Rule& e : sf->exits) transformed.AddRule(e);
    auto r1 = eval::SemiNaiveEvaluate(original, edb);
    auto r2 = eval::SemiNaiveEvaluate(transformed, edb);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->at(g->formula.recursive_predicate()).ToString(),
              r2->at(g->formula.recursive_predicate()).ToString())
        << g->formula.rule().ToString(symbols);
  }
}

// Boundedness soundness: a formula the classifier calls bounded with rank
// r derives nothing new past depth r — the finite expansion equals the
// fixpoint, and semi-naive converges in at most r + 2 rounds.
TEST_P(PropertyTest, BoundedExpansionEquivalence) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam() + 4000, EvalFriendlyOptions());
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    if (!cls->bounded || cls->rank_bound > 8) continue;
    auto bf =
        transform::ExpandBounded(g->formula, *cls, g->exit, &symbols);
    ASSERT_TRUE(bf.ok()) << g->formula.rule().ToString(symbols);

    ra::Database edb;
    LoadRandomEdb(g->formula, g->exit, GetParam() * 11 + i, &edb,
                  /*domain=*/8, /*rows=*/16);
    datalog::Program recursive;
    recursive.AddRule(g->formula.rule());
    recursive.AddRule(g->exit);
    datalog::Program expanded;
    for (const datalog::Rule& r : bf->rules) expanded.AddRule(r);

    eval::EvalStats stats;
    auto r1 = eval::SemiNaiveEvaluate(recursive, edb, {}, &stats);
    auto r2 = eval::SemiNaiveEvaluate(expanded, edb);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->at(g->formula.recursive_predicate()).ToString(),
              r2->at(g->formula.recursive_predicate()).ToString())
        << g->formula.rule().ToString(symbols)
        << " rank=" << cls->rank_bound;
    EXPECT_LE(stats.iterations, cls->rank_bound + 2)
        << g->formula.rule().ToString(symbols);
  }
}

// End-to-end: for every generated formula, the generated plan answers
// random adornments exactly like semi-naive evaluation.
TEST_P(PropertyTest, PlanMatchesSemiNaive) {
  SymbolTable symbols;
  // Keep the formulas and the domain small: a random 4-D formula with
  // several disconnected high-arity atoms makes the *reference*
  // (full-materialization) evaluation blow up, which tests nothing
  // interesting about the plans.
  workload::FormulaGeneratorOptions options;
  options.max_dimension = 3;
  options.max_extra_atoms = 2;
  options.max_atom_arity = 2;
  workload::FormulaGenerator gen(GetParam() + 5000, options);
  std::mt19937_64 rng(GetParam() + 5001);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    if (cls->transformable_to_stable && cls->unfold_count > 6) continue;

    eval::PlanGenerator generator(&symbols);
    auto plan = generator.Plan(g->formula, g->exit);
    ASSERT_TRUE(plan.ok()) << g->formula.rule().ToString(symbols);

    ra::Database edb;
    LoadRandomEdb(g->formula, g->exit, GetParam() * 13 + i, &edb,
                  /*domain=*/8, /*rows=*/16);
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);

    int n = g->formula.dimension();
    for (int trial = 0; trial < 3; ++trial) {
      uint32_t mask =
          static_cast<uint32_t>(rng()) & ((1u << n) - 1u);
      eval::Query q;
      q.pred = g->formula.recursive_predicate();
      for (int pos = 0; pos < n; ++pos) {
        if ((mask >> pos) & 1u) {
          q.bindings.emplace_back(
              static_cast<ra::Value>(rng() % 10));
        } else {
          q.bindings.emplace_back(std::nullopt);
        }
      }
      auto got = plan->Execute(q, edb);
      ASSERT_TRUE(got.ok()) << g->formula.rule().ToString(symbols) << " "
                            << q.AdornmentString() << ": " << got.status();
      auto want = eval::SemiNaiveAnswer(program, edb, q);
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(got->ToString(), want->ToString())
          << g->formula.rule().ToString(symbols) << " adornment "
          << q.AdornmentString() << " strategy "
          << ToString(plan->strategy());
    }
  }
}

// The Ioannidis-specific checker agrees with the classifier whenever it
// applies (no permutational patterns).
TEST_P(PropertyTest, IoannidisAgreesWithClassifier) {
  SymbolTable symbols;
  workload::FormulaGenerator gen(GetParam() + 6000);
  for (int i = 0; i < kFormulasPerSeed; ++i) {
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok());
    auto cls = classify::Classify(g->formula);
    ASSERT_TRUE(cls.ok());
    auto info = classify::IoannidisBound(g->formula);
    if (!info.ok()) continue;  // permutational pattern: theorem is silent
    EXPECT_EQ(info->bounded, cls->bounded)
        << g->formula.rule().ToString(symbols);
    if (info->bounded) {
      EXPECT_EQ(info->rank_bound, cls->rank_bound)
          << g->formula.rule().ToString(symbols);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace recur
