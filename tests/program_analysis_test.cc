#include <gtest/gtest.h>

#include "classify/program_analysis.h"
#include "datalog/parser.h"

namespace recur::classify {
namespace {

class ProgramAnalysisTest : public ::testing::Test {
 protected:
  ProgramAnalysis MustAnalyze(const char* text) {
    auto program = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    auto analysis = AnalyzeProgram(*program);
    EXPECT_TRUE(analysis.ok()) << analysis.status();
    return *analysis;
  }
  SymbolTable symbols_;
};

TEST_F(ProgramAnalysisTest, SingleLinearGetsClassified) {
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  const PredicateReport* p = a.Find(symbols_.Lookup("P"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, RecursionKind::kSingleLinear);
  ASSERT_TRUE(p->classification.has_value());
  EXPECT_TRUE(p->classification->strongly_stable);
  EXPECT_EQ(p->exits.size(), 1u);
  ASSERT_TRUE(p->recursive_rule.has_value());
  EXPECT_TRUE(a.mutual_groups.empty());
}

TEST_F(ProgramAnalysisTest, NonRecursivePredicate) {
  ProgramAnalysis a = MustAnalyze("V(X) :- E(X, Y), F(Y).\n");
  const PredicateReport* v = a.Find(symbols_.Lookup("V"));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, RecursionKind::kNonRecursive);
  EXPECT_EQ(v->exits.size(), 1u);
}

TEST_F(ProgramAnalysisTest, NonLinearDetected) {
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- P(X, Z), P(Z, Y).\n");
  const PredicateReport* p = a.Find(symbols_.Lookup("P"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, RecursionKind::kNonLinear);
  EXPECT_FALSE(p->classification.has_value());
}

TEST_F(ProgramAnalysisTest, MultipleRecursiveRulesDetected) {
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n"
      "P(X, Y) :- B(X, Z), P(Z, Y).\n");
  const PredicateReport* p = a.Find(symbols_.Lookup("P"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, RecursionKind::kMultipleRecursiveRules);
}

TEST_F(ProgramAnalysisTest, MutualRecursionDetected) {
  ProgramAnalysis a = MustAnalyze(
      "Odd(X, Y) :- A(X, Y).\n"
      "Odd(X, Y) :- A(X, Z), Even(Z, Y).\n"
      "Even(X, Y) :- A(X, Z), Odd(Z, Y).\n");
  ASSERT_EQ(a.mutual_groups.size(), 1u);
  EXPECT_EQ(a.mutual_groups[0].size(), 2u);
  const PredicateReport* odd = a.Find(symbols_.Lookup("Odd"));
  const PredicateReport* even = a.Find(symbols_.Lookup("Even"));
  ASSERT_NE(odd, nullptr);
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(odd->kind, RecursionKind::kMutual);
  EXPECT_EQ(even->kind, RecursionKind::kMutual);
}

TEST_F(ProgramAnalysisTest, RestrictedRuleDiagnosed) {
  // Constant under a body atom of the recursive rule: outside §2.
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, c), P(X, Y).\n");
  const PredicateReport* p = a.Find(symbols_.Lookup("P"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, RecursionKind::kRestricted);
  EXPECT_FALSE(p->diagnosis.empty());
}

TEST_F(ProgramAnalysisTest, MixedProgram) {
  ProgramAnalysis a = MustAnalyze(
      "TC(X, Y) :- E(X, Y).\n"
      "TC(X, Y) :- E(X, Z), TC(Z, Y).\n"
      "View(X) :- TC(X, Y), Goal(Y).\n"
      "Ping(X) :- Base(X).\n"
      "Ping(X) :- Link(X, Y), Pong(Y).\n"
      "Pong(X) :- Link(X, Y), Ping(Y).\n");
  EXPECT_EQ(a.predicates.size(), 4u);  // TC, View, Ping, Pong
  EXPECT_EQ(a.Find(symbols_.Lookup("TC"))->kind,
            RecursionKind::kSingleLinear);
  EXPECT_EQ(a.Find(symbols_.Lookup("View"))->kind,
            RecursionKind::kNonRecursive);
  EXPECT_EQ(a.Find(symbols_.Lookup("Ping"))->kind, RecursionKind::kMutual);
  EXPECT_EQ(a.mutual_groups.size(), 1u);
}

TEST_F(ProgramAnalysisTest, SelfLoopSccIsNotMutual) {
  // A directly recursive predicate forms a size-1 SCC: not "mutual".
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n"
      "Q(X) :- P(X, X).\n");
  EXPECT_TRUE(a.mutual_groups.empty());
  EXPECT_EQ(a.Find(symbols_.Lookup("P"))->kind,
            RecursionKind::kSingleLinear);
}

TEST_F(ProgramAnalysisTest, SummaryReadable) {
  ProgramAnalysis a = MustAnalyze(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  std::string summary = a.Summary(symbols_);
  EXPECT_NE(summary.find("P: single linear recursion"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("class A5"), std::string::npos) << summary;
}

}  // namespace
}  // namespace recur::classify
