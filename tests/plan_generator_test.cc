#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "datalog/parser.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

using catalog::PaperExample;

/// Loads an EDB providing every non-recursive predicate the formula and
/// exit rule mention, at the right arity, over a small shared domain.
/// Binary predicates get layered DAGs (so compiled evaluation converges);
/// other arities get random rows.
void LoadGenericEdb(const datalog::LinearRecursiveRule& f,
                    const datalog::Rule& exit, ra::Database* edb,
                    uint64_t seed) {
  workload::Generator gen(seed);
  auto load_atom = [&](const datalog::Atom& atom) {
    if (atom.predicate() == f.recursive_predicate()) return;
    auto r = edb->GetOrCreate(atom.predicate(), atom.arity());
    ASSERT_TRUE(r.ok());
    if (!(*r)->empty()) return;
    if (atom.arity() == 2) {
      (*r)->InsertAll(gen.LayeredDag(5, 3, 2));
    } else {
      (*r)->InsertAll(gen.RandomRows(atom.arity(), 15, 40));
    }
  };
  for (const datalog::Atom& atom : f.rule().body()) load_atom(atom);
  for (const datalog::Atom& atom : exit.body()) load_atom(atom);
}

TEST(PlanGeneratorTest, StrategySelectionPerClass) {
  struct Expectation {
    const char* id;
    Strategy strategy;
  };
  const Expectation expectations[] = {
      {"s1a", Strategy::kStableCompiled},
      {"s2a", Strategy::kStableCompiled},
      {"s3", Strategy::kStableCompiled},
      {"s4a", Strategy::kTransformedCompiled},
      {"s5", Strategy::kTransformedCompiled},  // transformable wins
      {"s7", Strategy::kTransformedCompiled},
      {"s8", Strategy::kBoundedExpansion},
      {"s10", Strategy::kBoundedExpansion},
      {"s9", Strategy::kSemiNaive},
      {"s11", Strategy::kSemiNaive},
      {"s12", Strategy::kSemiNaive},
  };
  for (const Expectation& e : expectations) {
    SymbolTable symbols;
    const PaperExample* example = catalog::FindExample(e.id);
    ASSERT_NE(example, nullptr) << e.id;
    auto f = catalog::ParseExample(*example, &symbols);
    ASSERT_TRUE(f.ok()) << e.id;
    auto exit = datalog::ParseRule(example->exit_rule, &symbols);
    ASSERT_TRUE(exit.ok()) << e.id;
    PlanGenerator generator(&symbols);
    auto plan = generator.Plan(*f, *exit);
    ASSERT_TRUE(plan.ok()) << e.id << ": " << plan.status();
    EXPECT_EQ(plan->strategy(), e.strategy) << e.id;
  }
}

TEST(PlanGeneratorTest, SymbolicPlanMentionsChains) {
  SymbolTable symbols;
  auto f = catalog::ParseExample(*catalog::FindExample("s2a"), &symbols);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols);
  ASSERT_TRUE(exit.ok());
  PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*f, *exit);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("A^k"), std::string::npos) << text;
  EXPECT_NE(text.find("B^k"), std::string::npos) << text;
  EXPECT_NE(text.find("E"), std::string::npos) << text;
}

TEST(PlanGeneratorTest, BoundedSymbolicShowsDepths) {
  SymbolTable symbols;
  auto f = catalog::ParseExample(*catalog::FindExample("s8"), &symbols);
  ASSERT_TRUE(f.ok());
  auto exit =
      datalog::ParseRule("P(X, Y, Z, U) :- E(X, Y, Z, U).", &symbols);
  ASSERT_TRUE(exit.ok());
  PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*f, *exit);
  ASSERT_TRUE(plan.ok());
  // Three σ(...) steps: depths 0, 1, 2.
  std::string text = plan->symbolic().ToString();
  size_t count = 0;
  for (size_t pos = 0; (pos = text.find("σ", pos)) != std::string::npos;
       pos += 2) {
    ++count;
  }
  EXPECT_EQ(count, 3u) << text;
}

class PlanExecutionTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
};

TEST_P(PlanExecutionTest, MatchesSemiNaiveOnAllAdornments) {
  const char* id = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  SymbolTable symbols;
  const PaperExample* example = catalog::FindExample(id);
  ASSERT_NE(example, nullptr);
  auto f = catalog::ParseExample(*example, &symbols);
  ASSERT_TRUE(f.ok());
  auto exit = datalog::ParseRule(example->exit_rule, &symbols);
  ASSERT_TRUE(exit.ok());

  ra::Database edb;
  LoadGenericEdb(*f, *exit, &edb, seed);

  PlanGenerator generator(&symbols);
  auto plan = generator.Plan(*f, *exit);
  ASSERT_TRUE(plan.ok()) << plan.status();

  datalog::Program program;
  program.AddRule(f->rule());
  program.AddRule(*exit);

  int n = f->dimension();
  // Every adornment with the constant 1 in each bound position.
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    Query q;
    q.pred = f->recursive_predicate();
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        q.bindings.emplace_back(ra::Value{1});
      } else {
        q.bindings.emplace_back(std::nullopt);
      }
    }
    auto got = plan->Execute(q, edb);
    ASSERT_TRUE(got.ok()) << id << " " << q.AdornmentString() << ": "
                          << got.status();
    auto want = SemiNaiveAnswer(program, edb, q);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->ToString(), want->ToString())
        << id << " adornment " << q.AdornmentString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperExamples, PlanExecutionTest,
    ::testing::Combine(::testing::Values("s1a", "s1b", "s2a", "s3", "s4a",
                                         "s5", "s6", "s7", "s8", "s9",
                                         "s10", "s11", "s12"),
                       ::testing::Values(uint64_t{17}, uint64_t{29},
                                         uint64_t{43})),
    [](const ::testing::TestParamInfo<std::tuple<const char*, uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace recur::eval
