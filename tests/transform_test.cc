#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "classify/classifier.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "transform/bounded_expand.h"
#include "transform/compiled_expr.h"
#include "transform/stable_form.h"
#include "workload/generator.h"

namespace recur::transform {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  datalog::LinearRecursiveRule MustFormula(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = datalog::LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }
  datalog::Rule MustRule(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }
  SymbolTable symbols_;
};

TEST_F(TransformTest, StableFormOfS4aHasThreeExits) {
  // Example 4: weight-3 cycle; transformation needs exits (s4b), (s4a'),
  // (s4c') and the 3rd expansion as the new recursive rule.
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  datalog::Rule exit = MustRule("P(X1, X2, X3) :- E(X1, X2, X3).");
  auto sf = ToStableForm(f, exit, &symbols_);
  ASSERT_TRUE(sf.ok()) << sf.status();
  EXPECT_EQ(sf->unfold_count, 3);
  EXPECT_EQ(sf->exits.size(), 3u);
  EXPECT_EQ(sf->exits[0], exit);  // depth 0: the original exit
  // Exit depth 1 contains one copy of A, B, C plus E.
  EXPECT_EQ(sf->exits[1].body().size(), 4u);
  EXPECT_EQ(sf->exits[2].body().size(), 7u);
  EXPECT_FALSE(sf->exits[1].IsRecursive());
  EXPECT_FALSE(sf->exits[2].IsRecursive());
  // The new recursive rule has 3 copies of A, B, C and is recursive.
  EXPECT_EQ(sf->recursive.rule().body().size(), 10u);

  // Theorem 2: the transformed recursive rule is strongly stable.
  auto cls = classify::Classify(sf->recursive);
  ASSERT_TRUE(cls.ok());
  EXPECT_TRUE(cls->strongly_stable);
}

TEST_F(TransformTest, StableFormOfStableFormulaIsUnchanged) {
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto sf = ToStableForm(f, exit, &symbols_);
  ASSERT_TRUE(sf.ok());
  EXPECT_EQ(sf->unfold_count, 1);
  EXPECT_EQ(sf->exits.size(), 1u);
  EXPECT_EQ(sf->recursive.rule(), f.rule());
}

TEST_F(TransformTest, StableFormRejectsUntransformable) {
  datalog::LinearRecursiveRule s9 =
      MustFormula("P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).");
  datalog::Rule exit = MustRule("P(X, Y, Z) :- E(X, Y, Z).");
  EXPECT_TRUE(ToStableForm(s9, exit, &symbols_).status().IsUnsupported());
}

TEST_F(TransformTest, StableFormEquivalence) {
  // The transformed program derives exactly the same P as the original
  // (Theorem 2(2): logically equivalent).
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), P(Y1, Y2, Y3).");
  datalog::Rule exit = MustRule("P(X1, X2, X3) :- E(X1, X2, X3).");
  auto sf = ToStableForm(f, exit, &symbols_);
  ASSERT_TRUE(sf.ok());

  workload::Generator gen(11);
  ra::Database edb;
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("A"), 2).ok());
  edb.FindMutable(symbols_.Intern("A"))->InsertAll(gen.RandomGraph(12, 25));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("B"), 2).ok());
  edb.FindMutable(symbols_.Intern("B"))->InsertAll(gen.RandomGraph(12, 25));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("C"), 2).ok());
  edb.FindMutable(symbols_.Intern("C"))->InsertAll(gen.RandomGraph(12, 25));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("E"), 3).ok());
  edb.FindMutable(symbols_.Intern("E"))->InsertAll(gen.RandomRows(3, 12, 20));

  datalog::Program original;
  original.AddRule(f.rule());
  original.AddRule(exit);
  datalog::Program transformed;
  transformed.AddRule(sf->recursive.rule());
  for (const datalog::Rule& e : sf->exits) transformed.AddRule(e);

  auto r1 = eval::SemiNaiveEvaluate(original, edb);
  auto r2 = eval::SemiNaiveEvaluate(transformed, edb);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r1->at(symbols_.Lookup("P")).ToString(),
            r2->at(symbols_.Lookup("P")).ToString());
}

TEST_F(TransformTest, BoundedExpandS8) {
  // Example 8: rank bound 2 -> depths 0, 1, 2 = three non-recursive rules,
  // matching (exit), (s8a'), (s8b').
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), P(Z, Y1, Z1, U1).");
  datalog::Rule exit = MustRule("P(X, Y, Z, U) :- E(X, Y, Z, U).");
  auto bf = ExpandBounded(f, exit, &symbols_);
  ASSERT_TRUE(bf.ok()) << bf.status();
  EXPECT_EQ(bf->rank, 2);
  ASSERT_EQ(bf->rules.size(), 3u);
  EXPECT_EQ(bf->rules[0], exit);
  EXPECT_EQ(bf->rules[1].body().size(), 4u);  // A B C E
  EXPECT_EQ(bf->rules[2].body().size(), 7u);  // A B C A B C E
  for (const datalog::Rule& r : bf->rules) {
    EXPECT_FALSE(r.IsRecursive());
  }
}

TEST_F(TransformTest, BoundedExpandEquivalence) {
  // The finite expansion derives the same tuples as the recursive program
  // — the defining property of "pseudo recursion".
  datalog::LinearRecursiveRule f = MustFormula(
      "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), P(Z, Y1, Z1, U1).");
  datalog::Rule exit = MustRule("P(X, Y, Z, U) :- E(X, Y, Z, U).");
  auto bf = ExpandBounded(f, exit, &symbols_);
  ASSERT_TRUE(bf.ok());

  workload::Generator gen(13);
  ra::Database edb;
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("A"), 2).ok());
  edb.FindMutable(symbols_.Intern("A"))->InsertAll(gen.RandomGraph(10, 20));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("B"), 2).ok());
  edb.FindMutable(symbols_.Intern("B"))->InsertAll(gen.RandomGraph(10, 20));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("C"), 2).ok());
  edb.FindMutable(symbols_.Intern("C"))->InsertAll(gen.RandomGraph(10, 20));
  ASSERT_TRUE(edb.GetOrCreate(symbols_.Intern("E"), 4).ok());
  edb.FindMutable(symbols_.Intern("E"))->InsertAll(gen.RandomRows(4, 10, 30));

  datalog::Program recursive;
  recursive.AddRule(f.rule());
  recursive.AddRule(exit);
  datalog::Program expanded;
  for (const datalog::Rule& r : bf->rules) expanded.AddRule(r);

  auto r1 = eval::SemiNaiveEvaluate(recursive, edb);
  auto r2 = eval::SemiNaiveEvaluate(expanded, edb);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->at(symbols_.Lookup("P")).ToString(),
            r2->at(symbols_.Lookup("P")).ToString());
}

TEST_F(TransformTest, BoundedExpandPermutational) {
  // (s5): rank 2 -> three permuted copies of the exit.
  datalog::LinearRecursiveRule f = MustFormula("P(X, Y, Z) :- P(Y, Z, X).");
  datalog::Rule exit = MustRule("P(X, Y, Z) :- E(X, Y, Z).");
  auto bf = ExpandBounded(f, exit, &symbols_);
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(bf->rank, 2);
  ASSERT_EQ(bf->rules.size(), 3u);
  // Depth 1 is the rotated exit: P(X,Y,Z) :- E(Y,Z,X) (modulo renaming).
  EXPECT_EQ(bf->rules[1].body().size(), 1u);
}

TEST_F(TransformTest, BoundedExpandRejectsUnbounded) {
  datalog::LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  EXPECT_TRUE(ExpandBounded(f, exit, &symbols_).status().IsUnsupported());
}

TEST(CompiledExprTest, PrintsPaperNotation) {
  // (σA) × (∪_k [(E ⋈ B)(BA)^k]) — the s9 P(d,v,v) plan.
  CompiledExpr plan = CompiledExpr::Product(
      CompiledExpr::Select(CompiledExpr::Relation("A")),
      CompiledExpr::UnionK(CompiledExpr::JoinChain(
          {CompiledExpr::JoinChain({CompiledExpr::Relation("E"),
                                    CompiledExpr::Relation("B")}),
           CompiledExpr::Power(CompiledExpr::Relation("BA"))})));
  EXPECT_EQ(plan.ToString(), "(σA) × (∪_{k=0}^{∞} [E-B-BA^k])");
}

TEST(CompiledExprTest, PrintsExistsAndParallelAndSequence) {
  CompiledExpr plan = CompiledExpr::Sequence(
      {CompiledExpr::Select(CompiledExpr::Relation("E")),
       CompiledExpr::JoinChain(
           {CompiledExpr::Exists(CompiledExpr::Relation("W")),
            CompiledExpr::Relation("A")}),
       CompiledExpr::Parallel({CompiledExpr::Relation("A"),
                               CompiledExpr::Relation("B")})});
  EXPECT_EQ(plan.ToString(), "σE, ∃(W)-A, {A ∥ B}");
}

TEST(CompiledExprTest, PowerWithOffset) {
  CompiledExpr p = CompiledExpr::Power(CompiledExpr::Relation("D"), 1);
  EXPECT_EQ(p.ToString(), "D^k+1");
}

}  // namespace
}  // namespace recur::transform
