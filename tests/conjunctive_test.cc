// Tests for the conjunctive-body evaluator, with emphasis on the
// component partitioning (the paper's Cartesian-product / existence-
// checking principle for disconnected query parts).

#include <chrono>

#include <gtest/gtest.h>

#include "datalog/expansion.h"
#include "datalog/parser.h"
#include "eval/conjunctive.h"
#include "ra/database.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

class ConjunctiveTest : public ::testing::Test {
 protected:
  datalog::Rule MustRule(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }
  RelationLookup Lookup() {
    return [this](SymbolId p) { return edb_.Find(p); };
  }
  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(ConjunctiveTest, DisconnectedGuardActsAsExistenceCheck) {
  ra::Relation a(2);
  a.Insert({1, 2});
  Load("A", a);
  Load("W", ra::Relation(1));  // empty guard
  datalog::Rule rule = MustRule("P(X, Y) :- A(X, Y), W(V).");
  auto empty = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ra::Relation w(1);
  w.Insert({9});
  w.Insert({10});
  Load("W", w);
  auto full = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(full.ok());
  // The guard multiplicity must not multiply answers.
  EXPECT_EQ(full->ToString(), "{(1,2)}");
}

TEST_F(ConjunctiveTest, CartesianHeadAcrossComponents) {
  ra::Relation a(1);
  a.Insert({1});
  a.Insert({2});
  Load("A", a);
  ra::Relation b(1);
  b.Insert({10});
  b.Insert({20});
  Load("B", b);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X), B(Y).");
  auto result = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // genuine Cartesian product
  EXPECT_TRUE(result->Contains({1, 10}));
  EXPECT_TRUE(result->Contains({2, 20}));
}

TEST_F(ConjunctiveTest, BoundVariablesDoNotConnectComponents) {
  // X is pre-bound: A(X, Y) and B(X, Z) are independent given X, and the
  // result is the product of their Y and Z matches for that X.
  ra::Relation a(2);
  a.Insert({5, 1});
  a.Insert({5, 2});
  a.Insert({6, 99});
  Load("A", a);
  ra::Relation b(2);
  b.Insert({5, 10});
  Load("B", b);
  datalog::Rule rule = MustRule("P(Y, Z) :- A(X, Y), B(X, Z).");
  std::unordered_map<SymbolId, ra::Value> bindings{
      {symbols_.Lookup("X"), 5}};
  ConjunctiveOptions options;
  options.bindings = &bindings;
  auto result = EvaluateRule(rule, Lookup(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(result->Contains({1, 10}));
  EXPECT_TRUE(result->Contains({2, 10}));
}

TEST_F(ConjunctiveTest, BoundHeadVariableEmittedFromBindings) {
  ra::Relation a(2);
  a.Insert({5, 1});
  Load("A", a);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X, Y).");
  std::unordered_map<SymbolId, ra::Value> bindings{
      {symbols_.Lookup("X"), 5}};
  ConjunctiveOptions options;
  options.bindings = &bindings;
  auto result = EvaluateRule(rule, Lookup(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "{(5,1)}");
}

TEST_F(ConjunctiveTest, RepeatedGuardCopiesStayPolynomial) {
  // Regression: the depth-8 expansion of a class-D formula contains 8
  // disconnected copies of its guard atoms. The partitioned evaluator
  // answers instantly; the old single-join evaluator computed a 25^8
  // Cartesian product.
  workload::Generator gen(91);
  Load("Q", gen.RandomGraph(25, 50));
  Load("C", gen.RandomGraph(25, 50));
  Load("E", gen.RandomGraph(25, 50));
  ra::Relation tag(1);
  for (int i = 0; i < 25; ++i) tag.Insert({i});
  Load("Tag", tag);
  datalog::Rule rec =
      MustRule("P(X, Y) :- C(X, Y1), Q(V, V1), Tag(Y), P(X1, Y1).");
  // Wrap into a formula and expand to depth 8 with the exit.
  auto formula = datalog::LinearRecursiveRule::Create(rec);
  ASSERT_TRUE(formula.ok()) << formula.status();
  datalog::Rule exit = MustRule("P(X, Y) :- E(X, Y).");
  auto deep = datalog::ExpandWithExit(*formula, 8, exit, &symbols_);
  ASSERT_TRUE(deep.ok());
  ASSERT_GE(deep->body().size(), 16u);

  auto start = std::chrono::steady_clock::now();
  auto result = EvaluateRule(*deep, Lookup());
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(ConjunctiveTest, HeadVariableMissingFromBodyRejected) {
  ra::Relation a(1);
  a.Insert({1});
  Load("A", a);
  datalog::Rule rule = MustRule("P(X, Y) :- A(X).");
  auto result = EvaluateRule(rule, Lookup());
  EXPECT_FALSE(result.ok());
}

TEST_F(ConjunctiveTest, OverrideRelationUsedForDelta) {
  ra::Relation a(2);
  a.Insert({1, 2});
  a.Insert({2, 3});
  Load("A", a);
  ra::Relation delta(2);
  delta.Insert({2, 3});
  datalog::Rule rule = MustRule("P(X, Z) :- A(X, Y), A(Y, Z).");
  ConjunctiveOptions options;
  options.override_index = 0;
  options.override_relation = &delta;
  auto result = EvaluateRule(rule, Lookup(), options);
  ASSERT_TRUE(result.ok());
  // Only the delta row feeds the first atom: A(2,3) then A(3,?) -> none.
  EXPECT_TRUE(result->empty());
  options.override_index = 1;
  auto result2 = EvaluateRule(rule, Lookup(), options);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->ToString(), "{(1,3)}");
}

TEST_F(ConjunctiveTest, EmptyBodyFactLikeRule) {
  // A rule with constants only (no body) derives its head directly.
  datalog::Rule rule = MustRule("P(a, b) :- True.");
  ra::Relation t(0);
  t.Insert(ra::Tuple{});
  Load("True", t);
  auto result = EvaluateRule(rule, Lookup());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

}  // namespace
}  // namespace recur::eval
