// End-to-end traffic-runner tests (tsan-labeled: phases run real worker
// threads on the ThreadPool). Covers the harness's three contracts:
// deterministic mode is byte-reproducible across runs regardless of
// scheduling, fault specs armed mid-phase surface as typed error counters
// without deadlocking workers, and the BENCH_traffic_<workload>.json
// comparison gate passes against itself and fails against a doctored
// baseline. Also covers the resident-server ops (server_query /
// server_insert / server_delete), which route through server::Database
// instead of per-op fixpoints.

#include <gtest/gtest.h>

#include <string>

#include "traffic/report.h"
#include "traffic/runner.h"
#include "traffic/spec.h"
#include "util/fault_injection.h"
#include "util/json.h"

namespace recur::traffic {
namespace {

Result<TrafficSpec> SmallSpec(const std::string& extra_phase_fields = "",
                              const std::string& fixpoint_fields = "") {
  const std::string text = R"({
    "name": "unit",
    "seed": 5,
    "example": "s1a",
    "query_pred": "P",
    "edb": [
      {"relation": "A", "kind": "chain", "n": 24},
      {"relation": "E", "kind": "chain", "n": 24}
    ],
    "phases": [
      {
        "name": "p0",
        "threads": 2,
        "ops": 12)" + extra_phase_fields +
                           R"(,
        "mix": [
          {"op": "fixpoint", "weight": 1, "engine": "seminaive",
           "threads": 1)" + fixpoint_fields +
                           R"(},
          {"op": "query", "weight": 2, "bind": [0]},
          {"op": "insert", "weight": 1, "relation": "A", "count": 2},
          {"op": "delete", "weight": 1, "relation": "A", "count": 1}
        ]
      }
    ]
  })";
  return ParseTrafficSpec(text);
}

TEST(TrafficRunnerTest, DeterministicRunsAreByteIdentical) {
  auto spec = SmallSpec();
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto first = RunTraffic(*spec, options);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = RunTraffic(*spec, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->ToJson(), second->ToJson());
  // Sanity: the run did real work and produced every node of the mix.
  ASSERT_EQ(first->nodes.size(), 4u);
  uint64_t total = 0;
  for (const OpNodeStats& node : first->nodes) total += node.latency.count();
  EXPECT_EQ(total, 24u);  // 2 workers x 12 ops
  EXPECT_GT(first->nodes[0].tuples, 0u);  // fixpoints materialized IDB rows
}

TEST(TrafficRunnerTest, SeedChangesTheRun) {
  auto spec = SmallSpec();
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto base = RunTraffic(*spec, options);
  ASSERT_TRUE(base.ok()) << base.status();
  spec->seed = 6;
  auto other = RunTraffic(*spec, options);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_NE(base->ToJson(), other->ToJson());
}

// A status fault armed by the phase spec fires inside the plan executor;
// workers must record it as a typed error and keep draining their op
// budget — the test completing at all is the no-deadlock assertion. The
// executor only probes the site every kExecutorBatchRows (4096) candidate
// rows, so the fixpoint must scan more than that in one plan execution:
// naive evaluation re-joins the full IDB every round, and transitive
// closure of a 120-chain holds 7260 tuples.
TEST(TrafficRunnerTest, PhaseFaultSurfacesAsTypedErrorsWithoutDeadlock) {
  auto spec = ParseTrafficSpec(R"({
    "name": "faulty",
    "seed": 5,
    "example": "s1a",
    "query_pred": "P",
    "edb": [
      {"relation": "A", "kind": "chain", "n": 120},
      {"relation": "E", "kind": "chain", "n": 120}
    ],
    "phases": [
      {
        "name": "p0",
        "threads": 2,
        "ops": 4,
        "mix": [
          {"op": "fixpoint", "weight": 1, "engine": "naive", "threads": 1}
        ],
        "faults": [
          {"site": "plan.executor.batch", "kind": "status",
           "code": "internal", "trigger_on_hit": 1, "sticky": true}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  const OpNodeStats& fixpoint = report->nodes[0];
  ASSERT_EQ(fixpoint.op, "fixpoint");
  EXPECT_GT(fixpoint.latency.count(), 0u);
  EXPECT_GT(fixpoint.errors, 0u);
  EXPECT_EQ(fixpoint.errors, fixpoint.other_errors);  // kInternal bucket
  EXPECT_EQ(fixpoint.ok + fixpoint.errors, fixpoint.latency.count());
  // The RAII phase guard disarmed the site: a fresh run is clean.
  auto clean_spec = SmallSpec();
  ASSERT_TRUE(clean_spec.ok());
  auto clean = RunTraffic(*clean_spec, options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->nodes[0].errors, 0u);
}

// A delay fault in the seminaive round loop plus a tight op deadline: the
// engine's deadline check fires and the node's deadline_exceeded counter
// records it (the ExecutionContext deadline uses the real clock, so this
// works in deterministic mode too).
TEST(TrafficRunnerTest, DelayFaultTripsOpDeadline) {
  auto spec = SmallSpec(R"(,
        "faults": [
          {"site": "seminaive.serial.round", "kind": "delay",
           "delay_ms": 30, "trigger_on_hit": 1, "sticky": true}
        ])",
                        R"(, "deadline_seconds": 0.005)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  const OpNodeStats& fixpoint = report->nodes[0];
  ASSERT_EQ(fixpoint.op, "fixpoint");
  EXPECT_GT(fixpoint.deadline_exceeded, 0u);
  EXPECT_EQ(fixpoint.errors,
            fixpoint.cancelled + fixpoint.deadline_exceeded +
                fixpoint.resource_exhausted + fixpoint.other_errors);
}

TEST(TrafficRunnerTest, RunnerLeavesNoFaultsArmed) {
  // Belt and braces for the suite's other tests: after any traffic run the
  // process-wide injector is back to zero armed sites — a Check on the
  // armed site passes and its hit count reads as unarmed.
  auto spec = SmallSpec(R"(,
        "faults": [
          {"site": "plan.executor.batch", "kind": "status",
           "code": "internal", "trigger_on_hit": 1, "sticky": true}
        ])");
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.deterministic = true;
  ASSERT_TRUE(RunTraffic(*spec, options).ok());
  EXPECT_EQ(util::FaultInjector::Instance().HitCount("plan.executor.batch"),
            0);
  EXPECT_TRUE(
      util::FaultInjector::Instance().Check("plan.executor.batch").ok());
}

TEST(TrafficRunnerTest, CompareGatePassesSelfAndFailsDoctoredBaseline) {
  auto spec = SmallSpec();
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string json = report->ToJson();

  auto self = CompareTrafficJson(json, json, /*tolerance=*/0.0,
                                 /*slack_us=*/0.0);
  ASSERT_TRUE(self.ok()) << self.status();
  EXPECT_TRUE(self->empty());

  // Doctor the baseline: shrink every op p95 so the run looks like a
  // regression everywhere.
  auto doc = util::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status();
  int doctored = 0;
  for (util::JsonValue& record : doc->items()) {
    for (auto& member : record.members()) {
      if (member.first == "p95_us") {
        member.second = util::JsonValue::Number(0.001);
        ++doctored;
      }
    }
  }
  ASSERT_GT(doctored, 0);
  auto gate = CompareTrafficJson(json, util::DumpJson(*doc),
                                 /*tolerance=*/0.5, /*slack_us=*/0.0);
  ASSERT_TRUE(gate.ok()) << gate.status();
  EXPECT_EQ(gate->size(), static_cast<size_t>(doctored));

  // A baseline node missing from the run is also a violation.
  auto run_doc = util::ParseJson(json);
  ASSERT_TRUE(run_doc.ok());
  // Drop the last op record from the run and compare against the full
  // baseline.
  ASSERT_FALSE(run_doc->items().empty());
  run_doc->items().pop_back();
  auto dropped = CompareTrafficJson(util::DumpJson(*run_doc), json, 0.5, 0.0);
  ASSERT_TRUE(dropped.ok()) << dropped.status();
  EXPECT_EQ(dropped->size(), 1u);
}

// Resident-server ops run end to end: each worker seeds a server::Database
// from the workload, server_query answers from the maintained IDB (tuples
// flow into the node stats), and server writes advance the server without
// errors. Deterministic mode stays byte-reproducible with the server in
// the loop.
TEST(TrafficRunnerTest, ServerOpsRunAgainstResidentDatabase) {
  auto spec = ParseTrafficSpec(R"({
    "name": "resident_unit",
    "seed": 9,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 16}],
    "phases": [
      {
        "name": "served",
        "threads": 2,
        "ops": 18,
        "mix": [
          {"op": "server_query", "weight": 4, "bind": [0]},
          {"op": "server_insert", "weight": 1, "relation": "E", "count": 2},
          {"op": "server_delete", "weight": 1, "relation": "E", "count": 1}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->nodes.size(), 3u);
  uint64_t queries = 0;
  for (const OpNodeStats& node : report->nodes) {
    EXPECT_EQ(node.errors, 0u) << node.BenchmarkName();
    if (node.op == "server_query") {
      queries = node.latency.count();
      // A chain's transitive closure is dense: bound-first-position
      // queries return rows, proving answers come from the resident IDB.
      EXPECT_GT(node.tuples, 0u);
    }
  }
  EXPECT_GT(queries, 0u);

  auto second = RunTraffic(*spec, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(report->ToJson(), second->ToJson());
}

// A tight per-op deadline on server writes: the maintenance pass checks
// the op's ExecutionContext, the failed batch publishes nothing, and the
// error lands in the node's deadline bucket instead of wedging a worker.
TEST(TrafficRunnerTest, ServerWriteDeadlineSurfacesAsTypedError) {
  auto spec = ParseTrafficSpec(R"({
    "name": "resident_deadline",
    "seed": 9,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "random_graph", "n": 40, "m": 80}],
    "phases": [
      {
        "name": "served",
        "threads": 2,
        "ops": 8,
        "mix": [
          {"op": "server_insert", "weight": 1, "relation": "E",
           "count": 4, "max_total_tuples": 1}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->nodes.size(), 1u);
  const OpNodeStats& node = report->nodes[0];
  EXPECT_EQ(node.op, "server_insert");
  EXPECT_GT(node.errors, 0u);
  EXPECT_GT(node.resource_exhausted, 0u);
  EXPECT_EQ(node.errors,
            node.cancelled + node.deadline_exceeded +
                node.resource_exhausted + node.other_errors);
}

// Durability ops end to end: snapshots persist, restarts drop the server
// and revive it from disk mid-phase, recovery latency lands in the
// server_restart node, and the whole phase stays byte-deterministic.
TEST(TrafficRunnerTest, DurabilityOpsSnapshotAndRestartResident) {
  auto spec = ParseTrafficSpec(R"({
    "name": "resident_durable",
    "seed": 13,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 12}],
    "phases": [
      {
        "name": "recovery",
        "threads": 1,
        "ops": 24,
        "mix": [
          {"op": "server_insert", "weight": 4, "relation": "E", "count": 2},
          {"op": "server_snapshot", "weight": 1},
          {"op": "server_restart", "weight": 2}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->nodes.size(), 3u);
  uint64_t total = 0;
  for (const OpNodeStats& node : report->nodes) {
    EXPECT_EQ(node.errors, 0u) << node.BenchmarkName();
    EXPECT_EQ(node.ok, node.latency.count()) << node.BenchmarkName();
    total += node.latency.count();
    if (node.op == "server_restart") {
      // The phase actually exercised crash-recovery.
      EXPECT_GT(node.latency.count(), 0u);
    }
  }
  EXPECT_EQ(total, 24u);

  auto second = RunTraffic(*spec, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(report->ToJson(), second->ToJson());
}

// Retry-with-backoff on server writes: a one-shot transient fault at the
// WAL append site fails the first attempt; the bounded retry re-submits
// the identical batch, succeeds, and the op counts one ok plus one retry —
// no error ever reaches the report.
TEST(TrafficRunnerTest, ServerWriteRetriesRecoverTransientFaults) {
  auto spec = ParseTrafficSpec(R"({
    "name": "resident_retry",
    "seed": 13,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 12}],
    "phases": [
      {
        "name": "retry",
        "threads": 1,
        "ops": 8,
        "mix": [
          {"op": "server_insert", "weight": 8, "relation": "E", "count": 2,
           "retries": 3},
          {"op": "server_restart", "weight": 1}
        ],
        "faults": [
          {"site": "io.wal.append", "kind": "status",
           "code": "resource_exhausted", "trigger_on_hit": 1,
           "sticky": false}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  uint64_t retries = 0, errors = 0;
  for (const OpNodeStats& node : report->nodes) {
    retries += node.retries;
    errors += node.errors;
  }
  EXPECT_EQ(retries, 1u) << "the one-shot fault should cost exactly one retry";
  EXPECT_EQ(errors, 0u) << "the retry should have absorbed the fault";
  EXPECT_NE(report->ToJson().find("\"retries\": 1"), std::string::npos);
}

// Without retries configured, the same transient fault surfaces as a
// typed resource_exhausted error: retries are opt-in per op.
TEST(TrafficRunnerTest, ServerWriteWithoutRetriesSurfacesTransientFault) {
  auto spec = ParseTrafficSpec(R"({
    "name": "resident_no_retry",
    "seed": 13,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "chain", "n": 12}],
    "phases": [
      {
        "name": "no_retry",
        "threads": 1,
        "ops": 8,
        "mix": [
          {"op": "server_insert", "weight": 8, "relation": "E", "count": 2},
          {"op": "server_restart", "weight": 1}
        ],
        "faults": [
          {"site": "io.wal.append", "kind": "status",
           "code": "resource_exhausted", "trigger_on_hit": 1,
           "sticky": false}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();
  uint64_t retries = 0, resource_exhausted = 0;
  for (const OpNodeStats& node : report->nodes) {
    retries += node.retries;
    resource_exhausted += node.resource_exhausted;
  }
  EXPECT_EQ(retries, 0u);
  EXPECT_EQ(resource_exhausted, 1u);
}

TEST(TrafficRunnerTest, DurationPhasesAndInlineRulesRun) {
  // Inline rules instead of a catalog example, and a duration-bound phase
  // with Poisson arrivals: exercises the other half of the spec surface.
  auto spec = ParseTrafficSpec(R"({
    "name": "inline",
    "seed": 3,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- E(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "edb": [{"relation": "E", "kind": "grid", "w": 4, "h": 4}],
    "phases": [
      {
        "name": "timed",
        "threads": 2,
        "duration_seconds": 0.05,
        "arrival_rate": 200.0,
        "mix": [
          {"op": "fixpoint", "weight": 1, "engine": "naive"},
          {"op": "query", "weight": 3, "bind": [0, 1]}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto report = RunTraffic(*spec);  // real clock: duration needs one
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->phases.size(), 1u);
  EXPECT_GT(report->phases[0].total_ops, 0u);
  EXPECT_GT(report->phases[0].wall_seconds, 0.0);
}

// Shared-server mode: every worker submits through ONE resident database's
// admission queue. The report must carry the server-level stats record and
// account for every submission. Shared runs are NOT byte-reproducible —
// sheds depend on real thread interleaving — so unlike the per-worker
// resident tests this one never compares reruns.
TEST(TrafficRunnerTest, SharedServerModeReportsServerStats) {
  auto spec = ParseTrafficSpec(R"({
    "name": "shared_unit",
    "seed": 21,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "shared_server": true,
    "admission": {"queue_depth": 64, "group_batches": 4},
    "edb": [{"relation": "E", "kind": "chain", "n": 16}],
    "phases": [
      {
        "name": "served",
        "threads": 3,
        "ops": 24,
        "mix": [
          {"op": "server_query", "weight": 3, "bind": [0]},
          {"op": "server_insert", "weight": 1, "relation": "E", "count": 2},
          {"op": "server_delete", "weight": 1, "relation": "E", "count": 1}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  RunnerOptions options;
  options.deterministic = true;
  auto report = RunTraffic(*spec, options);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_TRUE(report->shared_server.present);
  const SharedServerStats& server = report->shared_server;
  EXPECT_GT(server.submitted, 0u);
  // Every submission is accounted for: committed, quarantined, or shed
  // (at admission or by queue expiry — the phase drains before reporting).
  EXPECT_EQ(server.submitted,
            server.committed_batches + server.quarantined + server.sheds);
  EXPECT_GT(server.groups, 0u);
  EXPECT_GE(server.max_group, 1u);
  // One epoch per published group (plus the bootstrap epoch 0).
  EXPECT_EQ(server.final_epoch, server.groups);

  // Queries answered from the shared resident IDB return rows.
  for (const OpNodeStats& node : report->nodes) {
    if (node.op == "server_query") EXPECT_GT(node.tuples, 0u);
  }

  // The JSON artifact carries both the per-node sheds field and the
  // server-level record the dashboards read.
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"sheds\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"server\""), std::string::npos);
}

// Saturation: a depth-1 queue with more writers than the committer can
// drain plus unmeetable deadlines must shed with kUnavailable — counted in
// the nodes' shed bucket, never wedging a worker or crashing the phase.
TEST(TrafficRunnerTest, SharedServerShedsUnderSaturation) {
  auto spec = ParseTrafficSpec(R"({
    "name": "shared_saturated",
    "seed": 29,
    "rules": "P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).\n",
    "query_pred": "P",
    "shared_server": true,
    "admission": {"queue_depth": 1, "group_batches": 1},
    "edb": [{"relation": "E", "kind": "random_graph", "n": 32, "m": 64}],
    "phases": [
      {
        "name": "overload",
        "threads": 4,
        "ops": 40,
        "mix": [
          {"op": "server_insert", "weight": 1, "relation": "E", "count": 3,
           "deadline_seconds": 1e-9}
        ]
      }
    ]
  })");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto report = RunTraffic(*spec);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->shared_server.present);

  uint64_t node_sheds = 0, node_errors = 0, typed = 0;
  for (const OpNodeStats& node : report->nodes) {
    node_sheds += node.sheds;
    node_errors += node.errors;
    typed += node.cancelled + node.deadline_exceeded +
             node.resource_exhausted + node.sheds + node.other_errors;
  }
  EXPECT_GT(node_sheds, 0u) << "saturated queue shed nothing";
  // Sheds are part of the error total and the typed buckets tile it.
  EXPECT_EQ(node_errors, typed);
  EXPECT_GT(report->shared_server.sheds, 0u);
}

}  // namespace
}  // namespace recur::traffic
