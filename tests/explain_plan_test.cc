// Golden-output test for ExplainPlan(): the paper's s1a (transitive
// closure through A) and s9 (disconnected guard B(U,V)) examples compile
// to deterministic physical plans — components in first-atom order, greedy
// ties broken by atom index — so their rendered plan trees are pinned
// byte-for-byte. Regenerate with RECUR_REGEN_GOLDEN=1 after an
// *intentional* planner or renderer change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "catalog/paper_examples.h"
#include "eval/plan/executor.h"
#include "eval/plan/plan_ir.h"
#include "eval/plan/planner.h"
#include "ra/database.h"

namespace recur {
namespace {

std::string GoldenPath() {
  return std::string(RECUR_GOLDEN_DIR) + "/explain_plans.txt";
}

bool RegenGolden() {
  const char* env = std::getenv("RECUR_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

/// Plans (and executes once, so actual counters are nonzero) the example's
/// recursive rule against a small deterministic EDB, then renders it.
std::string ExplainExample(const char* id, int delta_index) {
  SymbolTable symbols;
  const catalog::PaperExample* example = catalog::FindExample(id);
  EXPECT_NE(example, nullptr) << id;
  auto formula = catalog::ParseExample(*example, &symbols);
  EXPECT_TRUE(formula.ok()) << formula.status();
  const datalog::Rule& rule = formula->rule();

  // Deterministic EDB: every body predicate except the recursive one gets
  // a small chain; the recursive predicate holds the exit facts.
  ra::Database edb;
  for (const datalog::Atom& atom : rule.body()) {
    const bool recursive =
        atom.predicate() == formula->recursive_predicate();
    auto rel = edb.GetOrCreate(atom.predicate(), atom.arity());
    EXPECT_TRUE(rel.ok()) << rel.status();
    if (!(*rel)->empty()) continue;  // predicate repeated in the body
    const int rows = recursive ? 4 : 8;
    for (int i = 0; i < rows; ++i) {
      ra::Value* dst = (*rel)->StageRow();
      for (int c = 0; c < atom.arity(); ++c) {
        dst[c] = recursive ? i + c : (i + c) % 8;
      }
      (*rel)->CommitStagedRow();
    }
  }

  eval::PlanRelationLookup lookup =
      [&edb](SymbolId pred) -> const ra::Relation* { return edb.Find(pred); };
  eval::plan::PlannerOptions options;
  options.override_index = delta_index;
  const ra::Relation* delta = nullptr;
  if (delta_index >= 0) {
    delta = edb.Find(rule.body()[delta_index].predicate());
    options.override_relation = delta;
  }
  auto plan = eval::plan::PlanRule(rule, lookup, options);
  EXPECT_TRUE(plan.ok()) << plan.status();

  eval::plan::ExecOptions exec;
  exec.override_relation = delta;
  auto result = eval::plan::ExecutePlan(**plan, lookup, exec);
  EXPECT_TRUE(result.ok()) << result.status();

  return eval::plan::ExplainPlan(**plan, &symbols);
}

std::string RenderAll() {
  std::string out;
  out += "== s1a ==\n" + ExplainExample("s1a", -1);
  out += "== s1a delta ==\n" + ExplainExample("s1a", 1);
  out += "== s9 ==\n" + ExplainExample("s9", -1);
  out += "== s9 delta ==\n" + ExplainExample("s9", 2);
  return out;
}

TEST(ExplainPlanGolden, MatchesGoldenFile) {
  const std::string got = RenderAll();
  if (RegenGolden()) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << GoldenPath();
    out << got;
    return;
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing " << GoldenPath()
      << "; regenerate with RECUR_REGEN_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "ExplainPlan drifted; if the planner change is intentional, "
         "regenerate with RECUR_REGEN_GOLDEN=1";
}

// Structural assertions that survive regeneration: s1a joins P through A
// (one HashJoinProbe), s9's guard B(U,V) is a separate component that
// turns into a Cartesian-product plan with a join in the P component.
TEST(ExplainPlanGolden, StructuralShape) {
  const std::string s1a = ExplainExample("s1a", -1);
  EXPECT_NE(s1a.find("HashJoinProbe"), std::string::npos) << s1a;
  EXPECT_NE(s1a.find("1 component"), std::string::npos) << s1a;

  const std::string s9 = ExplainExample("s9", -1);
  EXPECT_NE(s9.find("2 components"), std::string::npos) << s9;
  EXPECT_NE(s9.find("HashJoinProbe"), std::string::npos) << s9;

  const std::string s9_delta = ExplainExample("s9", 2);
  EXPECT_NE(s9_delta.find("delta"), std::string::npos) << s9_delta;
}

}  // namespace
}  // namespace recur
