// Shared-server admission layer (server/admission.h): group commit must
// coalesce queued batches into one maintenance pass under one epoch with
// per-waiter statuses, overload must shed with kUnavailable instead of
// blocking, the watchdog must convert a stalled pass into
// kDeadlineExceeded while readers keep the pre-group snapshot, and a
// deterministically failing batch must be quarantined by group bisection
// with every innocent batch still committing. The stress test (tsan
// label) drives concurrent writers + readers + fault chaos against one
// server and checks epoch monotonicity and batch atomicity.

#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "server/database.h"
#include "util/fault_injection.h"

namespace recur {
namespace {

constexpr char kProgram[] =
    "P(X, Y) :- E(X, Y).\n"
    "P(X, Y) :- P(X, Z), P(Z, Y).\n";

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().Reset(); }
  void TearDown() override { util::FaultInjector::Instance().Reset(); }

  datalog::Program Parse() {
    auto program = datalog::ParseProgram(kProgram, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    return *program;
  }

  ra::Database ChainEdb(int n) {
    ra::Database edb;
    ra::Relation* e = *edb.GetOrCreate(symbols_.Intern("E"), 2);
    for (int i = 0; i < n; ++i) e->Insert({i, i + 1});
    return edb;
  }

  std::unique_ptr<server::Database> MakeServer(
      server::AdmissionOptions admission = {},
      server::ServerOptions options = {}) {
    auto db = server::Database::Create(Parse(), ChainEdb(4), &symbols_,
                                       std::move(options));
    EXPECT_TRUE(db.ok()) << db.status();
    (*db)->EnableAdmission(std::move(admission));
    return std::move(*db);
  }

  /// One batch inserting edge (from, to) into E.
  eval::EdbDeltas InsertEdge(ra::Value from, ra::Value to) {
    eval::EdbDeltas deltas;
    eval::EdbDelta delta(2);
    delta.inserts.Insert({from, to});
    deltas.emplace(symbols_.Lookup("E"), std::move(delta));
    return deltas;
  }

  /// Reference semantics: P recomputed from scratch over the server's
  /// current EDB, as a sorted string.
  std::string RecomputeP(const server::Database& db) {
    auto idb = eval::SemiNaiveEvaluate(db.program(), db.snapshot().edb());
    EXPECT_TRUE(idb.ok()) << idb.status();
    auto it = idb->find(symbols_.Lookup("P"));
    return it == idb->end() ? "{}" : it->second.ToString();
  }

  std::string ResidentP(const server::Database& db) {
    const ra::Relation* p = db.snapshot().idb().Find(symbols_.Lookup("P"));
    return p == nullptr ? "{}" : p->ToString();
  }

  bool EdbHasEdge(const server::Database& db, ra::Value from, ra::Value to) {
    const ra::Relation* e = db.snapshot().edb().Find(symbols_.Lookup("E"));
    if (e == nullptr) return false;
    for (ra::TupleRef row : e->rows()) {
      if (row[0] == from && row[1] == to) return true;
    }
    return false;
  }

  SymbolTable symbols_;
};

TEST_F(AdmissionTest, GroupCommitCoalescesUnderOneEpoch) {
  auto db = MakeServer();
  const uint64_t before = db->epoch();

  // Pause the committer so all five batches queue up and form one group.
  db->committer()->Pause();
  std::vector<server::GroupCommitter::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(db->committer()->SubmitAsync(InsertEdge(100 + i, i)));
  }
  EXPECT_EQ(db->committer()->queue_depth(), 5u);
  db->committer()->Resume();

  for (auto& ticket : tickets) {
    const Status status = ticket.Wait();
    EXPECT_TRUE(status.ok()) << status;
  }

  // One group commit: one published epoch for all five batches.
  EXPECT_EQ(db->epoch(), before + 1);
  const server::ServerStats stats = db->overload_stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.committed_batches, 5u);
  EXPECT_EQ(stats.max_group, 5u);
  EXPECT_EQ(stats.sheds, 0u);

  // The grouped maintenance pass must land on the same fixpoint a
  // recomputation over the final EDB reaches.
  EXPECT_EQ(ResidentP(*db), RecomputeP(*db));
}

TEST_F(AdmissionTest, QueueFullShedsWithUnavailable) {
  server::AdmissionOptions admission;
  admission.max_queue_depth = 2;
  auto db = MakeServer(admission);

  db->committer()->Pause();
  auto t1 = db->committer()->SubmitAsync(InsertEdge(100, 1));
  auto t2 = db->committer()->SubmitAsync(InsertEdge(101, 2));
  // Third submission finds the queue full: shed immediately, no blocking.
  auto t3 = db->committer()->SubmitAsync(InsertEdge(102, 3));
  const Status shed = t3.Wait();
  EXPECT_TRUE(shed.IsUnavailable()) << shed;

  db->committer()->Resume();
  EXPECT_TRUE(t1.Wait().ok());
  EXPECT_TRUE(t2.Wait().ok());

  const server::ServerStats stats = db->overload_stats();
  EXPECT_EQ(stats.sheds, 1u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queue_high_water, 2u);
  // The shed batch did no work: its edge never reached the EDB.
  EXPECT_FALSE(EdbHasEdge(*db, 102, 3));
  EXPECT_TRUE(EdbHasEdge(*db, 100, 1));
}

TEST_F(AdmissionTest, UnmeetableDeadlineShedsAtAdmission) {
  auto db = MakeServer();
  // Establish the commit-rate estimate with one ordinary commit.
  EXPECT_TRUE(db->Submit(InsertEdge(100, 1)).ok());
  // A deadline far below one group-commit interval cannot be met; the
  // batch is shed at admission time, before any queueing.
  const Status status = db->Submit(InsertEdge(101, 2), /*deadline=*/1e-12);
  EXPECT_TRUE(status.IsUnavailable()) << status;
  EXPECT_EQ(db->overload_stats().sheds, 1u);
  EXPECT_FALSE(EdbHasEdge(*db, 101, 2));
}

TEST_F(AdmissionTest, DeadlineExpiredInQueueSheds) {
  auto db = MakeServer();  // fresh committer: no rate estimate yet
  db->committer()->Pause();
  auto ticket = db->committer()->SubmitAsync(InsertEdge(100, 1),
                                             /*deadline_seconds=*/0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  db->committer()->Resume();
  const Status status = ticket.Wait();
  EXPECT_TRUE(status.IsUnavailable()) << status;
  EXPECT_EQ(db->overload_stats().sheds, 1u);
  EXPECT_FALSE(EdbHasEdge(*db, 100, 1));
}

TEST_F(AdmissionTest, WatchdogConvertsStallToDeadlineExceeded) {
  server::AdmissionOptions admission;
  admission.watchdog_seconds = 0.05;
  auto db = MakeServer(admission);
  const uint64_t before = db->epoch();

  {
    // A 150ms stall inside a 50ms-watchdog commit attempt: the pass is
    // cancelled cooperatively and surfaces as kDeadlineExceeded.
    util::FaultSpec stall;
    stall.kind = util::FaultSpec::Kind::kDelay;
    stall.delay_ms = 150;
    stall.sticky = false;
    util::ScopedFault fault("server.commit.watchdog", stall);
    const Status status = db->Submit(InsertEdge(100, 1));
    EXPECT_TRUE(status.IsDeadlineExceeded()) << status;
  }

  // Nothing was published: readers kept the pre-group snapshot.
  EXPECT_EQ(db->epoch(), before);
  EXPECT_FALSE(EdbHasEdge(*db, 100, 1));
  EXPECT_EQ(db->overload_stats().watchdog_trips, 1u);
  EXPECT_EQ(ResidentP(*db), RecomputeP(*db));

  // The committer survived the trip and serves the next batch.
  EXPECT_TRUE(db->Submit(InsertEdge(100, 1)).ok());
  EXPECT_EQ(db->epoch(), before + 1);
  EXPECT_TRUE(EdbHasEdge(*db, 100, 1));
}

TEST_F(AdmissionTest, PoisonBatchQuarantinedByBisection) {
  auto db = MakeServer();
  const uint64_t before = db->epoch();

  db->committer()->Pause();
  std::vector<server::GroupCommitter::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(db->committer()->SubmitAsync(InsertEdge(100 + i, i)));
  }

  // The third batch probed at group assembly is poison: every attempt
  // containing it fails, so bisection must isolate exactly it.
  util::FaultSpec poison;
  poison.kind = util::FaultSpec::Kind::kStatus;
  poison.code = StatusCode::kInternal;
  poison.message = "poison batch";
  poison.trigger_on_hit = 3;
  poison.sticky = false;
  util::ScopedFault fault("server.commit.group", poison);
  db->committer()->Resume();

  for (int i = 0; i < 5; ++i) {
    const Status status = tickets[static_cast<size_t>(i)].Wait();
    if (i == 2) {
      // The poison waiter gets the batch's original error.
      EXPECT_TRUE(status.IsInternal()) << status;
      EXPECT_EQ(status.message(), "poison batch");
    } else {
      EXPECT_TRUE(status.ok()) << "batch " << i << ": " << status;
    }
  }

  // Bisection of [1..5]: [1,2] commits, [3] quarantined, [4,5] commits.
  const server::ServerStats stats = db->overload_stats();
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.committed_batches, 4u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.bisection_splits, 2u);
  EXPECT_EQ(db->epoch(), before + 2);

  // The quarantined batch's edge is absent; every innocent edge landed.
  EXPECT_FALSE(EdbHasEdge(*db, 102, 2));
  for (int i : {0, 1, 3, 4}) {
    EXPECT_TRUE(EdbHasEdge(*db, 100 + i, i)) << "batch " << i;
  }
  EXPECT_EQ(ResidentP(*db), RecomputeP(*db));
}

TEST_F(AdmissionTest, DurableQuarantineRecoversCleanly) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "recur_admission" /
       ::testing::UnitTest::GetInstance()->current_test_info()->name())
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  server::ServerOptions options;
  options.durability.dir = dir;
  options.durability.program_text = kProgram;
  options.durability.fsync = server::FsyncPolicy::kNone;

  std::string edb_before, idb_before;
  {
    auto db = MakeServer({}, options);
    db->committer()->Pause();
    std::vector<server::GroupCommitter::Ticket> tickets;
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(db->committer()->SubmitAsync(InsertEdge(100 + i, i)));
    }
    util::FaultSpec poison;
    poison.kind = util::FaultSpec::Kind::kStatus;
    poison.code = StatusCode::kInternal;
    poison.trigger_on_hit = 2;
    poison.sticky = false;
    util::ScopedFault fault("server.commit.group", poison);
    db->committer()->Resume();
    EXPECT_TRUE(tickets[0].Wait().ok());
    EXPECT_TRUE(tickets[1].Wait().IsInternal());
    EXPECT_TRUE(tickets[2].Wait().ok());

    server::Database::Snapshot snap = db->snapshot();
    edb_before = snap.edb().Find(symbols_.Lookup("E"))->ToString();
    idb_before = snap.idb().Find(symbols_.Lookup("P"))->ToString();
    // ~db joins the committer before the WAL is torn down.
  }

  // Recovery replays only the committed groups: the quarantined batch
  // never reached the log, so the revived state matches exactly.
  SymbolTable symbols;
  auto revived =
      server::Database::OpenOrRecover(dir, kProgram, &symbols, options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  server::Database::Snapshot snap = (*revived)->snapshot();
  EXPECT_EQ(snap.edb().Find(symbols.Lookup("E"))->ToString(), edb_before);
  EXPECT_EQ(snap.idb().Find(symbols.Lookup("P"))->ToString(), idb_before);
}

TEST_F(AdmissionTest, SubmitWithoutAdmissionFallsBackToDirectApply) {
  auto db = server::Database::Create(Parse(), ChainEdb(4), &symbols_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE((*db)->admission_enabled());
  const uint64_t before = (*db)->epoch();
  EXPECT_TRUE((*db)->Submit(InsertEdge(100, 1)).ok());
  EXPECT_EQ((*db)->epoch(), before + 1);
  EXPECT_TRUE(EdbHasEdge(**db, 100, 1));
  EXPECT_EQ((*db)->overload_stats().submitted, 0u);
}

TEST_F(AdmissionTest, ShutdownCompletesPendingWithUnavailable) {
  auto db = MakeServer();
  db->committer()->Pause();
  std::vector<server::GroupCommitter::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(db->committer()->SubmitAsync(InsertEdge(100 + i, i)));
  }
  db->committer()->Shutdown();
  for (auto& ticket : tickets) {
    const Status status = ticket.Wait();
    EXPECT_TRUE(status.IsUnavailable()) << status;
  }
  // Submissions after shutdown shed immediately too.
  EXPECT_TRUE(db->Submit(InsertEdge(200, 1)).IsUnavailable());
}

// Stress (tsan): concurrent writers submitting unique two-row batches,
// readers pinning snapshots, and a chaos thread arming/disarming faults.
// Invariants: epochs are monotone per reader, every snapshot shows each
// batch fully or not at all (both rows or neither), the maintained P
// always equals E (the program is P = transitive closure... of a single
// non-recursive rule here, so P == E row-for-row), and at the end a
// batch's rows are present exactly when its Submit returned OK.
TEST_F(AdmissionTest, SharedStressEpochsMonotoneAndBatchesAtomic) {
  SymbolTable symbols;
  auto program = datalog::ParseProgram("P(X, Y) :- E(X, Y).\n", &symbols);
  ASSERT_TRUE(program.ok()) << program.status();
  ra::Database edb;
  (void)*edb.GetOrCreate(symbols.Intern("E"), 2);
  auto created =
      server::Database::Create(*std::move(program), std::move(edb), &symbols);
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<server::Database> db = std::move(*created);
  server::AdmissionOptions admission;
  admission.max_queue_depth = 1024;  // no queue-full sheds: statuses stay
                                     // fault-driven
  admission.max_group_batches = 4;
  db->EnableAdmission(admission);
  const SymbolId e_pred = symbols.Lookup("E");
  const SymbolId p_pred = symbols.Lookup("P");

  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 40;
  std::atomic<bool> stop{false};
  std::vector<std::vector<Status>> outcomes(kWriters);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    outcomes[static_cast<size_t>(w)].resize(kBatchesPerWriter);
    writers.emplace_back([&, w] {
      for (int i = 0; i < kBatchesPerWriter; ++i) {
        const ra::Value k = w * 1000 + i;
        eval::EdbDeltas deltas;
        eval::EdbDelta delta(2);
        delta.inserts.Insert({k, 1});
        delta.inserts.Insert({k, 2});
        deltas.emplace(e_pred, std::move(delta));
        outcomes[static_cast<size_t>(w)][static_cast<size_t>(i)] =
            db->Submit(std::move(deltas));
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        server::Database::Snapshot snap = db->snapshot();
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        const ra::Relation* e = snap.edb().Find(e_pred);
        if (e != nullptr) {
          // Batch atomicity: a key is present with both rows or absent.
          std::unordered_map<ra::Value, int> mask;
          for (ra::TupleRef row : e->rows()) {
            mask[row[0]] |= row[1] == 1 ? 1 : 2;
          }
          for (const auto& [key, bits] : mask) {
            ASSERT_EQ(bits, 3) << "half-visible batch " << key << " at epoch "
                               << snap.epoch();
          }
          // Snapshot isolation across EDB and IDB: P of this epoch is
          // derived from exactly this E.
          const ra::Relation* p = snap.idb().Find(p_pred);
          ASSERT_EQ(p == nullptr ? "{}" : p->ToString(), e->ToString())
              << "at epoch " << snap.epoch();
        }
        std::this_thread::yield();
      }
    });
  }

  // Chaos: randomly poison group assembly and fail maintenance rounds.
  std::thread chaos([&] {
    unsigned seed = 12345;
    auto next = [&seed] { return seed = seed * 1103515245u + 12345u; };
    while (!stop.load(std::memory_order_acquire)) {
      util::FaultSpec spec;
      spec.kind = util::FaultSpec::Kind::kStatus;
      spec.code = next() % 2 == 0 ? StatusCode::kInternal
                                  : StatusCode::kResourceExhausted;
      spec.trigger_on_hit = static_cast<int>(next() % 5) + 1;
      spec.sticky = false;
      const char* site =
          next() % 2 == 0 ? "server.commit.group" : "eval.maintain.round";
      util::FaultInjector::Instance().Arm(site, spec);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      util::FaultInjector::Instance().Disarm(site);
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  chaos.join();
  util::FaultInjector::Instance().Reset();

  // Ground truth: a batch's rows are in the final EDB exactly when its
  // Submit reported success.
  server::Database::Snapshot snap = db->snapshot();
  const ra::Relation* e = snap.edb().Find(e_pred);
  ASSERT_NE(e, nullptr);
  std::unordered_map<ra::Value, int> mask;
  for (ra::TupleRef row : e->rows()) mask[row[0]] |= row[1] == 1 ? 1 : 2;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kBatchesPerWriter; ++i) {
      const ra::Value k = w * 1000 + i;
      const Status& status =
          outcomes[static_cast<size_t>(w)][static_cast<size_t>(i)];
      const auto it = mask.find(k);
      if (status.ok()) {
        ASSERT_NE(it, mask.end()) << "committed batch " << k << " missing";
        ASSERT_EQ(it->second, 3) << "committed batch " << k << " is partial";
      } else {
        ASSERT_EQ(it, mask.end())
            << "failed batch " << k << " (" << status << ") left rows behind";
      }
    }
  }
  const ra::Relation* p = snap.idb().Find(p_pred);
  EXPECT_EQ(p == nullptr ? "{}" : p->ToString(), e->ToString());
  const server::ServerStats stats = db->overload_stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kWriters) *
                                 kBatchesPerWriter);
  EXPECT_GE(stats.groups, 1u);
}

}  // namespace
}  // namespace recur
