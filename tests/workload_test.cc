#include <gtest/gtest.h>

#include "workload/generator.h"

namespace recur::workload {
namespace {

TEST(WorkloadTest, ChainShape) {
  Generator gen(1);
  ra::Relation chain = gen.Chain(10, 100);
  EXPECT_EQ(chain.size(), 10u);
  EXPECT_TRUE(chain.Contains({100, 101}));
  EXPECT_TRUE(chain.Contains({109, 110}));
  EXPECT_FALSE(chain.Contains({110, 111}));
}

TEST(WorkloadTest, TreeShape) {
  Generator gen(1);
  ra::Relation tree = gen.Tree(3, 2);
  EXPECT_EQ(tree.size(), 2u + 4u + 8u);
  EXPECT_TRUE(tree.Contains({0, 1}));
  EXPECT_TRUE(tree.Contains({0, 2}));
  EXPECT_TRUE(tree.Contains({1, 3}));
  // Every non-root node has exactly one parent: acyclic by construction.
}

TEST(WorkloadTest, LayeredDagIsAcyclicAndSized) {
  Generator gen(2);
  ra::Relation dag = gen.LayeredDag(4, 5, 2);
  // Every edge goes from layer i to layer i+1.
  for (ra::TupleRef t : dag.rows()) {
    EXPECT_EQ(t[0] / 5 + 1, t[1] / 5);
  }
  EXPECT_LE(dag.size(), 3u * 5u * 2u);
  EXPECT_GT(dag.size(), 0u);
}

TEST(WorkloadTest, RandomGraphNoSelfLoops) {
  Generator gen(3);
  ra::Relation g = gen.RandomGraph(20, 50);
  EXPECT_EQ(g.size(), 50u);
  for (ra::TupleRef t : g.rows()) {
    EXPECT_NE(t[0], t[1]);
    EXPECT_GE(t[0], 0);
    EXPECT_LT(t[0], 20);
  }
}

TEST(WorkloadTest, GridShape) {
  Generator gen(4);
  ra::Relation grid = gen.Grid(3, 2);
  // 2 rows x 3 cols: right edges 2*2, down edges 3*1.
  EXPECT_EQ(grid.size(), 7u);
  EXPECT_TRUE(grid.Contains({0, 1}));
  EXPECT_TRUE(grid.Contains({0, 3}));
}

TEST(WorkloadTest, DeterministicForSeed) {
  Generator g1(42);
  Generator g2(42);
  EXPECT_EQ(g1.RandomGraph(30, 60).ToString(),
            g2.RandomGraph(30, 60).ToString());
  Generator g3(43);
  EXPECT_NE(g1.RandomGraph(30, 60).ToString(),
            g3.RandomGraph(30, 60).ToString());
}

TEST(WorkloadTest, RandomPairsRanges) {
  Generator gen(5);
  ra::Relation pairs = gen.RandomPairs(10, 10, 30, 0, 1000);
  EXPECT_EQ(pairs.size(), 30u);
  for (ra::TupleRef t : pairs.rows()) {
    EXPECT_GE(t[0], 0);
    EXPECT_LT(t[0], 10);
    EXPECT_GE(t[1], 1000);
    EXPECT_LT(t[1], 1010);
  }
}

TEST(WorkloadTest, RandomRowsArity) {
  Generator gen(6);
  ra::Relation rows = gen.RandomRows(4, 8, 20);
  EXPECT_EQ(rows.arity(), 4);
  EXPECT_EQ(rows.size(), 20u);
}

}  // namespace
}  // namespace recur::workload
