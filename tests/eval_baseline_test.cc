#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/conjunctive.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  datalog::Program MustProgram(const char* text) {
    auto p = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(p.ok()) << p.status();
    return *p;
  }

  // Loads a named binary relation directly.
  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(BaselineTest, ConjunctiveSimpleJoin) {
  Load("A", [] {
    ra::Relation r(2);
    r.Insert({1, 2});
    r.Insert({2, 3});
    return r;
  }());
  auto rule = datalog::ParseRule("P(X, Z) :- A(X, Y), A(Y, Z).", &symbols_);
  ASSERT_TRUE(rule.ok());
  RelationLookup lookup = [this](SymbolId p) { return edb_.Find(p); };
  auto result = EvaluateRule(*rule, lookup);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ToString(), "{(1,3)}");
}

TEST_F(BaselineTest, ConjunctiveConstantsAndRepeatedVars) {
  // Use values far above the interned-symbol id range so the constant c's
  // id cannot collide with plain integer data.
  ra::Relation a(3);
  a.Insert({100, 100, 5});
  a.Insert({100, 200, 6});
  a.Insert({static_cast<ra::Value>(symbols_.Intern("c")), 7, 7});
  Load("A", a);
  // Repeated variable X,X filters to rows with equal first columns.
  auto rule1 = datalog::ParseRule("P(Z) :- A(X, X, Z).", &symbols_);
  ASSERT_TRUE(rule1.ok());
  RelationLookup lookup = [this](SymbolId p) { return edb_.Find(p); };
  auto r1 = EvaluateRule(*rule1, lookup);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->ToString(), "{(5)}");
  // Constant in the atom selects.
  auto rule2 = datalog::ParseRule("P(Y, Z) :- A(c, Y, Z).", &symbols_);
  ASSERT_TRUE(rule2.ok());
  auto r2 = EvaluateRule(*rule2, lookup);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->ToString(), "{(7,7)}");
}

TEST_F(BaselineTest, ConjunctiveWithBindings) {
  workload::Generator gen(7);
  Load("A", gen.Chain(50));
  auto rule = datalog::ParseRule("P(X, Z) :- A(X, Y), A(Y, Z).", &symbols_);
  ASSERT_TRUE(rule.ok());
  RelationLookup lookup = [this](SymbolId p) { return edb_.Find(p); };
  std::unordered_map<SymbolId, ra::Value> bindings{
      {symbols_.Lookup("X"), 5}};
  ConjunctiveOptions options;
  options.bindings = &bindings;
  EvalStats stats;
  auto result = EvaluateRule(*rule, lookup, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "{(5,7)}");
  // Selection-first: far fewer intermediate tuples than the full join.
  EXPECT_LT(stats.tuples_considered, 10u);
}

TEST_F(BaselineTest, ConjunctiveHeadConstant) {
  Load("A", [] {
    ra::Relation r(1);
    r.Insert({4});
    return r;
  }());
  auto rule = datalog::ParseRule("P(k, X) :- A(X).", &symbols_);
  ASSERT_TRUE(rule.ok());
  RelationLookup lookup = [this](SymbolId p) { return edb_.Find(p); };
  auto result = EvaluateRule(*rule, lookup);
  ASSERT_TRUE(result.ok());
  ra::Value k = static_cast<ra::Value>(symbols_.Lookup("k"));
  EXPECT_TRUE(result->Contains({k, 4}));
}

TEST_F(BaselineTest, ConjunctiveUnknownRelationYieldsEmpty) {
  auto rule = datalog::ParseRule("P(X) :- Missing(X).", &symbols_);
  ASSERT_TRUE(rule.ok());
  RelationLookup lookup = [this](SymbolId p) { return edb_.Find(p); };
  auto result = EvaluateRule(*rule, lookup);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(BaselineTest, NaiveTransitiveClosureChain) {
  workload::Generator gen(1);
  Load("A", gen.Chain(20));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  auto idb = NaiveEvaluate(program, edb_);
  ASSERT_TRUE(idb.ok()) << idb.status();
  const ra::Relation& p = idb->at(symbols_.Lookup("P"));
  EXPECT_EQ(p.size(), 20u * 21u / 2u);  // all ordered pairs i<j
  EXPECT_TRUE(p.Contains({0, 20}));
  EXPECT_FALSE(p.Contains({20, 0}));
}

TEST_F(BaselineTest, SemiNaiveMatchesNaive) {
  workload::Generator gen(2);
  Load("A", gen.RandomGraph(30, 60));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  auto naive = NaiveEvaluate(program, edb_);
  auto semi = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(naive->at(symbols_.Lookup("P")).ToString(),
            semi->at(symbols_.Lookup("P")).ToString());
}

TEST_F(BaselineTest, SemiNaiveDoesLessWork) {
  workload::Generator gen(3);
  Load("A", gen.Chain(60));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  EvalStats naive_stats;
  EvalStats semi_stats;
  ASSERT_TRUE(NaiveEvaluate(program, edb_, {}, &naive_stats).ok());
  ASSERT_TRUE(SemiNaiveEvaluate(program, edb_, {}, &semi_stats).ok());
  EXPECT_LT(semi_stats.tuples_considered, naive_stats.tuples_considered);
}

TEST_F(BaselineTest, SameGenerationProgram) {
  // Classic same-generation over a small tree: flat(=sibling) pairs come
  // from shared parents.
  workload::Generator gen(4);
  Load("Par", gen.Tree(3, 2));
  datalog::Program program = MustProgram(
      "Sg(X, Y) :- Par(P, X), Par(P, Y).\n"
      "Sg(X, Y) :- Par(P, X), Sg(P, Q), Par(Q, Y).\n");
  auto idb = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(idb.ok()) << idb.status();
  const ra::Relation& sg = idb->at(symbols_.Lookup("Sg"));
  // Nodes 1 and 2 are both children of 0: same generation. Node 3 (child
  // of 1) and node 6 (child of 2) are same generation via recursion.
  EXPECT_TRUE(sg.Contains({1, 2}));
  EXPECT_TRUE(sg.Contains({3, 6}));
  EXPECT_FALSE(sg.Contains({1, 3}));
}

TEST_F(BaselineTest, MutualRecursionTwoPredicates) {
  Load("A", [] {
    ra::Relation r(2);
    r.Insert({1, 2});
    r.Insert({2, 3});
    r.Insert({3, 4});
    return r;
  }());
  // Even/odd distance pairs via mutual recursion.
  datalog::Program program = MustProgram(
      "Odd(X, Y) :- A(X, Y).\n"
      "Odd(X, Y) :- A(X, Z), Even(Z, Y).\n"
      "Even(X, Y) :- A(X, Z), Odd(Z, Y).\n");
  auto idb = SemiNaiveEvaluate(program, edb_);
  ASSERT_TRUE(idb.ok());
  EXPECT_TRUE(idb->at(symbols_.Lookup("Odd")).Contains({1, 2}));
  EXPECT_TRUE(idb->at(symbols_.Lookup("Even")).Contains({1, 3}));
  EXPECT_TRUE(idb->at(symbols_.Lookup("Odd")).Contains({1, 4}));
  EXPECT_FALSE(idb->at(symbols_.Lookup("Even")).Contains({1, 2}));
}

TEST_F(BaselineTest, QueryHelpers) {
  SymbolTable symbols;
  auto atom = datalog::ParseAtom("P(a, Y, b)", &symbols);
  ASSERT_TRUE(atom.ok());
  Query q = Query::FromAtom(*atom);
  EXPECT_EQ(q.arity(), 3);
  EXPECT_EQ(q.AdornmentString(), "bfb");
  EXPECT_EQ(q.adornment(), 0b101u);
  EXPECT_EQ(q.BoundPositions(), (std::vector<int>{0, 2}));
  EXPECT_EQ(q.FreePositions(), (std::vector<int>{1}));

  ra::Relation full(3);
  ra::Value a = static_cast<ra::Value>(symbols.Lookup("a"));
  ra::Value b = static_cast<ra::Value>(symbols.Lookup("b"));
  full.Insert({a, 1, b});
  full.Insert({a, 2, 99});
  auto filtered = q.Filter(full);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->size(), 1u);
  EXPECT_TRUE(filtered->Contains({a, 1, b}));
}

TEST_F(BaselineTest, NaiveAnswerFiltersByQuery) {
  workload::Generator gen(5);
  Load("A", gen.Chain(10));
  datalog::Program program = MustProgram(
      "P(X, Y) :- A(X, Y).\n"
      "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  Query q;
  q.pred = symbols_.Lookup("P");
  q.bindings = {ra::Value{0}, std::nullopt};
  auto answers = NaiveAnswer(program, edb_, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 10u);  // 0 reaches 1..10
}

}  // namespace
}  // namespace recur::eval
