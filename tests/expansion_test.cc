#include <algorithm>

#include <gtest/gtest.h>

#include "datalog/expansion.h"
#include "datalog/parser.h"

namespace recur::datalog {
namespace {

class ExpansionTest : public ::testing::Test {
 protected:
  LinearRecursiveRule MustFormula(const char* text) {
    auto rule = ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    auto f = LinearRecursiveRule::Create(*rule);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }

  // Counts body atoms with the given predicate name.
  static int CountPred(const Rule& rule, const SymbolTable& symbols,
                       const char* name) {
    int count = 0;
    for (const Atom& a : rule.body()) {
      if (symbols.NameOf(a.predicate()) == name) ++count;
    }
    return count;
  }

  SymbolTable symbols_;
};

TEST_F(ExpansionTest, FirstExpansionIsOriginal) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  auto e1 = Expand(f, 1, &symbols_);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, f.rule());
}

TEST_F(ExpansionTest, RejectsZero) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  EXPECT_FALSE(Expand(f, 0, &symbols_).ok());
}

TEST_F(ExpansionTest, KthExpansionHasKCopies) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  for (int k = 1; k <= 5; ++k) {
    auto ek = Expand(f, k, &symbols_);
    ASSERT_TRUE(ek.ok());
    EXPECT_EQ(CountPred(*ek, symbols_, "A"), k);
    EXPECT_EQ(CountPred(*ek, symbols_, "P"), 1);
    EXPECT_EQ(ek->head(), f.rule().head());
  }
}

TEST_F(ExpansionTest, PaperSecondExpansionOfS2a) {
  // (s2a) P(x,y) :- A(x,z) ∧ P(z,u) ∧ B(u,y); the paper's 2nd expansion is
  // (s2c) P(x,y) :- A(x,z) ∧ A(z,z1) ∧ P(z1,u1) ∧ B(u1,u) ∧ B(u,y).
  LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  auto e2 = Expand(f, 2, &symbols_);
  ASSERT_TRUE(e2.ok()) << e2.status();
  EXPECT_EQ(e2->ToString(symbols_),
            "P(X, Y) :- A(X, Z), A(Z, Z1), P(Z1, U1), B(U1, U), B(U, Y).");
}

TEST_F(ExpansionTest, ThirdExpansionChainsCorrectly) {
  LinearRecursiveRule f =
      MustFormula("P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).");
  auto e3 = Expand(f, 3, &symbols_);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(
      e3->ToString(symbols_),
      "P(X, Y) :- A(X, Z), A(Z, Z1), A(Z1, Z2), P(Z2, U2), B(U2, U1), "
      "B(U1, U), B(U, Y).");
}

TEST_F(ExpansionTest, PermutationalExpansionReturnsToOriginal) {
  // (s5) P(x,y,z) :- P(y,z,x): after 3 unfolds the recursive atom has
  // cycled through P(z,x,y) and P(x,y,z) back to P(y,z,x) — the 4th
  // expansion is literally the original rule ("stable after 3 expansions",
  // Example 5).
  LinearRecursiveRule f = MustFormula("P(X, Y, Z) :- P(Y, Z, X).");
  auto e3 = Expand(f, 3, &symbols_);
  ASSERT_TRUE(e3.ok());
  ASSERT_EQ(e3->body().size(), 1u);
  EXPECT_EQ(e3->body()[0], f.head());  // identity permutation reached
  auto e4 = Expand(f, 4, &symbols_);
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ(*e4, f.rule());
}

TEST_F(ExpansionTest, ExpandWithExitZeroGivesExitRule) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  auto exit = ParseRule("P(X, Y) :- E(X, Y).", &symbols_);
  ASSERT_TRUE(exit.ok());
  auto e0 = ExpandWithExit(f, 0, *exit, &symbols_);
  ASSERT_TRUE(e0.ok());
  EXPECT_EQ(*e0, *exit);
}

TEST_F(ExpansionTest, ExpandWithExitIsNonRecursive) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  auto exit = ParseRule("P(X, Y) :- E(X, Y).", &symbols_);
  ASSERT_TRUE(exit.ok());
  for (int k = 1; k <= 4; ++k) {
    auto ek = ExpandWithExit(f, k, *exit, &symbols_);
    ASSERT_TRUE(ek.ok());
    EXPECT_FALSE(ek->IsRecursive());
    EXPECT_EQ(CountPred(*ek, symbols_, "A"), k);
    EXPECT_EQ(CountPred(*ek, symbols_, "E"), 1);
  }
}

TEST_F(ExpansionTest, ExpandWithExitRejectsMismatchedExit) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  auto exit = ParseRule("Q(X, Y) :- E(X, Y).", &symbols_);
  ASSERT_TRUE(exit.ok());
  EXPECT_FALSE(ExpandWithExit(f, 1, *exit, &symbols_).ok());
}

TEST_F(ExpansionTest, RenameAvoidsCapture) {
  // A rule that already uses the name Z1: renaming Z at layer 1 must not
  // capture it.
  auto rule = ParseRule("P(X, Y) :- A(X, Z), B(Z, Z1), P(Z1, Y).",
                        &symbols_);
  ASSERT_TRUE(rule.ok());
  auto f = LinearRecursiveRule::Create(*rule);
  ASSERT_TRUE(f.ok());
  auto e2 = Expand(*f, 2, &symbols_);
  ASSERT_TRUE(e2.ok());
  // All variables distinct across the A/B chain: A,B,A,B plus P = 5 atoms.
  EXPECT_EQ(e2->body().size(), 5u);
  // The chain must stay connected: count distinct variables = 2 (head) +
  // chain interior. A(X,Z) B(Z,Z1) A(Z1,?) B(?,?') P(?',Y).
  EXPECT_EQ(e2->Variables().size(), 6u);
}

TEST_F(ExpansionTest, UnfoldOnceOutOfRange) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  EXPECT_FALSE(UnfoldOnce(f.rule(), 5, f.rule(), 1, &symbols_).ok());
  EXPECT_FALSE(UnfoldOnce(f.rule(), -1, f.rule(), 1, &symbols_).ok());
}

TEST_F(ExpansionTest, UnfoldOnceWithNonMatchingDefinition) {
  LinearRecursiveRule f = MustFormula("P(X, Y) :- A(X, Z), P(Z, Y).");
  auto def = ParseRule("Q(X) :- R(X).", &symbols_);
  ASSERT_TRUE(def.ok());
  EXPECT_FALSE(UnfoldOnce(f.rule(), 1, *def, 1, &symbols_).ok());
}

}  // namespace
}  // namespace recur::datalog
