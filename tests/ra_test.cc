#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "ra/database.h"
#include "ra/operators.h"
#include "ra/relation.h"

namespace recur::ra {
namespace {

Relation Make(int arity, std::initializer_list<Tuple> rows) {
  Relation r(arity);
  for (const Tuple& t : rows) r.Insert(t);
  return r;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({9, 9}));
}

TEST(RelationTest, InsertRejectsWrongArity) {
  Relation r(2);
  EXPECT_FALSE(r.Insert({1}));
  EXPECT_FALSE(r.Insert({1, 2, 3}));
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, ColumnIndexAfterMutation) {
  Relation r(2);
  r.Insert({1, 10});
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 1u);
  r.Insert({1, 11});  // invalidates the index
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 2u);
  EXPECT_EQ(r.RowsWithValue(0, 2).size(), 0u);
  EXPECT_EQ(r.RowsWithValue(5, 1).size(), 0u);  // bad column
}

TEST(RelationTest, ColumnValues) {
  Relation r = Make(2, {{1, 10}, {1, 11}, {2, 10}});
  EXPECT_EQ(r.ColumnValues(0).size(), 2u);
  EXPECT_EQ(r.ColumnValues(1).size(), 2u);
}

TEST(RelationTest, CopyDropsNothing) {
  Relation r = Make(2, {{1, 2}, {3, 4}});
  Relation copy = r;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_TRUE(copy.Contains({3, 4}));
  copy.Insert({5, 6});
  EXPECT_EQ(r.size(), 2u);  // deep copy
}

TEST(RelationTest, ToStringSorted) {
  Relation r = Make(2, {{3, 4}, {1, 2}});
  EXPECT_EQ(r.ToString(), "{(1,2), (3,4)}");
  EXPECT_EQ(Relation(2).ToString(), "{}");
}

TEST(RelationTest, ZeroArity) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(OperatorsTest, Select) {
  Relation r = Make(2, {{1, 2}, {1, 3}, {2, 3}});
  auto s = Select(r, 0, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_FALSE(Select(r, 7, 1).ok());
}

TEST(OperatorsTest, SelectIn) {
  Relation r = Make(2, {{1, 2}, {2, 3}, {3, 4}});
  auto s = SelectIn(r, 0, ValueSet{1, 3});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  // Large value set takes the scan path.
  ValueSet big;
  for (int i = 0; i < 100; ++i) big.insert(i);
  auto s2 = SelectIn(r, 0, big);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->size(), 3u);
}

TEST(OperatorsTest, Project) {
  Relation r = Make(3, {{1, 2, 3}, {1, 2, 4}});
  auto p = Project(r, {1, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->arity(), 2);
  EXPECT_EQ(p->size(), 1u);  // duplicates removed
  EXPECT_TRUE(p->Contains({2, 1}));
  EXPECT_FALSE(Project(r, {4}).ok());
}

TEST(OperatorsTest, HashJoinMatchesNestedLoop) {
  Relation l = Make(2, {{1, 2}, {2, 3}, {3, 4}});
  Relation r = Make(2, {{2, 10}, {3, 11}, {3, 12}});
  auto hash = Join(l, r, {{1, 0}});
  auto nested = JoinNestedLoop(l, r, {{1, 0}});
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hash->ToString(), nested->ToString());
  EXPECT_EQ(hash->arity(), 3);  // l cols + non-join r col
  EXPECT_TRUE(hash->Contains({1, 2, 10}));
  EXPECT_TRUE(hash->Contains({2, 3, 11}));
  EXPECT_TRUE(hash->Contains({2, 3, 12}));
  EXPECT_EQ(hash->size(), 3u);
}

TEST(OperatorsTest, JoinMultipleColumns) {
  Relation l = Make(2, {{1, 2}, {1, 3}});
  Relation r = Make(2, {{1, 2}, {1, 9}});
  auto j = Join(l, r, {{0, 0}, {1, 1}});
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->size(), 1u);
  EXPECT_TRUE(j->Contains({1, 2}));
  EXPECT_FALSE(Join(l, r, {}).ok());
}

TEST(OperatorsTest, TwoColumnKeyJoinMatchesNestedLoop) {
  Relation l = Make(3, {{1, 2, 7}, {1, 3, 8}, {2, 2, 9}, {4, 4, 1}});
  Relation r = Make(3, {{1, 2, 100}, {1, 2, 101}, {2, 2, 102}, {1, 3, 103}});
  auto hash = Join(l, r, {{0, 0}, {1, 1}});
  auto nested = JoinNestedLoop(l, r, {{0, 0}, {1, 1}});
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hash->ToString(), nested->ToString());
  EXPECT_EQ(hash->size(), 4u);
  EXPECT_TRUE(hash->Contains({1, 2, 7, 100}));
  EXPECT_TRUE(hash->Contains({1, 2, 7, 101}));
  EXPECT_TRUE(hash->Contains({1, 3, 8, 103}));
  EXPECT_TRUE(hash->Contains({2, 2, 9, 102}));
}

TEST(OperatorsTest, ThreeColumnKeyJoinMatchesNestedLoop) {
  Relation l(4);
  Relation r(4);
  // Rows agree pairwise on every 2-column prefix but differ on the third
  // key column, so a first-pair-only hash would flood candidates.
  for (Value i = 0; i < 6; ++i) {
    l.Insert({1, 2, i, 50 + i});
    r.Insert({1, 2, i % 3, 90 + i});
  }
  auto hash = Join(l, r, {{0, 0}, {1, 1}, {2, 2}});
  auto nested = JoinNestedLoop(l, r, {{0, 0}, {1, 1}, {2, 2}});
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hash->ToString(), nested->ToString());
  EXPECT_EQ(hash->size(), 6u);  // each key 0..2 appears twice on the right
}

TEST(OperatorsTest, CollisionHeavyMultiColumnJoin) {
  // All rows share the same first join column, the worst case for the old
  // first-pair hash + residual scan; results must still be exact.
  Relation l(3);
  Relation r(3);
  for (Value i = 0; i < 40; ++i) {
    l.Insert({7, i, 1000 + i});
    r.Insert({7, i % 10, 2000 + i});
  }
  auto hash = Join(l, r, {{0, 0}, {1, 1}});
  auto nested = JoinNestedLoop(l, r, {{0, 0}, {1, 1}});
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(hash->ToString(), nested->ToString());
  // 10 distinct (7, i) keys on the left match 4 right rows each.
  EXPECT_EQ(hash->size(), 40u);
}

TEST(OperatorsTest, MultiColumnSemiJoin) {
  Relation l = Make(3, {{1, 2, 3}, {1, 2, 4}, {1, 9, 5}, {2, 2, 6}});
  Relation r = Make(2, {{1, 2}, {2, 9}});
  auto s = SemiJoin(l, r, {{0, 0}, {1, 1}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_TRUE(s->Contains({1, 2, 3}));
  EXPECT_TRUE(s->Contains({1, 2, 4}));
}

TEST(RelationTest, RowsWithKeyFindsExactRows) {
  Relation rel = Make(3, {{1, 2, 3}, {1, 2, 4}, {1, 5, 6}, {2, 2, 3}});
  const Value key[] = {1, 2};
  const auto& rows = rel.RowsWithKey({0, 1}, key);
  // Candidates are a superset; verify and count the true matches.
  int matches = 0;
  for (int row : rows) {
    TupleRef t = rel.rows()[row];
    if (t[0] == 1 && t[1] == 2) ++matches;
  }
  EXPECT_EQ(matches, 2);
  const Value absent[] = {9, 9};
  EXPECT_TRUE(rel.RowsWithKey({0, 1}, absent).empty());
}

TEST(RelationTest, RowsWithKeyMaintainedAcrossInserts) {
  Relation rel(2);
  rel.Insert({1, 1});
  const Value key[] = {1, 1};
  EXPECT_EQ(rel.RowsWithKey({0, 1}, key).size(), 1u);
  const size_t builds = rel.index_rebuilds();
  // Growing the relation must extend the composite index incrementally,
  // not rebuild it.
  for (Value i = 2; i < 30; ++i) rel.Insert({1, i});
  const Value key2[] = {1, 17};
  EXPECT_EQ(rel.RowsWithKey({0, 1}, key2).size(), 1u);
  EXPECT_EQ(rel.index_rebuilds(), builds);
}

TEST(RelationTest, RowsWithKeyFallsBackPastIndexCap) {
  // Probing more distinct column sets than kMaxMultiIndexes must degrade
  // to a (correct) candidate superset, never to a wrong answer.
  Relation rel(4);
  for (Value i = 0; i < 8; ++i) rel.Insert({i % 2, i % 3, i, i + 10});
  const std::vector<std::vector<int>> column_sets = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
      {0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}};
  for (const auto& cols : column_sets) {
    TupleRef want = rel.rows()[5];
    std::vector<Value> key;
    for (int c : cols) key.push_back(want[c]);
    bool found = false;
    for (int row : rel.RowsWithKey(cols, key.data())) {
      TupleRef t = rel.rows()[row];
      bool match = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (t[cols[i]] != key[i]) match = false;
      }
      if (match && t == want) found = true;
    }
    EXPECT_TRUE(found) << "column set starting at " << cols[0];
  }
}

TEST(OperatorsTest, SemiJoin) {
  Relation l = Make(2, {{1, 2}, {2, 3}});
  Relation r = Make(1, {{2}});
  auto s = SemiJoin(l, r, {{1, 0}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_TRUE(s->Contains({1, 2}));
}

TEST(OperatorsTest, UnionDifference) {
  Relation a = Make(1, {{1}, {2}});
  Relation b = Make(1, {{2}, {3}});
  auto u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  auto d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "{(1)}");
  EXPECT_FALSE(Union(a, Make(2, {})).ok());
  EXPECT_FALSE(Difference(a, Make(2, {})).ok());
}

TEST(OperatorsTest, ProductAndExists) {
  Relation a = Make(1, {{1}, {2}});
  Relation b = Make(1, {{10}});
  Relation p = Product(a, b);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains({1, 10}));
  EXPECT_TRUE(Exists(p));
  EXPECT_FALSE(Exists(Relation(1)));
}

TEST(OperatorsTest, Step) {
  Relation edge = Make(2, {{1, 2}, {2, 3}, {2, 4}});
  auto next = Step(edge, 0, 1, ValueSet{1, 2});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->size(), 3u);  // 2, 3, 4
  auto back = Step(edge, 1, 0, ValueSet{2});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, (ValueSet{1}));
}

TEST(OperatorsTest, FromValues) {
  Relation r = FromValues(ValueSet{5, 6});
  EXPECT_EQ(r.arity(), 1);
  EXPECT_EQ(r.size(), 2u);
}

TEST(DatabaseTest, GetOrCreateAndArityConflict) {
  Database db;
  auto r1 = db.GetOrCreate(1, 2);
  ASSERT_TRUE(r1.ok());
  (*r1)->Insert({1, 2});
  EXPECT_FALSE(db.GetOrCreate(1, 3).ok());
  EXPECT_NE(db.Find(1), nullptr);
  EXPECT_EQ(db.Find(99), nullptr);
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, LoadFactsFromProgram) {
  SymbolTable symbols;
  auto program = datalog::ParseProgram(
      "Edge(a, b).\nEdge(b, c).\nP(X, Y) :- Edge(X, Y).", &symbols);
  ASSERT_TRUE(program.ok());
  Database db;
  ASSERT_TRUE(db.LoadFacts(*program).ok());
  const Relation* edge = db.Find(symbols.Lookup("Edge"));
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
  EXPECT_EQ(db.ActiveDomainSize(), 3u);  // a, b, c
}

TEST(DatabaseTest, LoadFactsRejectsNonGround) {
  SymbolTable symbols;
  auto program = datalog::ParseProgram("Edge(a, X).", &symbols);
  ASSERT_TRUE(program.ok());
  Database db;
  EXPECT_FALSE(db.LoadFacts(*program).ok());
}

}  // namespace
}  // namespace recur::ra
