// End-to-end integration tests: program text in, answers out, across the
// whole pipeline (parser -> facts -> classifier -> plan -> execution),
// plus cross-engine agreement on shared scenarios.

#include <gtest/gtest.h>

#include "catalog/paper_examples.h"
#include "datalog/parser.h"
#include "eval/naive.h"
#include "eval/plan_generator.h"
#include "eval/seminaive.h"
#include "graph/render.h"
#include "graph/resolution_graph.h"
#include "ra/database.h"

namespace recur {
namespace {

/// Parses a program containing facts, one recursive rule, one exit rule
/// and one query; answers the query with the requested engine.
class Pipeline {
 public:
  explicit Pipeline(const char* text) {
    auto program = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = *program;
    EXPECT_TRUE(edb_.LoadFacts(program_).ok());
    EXPECT_EQ(program_.queries().size(), 1u);
    query_ = eval::Query::FromAtom(program_.queries()[0]);

    for (const datalog::Rule& rule : program_.rules()) {
      if (rule.IsFact()) continue;
      if (rule.IsRecursive()) {
        auto f = datalog::LinearRecursiveRule::Create(rule);
        EXPECT_TRUE(f.ok()) << f.status();
        formula_ = *f;
        has_formula_ = true;
      } else {
        exit_ = rule;
      }
    }
  }

  ra::Relation PlanAnswer(eval::Strategy* strategy_out = nullptr) {
    eval::PlanGenerator generator(&symbols_);
    auto plan = generator.Plan(formula_, exit_);
    EXPECT_TRUE(plan.ok()) << plan.status();
    if (strategy_out != nullptr) *strategy_out = plan->strategy();
    auto answers = plan->Execute(query_, edb_);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return answers.ok() ? *answers : ra::Relation(query_.arity());
  }

  ra::Relation SemiNaive() {
    datalog::Program rules_only;
    rules_only.AddRule(formula_.rule());
    rules_only.AddRule(exit_);
    auto answers = eval::SemiNaiveAnswer(rules_only, edb_, query_);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return answers.ok() ? *answers : ra::Relation(query_.arity());
  }

  SymbolTable symbols_;
  datalog::Program program_;
  ra::Database edb_;
  eval::Query query_;
  datalog::LinearRecursiveRule formula_;
  datalog::Rule exit_;
  bool has_formula_ = false;
};

TEST(IntegrationTest, AncestorScenario) {
  Pipeline p(R"(
    % Genealogy: who are tom's ancestors' descendants?
    Par(tom, bob).    Par(tom, liz).
    Par(bob, ann).    Par(bob, pat).
    Par(pat, jim).
    Anc(X, Y) :- Par(X, Y).
    Anc(X, Y) :- Par(X, Z), Anc(Z, Y).
    ?- Anc(tom, Y).
  )");
  ASSERT_TRUE(p.has_formula_);
  eval::Strategy strategy;
  ra::Relation answers = p.PlanAnswer(&strategy);
  EXPECT_EQ(strategy, eval::Strategy::kStableCompiled);
  EXPECT_EQ(answers.size(), 5u);  // bob liz ann pat jim
  EXPECT_EQ(answers.ToString(), p.SemiNaive().ToString());
}

TEST(IntegrationTest, ReverseAncestorQueryUsesBackwardClosure) {
  Pipeline p(R"(
    Par(a, b).  Par(b, c).  Par(c, d).
    Anc(X, Y) :- Par(X, Y).
    Anc(X, Y) :- Par(X, Z), Anc(Z, Y).
    ?- Anc(X, d).
  )");
  ra::Relation answers = p.PlanAnswer();
  EXPECT_EQ(answers.size(), 3u);  // a, b, c reach d
  EXPECT_EQ(answers.ToString(), p.SemiNaive().ToString());
}

TEST(IntegrationTest, BooleanQueryFullyBound) {
  Pipeline p(R"(
    Par(a, b).  Par(b, c).
    Anc(X, Y) :- Par(X, Y).
    Anc(X, Y) :- Par(X, Z), Anc(Z, Y).
    ?- Anc(a, c).
  )");
  ra::Relation answers = p.PlanAnswer();
  EXPECT_EQ(answers.size(), 1u);  // yes
  EXPECT_EQ(answers.ToString(), p.SemiNaive().ToString());
}

TEST(IntegrationTest, TwoChainScenario) {
  // (s2a) shape with real data: forward links and backward labels.
  Pipeline p(R"(
    Next(n1, n2).  Next(n2, n3).
    Label(l1, l0). Label(l2, l1). Label(l3, l2).
    Pair(n1, l0).  Pair(n2, l1).  Pair(n3, l2). Pair(n3, l3).
    P(X, Y) :- Pair(X, Y).
    P(X, Y) :- Next(X, Z), P(Z, U), Label(U, Y).
    ?- P(n1, Y).
  )");
  ra::Relation answers = p.PlanAnswer();
  EXPECT_EQ(answers.ToString(), p.SemiNaive().ToString());
  // Level 0 gives l0; level 1: Next(n1,n2), Pair(n2,l1), Label(l1,l0);
  // level 2: Next^2 to n3, Pair(n3,l2), Label twice back to l0 — answers
  // stay synchronized per level.
  EXPECT_GE(answers.size(), 2u);
}

TEST(IntegrationTest, BoundedViewCompilesAway) {
  Pipeline p(R"(
    Conf(c1). Conf(c2).
    Slot(s1, t1). Slot(s2, t2).
    Base(x1, y1).
    V(X, Y) :- Base(X, Y).
    V(X, Y) :- Conf(Y), Slot(X, Y1), V(X1, Y1).
    ?- V(s1, Y).
  )");
  eval::Strategy strategy;
  ra::Relation answers = p.PlanAnswer(&strategy);
  EXPECT_EQ(strategy, eval::Strategy::kBoundedExpansion);
  EXPECT_EQ(answers.ToString(), p.SemiNaive().ToString());
}

TEST(IntegrationTest, NaiveSemiNaiveCompiledAllAgree) {
  const char* text = R"(
    Par(a, b). Par(b, c). Par(c, a).   % cyclic genealogy (time travel)
    Anc(X, Y) :- Par(X, Y).
    Anc(X, Y) :- Par(X, Z), Anc(Z, Y).
    ?- Anc(a, Y).
  )";
  Pipeline p(text);
  ra::Relation compiled = p.PlanAnswer();
  ra::Relation semi = p.SemiNaive();
  datalog::Program rules_only;
  rules_only.AddRule(p.formula_.rule());
  rules_only.AddRule(p.exit_);
  auto naive = eval::NaiveAnswer(rules_only, p.edb_, p.query_);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(compiled.ToString(), semi.ToString());
  EXPECT_EQ(naive->ToString(), semi.ToString());
  EXPECT_EQ(compiled.size(), 3u);  // a reaches a, b, c on the cycle
}

TEST(IntegrationTest, ResolutionGraphRendersAllExamples) {
  // Smoke coverage: G_3 of every catalog example renders without error
  // and grows monotonically.
  for (const catalog::PaperExample& e : catalog::PaperExamples()) {
    SymbolTable symbols;
    auto f = catalog::ParseExample(e, &symbols);
    ASSERT_TRUE(f.ok());
    auto g1 = graph::ResolutionGraph::Build(*f, 1);
    auto g3 = graph::ResolutionGraph::Build(*f, 3);
    ASSERT_TRUE(g1.ok()) << e.id;
    ASSERT_TRUE(g3.ok()) << e.id;
    EXPECT_GE(g3->graph().num_edges(), g1->graph().num_edges()) << e.id;
    EXPECT_FALSE(graph::ToAscii(g3->graph(), symbols).empty()) << e.id;
  }
}

}  // namespace
}  // namespace recur
