// Incremental view maintenance (eval/maintenance.h): MaintainDeltas must
// leave the resident IDB equal to a from-scratch fixpoint over the new
// extensional state — for bootstrap loads, pure insert batches, pure
// delete batches (DRed overestimate + rederive), and mixed batches — and
// must obey the same governance (cancel, deadline, budgets, fault sites)
// as the fixpoint engines.

#include "eval/maintenance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "differential_corpus.h"
#include "eval/plan/plan_cache.h"
#include "eval/seminaive.h"
#include "util/fault_injection.h"
#include "workload/formula_generator.h"
#include "workload/generator.h"

namespace recur {
namespace {

using corpus::EdbKind;

datalog::Program ParseProgram(const std::string& text,
                              SymbolTable* symbols) {
  auto program = datalog::ParseProgram(text, symbols);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

/// Bootstraps a resident IDB from `edb` through the maintenance path
/// itself: empty resident state + the whole EDB as an insert batch.
Status Bootstrap(const datalog::Program& program, const ra::Database& edb,
                 ra::Database* idb,
                 const eval::MaintenanceOptions& options = {},
                 eval::EvalStats* stats = nullptr) {
  eval::EdbDeltas deltas;
  for (const auto& [pred, rel] : edb.relations()) {
    eval::EdbDelta d(rel->arity());
    d.inserts.InsertAll(*rel);
    deltas.emplace(pred, std::move(d));
  }
  ra::Database empty;
  return eval::MaintainDeltas(program, empty, edb, deltas, idb, options,
                              stats);
}

std::string IdbToString(const ra::Database& idb, SymbolId pred) {
  const ra::Relation* rel = idb.Find(pred);
  return rel == nullptr ? std::string("{}") : rel->ToString();
}

TEST(MaintenanceTest, BootstrapMatchesFixpoint) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(7);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(12));

  ra::Database idb;
  ASSERT_TRUE(Bootstrap(program, edb, &idb).ok());
  auto want = eval::SemiNaiveEvaluate(program, edb);
  ASSERT_TRUE(want.ok());
  SymbolId a = symbols.Lookup("A");
  EXPECT_EQ(IdbToString(idb, a), want->at(a).ToString());
}

TEST(MaintenanceTest, InsertBatchExtendsClosure) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  SymbolId e = symbols.Lookup("E");
  SymbolId a = symbols.Lookup("A");
  ra::Database edb;
  // Two disconnected chains; the batch inserts the bridging edge.
  auto* rel = *edb.GetOrCreate(e, 2);
  for (ra::Value v = 0; v < 5; ++v) rel->Insert({v, v + 1});
  for (ra::Value v = 10; v < 15; ++v) rel->Insert({v, v + 1});

  ra::Database idb;
  ASSERT_TRUE(Bootstrap(program, edb, &idb).ok());

  ra::Database new_edb = edb;  // copy-on-write fork
  new_edb.FindMutable(e)->Insert({5, 10});
  eval::EdbDeltas deltas;
  eval::EdbDelta d(2);
  d.inserts.Insert({5, 10});
  deltas.emplace(e, std::move(d));
  ASSERT_TRUE(
      eval::MaintainDeltas(program, edb, new_edb, deltas, &idb).ok());

  auto want = eval::SemiNaiveEvaluate(program, new_edb);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(IdbToString(idb, a), want->at(a).ToString());
  // The bridge connects every left-chain node to every right-chain node.
  EXPECT_TRUE(idb.Find(a)->Contains({0, 15}));
}

TEST(MaintenanceTest, DeleteBatchShrinksClosureWithRederivation) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  SymbolId e = symbols.Lookup("E");
  SymbolId a = symbols.Lookup("A");
  ra::Database edb;
  auto* rel = *edb.GetOrCreate(e, 2);
  // A diamond plus a tail: deleting one diamond edge must keep the pairs
  // that the other path still derives (the rederivation face of DRed).
  rel->Insert({0, 1});
  rel->Insert({0, 2});
  rel->Insert({1, 3});
  rel->Insert({2, 3});
  rel->Insert({3, 4});

  ra::Database idb;
  ASSERT_TRUE(Bootstrap(program, edb, &idb).ok());
  ASSERT_TRUE(idb.Find(a)->Contains({0, 4}));

  ra::Database new_edb = edb;
  ASSERT_TRUE(new_edb.FindMutable(e)->Erase({0, 1}));
  eval::EdbDeltas deltas;
  eval::EdbDelta d(2);
  d.deletes.Insert({0, 1});
  deltas.emplace(e, std::move(d));
  ASSERT_TRUE(
      eval::MaintainDeltas(program, edb, new_edb, deltas, &idb).ok());

  auto want = eval::SemiNaiveEvaluate(program, new_edb);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(IdbToString(idb, a), want->at(a).ToString());
  EXPECT_FALSE(idb.Find(a)->Contains({0, 1}));
  // (0,3), (0,4) survive through the 0->2->3 path.
  EXPECT_TRUE(idb.Find(a)->Contains({0, 3}));
  EXPECT_TRUE(idb.Find(a)->Contains({0, 4}));
}

TEST(MaintenanceTest, DeletingRecursiveBaseFactPropagates) {
  // EDB facts stored under the recursive predicate itself (the paper's
  // usual setup: A holds both base and derived tuples).
  SymbolTable symbols;
  datalog::Program program =
      ParseProgram("A(X,Y) :- A(X,Z), A(Z,Y).", &symbols);
  SymbolId a = symbols.Lookup("A");
  ra::Database edb;
  auto* rel = *edb.GetOrCreate(a, 2);
  for (ra::Value v = 0; v < 6; ++v) rel->Insert({v, v + 1});

  ra::Database idb;
  ASSERT_TRUE(Bootstrap(program, edb, &idb).ok());
  ASSERT_TRUE(idb.Find(a)->Contains({0, 6}));

  ra::Database new_edb = edb;
  ASSERT_TRUE(new_edb.FindMutable(a)->Erase({3, 4}));
  eval::EdbDeltas deltas;
  eval::EdbDelta d(2);
  d.deletes.Insert({3, 4});
  deltas.emplace(a, std::move(d));
  ASSERT_TRUE(
      eval::MaintainDeltas(program, edb, new_edb, deltas, &idb).ok());

  auto want = eval::SemiNaiveEvaluate(program, new_edb);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(IdbToString(idb, a), want->at(a).ToString());
  EXPECT_FALSE(idb.Find(a)->Contains({0, 6}));
  EXPECT_TRUE(idb.Find(a)->Contains({0, 3}));
  EXPECT_TRUE(idb.Find(a)->Contains({4, 6}));
}

// The heart of the satellite: across generated programs x EDB shapes,
// random insert/delete streams maintained incrementally must match
// from-scratch recomputation byte-identically after every batch.
TEST(MaintenanceTest, RandomStreamsMatchRecomputation) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    SymbolTable symbols;
    workload::FormulaGenerator gen(seed, corpus::DifferentialOptions());
    auto g = gen.Next(&symbols);
    ASSERT_TRUE(g.ok()) << g.status();
    datalog::Program program;
    program.AddRule(g->formula.rule());
    program.AddRule(g->exit);
    SymbolId pred = g->formula.recursive_predicate();
    const std::string label = g->formula.rule().ToString(symbols);

    for (EdbKind kind : {EdbKind::kChain, EdbKind::kRandomGraph}) {
      ra::Database edb;
      corpus::LoadEdb(g->formula, g->exit, kind, seed * 17 + 3, &edb);

      ra::Database idb;
      eval::plan::PlanCache cache;
      eval::MaintenanceOptions options;
      options.plan_cache = &cache;
      ASSERT_TRUE(Bootstrap(program, edb, &idb, options).ok()) << label;

      std::mt19937_64 rng(seed * 1000003ull + static_cast<int>(kind));
      for (int batch = 0; batch < 6; ++batch) {
        // Build a mixed batch against every EDB relation: delete one
        // existing row, insert one fresh row.
        eval::EdbDeltas deltas;
        ra::Database new_edb = edb;
        for (const auto& [p, rel] : edb.relations()) {
          if (rel->empty()) continue;
          eval::EdbDelta d(rel->arity());
          if (batch % 2 == 0) {
            ra::TupleRef victim =
                rel->rows()[rng() % rel->size()];
            d.deletes.Insert(victim);
            new_edb.FindMutable(p)->Erase(victim);
          }
          ra::Tuple fresh(rel->arity());
          for (auto& v : fresh) {
            v = static_cast<ra::Value>(rng() % 20);
          }
          if (!rel->Contains(ra::TupleRef(fresh)) &&
              !d.deletes.Contains(ra::TupleRef(fresh))) {
            d.inserts.Insert(ra::TupleRef(fresh));
            new_edb.FindMutable(p)->Insert(ra::TupleRef(fresh));
          }
          if (!d.empty()) deltas.emplace(p, std::move(d));
        }

        ASSERT_TRUE(eval::MaintainDeltas(program, edb, new_edb, deltas,
                                         &idb, options)
                        .ok())
            << label << " batch " << batch;
        auto want = eval::SemiNaiveEvaluate(program, new_edb);
        ASSERT_TRUE(want.ok()) << label;
        ASSERT_EQ(IdbToString(idb, pred), want->at(pred).ToString())
            << label << " diverged from recomputation at batch " << batch
            << " (EDB " << corpus::ToString(kind) << ")";
        edb = new_edb;
      }
      // Steady-state batches over a warm shared cache must be hitting it.
      EXPECT_GT(cache.stats().hits, 0u) << label;
    }
  }
}

TEST(MaintenanceTest, NoOpBatchTouchesNothing) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(3);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(8));
  ra::Database idb;
  ASSERT_TRUE(Bootstrap(program, edb, &idb).ok());
  const std::string before = IdbToString(idb, symbols.Lookup("A"));

  eval::EvalStats stats;
  ASSERT_TRUE(eval::MaintainDeltas(program, edb, edb, {}, &idb, {}, &stats)
                  .ok());
  EXPECT_EQ(IdbToString(idb, symbols.Lookup("A")), before);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(MaintenanceTest, CancelSurfacesAsCancelled) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(5);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(20));

  eval::ExecutionContext context;
  context.Cancel();
  eval::MaintenanceOptions options;
  options.context = &context;
  ra::Database idb;
  Status status = Bootstrap(program, edb, &idb, options);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCancelled()) << status;
}

TEST(MaintenanceTest, TupleBudgetSurfacesAsResourceExhausted) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(5);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(20));

  eval::MaintenanceOptions options;
  options.limits.max_total_tuples = 10;  // closure of a 20-chain is 210
  ra::Database idb;
  eval::EvalStats stats;
  Status status = Bootstrap(program, edb, &idb, options, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
  // Partial progress is visible, exactly like an over-budget fixpoint.
  EXPECT_GT(stats.total_tuples, 0u);
}

TEST(MaintenanceTest, MaxIterationsBoundsMaintenanceRounds) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(5);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(20));

  eval::MaintenanceOptions options;
  options.limits.max_iterations = 2;
  ra::Database idb;
  Status status = Bootstrap(program, edb, &idb, options);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
}

TEST(MaintenanceTest, FaultSiteFiresOnMaintenanceRounds) {
  SymbolTable symbols;
  datalog::Program program = ParseProgram(
      "A(X,Y) :- E(X,Y). A(X,Y) :- A(X,Z), E(Z,Y).", &symbols);
  ra::Database edb;
  workload::Generator gen(5);
  (*edb.GetOrCreate(symbols.Lookup("E"), 2))->InsertAll(gen.Chain(10));

  util::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "maintenance fault";
  spec.trigger_on_hit = 2;
  util::ScopedFault fault("eval.maintain.round", spec);

  ra::Database idb;
  Status status = Bootstrap(program, edb, &idb);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "maintenance fault");
  EXPECT_GE(util::FaultInjector::Instance().HitCount("eval.maintain.round"),
            2);
}

}  // namespace
}  // namespace recur
