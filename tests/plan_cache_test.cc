// Unit tests for the PlanCache: structural keying, hit/miss accounting,
// cardinality-drift invalidation, and the ablation (disabled) mode.

#include <gtest/gtest.h>

#include <optional>

#include "datalog/parser.h"
#include "eval/plan/plan_cache.h"
#include "eval/plan/planner.h"
#include "ra/relation.h"
#include "util/symbol_table.h"

namespace recur {
namespace {

using eval::plan::PlanCache;
using eval::plan::PlannerOptions;

class PlanCacheTest : public ::testing::Test {
 protected:
  void Load(const char* name, int arity, int rows) {
    SymbolId id = symbols_.Intern(name);
    ra::Relation rel(arity);
    for (int i = 0; i < rows; ++i) {
      ra::Value* dst = rel.StageRow();
      for (int c = 0; c < arity; ++c) dst[c] = i + c;
      rel.CommitStagedRow();
    }
    relations_.insert_or_assign(id, std::move(rel));
  }

  eval::PlanRelationLookup Lookup() {
    return [this](SymbolId pred) -> const ra::Relation* {
      auto it = relations_.find(pred);
      return it == relations_.end() ? nullptr : &it->second;
    };
  }

  datalog::Rule Rule(const char* text) {
    auto rule = datalog::ParseRule(text, &symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }

  SymbolTable symbols_;
  std::unordered_map<SymbolId, ra::Relation> relations_;
};

TEST_F(PlanCacheTest, SecondLookupHits) {
  Load("A", 2, 10);
  Load("B", 2, 10);
  PlanCache cache;
  datalog::Rule rule = Rule("P(X, Y) :- A(X, Z), B(Z, Y).");
  auto first = cache.GetOrCompile(rule, Lookup(), {});
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile(rule, Lookup(), {});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "expected the same plan object";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PlanCacheTest, StructurallyIdenticalRulesShareOnePlan) {
  Load("A", 2, 10);
  PlanCache cache;
  // Two distinct Rule objects with identical content — the compiled
  // evaluators synthesize level rules per call, so keys must be
  // content-based, not address-based.
  datalog::Rule first = Rule("P(X, Y) :- A(X, Y).");
  datalog::Rule second = Rule("P(X, Y) :- A(X, Y).");
  ASSERT_TRUE(cache.GetOrCompile(first, Lookup(), {}).ok());
  ASSERT_TRUE(cache.GetOrCompile(second, Lookup(), {}).ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PlanCacheTest, DeltaPositionAndBindingSignatureAreSeparatePlans) {
  Load("A", 2, 10);
  Load("B", 2, 10);
  PlanCache cache;
  datalog::Rule rule = Rule("P(X, Y) :- A(X, Z), B(Z, Y).");

  PlannerOptions delta0;
  delta0.override_index = 0;
  ra::Relation delta(2);
  delta0.override_relation = &delta;
  PlannerOptions delta1 = delta0;
  delta1.override_index = 1;

  std::unordered_map<SymbolId, ra::Value> bindings{
      {symbols_.Intern("X"), 3}};
  PlannerOptions bound;
  bound.bindings = &bindings;

  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), {}).ok());
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), delta0).ok());
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), delta1).ok());
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), bound).ok());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Binding *values* are execution inputs, not part of the signature.
  bindings[symbols_.Intern("X")] = 99;
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), bound).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PlanCacheTest, CardinalityDriftInvalidates) {
  Load("A", 2, 8);
  PlanCache cache(PlanCache::Options{.invalidation_ratio = 4.0});
  datalog::Rule rule = Rule("P(X, Y) :- A(X, Y).");
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), {}).ok());

  // Small growth stays under the (8+1)*4 threshold: still a hit.
  Load("A", 2, 20);
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), {}).ok());
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // 20 -> 200 exceeds the ratio: recompile.
  Load("A", 2, 200);
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), {}).ok());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Shrinking past the ratio invalidates too (both directions).
  Load("A", 2, 10);
  ASSERT_TRUE(cache.GetOrCompile(rule, Lookup(), {}).ok());
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST_F(PlanCacheTest, DisabledCacheAlwaysRecompiles) {
  Load("A", 2, 10);
  PlanCache cache(PlanCache::Options{.enabled = false});
  datalog::Rule rule = Rule("P(X, Y) :- A(X, Y).");
  auto first = cache.GetOrCompile(rule, Lookup(), {});
  auto second = cache.GetOrCompile(rule, Lookup(), {});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_TRUE(cache.Plans().empty());
}

TEST_F(PlanCacheTest, PlansSnapshotListsCachedPlans) {
  Load("A", 2, 10);
  Load("B", 2, 10);
  PlanCache cache;
  ASSERT_TRUE(
      cache.GetOrCompile(Rule("P(X, Y) :- A(X, Y)."), Lookup(), {}).ok());
  ASSERT_TRUE(
      cache.GetOrCompile(Rule("Q(X, Y) :- B(X, Y)."), Lookup(), {}).ok());
  EXPECT_EQ(cache.Plans().size(), 2u);
}

}  // namespace
}  // namespace recur
