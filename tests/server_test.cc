// Resident deductive server (server/database.h): epoch snapshots must be
// consistent and isolated from writers, incremental maintenance must keep
// every query route equal to a from-scratch fixpoint over the current
// EDB, the classification dispatch table must pick the paper-class fast
// paths (bounded -> inline with zero fixpoint iterations, strongly stable
// -> iterate-selection), and governance + fault sites must apply to
// server traffic exactly as to standalone fixpoints.

#include "server/database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace recur {
namespace {

using server::RouteKind;

// One program exercising every dispatch route:
//   Tc   - A1, strongly stable            -> iterate-selection
//   Bnd  - class D, bounded (rank 2)      -> bounded-inline
//   Wild - non-linear recursion           -> resident-filter
//   View - non-recursive, reads IDB Tc    -> bounded-inline over the
//                                            maintained relation
constexpr char kProgram[] =
    "Tc(X, Y) :- E(X, Y).\n"
    "Tc(X, Y) :- A(X, Z), Tc(Z, Y).\n"
    "Bnd(X, Y, Z, U) :- E4(X, Y, Z, U).\n"
    "Bnd(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), Bnd(Z, Y1, Z1, U1).\n"
    "Wild(X, Y) :- E(X, Y).\n"
    "Wild(X, Y) :- Wild(X, Z), Wild(Z, Y).\n"
    "View(X) :- Tc(X, Y), Goal(Y).\n";

class ServerTest : public ::testing::Test {
 protected:
  datalog::Program Parse(const std::string& text) {
    auto program = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(program.ok()) << program.status();
    return *program;
  }

  /// The shared EDB of kProgram: E/A/B/C binary, E4 arity 4, Goal unary.
  ra::Database MakeEdb(uint64_t seed) {
    workload::Generator gen(seed);
    ra::Database edb;
    (*edb.GetOrCreate(symbols_.Intern("E"), 2))->InsertAll(gen.Chain(8));
    (*edb.GetOrCreate(symbols_.Intern("A"), 2))
        ->InsertAll(gen.RandomGraph(10, 18));
    (*edb.GetOrCreate(symbols_.Intern("B"), 2))
        ->InsertAll(gen.RandomGraph(10, 18));
    (*edb.GetOrCreate(symbols_.Intern("C"), 2))
        ->InsertAll(gen.RandomGraph(10, 18));
    (*edb.GetOrCreate(symbols_.Intern("E4"), 4))
        ->InsertAll(gen.RandomRows(4, 10, 25));
    ra::Relation* goal = *edb.GetOrCreate(symbols_.Intern("Goal"), 1);
    goal->Insert({3});
    goal->Insert({6});
    return edb;
  }

  std::unique_ptr<server::Database> MakeServer(uint64_t seed,
                                               server::ServerOptions options =
                                                   {}) {
    auto db = server::Database::Create(Parse(kProgram), MakeEdb(seed),
                                       &symbols_, options);
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(*db);
  }

  eval::Query FreeQuery(const char* pred, int arity) {
    eval::Query q;
    q.pred = symbols_.Lookup(pred);
    q.bindings.assign(arity, std::nullopt);
    return q;
  }

  SymbolTable symbols_;
};

std::vector<ra::Tuple> SortedRows(const ra::Relation& rel) {
  std::vector<ra::Tuple> rows;
  rows.reserve(rel.size());
  for (ra::TupleRef row : rel.rows()) rows.push_back(row.ToTuple());
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Reference semantics: recompute the fixpoint from scratch and select.
std::vector<ra::Tuple> Recompute(const datalog::Program& program,
                                 const ra::Database& edb,
                                 const eval::Query& query) {
  auto idb = eval::SemiNaiveEvaluate(program, edb);
  EXPECT_TRUE(idb.ok()) << idb.status();
  auto it = idb->find(query.pred);
  if (it == idb->end()) return {};
  auto filtered = query.Filter(it->second);
  EXPECT_TRUE(filtered.ok()) << filtered.status();
  return SortedRows(*filtered);
}

TEST_F(ServerTest, DispatchTableRoutesByPaperClass) {
  auto db = MakeServer(7);
  const server::Route* tc = db->FindRoute(symbols_.Lookup("Tc"));
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->kind, RouteKind::kIterateSelection) << tc->detail;

  const server::Route* bnd = db->FindRoute(symbols_.Lookup("Bnd"));
  ASSERT_NE(bnd, nullptr);
  EXPECT_EQ(bnd->kind, RouteKind::kBoundedInline) << bnd->detail;
  EXPECT_EQ(bnd->rank, 2);
  EXPECT_EQ(bnd->inline_rules.size(), 3u);  // depths 0..rank

  const server::Route* wild = db->FindRoute(symbols_.Lookup("Wild"));
  ASSERT_NE(wild, nullptr);
  EXPECT_EQ(wild->kind, RouteKind::kResidentFilter) << wild->detail;

  const server::Route* view = db->FindRoute(symbols_.Lookup("View"));
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->kind, RouteKind::kBoundedInline) << view->detail;

  // EDB predicates have no dispatch row.
  EXPECT_EQ(db->FindRoute(symbols_.Lookup("E")), nullptr);

  const std::string summary = db->RoutingSummary();
  EXPECT_NE(summary.find("iterate-selection"), std::string::npos) << summary;
  EXPECT_NE(summary.find("bounded-inline"), std::string::npos) << summary;
  EXPECT_NE(summary.find("resident-filter"), std::string::npos) << summary;
}

TEST_F(ServerTest, BoundedPointQueryRunsZeroFixpointIterations) {
  auto db = MakeServer(11);
  // Bind the first position of every E4 row's first column in turn; each
  // point query must answer inline, with zero fixpoint iterations.
  ra::Database edb = MakeEdb(11);
  const ra::Relation* e4 = edb.Find(symbols_.Lookup("E4"));
  ASSERT_NE(e4, nullptr);
  datalog::Program program = Parse(kProgram);
  size_t checked = 0;
  for (ra::TupleRef row : e4->rows()) {
    eval::Query q = FreeQuery("Bnd", 4);
    q.bindings[0] = row[0];
    auto result = db->Query(q);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->route, RouteKind::kBoundedInline);
    EXPECT_EQ(result->stats.iterations, 0)
        << "bounded point query ran a fixpoint";
    EXPECT_EQ(SortedRows(result->rows), Recompute(program, edb, q));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(ServerTest, IterateSelectionMatchesRecomputation) {
  auto db = MakeServer(13);
  ra::Database edb = MakeEdb(13);
  datalog::Program program = Parse(kProgram);
  eval::Query q = FreeQuery("Tc", 2);
  q.bindings[0] = 0;  // chain root
  auto result = db->Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->route, RouteKind::kIterateSelection);
  EXPECT_EQ(SortedRows(result->rows), Recompute(program, edb, q));
}

TEST_F(ServerTest, ResidentFilterAnswersUnrestrictedClasses) {
  auto db = MakeServer(17);
  ra::Database edb = MakeEdb(17);
  datalog::Program program = Parse(kProgram);
  eval::Query q = FreeQuery("Wild", 2);
  auto result = db->Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->route, RouteKind::kResidentFilter);
  EXPECT_EQ(SortedRows(result->rows), Recompute(program, edb, q));

  // Queries on pure EDB predicates filter the extensional relation.
  eval::Query edb_q = FreeQuery("E", 2);
  edb_q.bindings[0] = 0;
  auto base = db->Query(edb_q);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_EQ(base->route, RouteKind::kResidentFilter);
  EXPECT_EQ(base->rows.size(), 1u);
}

TEST_F(ServerTest, NonRecursiveViewReadsMaintainedRelation) {
  auto db = MakeServer(19);
  ra::Database edb = MakeEdb(19);
  datalog::Program program = Parse(kProgram);
  eval::Query q = FreeQuery("View", 1);
  auto result = db->Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->route, RouteKind::kBoundedInline);
  EXPECT_EQ(result->stats.iterations, 0);
  EXPECT_EQ(SortedRows(result->rows), Recompute(program, edb, q));
}

TEST_F(ServerTest, SnapshotsAreIsolatedFromWriters) {
  auto db = MakeServer(23);
  SymbolId e = symbols_.Lookup("E");
  server::Database::Snapshot before = db->snapshot();
  const std::string edb_before = before.edb().Find(e)->ToString();
  const std::string idb_before =
      before.idb().Find(symbols_.Lookup("Tc"))->ToString();

  ASSERT_TRUE(db->Insert(e, {41, 42}).ok());
  ASSERT_TRUE(db->Insert(symbols_.Lookup("A"), {40, 41}).ok());

  // The pinned epoch still reads exactly what it read before the writes.
  EXPECT_EQ(before.epoch(), 0u);
  EXPECT_EQ(before.edb().Find(e)->ToString(), edb_before);
  EXPECT_EQ(before.idb().Find(symbols_.Lookup("Tc"))->ToString(), idb_before);

  server::Database::Snapshot after = db->snapshot();
  EXPECT_EQ(after.epoch(), 2u);
  EXPECT_TRUE(after.edb().Find(e)->Contains({41, 42}));
  // Exit rule: Tc(41,42) from E(41,42); recursion: Tc(40,42) via A(40,41).
  EXPECT_TRUE(after.idb().Find(symbols_.Lookup("Tc"))->Contains({41, 42}));
  EXPECT_TRUE(after.idb().Find(symbols_.Lookup("Tc"))->Contains({40, 42}));
}

TEST_F(ServerTest, StreamingWritesKeepEveryRouteFresh) {
  auto db = MakeServer(29);
  ra::Database edb = MakeEdb(29);  // shadow copy mutated in lockstep
  datalog::Program program = Parse(kProgram);
  SymbolId e = symbols_.Lookup("E");
  SymbolId a = symbols_.Lookup("A");
  SymbolId e4 = symbols_.Lookup("E4");

  workload::Generator gen(31);
  ra::Relation churn_e = gen.RandomGraph(8, 24);
  size_t step = 0;
  for (ra::TupleRef row : churn_e.rows()) {
    eval::EdbDeltas deltas;
    eval::EdbDelta de(2);
    if (step % 3 == 2 && !edb.Find(e)->empty()) {
      ra::Tuple victim = edb.Find(e)->rows()[step % edb.Find(e)->size()];
      de.deletes.Insert(victim);
      edb.FindMutable(e)->Erase(victim);
    } else {
      de.inserts.Insert(row);
      edb.FindMutable(e)->Insert(row);
    }
    deltas.emplace(e, std::move(de));
    if (step % 2 == 0) {
      eval::EdbDelta da(2);
      ra::Tuple extra = {static_cast<ra::Value>(step % 7),
                         static_cast<ra::Value>((step + 3) % 9)};
      da.inserts.Insert(extra);
      edb.FindMutable(a)->Insert(extra);
      deltas.emplace(a, std::move(da));
    }
    if (step % 4 == 3 && !edb.Find(e4)->empty()) {
      eval::EdbDelta d4(4);
      ra::Tuple victim = edb.Find(e4)->rows()[0];
      d4.deletes.Insert(victim);
      edb.FindMutable(e4)->Erase(victim);
      deltas.emplace(e4, std::move(d4));
    }
    ASSERT_TRUE(db->Apply(deltas).ok()) << "step " << step;

    if (step % 4 == 0) {
      for (const char* pred : {"Tc", "Bnd", "Wild", "View"}) {
        const int arity = pred == std::string("View")  ? 1
                          : pred == std::string("Bnd") ? 4
                                                       : 2;
        eval::Query q = FreeQuery(pred, arity);
        auto result = db->Query(q);
        ASSERT_TRUE(result.ok()) << pred << " step " << step << ": "
                                 << result.status();
        EXPECT_EQ(SortedRows(result->rows), Recompute(program, edb, q))
            << pred << " diverged at step " << step;
      }
    }
    ++step;
  }
  EXPECT_EQ(db->epoch(), step);
  // Steady-state batches reuse cached delta plans.
  EXPECT_GT(db->plan_cache_stats().hits, 0u);
}

TEST_F(ServerTest, FailedWritePublishesNothing) {
  auto db = MakeServer(37);
  SymbolId e = symbols_.Lookup("E");
  const uint64_t epoch = db->epoch();
  const std::string tc_before =
      db->snapshot().idb().Find(symbols_.Lookup("Tc"))->ToString();

  eval::ResourceLimits limits;
  limits.max_total_tuples = 1;  // any maintenance round breaches this
  eval::ExecutionContext ctx(limits);
  Status status = db->Insert(e, {50, 51}, &ctx);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;

  // The failed batch left no trace: same epoch, same resident state.
  EXPECT_EQ(db->epoch(), epoch);
  EXPECT_EQ(db->snapshot().idb().Find(symbols_.Lookup("Tc"))->ToString(),
            tc_before);
  EXPECT_FALSE(db->snapshot().edb().Find(e)->Contains({50, 51}));

  // The same write succeeds under the server's default (unlimited) budget.
  ASSERT_TRUE(db->Insert(e, {50, 51}).ok());
  EXPECT_EQ(db->epoch(), epoch + 1);
}

TEST_F(ServerTest, CancelledContextStopsQueries) {
  auto db = MakeServer(41);
  eval::ExecutionContext ctx;
  ctx.Cancel();
  auto result = db->Query(FreeQuery("Wild", 2), &ctx);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerTest, QueryFaultSiteFires) {
  auto db = MakeServer(43);
  util::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "injected server fault";
  util::ScopedFault fault("server.query", spec);
  auto result = db->Query(FreeQuery("Tc", 2));
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.status().message(), "injected server fault");
  EXPECT_GE(util::FaultInjector::Instance().HitCount("server.query"), 1);
}

TEST_F(ServerTest, BaseFactsUnderFastPathPredicateFallBack) {
  // Facts stored under the recursive predicate's own name are invisible
  // to the EDB-only fast paths; such predicates must degrade to the
  // resident filter, which sees them through the maintained relation.
  ra::Database edb = MakeEdb(47);
  (*edb.GetOrCreate(symbols_.Intern("Tc"), 2))->Insert({90, 91});
  ra::Database edb_copy = edb;
  auto db = server::Database::Create(Parse(kProgram), std::move(edb),
                                     &symbols_, {});
  ASSERT_TRUE(db.ok()) << db.status();

  // Still routed fast in the table ...
  EXPECT_EQ((*db)->FindRoute(symbols_.Lookup("Tc"))->kind,
            RouteKind::kIterateSelection);
  // ... but answered by the resident filter, and correctly.
  eval::Query q = FreeQuery("Tc", 2);
  auto result = (*db)->Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->route, RouteKind::kResidentFilter);
  EXPECT_EQ(SortedRows(result->rows), Recompute(Parse(kProgram), edb_copy, q));
  EXPECT_TRUE(result->rows.Contains({90, 91}));
}

TEST_F(ServerTest, FastPathsCanBeDisabled) {
  server::ServerOptions options;
  options.enable_fast_paths = false;
  auto db = MakeServer(53, options);
  for (const char* pred : {"Tc", "Bnd", "Wild", "View"}) {
    const server::Route* route = db->FindRoute(symbols_.Lookup(pred));
    ASSERT_NE(route, nullptr) << pred;
    EXPECT_EQ(route->kind, RouteKind::kResidentFilter) << pred;
  }
  ra::Database edb = MakeEdb(53);
  eval::Query q = FreeQuery("Bnd", 4);
  auto result = db->Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->route, RouteKind::kResidentFilter);
  EXPECT_EQ(SortedRows(result->rows), Recompute(Parse(kProgram), edb, q));
}

TEST_F(ServerTest, ConcurrentReadersSeeOnlyPublishedEpochs) {
  auto db = MakeServer(59);
  SymbolId e = symbols_.Lookup("E");
  SymbolId tc = symbols_.Lookup("Tc");

  // Precompute the Tc cardinality at every epoch the writer will publish:
  // readers must only ever observe one of these (epoch, size) pairs.
  constexpr int kWrites = 12;
  datalog::Program program = Parse(kProgram);
  ra::Database edb = MakeEdb(59);
  std::vector<size_t> tc_size_at_epoch;
  {
    auto idb = eval::SemiNaiveEvaluate(program, edb);
    ASSERT_TRUE(idb.ok());
    tc_size_at_epoch.push_back(idb->at(tc).size());
  }
  for (int i = 0; i < kWrites; ++i) {
    edb.FindMutable(e)->Insert({100 + i, 101 + i});
    auto idb = eval::SemiNaiveEvaluate(program, edb);
    ASSERT_TRUE(idb.ok());
    tc_size_at_epoch.push_back(idb->at(tc).size());
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto result = db->Query(eval::Query{
            tc, std::vector<std::optional<ra::Value>>(2, std::nullopt)});
        if (!result.ok()) {
          violations.fetch_add(1);
          continue;
        }
        // Epochs never go backwards for one reader, and every answer
        // matches the precomputed closure of its epoch exactly.
        if (result->epoch < last_epoch ||
            result->epoch >= tc_size_at_epoch.size() ||
            result->rows.size() != tc_size_at_epoch[result->epoch]) {
          violations.fetch_add(1);
        }
        last_epoch = result->epoch;
      }
    });
  }

  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(db->Insert(e, {100 + i, 101 + i}).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(db->epoch(), static_cast<uint64_t>(kWrites));
}

}  // namespace
}  // namespace recur
