// Deterministic error-path coverage: arms named fault sites inside every
// evaluator and checks that the injected failure surfaces as the right
// typed Status, with no aborts and no torn state. Runs under both asan and
// (via the tsan label) ThreadSanitizer builds.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "eval/compiled_eval.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "eval/special_plans.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace recur::eval {
namespace {

using util::FaultInjector;
using util::FaultSpec;
using util::ScopedFault;

FaultSpec StatusFault(StatusCode code, const char* message,
                      int trigger_on_hit = 1) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kStatus;
  spec.code = code;
  spec.message = message;
  spec.trigger_on_hit = trigger_on_hit;
  return spec;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }

  datalog::Program MustProgram(const char* text) {
    auto p = datalog::ParseProgram(text, &symbols_);
    EXPECT_TRUE(p.ok()) << p.status();
    return *p;
  }

  void Load(const char* name, const ra::Relation& rel) {
    auto r = edb_.GetOrCreate(symbols_.Intern(name), rel.arity());
    ASSERT_TRUE(r.ok());
    (*r)->InsertAll(rel);
  }

  /// Transitive closure over a chain: enough rounds that a per-round fault
  /// site gets several hits.
  datalog::Program LoadTransitiveClosure(int chain_length) {
    workload::Generator gen(7);
    Load("A", gen.Chain(chain_length));
    return MustProgram(
        "P(X, Y) :- A(X, Y).\n"
        "P(X, Y) :- A(X, Z), P(Z, Y).\n");
  }

  SymbolTable symbols_;
  ra::Database edb_;
};

TEST_F(FaultInjectionTest, UnarmedSitesPass) {
  EXPECT_TRUE(FaultInjector::Instance().Check("naive.round").ok());
  EXPECT_EQ(FaultInjector::Instance().HitCount("naive.round"), 0);
}

TEST_F(FaultInjectionTest, TriggerOnNthHitAndStickiness) {
  FaultSpec spec = StatusFault(StatusCode::kInternal, "boom",
                               /*trigger_on_hit=*/3);
  spec.sticky = false;
  FaultInjector::Instance().Arm("site", spec);
  EXPECT_TRUE(FaultInjector::Instance().Check("site").ok());
  EXPECT_TRUE(FaultInjector::Instance().Check("site").ok());
  EXPECT_TRUE(FaultInjector::Instance().Check("site").IsInternal());
  // Non-sticky: one shot only.
  EXPECT_TRUE(FaultInjector::Instance().Check("site").ok());
  EXPECT_EQ(FaultInjector::Instance().HitCount("site"), 4);

  spec.sticky = true;
  FaultInjector::Instance().Arm("site", spec);  // re-arm resets the count
  EXPECT_EQ(FaultInjector::Instance().HitCount("site"), 0);
  EXPECT_TRUE(FaultInjector::Instance().Check("site").ok());
  EXPECT_TRUE(FaultInjector::Instance().Check("site").ok());
  EXPECT_TRUE(FaultInjector::Instance().Check("site").IsInternal());
  EXPECT_TRUE(FaultInjector::Instance().Check("site").IsInternal());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("scoped", StatusFault(StatusCode::kInternal, "x"));
    EXPECT_FALSE(FaultInjector::Instance().Check("scoped").ok());
  }
  EXPECT_TRUE(FaultInjector::Instance().Check("scoped").ok());
}

TEST_F(FaultInjectionTest, NaiveRoundSitePropagates) {
  datalog::Program program = LoadTransitiveClosure(10);
  ScopedFault fault("naive.round",
                    StatusFault(StatusCode::kInternal, "injected at round 3",
                                /*trigger_on_hit=*/3));
  EvalStats stats;
  auto result = NaiveEvaluate(program, edb_, {}, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_EQ(result.status().message(), "injected at round 3");
  // Two full rounds ran before the failure; partial progress is recorded.
  EXPECT_EQ(stats.iterations, 3);
  EXPECT_GT(stats.total_tuples, 0u);
}

TEST_F(FaultInjectionTest, SerialSemiNaiveRoundSitePropagates) {
  datalog::Program program = LoadTransitiveClosure(10);
  ScopedFault fault("seminaive.serial.round",
                    StatusFault(StatusCode::kInternal, "injected",
                                /*trigger_on_hit=*/2));
  EvalStats stats;
  auto result = SemiNaiveEvaluate(program, edb_, {}, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_GT(stats.total_tuples, 0u);
}

TEST_F(FaultInjectionTest, ParallelRoundAndTaskSitesPropagate) {
  datalog::Program program = LoadTransitiveClosure(64);
  FixpointOptions options;
  options.num_threads = 4;
  {
    ScopedFault fault("seminaive.parallel.round",
                      StatusFault(StatusCode::kInternal, "round fault",
                                  /*trigger_on_hit=*/2));
    auto result = SemiNaiveEvaluate(program, edb_, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "round fault");
  }
  FaultInjector::Instance().Reset();
  {
    ScopedFault fault("seminaive.parallel.task",
                      StatusFault(StatusCode::kInternal, "task fault",
                                  /*trigger_on_hit=*/5));
    auto result = SemiNaiveEvaluate(program, edb_, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "task fault");
  }
}

TEST_F(FaultInjectionTest, ThrowingParallelTaskSurfacesAsInternal) {
  datalog::Program program = LoadTransitiveClosure(64);
  FixpointOptions options;
  options.num_threads = 4;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kThrow;
  spec.message = "worker exploded";
  spec.trigger_on_hit = 3;
  ScopedFault fault("seminaive.parallel.task", spec);
  auto result = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("worker exploded"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, BadAllocInParallelTaskIsResourceExhausted) {
  datalog::Program program = LoadTransitiveClosure(64);
  FixpointOptions options;
  options.num_threads = 4;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kBadAlloc;
  spec.trigger_on_hit = 2;
  ScopedFault fault("seminaive.parallel.task", spec);
  auto result = SemiNaiveEvaluate(program, edb_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(FaultInjectionTest, BadAllocInRelationReserveIsContained) {
  datalog::Program program = LoadTransitiveClosure(20);
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kBadAlloc;
  spec.trigger_on_hit = 2;
  ScopedFault fault("ra.relation.reserve", spec);
  // The serial engine Reserve()s during its merge stage; the simulated
  // allocation failure must come back as a Status, not terminate.
  auto result = SemiNaiveEvaluate(program, edb_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_NE(result.status().message().find("allocation failure"),
            std::string::npos);
}

TEST_F(FaultInjectionTest, CompiledLevelSitePropagates) {
  workload::Generator gen(9);
  Load("A", gen.Chain(30));
  Load("E", gen.Chain(30));
  auto rule = datalog::ParseRule("P(X, Y) :- A(X, Z), P(Z, Y).", &symbols_);
  ASSERT_TRUE(rule.ok());
  auto formula = datalog::LinearRecursiveRule::Create(*rule);
  ASSERT_TRUE(formula.ok());
  auto exit = datalog::ParseRule("P(X, Y) :- E(X, Y).", &symbols_);
  ASSERT_TRUE(exit.ok());
  auto ev = StableEvaluator::Create(*formula, {*exit}, &symbols_);
  ASSERT_TRUE(ev.ok()) << ev.status();
  Query q;
  q.pred = symbols_.Lookup("P");
  q.bindings = {ra::Value{0}, std::nullopt};

  ScopedFault fault("compiled.level",
                    StatusFault(StatusCode::kInternal, "level fault",
                                /*trigger_on_hit=*/4));
  auto result = ev->Answer(q, edb_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "level fault");
}

TEST_F(FaultInjectionTest, SpecialPlansRoundSitePropagates) {
  workload::Generator gen(41);
  Load("A", gen.RandomGraph(15, 30));
  Load("B", gen.RandomGraph(15, 30));
  Load("E", gen.RandomRows(3, 15, 40));
  ScopedFault fault("special_plans.round",
                    StatusFault(StatusCode::kInternal, "plan fault"));
  auto result = S9PlanBoundFirst(edb_, symbols_, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "plan fault");
}

TEST_F(FaultInjectionTest, QueryFilterIntoSitePropagates) {
  ra::Relation full(2);
  full.Insert({1, 2});
  Query q;
  q.pred = symbols_.Intern("P");
  q.bindings = {std::nullopt, std::nullopt};
  ScopedFault fault("query.filter_into",
                    StatusFault(StatusCode::kInternal, "filter fault"));
  ra::Relation out(2);
  auto result = q.FilterInto(full, &out);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "filter fault");
}

TEST_F(FaultInjectionTest, OnHitCallbackCancelsAtADeterministicRound) {
  // The callback fires when round 3 starts and flips the cancel flag; the
  // engine must observe it on the next poll and stop with kCancelled.
  datalog::Program program = LoadTransitiveClosure(20);
  ExecutionContext context;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelay;  // no failure, just the callback
  spec.trigger_on_hit = 3;
  spec.sticky = false;
  spec.on_hit = [&context] { context.Cancel(); };
  ScopedFault fault("seminaive.serial.round", spec);

  FixpointOptions options;
  options.context = &context;
  EvalStats stats;
  auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(stats.iterations, 4);  // cancelled entering round 4
  EXPECT_GT(stats.total_tuples, 0u);
}

TEST_F(FaultInjectionTest, DelayFaultForcesDeadline) {
  datalog::Program program = LoadTransitiveClosure(30);
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelay;
  spec.delay_ms = 20;
  ScopedFault fault("seminaive.serial.round", spec);

  FixpointOptions options;
  options.limits.deadline_seconds = 0.03;
  EvalStats stats;
  auto result = SemiNaiveEvaluate(program, edb_, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_GE(stats.iterations, 1);
}

// Registry dump golden-checked against the documentation: the fault-site
// table in docs/EVALUATION.md (between the fault-sites:begin/end markers)
// must list exactly util::KnownFaultSites(), in order. Adding a site to
// the code without documenting it — or documenting a site that does not
// exist — fails here.
TEST(FaultSiteRegistry, MatchesDocumentedTable) {
  const std::vector<std::string>& sites = util::KnownFaultSites();
  ASSERT_FALSE(sites.empty());
  EXPECT_EQ(std::set<std::string>(sites.begin(), sites.end()).size(),
            sites.size())
      << "duplicate names in KnownFaultSites()";

  std::ifstream in(std::string(RECUR_DOCS_DIR) + "/EVALUATION.md");
  ASSERT_TRUE(in.good()) << "cannot open docs/EVALUATION.md";
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const size_t begin = text.find("<!-- fault-sites:begin -->");
  const size_t end = text.find("<!-- fault-sites:end -->");
  ASSERT_NE(begin, std::string::npos) << "fault-sites:begin marker missing";
  ASSERT_NE(end, std::string::npos) << "fault-sites:end marker missing";
  ASSERT_LT(begin, end);

  // Documented sites are the backticked names in the table's first column.
  std::vector<std::string> documented;
  size_t pos = begin;
  while (true) {
    const size_t row = text.find("\n| `", pos);
    if (row == std::string::npos || row >= end) break;
    const size_t name_begin = row + 4;
    const size_t name_end = text.find('`', name_begin);
    ASSERT_NE(name_end, std::string::npos);
    documented.push_back(text.substr(name_begin, name_end - name_begin));
    pos = name_end;
  }
  EXPECT_EQ(documented, sites)
      << "docs/EVALUATION.md fault-site table is out of sync with "
         "util::KnownFaultSites()";
}

// Every site in the registry dump is actually armable (the registry is
// names only — arming an unknown name would silently never fire).
TEST(FaultSiteRegistry, EverySiteArmsAndDisarms) {
  for (const std::string& site : util::KnownFaultSites()) {
    FaultInjector::Instance().Arm(site, FaultSpec{});
    EXPECT_FALSE(FaultInjector::Instance().Check(site.c_str()).ok()) << site;
    FaultInjector::Instance().Disarm(site);
    EXPECT_TRUE(FaultInjector::Instance().Check(site.c_str()).ok()) << site;
  }
}

}  // namespace
}  // namespace recur::eval
