#ifndef RECUR_CLASSIFY_TAXONOMY_H_
#define RECUR_CLASSIFY_TAXONOMY_H_

#include <string>

namespace recur::classify {

/// Classification of one connected component of the I-graph (on its
/// condensation). The letters follow §3 of the paper.
enum class ComponentClass {
  /// No directed edge at all (pure non-recursive structure).
  kTrivial,
  /// A1: independent one-directional unit cycle with an undirected edge.
  kUnitRotational,
  /// A2: independent unit cycle that is a self directed loop.
  kUnitPermutational,
  /// A3: independent one-directional cycle of weight >= 2 using at least
  /// one undirected edge.
  kNonUnitRotational,
  /// A4: independent one-directional cycle of weight >= 2 made of directed
  /// edges only (a variable permutation).
  kNonUnitPermutational,
  /// B: independent multi-directional cycle of weight 0 (bounded cycle).
  kBoundedCycle,
  /// C: independent multi-directional cycle of non-zero weight (unbounded).
  kUnboundedCycle,
  /// D: non-trivial component containing no non-trivial cycle.
  kNoNontrivialCycle,
  /// E: dependent cycles (several non-trivial cycles, or directed edges
  /// hanging off a cycle, in one component).
  kDependent,
};

/// Classification of the whole formula: classes A1-A5 (one-directional),
/// B (bounded cycles), C (unbounded cycles), D (no non-trivial cycles),
/// E (dependent cycles) and F (mixed: disjoint combination of different
/// classes).
enum class FormulaClass {
  kA1,
  kA2,
  kA3,
  kA4,
  kA5,
  kB,
  kC,
  kD,
  kE,
  kF,
};

/// Short names: "A1".."A4" / "B".."F".
const char* ToString(ComponentClass c);
const char* ToString(FormulaClass c);

/// Human-readable description ("unit, rotational cycle", ...).
std::string Describe(ComponentClass c);
std::string Describe(FormulaClass c);

/// True for A1..A4 component classes (one-directional independent cycles).
bool IsOneDirectionalClass(ComponentClass c);

/// True for the permutational component classes A2/A4.
bool IsPermutationalClass(ComponentClass c);

}  // namespace recur::classify

#endif  // RECUR_CLASSIFY_TAXONOMY_H_
