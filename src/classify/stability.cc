#include "classify/stability.h"

namespace recur::classify {

Adornment PropagateAdornment(const Classification& cls, Adornment adornment) {
  const graph::IGraph& ig = cls.igraph;
  const graph::CondensedGraph& condensed = cls.condensed;
  int n = ig.dimension();

  // Clusters determined by the bound consequent variables.
  std::vector<bool> determined(condensed.num_clusters(), false);
  for (int i = 0; i < n; ++i) {
    if ((adornment >> i) & 1u) {
      determined[condensed.cluster_of(ig.HeadVertex(i))] = true;
    }
  }
  Adornment next = 0;
  for (int i = 0; i < n; ++i) {
    if (determined[condensed.cluster_of(ig.BodyVertex(i))]) {
      next |= (1u << i);
    }
  }
  return next;
}

bool SemanticallyStronglyStable(const Classification& cls) {
  int n = cls.igraph.dimension();
  if (n > 20) return false;  // adornment space too large to enumerate
  Adornment full = (n == 32) ? ~0u : ((1u << n) - 1u);
  for (Adornment a = 0; a <= full; ++a) {
    if (PropagateAdornment(cls, a) != a) return false;
  }
  return true;
}

std::string AdornmentToQueryForm(Adornment adornment, int dimension) {
  std::string out = "P(";
  for (int i = 0; i < dimension; ++i) {
    if (i > 0) out += ",";
    out += ((adornment >> i) & 1u) ? "d" : "v";
  }
  out += ")";
  return out;
}

std::string AdornmentTable(const Classification& cls, Adornment start,
                           int steps) {
  int n = cls.igraph.dimension();
  std::string out =
      "incoming query : " + AdornmentToQueryForm(start, n) + "\n";
  std::vector<Adornment> seen{start};
  Adornment a = start;
  for (int k = 1; k <= steps; ++k) {
    a = PropagateAdornment(cls, a);
    out += "expansion " + std::to_string(k) + "    : " +
           AdornmentToQueryForm(a, n) + "\n";
    seen.push_back(a);
  }
  // Detect the eventual period of the adornment sequence.
  for (int period = 1; period <= steps; ++period) {
    bool periodic = true;
    for (int k = static_cast<int>(seen.size()) - 1;
         k - period >= 1; --k) {
      if (seen[k] != seen[k - period]) {
        periodic = false;
        break;
      }
    }
    if (periodic) {
      out += "(cycle period " + std::to_string(period) + ")\n";
      break;
    }
  }
  return out;
}

int SemanticStabilityPeriod(const Classification& cls, int max_period) {
  int n = cls.igraph.dimension();
  if (n > 20) return 0;
  Adornment full = (1u << n) - 1u;
  // Track f^k applied to every singleton adornment; since f distributes
  // over union (determination is monotone and pointwise per position),
  // f^L == id on singletons implies f^L == id everywhere... except f does
  // NOT distribute in general (a cluster may need two bound positions).
  // Enumerate all adornments to stay exact.
  std::vector<Adornment> state(full + 1);
  for (Adornment a = 0; a <= full; ++a) state[a] = a;
  for (int period = 1; period <= max_period; ++period) {
    bool identity = true;
    for (Adornment a = 0; a <= full; ++a) {
      state[a] = PropagateAdornment(cls, state[a]);
      if (state[a] != a) identity = false;
    }
    if (identity) return period;
  }
  return 0;
}

}  // namespace recur::classify
