#ifndef RECUR_CLASSIFY_STABILITY_H_
#define RECUR_CLASSIFY_STABILITY_H_

#include <cstdint>

#include "classify/classifier.h"

namespace recur::classify {

/// An adornment: bit i set means argument position i of the recursive
/// predicate is determined (bound) — by a query constant or derivable from
/// one via selections/joins over non-recursive predicates ([Hens 84]).
using Adornment = uint32_t;

/// The determined-variable transition function f of the paper's semantic
/// view: given that the consequent positions in `adornment` are determined,
/// returns which antecedent positions become determined after one
/// expansion. A determined variable determines every variable reachable
/// from it through undirected edges (non-recursive predicates), i.e. its
/// whole cluster in the condensation.
Adornment PropagateAdornment(const Classification& cls, Adornment adornment);

/// Semantic side of Theorem 1: the formula is strongly stable iff the
/// determined positions in consequent and antecedent coincide *for every
/// query form*, i.e. f(a) == a for all 2^n adornments.
bool SemanticallyStronglyStable(const Classification& cls);

/// Smallest L in [1, max_period] such that f^L is the identity on all
/// adornments (the semantic counterpart of "becomes stable after each n
/// expansions", Theorem 2); 0 if no such L exists. For class-A formulas
/// this equals the LCM of the cycle weights (Theorem 4).
int SemanticStabilityPeriod(const Classification& cls, int max_period = 4096);

/// Renders an adornment as the paper's query-form notation, e.g. 0b001 at
/// dimension 3 prints "P(d,v,v)" (d = determined, v = non-determined).
std::string AdornmentToQueryForm(Adornment adornment, int dimension);

/// The §10-style propagation table: starting from `start`, applies f for
/// `steps` expansions and prints one line per step, e.g.
///   incoming query : P(d,v,v)
///   1st expansion  : P(d,d,v)
///   2nd expansion  : P(d,d,v)
/// Reports the detected cycle period of the adornment sequence at the end.
std::string AdornmentTable(const Classification& cls, Adornment start,
                           int steps);

}  // namespace recur::classify

#endif  // RECUR_CLASSIFY_STABILITY_H_
