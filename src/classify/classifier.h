#ifndef RECUR_CLASSIFY_CLASSIFIER_H_
#define RECUR_CLASSIFY_CLASSIFIER_H_

#include <string>
#include <vector>

#include "classify/taxonomy.h"
#include "datalog/linear_rule.h"
#include "graph/components.h"
#include "graph/cycles.h"
#include "graph/igraph.h"
#include "util/result.h"

namespace recur::classify {

/// Analysis of one weakly connected component of the condensed I-graph.
struct ComponentInfo {
  int component_id = -1;
  /// Cluster indexes (in the condensation) belonging to this component.
  std::vector<int> clusters;
  /// Arc indexes (condensed directed edges) in this component.
  std::vector<int> arcs;
  /// Recursive-predicate argument positions whose directed edge lies here.
  std::vector<int> positions;
  /// Non-trivial cycles found in this component.
  std::vector<graph::Cycle> cycles;
  ComponentClass component_class = ComponentClass::kTrivial;
  /// Weight of the single independent cycle (classes A1-A4, B, C); 0 else.
  int cycle_weight = 0;
  /// True if the component is bounded, with a sound rank bound.
  bool bounded = false;
  /// Valid when bounded: expansions beyond this produce nothing new from
  /// this component (Ioannidis bound for B/D, weight-1 for A2/A4).
  int rank_bound = 0;
};

/// Complete classification of a linear recursive formula.
struct Classification {
  graph::IGraph igraph;
  graph::CondensedGraph condensed;
  std::vector<ComponentInfo> components;

  FormulaClass formula_class = FormulaClass::kF;

  /// Theorem 1: disjoint unit cycles only <=> strongly stable.
  bool strongly_stable = false;
  /// Corollary 3: only one-directional cycles <=> transformable to an
  /// equivalent unit-cycle (stable) formula.
  bool transformable_to_stable = false;
  /// Theorem 4: number of unfoldings after which the formula is stable
  /// (LCM of all one-directional cycle weights). Valid when
  /// transformable_to_stable.
  int unfold_count = 1;

  /// Theorem 3: all components permutational (A2/A4) — pure variable
  /// permutation, no non-recursive predicates feed the recursion.
  bool permutational = false;

  /// Theorems 10/11 + Ioannidis: the formula produces no new tuples beyond
  /// rank_bound expansions regardless of database contents.
  bool bounded = false;
  int rank_bound = 0;

  /// One line per component, e.g. "component 0: A1 (weight 1)".
  std::string Summary(const SymbolTable& symbols) const;
};

/// Runs the full classification pipeline of the paper on `formula`:
/// I-graph -> condensation -> components -> cycles -> classes -> formula
/// properties.
Result<Classification> Classify(const datalog::LinearRecursiveRule& formula);

}  // namespace recur::classify

#endif  // RECUR_CLASSIFY_CLASSIFIER_H_
