#include "classify/classifier.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/paths.h"

namespace recur::classify {

namespace {

int64_t Lcm(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  return a / std::gcd(a, b) * b;
}

/// Assigns a ComponentClass given the component's arcs and cycles (§3).
ComponentClass DetermineClass(const ComponentInfo& info) {
  if (info.arcs.empty()) return ComponentClass::kTrivial;
  if (info.cycles.empty()) return ComponentClass::kNoNontrivialCycle;
  // "Independent": exactly one non-trivial cycle, and every directed edge
  // of the component lies on it.
  bool independent = info.cycles.size() == 1 &&
                     info.cycles[0].steps.size() == info.arcs.size();
  if (!independent) return ComponentClass::kDependent;
  const graph::Cycle& cycle = info.cycles[0];
  if (!cycle.one_directional) {
    return cycle.weight == 0 ? ComponentClass::kBoundedCycle
                             : ComponentClass::kUnboundedCycle;
  }
  if (cycle.weight == 1) {
    return cycle.rotational ? ComponentClass::kUnitRotational
                            : ComponentClass::kUnitPermutational;
  }
  return cycle.rotational ? ComponentClass::kNonUnitRotational
                          : ComponentClass::kNonUnitPermutational;
}

/// Computes boundedness and rank bound for one component:
///  - D and B: Ioannidis's theorem, rank = max path weight;
///  - A2/A4 (permutational): Theorem 10, rank = weight - 1;
///  - dependent with only zero-weight cycles: Ioannidis again;
///  - A1/A3, C, and dependent components with a non-zero-weight cycle are
///    not bounded (or not known bounded; we stay conservative).
void DetermineBoundedness(const graph::CondensedGraph& condensed,
                          const std::vector<int>& cluster_component,
                          ComponentInfo* info) {
  switch (info->component_class) {
    case ComponentClass::kTrivial:
      info->bounded = true;
      info->rank_bound = 0;
      return;
    case ComponentClass::kNoNontrivialCycle:
    case ComponentClass::kBoundedCycle:
      info->bounded = true;
      info->rank_bound = graph::MaxPathWeightInComponent(
          condensed, cluster_component, info->component_id);
      return;
    case ComponentClass::kUnitPermutational:
    case ComponentClass::kNonUnitPermutational:
      info->bounded = true;
      info->rank_bound = info->cycle_weight - 1;
      return;
    case ComponentClass::kDependent: {
      bool all_zero = std::all_of(
          info->cycles.begin(), info->cycles.end(),
          [](const graph::Cycle& c) { return c.weight == 0; });
      if (all_zero) {
        info->bounded = true;
        info->rank_bound = graph::MaxPathWeightInComponent(
            condensed, cluster_component, info->component_id);
      } else {
        info->bounded = false;
        info->rank_bound = 0;
      }
      return;
    }
    case ComponentClass::kUnitRotational:
    case ComponentClass::kNonUnitRotational:
    case ComponentClass::kUnboundedCycle:
      info->bounded = false;
      info->rank_bound = 0;
      return;
  }
}

}  // namespace

std::string Classification::Summary(const SymbolTable& symbols) const {
  std::string out;
  for (const ComponentInfo& info : components) {
    out += "component " + std::to_string(info.component_id) + ": " +
           ToString(info.component_class);
    if (IsOneDirectionalClass(info.component_class) ||
        info.component_class == ComponentClass::kBoundedCycle ||
        info.component_class == ComponentClass::kUnboundedCycle) {
      out += " (weight " + std::to_string(info.cycle_weight) + ")";
    }
    if (!info.positions.empty()) {
      out += " positions {";
      for (size_t i = 0; i < info.positions.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(info.positions[i] + 1);
      }
      out += "}";
    }
    if (info.bounded) {
      out += " bounded(rank<=" + std::to_string(info.rank_bound) + ")";
    }
    out += "\n";
  }
  out += "formula class: " + std::string(ToString(formula_class)) + " — " +
         Describe(formula_class) + "\n";
  if (strongly_stable) out += "strongly stable\n";
  if (transformable_to_stable && !strongly_stable) {
    out += "transformable to stable by unfolding " +
           std::to_string(unfold_count) + " times\n";
  }
  if (bounded) {
    out += "bounded with rank <= " + std::to_string(rank_bound) + "\n";
  }
  (void)symbols;
  return out;
}

Result<Classification> Classify(const datalog::LinearRecursiveRule& formula) {
  Classification out;
  RECUR_ASSIGN_OR_RETURN(out.igraph, graph::IGraph::Build(formula));
  out.condensed = graph::CondensedGraph::Build(out.igraph.graph());

  int num_components = 0;
  std::vector<int> cluster_component =
      out.condensed.WeakComponents(&num_components);
  RECUR_ASSIGN_OR_RETURN(std::vector<graph::Cycle> cycles,
                         graph::EnumerateCycles(out.condensed));

  out.components.resize(num_components);
  for (int i = 0; i < num_components; ++i) {
    out.components[i].component_id = i;
  }
  for (int c = 0; c < out.condensed.num_clusters(); ++c) {
    out.components[cluster_component[c]].clusters.push_back(c);
  }
  for (int a = 0; a < static_cast<int>(out.condensed.arcs().size()); ++a) {
    const graph::CondensedArc& arc = out.condensed.arcs()[a];
    ComponentInfo& info = out.components[cluster_component[arc.from_cluster]];
    info.arcs.push_back(a);
    info.positions.push_back(
        out.igraph.graph().edge(arc.edge_index).position);
  }
  for (graph::Cycle& cycle : cycles) {
    int component = cluster_component[cycle.clusters[0]];
    out.components[component].cycles.push_back(std::move(cycle));
  }

  for (ComponentInfo& info : out.components) {
    std::sort(info.positions.begin(), info.positions.end());
    info.component_class = DetermineClass(info);
    if (info.cycles.size() == 1) {
      info.cycle_weight = info.cycles[0].weight;
    }
    DetermineBoundedness(out.condensed, cluster_component, &info);
  }

  // Formula-level aggregation over non-trivial components.
  std::set<ComponentClass> classes;
  bool all_bounded = true;
  bool all_one_directional = true;
  bool all_unit = true;
  bool all_permutational = true;
  int64_t lcm_weights = 1;
  int64_t lcm_permutational = 1;
  int max_nonpermutational_rank = 0;
  for (const ComponentInfo& info : out.components) {
    if (info.component_class == ComponentClass::kTrivial) continue;
    classes.insert(info.component_class);
    all_bounded = all_bounded && info.bounded;
    if (IsOneDirectionalClass(info.component_class)) {
      lcm_weights = Lcm(lcm_weights, info.cycle_weight);
      if (info.cycle_weight != 1) all_unit = false;
    } else {
      all_one_directional = false;
    }
    if (IsPermutationalClass(info.component_class)) {
      lcm_permutational = Lcm(lcm_permutational, info.cycle_weight);
    } else {
      all_permutational = false;
      if (info.bounded) {
        max_nonpermutational_rank =
            std::max(max_nonpermutational_rank, info.rank_bound);
      }
    }
  }

  if (classes.empty()) {
    return Status::Internal(
        "formula with no non-trivial component (no directed edges?)");
  }

  out.strongly_stable = all_one_directional && all_unit;
  out.transformable_to_stable = all_one_directional;
  out.unfold_count =
      all_one_directional ? static_cast<int>(lcm_weights) : 1;
  out.permutational = all_permutational;
  out.bounded = all_bounded;
  out.rank_bound =
      all_bounded ? max_nonpermutational_rank +
                        static_cast<int>(lcm_permutational) - 1
                  : 0;

  if (classes.size() == 1) {
    switch (*classes.begin()) {
      case ComponentClass::kUnitRotational:
        out.formula_class = FormulaClass::kA1;
        break;
      case ComponentClass::kUnitPermutational:
        out.formula_class = FormulaClass::kA2;
        break;
      case ComponentClass::kNonUnitRotational:
        out.formula_class = FormulaClass::kA3;
        break;
      case ComponentClass::kNonUnitPermutational:
        out.formula_class = FormulaClass::kA4;
        break;
      case ComponentClass::kBoundedCycle:
        out.formula_class = FormulaClass::kB;
        break;
      case ComponentClass::kUnboundedCycle:
        out.formula_class = FormulaClass::kC;
        break;
      case ComponentClass::kNoNontrivialCycle:
        out.formula_class = FormulaClass::kD;
        break;
      case ComponentClass::kDependent:
        out.formula_class = FormulaClass::kE;
        break;
      case ComponentClass::kTrivial:
        break;  // unreachable: trivial components are skipped above
    }
  } else if (all_one_directional) {
    out.formula_class = FormulaClass::kA5;
  } else {
    out.formula_class = FormulaClass::kF;
  }
  return out;
}

}  // namespace recur::classify
