#ifndef RECUR_CLASSIFY_PROGRAM_ANALYSIS_H_
#define RECUR_CLASSIFY_PROGRAM_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "datalog/program.h"

namespace recur::classify {

/// Why a predicate's recursion falls outside the paper's restricted
/// language (§2), if it does.
enum class RecursionKind {
  /// Not recursive at all (defined only by non-recursive rules).
  kNonRecursive,
  /// Exactly one linear recursive rule + >= 1 exit rules: the paper's
  /// setting; a Classification is attached.
  kSingleLinear,
  /// One recursive rule but the recursive predicate occurs several times
  /// in its body.
  kNonLinear,
  /// More than one recursive rule for the predicate.
  kMultipleRecursiveRules,
  /// The predicate participates in a recursion cycle through *other*
  /// predicates (mutual recursion).
  kMutual,
  /// A single linear recursive rule that violates another restriction
  /// (constants under P, repeated variables, range restriction, ...).
  kRestricted,
};

const char* ToString(RecursionKind kind);

/// Per-predicate analysis result.
struct PredicateReport {
  SymbolId predicate = kInvalidSymbol;
  RecursionKind kind = RecursionKind::kNonRecursive;
  /// Human-readable explanation (e.g. which restriction failed, or which
  /// SCC partners make it mutual).
  std::string diagnosis;
  /// Exit (non-recursive) rules for the predicate.
  std::vector<datalog::Rule> exits;
  /// The recursive rule, when there is exactly one.
  std::optional<datalog::Rule> recursive_rule;
  /// Present iff kind == kSingleLinear.
  std::optional<Classification> classification;
};

/// Whole-program analysis.
struct ProgramAnalysis {
  std::vector<PredicateReport> predicates;  // one per IDB predicate
  /// Strongly connected components of the predicate dependency graph that
  /// contain more than one predicate (the mutual-recursion groups), as
  /// lists of predicate symbols.
  std::vector<std::vector<SymbolId>> mutual_groups;

  const PredicateReport* Find(SymbolId pred) const;
  std::string Summary(const SymbolTable& symbols) const;
};

/// Builds the predicate dependency graph of `program` (edges from head
/// predicates to body predicates), finds its SCCs, and classifies every
/// IDB predicate that fits the paper's single-linear-recursion setting.
/// Facts are ignored; EDB predicates never appear in the report.
Result<ProgramAnalysis> AnalyzeProgram(const datalog::Program& program);

}  // namespace recur::classify

#endif  // RECUR_CLASSIFY_PROGRAM_ANALYSIS_H_
