#ifndef RECUR_CLASSIFY_BOUNDEDNESS_H_
#define RECUR_CLASSIFY_BOUNDEDNESS_H_

#include "classify/classifier.h"

namespace recur::classify {

/// How a formula's boundedness was established.
enum class BoundednessSource {
  /// Ioannidis's theorem: no permutational patterns, no non-zero-weight
  /// cycle; bound = max path weight in the I-graph.
  kIoannidis,
  /// Theorem 10: disjoint combination of permutational cycles (A2/A4);
  /// bound = LCM(cycle weights) - 1.
  kPermutational,
  /// Theorem 11 / combined: disjoint combination of bounded components of
  /// both kinds; bound = ioannidis part + LCM - 1.
  kCombined,
};

struct BoundednessInfo {
  bool bounded = false;
  int rank_bound = 0;
  BoundednessSource source = BoundednessSource::kIoannidis;
};

/// Direct application of Ioannidis's theorem to `formula` (independent of
/// the full classifier — used to cross-check the classifier in tests).
/// Fails with InvalidArgument if the formula has a permutational pattern,
/// or reports bounded=false if some cycle has non-zero weight.
Result<BoundednessInfo> IoannidisBound(
    const datalog::LinearRecursiveRule& formula);

/// Boundedness of a classified formula (Theorems 10, 11 and the Ioannidis
/// bound combined, matching Classification::bounded / rank_bound but with
/// the provenance made explicit).
BoundednessInfo ComputeBoundedness(const Classification& cls);

}  // namespace recur::classify

#endif  // RECUR_CLASSIFY_BOUNDEDNESS_H_
