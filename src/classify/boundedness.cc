#include "classify/boundedness.h"

#include "graph/paths.h"

namespace recur::classify {

Result<BoundednessInfo> IoannidisBound(
    const datalog::LinearRecursiveRule& formula) {
  RECUR_ASSIGN_OR_RETURN(graph::IGraph igraph, graph::IGraph::Build(formula));
  graph::CondensedGraph condensed =
      graph::CondensedGraph::Build(igraph.graph());
  RECUR_ASSIGN_OR_RETURN(std::vector<graph::Cycle> cycles,
                         graph::EnumerateCycles(condensed));
  for (const graph::Cycle& cycle : cycles) {
    if (cycle.one_directional && !cycle.rotational) {
      return Status::InvalidArgument(
          "Ioannidis's theorem requires no permutational patterns");
    }
  }
  BoundednessInfo info;
  info.source = BoundednessSource::kIoannidis;
  for (const graph::Cycle& cycle : cycles) {
    if (cycle.weight != 0) {
      info.bounded = false;
      return info;
    }
  }
  info.bounded = true;
  info.rank_bound = graph::MaxPathWeight(condensed);
  return info;
}

BoundednessInfo ComputeBoundedness(const Classification& cls) {
  BoundednessInfo info;
  info.bounded = cls.bounded;
  info.rank_bound = cls.rank_bound;
  bool has_permutational = false;
  bool has_other = false;
  for (const ComponentInfo& c : cls.components) {
    if (c.component_class == ComponentClass::kTrivial) continue;
    if (IsPermutationalClass(c.component_class)) {
      has_permutational = true;
    } else {
      has_other = true;
    }
  }
  if (has_permutational && has_other) {
    info.source = BoundednessSource::kCombined;
  } else if (has_permutational) {
    info.source = BoundednessSource::kPermutational;
  } else {
    info.source = BoundednessSource::kIoannidis;
  }
  return info;
}

}  // namespace recur::classify
