#include "classify/program_analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace recur::classify {

namespace {

/// Iterative Tarjan SCC over the predicate dependency graph.
class SccFinder {
 public:
  explicit SccFinder(
      const std::unordered_map<SymbolId, std::vector<SymbolId>>& graph)
      : graph_(graph) {}

  std::vector<std::vector<SymbolId>> Run() {
    for (const auto& [node, edges] : graph_) {
      (void)edges;
      if (index_.find(node) == index_.end()) Strongconnect(node);
    }
    return sccs_;
  }

 private:
  void Strongconnect(SymbolId v) {
    struct Frame {
      SymbolId node;
      size_t edge = 0;
    };
    std::vector<Frame> stack{{v}};
    Begin(v);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<SymbolId>& edges = graph_.at(frame.node);
      if (frame.edge < edges.size()) {
        SymbolId next = edges[frame.edge++];
        if (graph_.find(next) == graph_.end()) continue;  // EDB target
        auto it = index_.find(next);
        if (it == index_.end()) {
          Begin(next);
          stack.push_back({next});
        } else if (on_stack_.count(next) > 0) {
          lowlink_[frame.node] =
              std::min(lowlink_[frame.node], index_[next]);
        }
      } else {
        SymbolId done = frame.node;
        stack.pop_back();
        if (!stack.empty()) {
          lowlink_[stack.back().node] =
              std::min(lowlink_[stack.back().node], lowlink_[done]);
        }
        if (lowlink_[done] == index_[done]) {
          std::vector<SymbolId> scc;
          for (;;) {
            SymbolId w = scc_stack_.back();
            scc_stack_.pop_back();
            on_stack_.erase(w);
            scc.push_back(w);
            if (w == done) break;
          }
          sccs_.push_back(std::move(scc));
        }
      }
    }
  }

  void Begin(SymbolId v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    scc_stack_.push_back(v);
    on_stack_.insert(v);
  }

  const std::unordered_map<SymbolId, std::vector<SymbolId>>& graph_;
  std::unordered_map<SymbolId, int> index_;
  std::unordered_map<SymbolId, int> lowlink_;
  std::vector<SymbolId> scc_stack_;
  std::unordered_set<SymbolId> on_stack_;
  int next_index_ = 0;
  std::vector<std::vector<SymbolId>> sccs_;
};

}  // namespace

const char* ToString(RecursionKind kind) {
  switch (kind) {
    case RecursionKind::kNonRecursive:
      return "non-recursive";
    case RecursionKind::kSingleLinear:
      return "single linear recursion";
    case RecursionKind::kNonLinear:
      return "non-linear recursion";
    case RecursionKind::kMultipleRecursiveRules:
      return "multiple recursive rules";
    case RecursionKind::kMutual:
      return "mutual recursion";
    case RecursionKind::kRestricted:
      return "violates a restriction";
  }
  return "?";
}

const PredicateReport* ProgramAnalysis::Find(SymbolId pred) const {
  for (const PredicateReport& r : predicates) {
    if (r.predicate == pred) return &r;
  }
  return nullptr;
}

std::string ProgramAnalysis::Summary(const SymbolTable& symbols) const {
  std::string out;
  for (const PredicateReport& r : predicates) {
    out += symbols.NameOf(r.predicate);
    out += ": ";
    out += ToString(r.kind);
    if (r.classification.has_value()) {
      out += " — class ";
      out += classify::ToString(r.classification->formula_class);
    }
    if (!r.diagnosis.empty()) {
      out += " (" + r.diagnosis + ")";
    }
    out += "\n";
  }
  return out;
}

Result<ProgramAnalysis> AnalyzeProgram(const datalog::Program& program) {
  ProgramAnalysis out;

  // Dependency graph over IDB predicates.
  std::unordered_map<SymbolId, std::vector<SymbolId>> graph;
  for (SymbolId pred : program.IdbPredicates()) {
    graph.emplace(pred, std::vector<SymbolId>{});
  }
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    for (const datalog::Atom& atom : rule.body()) {
      graph[rule.head().predicate()].push_back(atom.predicate());
    }
  }

  // Mutual-recursion groups: SCCs of size > 1.
  SccFinder finder(graph);
  std::unordered_map<SymbolId, const std::vector<SymbolId>*> group_of;
  std::vector<std::vector<SymbolId>> sccs = finder.Run();
  for (const std::vector<SymbolId>& scc : sccs) {
    if (scc.size() > 1) {
      out.mutual_groups.push_back(scc);
    }
  }
  for (const std::vector<SymbolId>& group : out.mutual_groups) {
    for (SymbolId pred : group) {
      group_of[pred] = &group;
    }
  }

  for (SymbolId pred : program.IdbPredicates()) {
    PredicateReport report;
    report.predicate = pred;
    std::vector<datalog::Rule> recursive_rules;
    for (const datalog::Rule& rule : program.RulesFor(pred)) {
      if (rule.IsFact()) continue;
      if (rule.IsRecursive()) {
        recursive_rules.push_back(rule);
      } else {
        report.exits.push_back(rule);
      }
    }

    auto group = group_of.find(pred);
    if (group != group_of.end()) {
      report.kind = RecursionKind::kMutual;
      std::string partners;
      for (SymbolId p : *group->second) {
        if (p == pred) continue;
        if (!partners.empty()) partners += ", ";
        partners += std::to_string(p);
      }
      report.diagnosis =
          "participates in a recursion cycle with other predicates";
    } else if (recursive_rules.empty()) {
      report.kind = RecursionKind::kNonRecursive;
    } else if (recursive_rules.size() > 1) {
      report.kind = RecursionKind::kMultipleRecursiveRules;
      report.diagnosis = std::to_string(recursive_rules.size()) +
                         " recursive rules (the paper assumes single "
                         "recursion)";
    } else {
      report.recursive_rule = recursive_rules[0];
      auto formula =
          datalog::LinearRecursiveRule::Create(recursive_rules[0]);
      if (!formula.ok()) {
        report.kind =
            recursive_rules[0]
                        .BodyIndexesOf(pred)
                        .size() > 1
                ? RecursionKind::kNonLinear
                : RecursionKind::kRestricted;
        report.diagnosis = formula.status().message();
      } else {
        auto cls = Classify(*formula);
        if (!cls.ok()) {
          report.kind = RecursionKind::kRestricted;
          report.diagnosis = cls.status().message();
        } else {
          report.kind = RecursionKind::kSingleLinear;
          report.classification = *std::move(cls);
        }
      }
    }
    out.predicates.push_back(std::move(report));
  }
  return out;
}

}  // namespace recur::classify
