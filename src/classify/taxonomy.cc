#include "classify/taxonomy.h"

namespace recur::classify {

const char* ToString(ComponentClass c) {
  switch (c) {
    case ComponentClass::kTrivial:
      return "trivial";
    case ComponentClass::kUnitRotational:
      return "A1";
    case ComponentClass::kUnitPermutational:
      return "A2";
    case ComponentClass::kNonUnitRotational:
      return "A3";
    case ComponentClass::kNonUnitPermutational:
      return "A4";
    case ComponentClass::kBoundedCycle:
      return "B";
    case ComponentClass::kUnboundedCycle:
      return "C";
    case ComponentClass::kNoNontrivialCycle:
      return "D";
    case ComponentClass::kDependent:
      return "E";
  }
  return "?";
}

const char* ToString(FormulaClass c) {
  switch (c) {
    case FormulaClass::kA1:
      return "A1";
    case FormulaClass::kA2:
      return "A2";
    case FormulaClass::kA3:
      return "A3";
    case FormulaClass::kA4:
      return "A4";
    case FormulaClass::kA5:
      return "A5";
    case FormulaClass::kB:
      return "B";
    case FormulaClass::kC:
      return "C";
    case FormulaClass::kD:
      return "D";
    case FormulaClass::kE:
      return "E";
    case FormulaClass::kF:
      return "F";
  }
  return "?";
}

std::string Describe(ComponentClass c) {
  switch (c) {
    case ComponentClass::kTrivial:
      return "trivial component (no directed edge)";
    case ComponentClass::kUnitRotational:
      return "unit, rotational cycle";
    case ComponentClass::kUnitPermutational:
      return "unit, permutational cycle (self directed loop)";
    case ComponentClass::kNonUnitRotational:
      return "non-unit, rotational cycle";
    case ComponentClass::kNonUnitPermutational:
      return "non-unit, permutational cycle";
    case ComponentClass::kBoundedCycle:
      return "bounded cycle (multi-directional, weight 0)";
    case ComponentClass::kUnboundedCycle:
      return "unbounded cycle (multi-directional, non-zero weight)";
    case ComponentClass::kNoNontrivialCycle:
      return "non-trivial component with no non-trivial cycle";
    case ComponentClass::kDependent:
      return "dependent cycles";
  }
  return "?";
}

std::string Describe(FormulaClass c) {
  switch (c) {
    case FormulaClass::kA1:
      return "unit, rotational cycles (strongly stable)";
    case FormulaClass::kA2:
      return "unit, permutational cycles (strongly stable)";
    case FormulaClass::kA3:
      return "non-unit, rotational cycles (transformable to stable)";
    case FormulaClass::kA4:
      return "non-unit, permutational cycles (transformable; bounded)";
    case FormulaClass::kA5:
      return "disjoint combination of different one-directional classes";
    case FormulaClass::kB:
      return "bounded cycles (pseudo recursion)";
    case FormulaClass::kC:
      return "unbounded cycles";
    case FormulaClass::kD:
      return "no non-trivial cycles (bounded)";
    case FormulaClass::kE:
      return "dependent cycles";
    case FormulaClass::kF:
      return "mixed: disjoint combination of different classes";
  }
  return "?";
}

bool IsOneDirectionalClass(ComponentClass c) {
  return c == ComponentClass::kUnitRotational ||
         c == ComponentClass::kUnitPermutational ||
         c == ComponentClass::kNonUnitRotational ||
         c == ComponentClass::kNonUnitPermutational;
}

bool IsPermutationalClass(ComponentClass c) {
  return c == ComponentClass::kUnitPermutational ||
         c == ComponentClass::kNonUnitPermutational;
}

}  // namespace recur::classify
