#ifndef RECUR_TRANSFORM_BOUNDED_EXPAND_H_
#define RECUR_TRANSFORM_BOUNDED_EXPAND_H_

#include <vector>

#include "classify/classifier.h"
#include "datalog/linear_rule.h"
#include "util/result.h"

namespace recur::transform {

/// A bounded ("pseudo recursive", §5) formula expanded into the equivalent
/// finite set of non-recursive rules: depths 0..rank with the recursive
/// predicate resolved against the exit rule, as in (s8a'), (s8b').
struct BoundedForm {
  std::vector<datalog::Rule> rules;
  int rank = 0;
};

/// Expands a bounded formula. Fails with Unsupported if the classification
/// does not establish boundedness.
Result<BoundedForm> ExpandBounded(const datalog::LinearRecursiveRule& formula,
                                  const datalog::Rule& exit_rule,
                                  SymbolTable* symbols);

/// Same, reusing an existing classification.
Result<BoundedForm> ExpandBounded(const datalog::LinearRecursiveRule& formula,
                                  const classify::Classification& cls,
                                  const datalog::Rule& exit_rule,
                                  SymbolTable* symbols);

}  // namespace recur::transform

#endif  // RECUR_TRANSFORM_BOUNDED_EXPAND_H_
