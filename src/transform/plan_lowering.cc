#include "transform/plan_lowering.h"

#include <vector>

namespace recur::transform {

namespace {

using eval::plan::Op;
using eval::plan::RulePlan;

/// One access operator in paper notation: the relation name, σ-wrapped
/// when the operator selects by constants or intra-row equalities.
/// Register checks are join predicates — the chain dash, not a σ.
CompiledExpr AccessExpr(const Op& op, const SymbolTable& symbols) {
  std::string name = symbols.NameOf(op.predicate);
  if (name.empty()) name = "p" + std::to_string(op.predicate);
  CompiledExpr rel = CompiledExpr::Relation(std::move(name));
  const bool filtered =
      !op.const_checks.empty() || !op.intra_checks.empty();
  if (filtered) return CompiledExpr::Select(std::move(rel));
  return rel;
}

}  // namespace

Result<std::shared_ptr<const eval::plan::RulePlan>> LowerRule(
    const datalog::Rule& rule, const eval::PlanRelationLookup& lookup,
    const eval::plan::PlannerOptions& options) {
  return eval::plan::PlanRule(rule, lookup, options);
}

CompiledExpr RaisePlan(const RulePlan& plan, const SymbolTable& symbols) {
  std::vector<CompiledExpr> existence;
  std::vector<CompiledExpr> projections;
  for (const eval::plan::ComponentPlan& component : plan.components) {
    std::vector<CompiledExpr> accesses;
    for (const Op& op : component.ops) {
      if (op.kind == eval::plan::OpKind::kProject) continue;
      accesses.push_back(AccessExpr(op, symbols));
    }
    CompiledExpr chain = accesses.size() == 1
                             ? std::move(accesses[0])
                             : CompiledExpr::JoinChain(std::move(accesses));
    if (component.head_regs.empty()) {
      existence.push_back(CompiledExpr::Exists(std::move(chain)));
    } else {
      projections.push_back(std::move(chain));
    }
  }
  // ∃-guards first (they run first and can zero the rule), then the
  // projection components combined by Cartesian product.
  CompiledExpr projected =
      projections.empty()
          ? CompiledExpr::Relation("1")  // constant head: the unit plan
      : projections.size() == 1
          ? std::move(projections[0])
          : [&projections] {
              CompiledExpr acc = std::move(projections[0]);
              for (size_t i = 1; i < projections.size(); ++i) {
                acc = CompiledExpr::Product(std::move(acc),
                                            std::move(projections[i]));
              }
              return acc;
            }();
  if (existence.empty()) return projected;
  std::vector<CompiledExpr> steps = std::move(existence);
  steps.push_back(std::move(projected));
  return CompiledExpr::Sequence(std::move(steps));
}

}  // namespace recur::transform
