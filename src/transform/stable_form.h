#ifndef RECUR_TRANSFORM_STABLE_FORM_H_
#define RECUR_TRANSFORM_STABLE_FORM_H_

#include <vector>

#include "classify/classifier.h"
#include "datalog/expansion.h"
#include "datalog/linear_rule.h"
#include "util/result.h"

namespace recur::transform {

/// The result of transforming a class-A formula into an equivalent stable
/// formula with multiple exits (Theorems 2 and 4): the new recursive rule
/// is the L-th expansion of the original, and there is one exit rule per
/// unfolding depth 0..L-1 (the original exit resolved into the first L-1
/// expansions). Logically equivalent to the original {recursive, exit}
/// pair.
struct StableForm {
  datalog::LinearRecursiveRule recursive;
  std::vector<datalog::Rule> exits;
  int unfold_count = 1;
};

/// Transforms `formula` (with its exit rule) into an equivalent stable
/// form. Fails with Unsupported if the formula is not transformable
/// (Corollary 3: only one-directional cycles are). When the formula is
/// already stable this returns it unchanged with the single exit.
Result<StableForm> ToStableForm(const datalog::LinearRecursiveRule& formula,
                                const datalog::Rule& exit_rule,
                                SymbolTable* symbols);

/// Same, reusing an existing classification (avoids re-classifying).
Result<StableForm> ToStableForm(const datalog::LinearRecursiveRule& formula,
                                const classify::Classification& cls,
                                const datalog::Rule& exit_rule,
                                SymbolTable* symbols);

}  // namespace recur::transform

#endif  // RECUR_TRANSFORM_STABLE_FORM_H_
