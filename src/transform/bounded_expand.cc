#include "transform/bounded_expand.h"

#include "datalog/expansion.h"

namespace recur::transform {

Result<BoundedForm> ExpandBounded(const datalog::LinearRecursiveRule& formula,
                                  const datalog::Rule& exit_rule,
                                  SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(classify::Classification cls,
                         classify::Classify(formula));
  return ExpandBounded(formula, cls, exit_rule, symbols);
}

Result<BoundedForm> ExpandBounded(const datalog::LinearRecursiveRule& formula,
                                  const classify::Classification& cls,
                                  const datalog::Rule& exit_rule,
                                  SymbolTable* symbols) {
  if (!cls.bounded) {
    return Status::Unsupported(
        "formula is not (known to be) bounded; cannot expand to a finite "
        "non-recursive set");
  }
  BoundedForm out;
  out.rank = cls.rank_bound;
  for (int k = 0; k <= cls.rank_bound; ++k) {
    RECUR_ASSIGN_OR_RETURN(
        datalog::Rule rule,
        datalog::ExpandWithExit(formula, k, exit_rule, symbols));
    out.rules.push_back(std::move(rule));
  }
  return out;
}

}  // namespace recur::transform
