#ifndef RECUR_TRANSFORM_PLAN_LOWERING_H_
#define RECUR_TRANSFORM_PLAN_LOWERING_H_

// Bridge between the symbolic compiled-formula notation (CompiledExpr,
// the way the paper writes plans) and the physical-plan IR executed by
// eval/plan/. Lowering a rule produces the same RulePlan every engine
// runs; raising a RulePlan renders it back in the paper's σ/⋈/×/∃
// notation, so the symbolic form shown for a query provably describes the
// plan that actually executes.

#include "datalog/rule.h"
#include "eval/plan/plan_ir.h"
#include "eval/plan/planner.h"
#include "transform/compiled_expr.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::transform {

/// Compiles `rule` to the shared physical-plan IR (the exact planner every
/// evaluator uses — one compilation path, no parallel implementation).
Result<std::shared_ptr<const eval::plan::RulePlan>> LowerRule(
    const datalog::Rule& rule, const eval::PlanRelationLookup& lookup,
    const eval::plan::PlannerOptions& options = {});

/// Renders a physical plan in the paper's symbolic notation:
/// each component becomes a join chain of (σ-wrapped when filtered)
/// relation accesses, existence components are wrapped in ∃, and multiple
/// projection components combine with ×.
CompiledExpr RaisePlan(const eval::plan::RulePlan& plan,
                       const SymbolTable& symbols);

}  // namespace recur::transform

#endif  // RECUR_TRANSFORM_PLAN_LOWERING_H_
