#include "transform/stable_form.h"

namespace recur::transform {

Result<StableForm> ToStableForm(const datalog::LinearRecursiveRule& formula,
                                const datalog::Rule& exit_rule,
                                SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(classify::Classification cls,
                         classify::Classify(formula));
  return ToStableForm(formula, cls, exit_rule, symbols);
}

Result<StableForm> ToStableForm(const datalog::LinearRecursiveRule& formula,
                                const classify::Classification& cls,
                                const datalog::Rule& exit_rule,
                                SymbolTable* symbols) {
  if (!cls.transformable_to_stable) {
    return Status::Unsupported(
        "formula is not transformable to a stable formula (it has a "
        "multi-directional, dependent, or acyclic directed part)");
  }
  StableForm out;
  out.unfold_count = cls.unfold_count;
  int L = cls.unfold_count;

  // New recursive rule: the L-th expansion.
  RECUR_ASSIGN_OR_RETURN(datalog::Rule expanded,
                         datalog::Expand(formula, L, symbols));
  RECUR_ASSIGN_OR_RETURN(out.recursive,
                         datalog::LinearRecursiveRule::Create(expanded));

  // Exits: depths 0..L-1 resolved against the original exit rule.
  for (int k = 0; k < L; ++k) {
    RECUR_ASSIGN_OR_RETURN(
        datalog::Rule exit_k,
        datalog::ExpandWithExit(formula, k, exit_rule, symbols));
    out.exits.push_back(std::move(exit_k));
  }
  return out;
}

}  // namespace recur::transform
