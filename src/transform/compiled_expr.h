#ifndef RECUR_TRANSFORM_COMPILED_EXPR_H_
#define RECUR_TRANSFORM_COMPILED_EXPR_H_

#include <memory>
#include <string>
#include <vector>

namespace recur::transform {

/// A symbolic compiled formula / query evaluation plan in the paper's
/// notation. This IR exists to *print* compiled forms the way §4-§10 write
/// them (σ for selection, '-' for join, × for Cartesian product, ∃ for
/// existence checking, ∪_k with chain powers); execution is handled by the
/// specialized evaluators in eval/.
class CompiledExpr {
 public:
  enum class Kind {
    kRelation,   // named relation: A, E, ...
    kSelect,     // σ child
    kJoinChain,  // child_0 - child_1 - ... (the paper's join dash)
    kProduct,    // child_0 × child_1
    kUnionK,     // ∪_{k=0}^{∞} child   (child may contain kPower)
    kPower,      // child ^ k  (or ^ k+offset)
    kExists,     // ∃ child
    kParallel,   // {child_0 ∥ child_1} evaluated independently, then merged
    kSequence,   // child_0, child_1, ...   (a plan's ordered steps)
  };

  /// Factory helpers.
  static CompiledExpr Relation(std::string name);
  static CompiledExpr Select(CompiledExpr child);
  static CompiledExpr JoinChain(std::vector<CompiledExpr> children);
  static CompiledExpr Product(CompiledExpr a, CompiledExpr b);
  static CompiledExpr UnionK(CompiledExpr child);
  static CompiledExpr Power(CompiledExpr child, int offset = 0);
  static CompiledExpr Exists(CompiledExpr child);
  static CompiledExpr Parallel(std::vector<CompiledExpr> children);
  static CompiledExpr Sequence(std::vector<CompiledExpr> children);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::vector<CompiledExpr>& children() const { return children_; }
  int power_offset() const { return power_offset_; }

  /// Renders in the paper's notation, e.g.
  ///   "σE, (σA) × (∪_k [(E ⋈ B)(BA)^k])".
  std::string ToString() const;

 private:
  CompiledExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::vector<CompiledExpr> children_;
  int power_offset_ = 0;
};

}  // namespace recur::transform

#endif  // RECUR_TRANSFORM_COMPILED_EXPR_H_
