#include "transform/compiled_expr.h"

namespace recur::transform {

CompiledExpr CompiledExpr::Relation(std::string name) {
  CompiledExpr e(Kind::kRelation);
  e.name_ = std::move(name);
  return e;
}

CompiledExpr CompiledExpr::Select(CompiledExpr child) {
  CompiledExpr e(Kind::kSelect);
  e.children_.push_back(std::move(child));
  return e;
}

CompiledExpr CompiledExpr::JoinChain(std::vector<CompiledExpr> children) {
  CompiledExpr e(Kind::kJoinChain);
  e.children_ = std::move(children);
  return e;
}

CompiledExpr CompiledExpr::Product(CompiledExpr a, CompiledExpr b) {
  CompiledExpr e(Kind::kProduct);
  e.children_.push_back(std::move(a));
  e.children_.push_back(std::move(b));
  return e;
}

CompiledExpr CompiledExpr::UnionK(CompiledExpr child) {
  CompiledExpr e(Kind::kUnionK);
  e.children_.push_back(std::move(child));
  return e;
}

CompiledExpr CompiledExpr::Power(CompiledExpr child, int offset) {
  CompiledExpr e(Kind::kPower);
  e.children_.push_back(std::move(child));
  e.power_offset_ = offset;
  return e;
}

CompiledExpr CompiledExpr::Exists(CompiledExpr child) {
  CompiledExpr e(Kind::kExists);
  e.children_.push_back(std::move(child));
  return e;
}

CompiledExpr CompiledExpr::Parallel(std::vector<CompiledExpr> children) {
  CompiledExpr e(Kind::kParallel);
  e.children_ = std::move(children);
  return e;
}

CompiledExpr CompiledExpr::Sequence(std::vector<CompiledExpr> children) {
  CompiledExpr e(Kind::kSequence);
  e.children_ = std::move(children);
  return e;
}

std::string CompiledExpr::ToString() const {
  switch (kind_) {
    case Kind::kRelation:
      return name_;
    case Kind::kSelect:
      return "σ" + children_[0].ToString();
    case Kind::kJoinChain: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "-";
        bool paren = children_[i].kind_ == Kind::kSequence;
        out += paren ? "(" + children_[i].ToString() + ")"
                     : children_[i].ToString();
      }
      return out;
    }
    case Kind::kProduct:
      return "(" + children_[0].ToString() + ") × (" +
             children_[1].ToString() + ")";
    case Kind::kUnionK:
      return "∪_{k=0}^{∞} [" + children_[0].ToString() + "]";
    case Kind::kPower: {
      std::string base = children_[0].ToString();
      bool paren = children_[0].kind_ != Kind::kRelation;
      std::string exp =
          power_offset_ == 0
              ? "k"
              : "k" + std::string(power_offset_ > 0 ? "+" : "") +
                    std::to_string(power_offset_);
      return (paren ? "[" + base + "]" : base) + "^" + exp;
    }
    case Kind::kExists:
      return "∃(" + children_[0].ToString() + ")";
    case Kind::kParallel: {
      std::string out = "{";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " ∥ ";
        out += children_[i].ToString();
      }
      out += "}";
      return out;
    }
    case Kind::kSequence: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i].ToString();
      }
      return out;
    }
  }
  return "?";
}

}  // namespace recur::transform
