#ifndef RECUR_CATALOG_PAPER_EXAMPLES_H_
#define RECUR_CATALOG_PAPER_EXAMPLES_H_

#include <vector>

#include "classify/taxonomy.h"
#include "datalog/linear_rule.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::catalog {

/// One running example from the paper, with the properties the paper states
/// (or that follow directly from its theorems). Variables are upper-cased
/// relative to the paper's figures (the parser's Prolog convention); the
/// renderers lower-case them again for figure output.
struct PaperExample {
  const char* id;         // e.g. "s1a"
  const char* rule;       // the recursive rule, parser syntax
  const char* exit_rule;  // generic exit rule P :- E
  classify::FormulaClass expected_class;
  bool strongly_stable;
  bool transformable;
  int unfold_count;  // meaningful when transformable
  bool bounded;
  int rank_bound;  // meaningful when bounded
  const char* notes;
};

/// All examples (s1a)-(s12) of the paper.
const std::vector<PaperExample>& PaperExamples();

/// Looks up an example by id; nullptr if unknown.
const PaperExample* FindExample(const char* id);

/// Parses an example's recursive rule into a validated formula.
Result<datalog::LinearRecursiveRule> ParseExample(const PaperExample& example,
                                                  SymbolTable* symbols);

}  // namespace recur::catalog

#endif  // RECUR_CATALOG_PAPER_EXAMPLES_H_
