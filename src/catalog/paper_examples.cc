#include "catalog/paper_examples.h"

#include <cstring>

#include "datalog/parser.h"

namespace recur::catalog {

using classify::FormulaClass;

const std::vector<PaperExample>& PaperExamples() {
  // Notes on classes: the paper's lettering assigns a formula to A1..A4
  // only when *all* components share that class; disjoint combinations of
  // different Ai's are A5 and combinations across letters are F. The
  // trailing "same-variable" positions (like y in s1a) are unit
  // permutational (A2) components, so the classic transitive-closure rule
  // s1a is formally A5 = {A1, A2}; it is strongly stable either way, which
  // is the property §4.1 actually uses.
  static const std::vector<PaperExample>* examples =
      new std::vector<PaperExample>{
          {"s1a", "P(X, Y) :- A(X, Z), P(Z, Y).", "P(X, Y) :- E(X, Y).",
           FormulaClass::kA5, true, true, 1, false, 0,
           "transitive-closure shape; disjoint unit cycles {A1, A2}"},
          {"s1b", "P(X, Y, Z) :- A(X, Y), P(U, Z, V), B(U, V).",
           "P(X, Y, Z) :- E(X, Y, Z).", FormulaClass::kC, false, false, 1,
           false, 0, "independent multi-directional cycle of weight 1"},
          {"s2a", "P(X, Y) :- A(X, Z), P(Z, U), B(U, Y).",
           "P(X, Y) :- E(X, Y).", FormulaClass::kA1, true, true, 1, false, 0,
           "two disjoint unit rotational cycles"},
          {"s3", "P(X, Y, Z) :- A(X, U), B(Y, V), P(U, V, W), C(W, Z).",
           "P(X, Y, Z) :- E(X, Y, Z).", FormulaClass::kA1, true, true, 1,
           false, 0, "three disjoint unit rotational cycles (Example 3)"},
          {"s4a", "P(X1, X2, X3) :- A(X1, Y3), B(X2, Y1), C(Y2, X3), "
                  "P(Y1, Y2, Y3).",
           "P(X1, X2, X3) :- E(X1, X2, X3).", FormulaClass::kA3, false, true,
           3, false, 0,
           "independent one-directional cycle of weight 3 (Example 4)"},
          {"s5", "P(X, Y, Z) :- P(Y, Z, X).", "P(X, Y, Z) :- E(X, Y, Z).",
           FormulaClass::kA4, false, true, 3, true, 2,
           "permutational cycle of weight 3; bounded (Example 5)"},
          {"s6", "P(X, Y, Z, U, V, W) :- P(Z, Y, U, X, W, V).",
           "P(X, Y, Z, U, V, W) :- E(X, Y, Z, U, V, W).", FormulaClass::kA5,
           false, true, 6, true, 5,
           "permutational cycles of weights 3, 1, 2; stable after 6 "
           "expansions (Example 6); bound LCM-1 = 5 by Theorem 10"},
          {"s7", "P(X, Y, Z, U, W, S, V) :- A(X, T), "
                 "P(T, Z, Y, W, S, R, V), B(U, R).",
           "P(X, Y, Z, U, W, S, V) :- E(X, Y, Z, U, W, S, V).",
           FormulaClass::kA5, false, true, 6, false, 0,
           "disjoint one-directional cycles of weights 1, 2, 3, 1; stable "
           "after LCM = 6 expansions (Example 7)"},
          {"s8", "P(X, Y, Z, U) :- A(X, Y), B(Y1, U), C(Z1, U1), "
                 "P(Z, Y1, Z1, U1).",
           "P(X, Y, Z, U) :- E(X, Y, Z, U).", FormulaClass::kB, false, false,
           1, true, 2,
           "bounded cycle of weight 0; Ioannidis bound 2 (Example 8)"},
          {"s9", "P(X, Y, Z) :- A(X, Y), B(U, V), P(U, Z, V).",
           "P(X, Y, Z) :- E(X, Y, Z).", FormulaClass::kC, false, false, 1,
           false, 0,
           "independent multi-directional cycle of non-zero weight "
           "(Example 9)"},
          {"s10", "P(X, Y) :- B(Y), C(X, Y1), P(X1, Y1).",
           "P(X, Y) :- E(X, Y).", FormulaClass::kD, false, false, 1, true, 2,
           "no non-trivial cycles; upper bound 2 (Example 10)"},
          {"s11", "P(X, Y) :- A(X, X1), B(Y, Y1), C(X1, Y1), P(X1, Y1).",
           "P(X, Y) :- E(X, Y).", FormulaClass::kE, false, false, 1, false,
           0, "dependent unit cycles joined by C (Example 11)"},
          {"s12", "P(X, Y, Z) :- A(X, U), B(Y, V), C(U, V), D(W, Z), "
                  "P(U, V, W).",
           "P(X, Y, Z) :- E(X, Y, Z).", FormulaClass::kF, false, false, 1,
           false, 0,
           "mixed: dependent pair {x,u|y,v} plus unit rotational {w,z} "
           "(Example 14; the paper's text says classes (D) and (A1), but "
           "the {x,u,y,v} component is the dependent pattern of s11 — see "
           "EXPERIMENTS.md)"},
      };
  return *examples;
}

const PaperExample* FindExample(const char* id) {
  for (const PaperExample& e : PaperExamples()) {
    if (std::strcmp(e.id, id) == 0) return &e;
  }
  return nullptr;
}

Result<datalog::LinearRecursiveRule> ParseExample(const PaperExample& example,
                                                  SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(datalog::Rule rule,
                         datalog::ParseRule(example.rule, symbols));
  return datalog::LinearRecursiveRule::Create(std::move(rule));
}

}  // namespace recur::catalog
