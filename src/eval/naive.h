#ifndef RECUR_EVAL_NAIVE_H_
#define RECUR_EVAL_NAIVE_H_

#include <unordered_map>

#include "datalog/program.h"
#include "eval/conjunctive.h"
#include "eval/execution_context.h"
#include "eval/query.h"
#include "ra/database.h"

namespace recur::eval {

/// The computed intensional relations, one per IDB predicate.
using IdbRelations = std::unordered_map<SymbolId, ra::Relation>;

struct FixpointOptions {
  /// Resource ceilings for the evaluation: fixpoint rounds, wall-clock
  /// deadline, tuple budget, and arena-byte budget. When `context` is set,
  /// the context's limits win and these are ignored.
  ResourceLimits limits;
  /// Optional externally owned execution context. Lets the caller Cancel()
  /// a running evaluation from another thread and share one deadline across
  /// several engine invocations. When null, engines build a private context
  /// from `limits` at entry.
  const ExecutionContext* context = nullptr;
  /// Worker threads for semi-naive evaluation. 1 (the default) runs the
  /// serial engine; >1 hash-shards each round's deltas and evaluates the
  /// (rule, delta-atom, shard) tasks on a fixed-size thread pool. Results
  /// are identical either way.
  int num_threads = 1;
  /// Number of hash shards each delta is split into per round; 0 picks
  /// 4 * num_threads (enough slack for work stealing without drowning in
  /// tiny shards).
  int shard_count = 0;
  /// Populate the per-round, per-rule EvalStats::rounds tree (adds timing
  /// calls per rule; leave off in benchmarks of the engine itself).
  bool collect_stats = false;
  /// Cache compiled physical plans across fixpoint rounds (the default).
  /// Disable only for ablation: every rule evaluation then replans from
  /// the current cardinalities — see bench_parallel's NoPlanCache series.
  bool plan_cache = true;
  /// Lanes per executor register batch. 0 -> the vectorized default
  /// (plan::kExecutorBatchLanes, 1024); 1 degenerates to tuple-at-a-time
  /// execution — the vectorization ablation (bench_parallel's NoVector
  /// series).
  size_t executor_batch_rows = 0;
};

/// Naive bottom-up fixpoint: re-derives from the full relations every round
/// until nothing new appears. The baseline of baselines.
Result<IdbRelations> NaiveEvaluate(const datalog::Program& program,
                                   const ra::Database& edb,
                                   const FixpointOptions& options = {},
                                   EvalStats* stats = nullptr);

/// Answers `query` by full naive materialization followed by selection.
Result<ra::Relation> NaiveAnswer(const datalog::Program& program,
                                 const ra::Database& edb, const Query& query,
                                 const FixpointOptions& options = {},
                                 EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_NAIVE_H_
