#ifndef RECUR_EVAL_NAIVE_H_
#define RECUR_EVAL_NAIVE_H_

#include <unordered_map>

#include "datalog/program.h"
#include "eval/conjunctive.h"
#include "eval/query.h"
#include "ra/database.h"

namespace recur::eval {

/// The computed intensional relations, one per IDB predicate.
using IdbRelations = std::unordered_map<SymbolId, ra::Relation>;

struct FixpointOptions {
  /// Hard cap on fixpoint rounds (a safety valve; the fixpoint of a Datalog
  /// program over a finite database always terminates well below this).
  int max_iterations = 1 << 20;
};

/// Naive bottom-up fixpoint: re-derives from the full relations every round
/// until nothing new appears. The baseline of baselines.
Result<IdbRelations> NaiveEvaluate(const datalog::Program& program,
                                   const ra::Database& edb,
                                   const FixpointOptions& options = {},
                                   EvalStats* stats = nullptr);

/// Answers `query` by full naive materialization followed by selection.
Result<ra::Relation> NaiveAnswer(const datalog::Program& program,
                                 const ra::Database& edb, const Query& query,
                                 const FixpointOptions& options = {},
                                 EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_NAIVE_H_
