#include "eval/plan/planner.h"

#include <algorithm>
#include <unordered_set>

#include "eval/plan/cost_model.h"
#include "graph/components.h"

namespace recur::eval::plan {

namespace {

/// Modelled cost of issuing one index probe (hashing the key, Bloom test,
/// bucket walk) relative to examining one scanned row. Only the ordering
/// among candidate atoms matters, not the absolute scale.
constexpr double kProbeCost = 2.0;

const ra::Relation* ResolveForPlanning(int atom_index, SymbolId predicate,
                                       const PlanRelationLookup& lookup,
                                       const PlannerOptions& options) {
  if (atom_index == options.override_index) return options.override_relation;
  return lookup(predicate);
}

/// Cost profile of accessing one candidate atom given the registers bound
/// so far. `matches` is the calibrated estimate of rows passed downstream
/// per input row; `avg_bucket` the uncalibrated expected candidates per
/// probe (the skew signal for the sort-merge strategy); `score` the
/// greedy objective: per-input-row access work plus rows fed downstream
/// (the shared est_in factor drops out of the argmin).
struct AtomCost {
  double matches = 0;
  double avg_bucket = 0;
  int bound_cols = 0;
  double score = 0;
};

}  // namespace

Result<std::shared_ptr<const RulePlan>> PlanRule(
    const datalog::Rule& rule, const PlanRelationLookup& lookup,
    const PlannerOptions& options) {
  auto plan = std::make_shared<RulePlan>();
  const std::vector<datalog::Atom>& body = rule.body();
  const int num_atoms = static_cast<int>(body.size());
  plan->head_arity = rule.head().arity();
  plan->delta_index = options.override_index;

  // Bound-variable signature: sorted so one signature means one plan.
  std::unordered_set<SymbolId> bound;
  if (options.bindings != nullptr) {
    for (const auto& [var, value] : *options.bindings) {
      (void)value;
      plan->bound_vars.push_back(var);
      bound.insert(var);
    }
    std::sort(plan->bound_vars.begin(), plan->bound_vars.end());
  }
  const int num_bound = static_cast<int>(plan->bound_vars.size());
  plan->frame_size = num_bound;

  // Partition the body atoms by shared *unbound* variables. Pre-bound
  // variables act as constants, so atoms related only through them stay
  // independent — disconnected groups evaluate separately and recombine by
  // Cartesian product / existence checks, the paper's principle that keeps
  // depth-k expansions of bounded formulas polynomial.
  graph::UnionFind uf(num_atoms);
  {
    std::unordered_map<SymbolId, int> first_atom_with_var;
    for (int i = 0; i < num_atoms; ++i) {
      for (const datalog::Term& t : body[i].args()) {
        if (!t.IsVariable() || bound.count(t.symbol()) > 0) continue;
        auto [it, inserted] = first_atom_with_var.emplace(t.symbol(), i);
        if (!inserted) uf.Union(i, it->second);
      }
    }
  }
  // Components in first-atom order, for deterministic plans and explains.
  std::vector<std::vector<int>> component_atoms;
  {
    std::unordered_map<int, int> root_to_component;
    for (int i = 0; i < num_atoms; ++i) {
      auto [it, inserted] = root_to_component.emplace(
          uf.Find(i), static_cast<int>(component_atoms.size()));
      if (inserted) component_atoms.emplace_back();
      component_atoms[it->second].push_back(i);
    }
  }

  for (int i = 0; i < num_atoms; ++i) {
    const ra::Relation* rel =
        ResolveForPlanning(i, body[i].predicate(), lookup, options);
    plan->planned_cardinalities.emplace_back(i, rel ? rel->size() : 0);
  }

  // Head variables in first-occurrence order.
  std::vector<SymbolId> head_var_list;
  for (const datalog::Term& t : rule.head().args()) {
    if (t.IsVariable() &&
        std::find(head_var_list.begin(), head_var_list.end(), t.symbol()) ==
            head_var_list.end()) {
      head_var_list.push_back(t.symbol());
    }
  }

  // Compile each component's pipeline.
  struct BuiltComponent {
    ComponentPlan cp;
    double final_est = 1.0;
  };
  std::vector<BuiltComponent> built;
  // Head var -> (index into `built`, register within that component).
  std::unordered_map<SymbolId, std::pair<int, int>> head_var_home;
  int next_counter = 0;

  // Distinct-count memo: the greedy cost loop evaluates every remaining
  // atom at every step, so each (atom, column) statistic is computed at
  // most once per planning call.
  std::unordered_map<int64_t, double> distinct_cache;
  auto distinct_of = [&](int atom_index, int col) -> double {
    const int64_t cache_key = (static_cast<int64_t>(atom_index) << 16) | col;
    auto it = distinct_cache.find(cache_key);
    if (it != distinct_cache.end()) return it->second;
    const ra::Relation* rel = ResolveForPlanning(
        atom_index, body[atom_index].predicate(), lookup, options);
    double d = 1.0;
    if (rel != nullptr) {
      d = static_cast<double>(
          std::max<size_t>(1, rel->ColumnValues(col).size()));
    }
    distinct_cache.emplace(cache_key, d);
    return d;
  };
  auto cost_of = [&](int atom_index,
                     const std::unordered_map<SymbolId, int>& regs) {
    const datalog::Atom& atom = body[atom_index];
    const double n = static_cast<double>(
        plan->planned_cardinalities[atom_index].second);
    AtomCost c;
    double sel = 1.0;
    for (int col = 0; col < atom.arity(); ++col) {
      const datalog::Term& t = atom.args()[col];
      if (t.IsConstant() ||
          (t.IsVariable() && regs.count(t.symbol()) > 0)) {
        sel /= distinct_of(atom_index, col);
        ++c.bound_cols;
      }
    }
    c.avg_bucket = n * sel;
    double correction = 1.0;
    if (options.calibration != nullptr) {
      correction = options.calibration->Correction(
          atom.predicate(), static_cast<size_t>(c.bound_cols));
    }
    c.matches = c.avg_bucket * correction;
    const double access = c.bound_cols > 0 ? kProbeCost + c.avg_bucket : n;
    c.score = access + c.matches;
    return c;
  };

  for (const std::vector<int>& atoms : component_atoms) {
    BuiltComponent bc;
    std::unordered_map<SymbolId, int> regs;
    for (int i = 0; i < num_bound; ++i) regs[plan->bound_vars[i]] = i;
    int next_reg = num_bound;
    double est = 1.0;

    std::vector<int> remaining = atoms;
    while (!remaining.empty()) {
      // Greedy minimum-cost pick: access work plus calibrated rows fed
      // downstream. Ties (identical statistics) break toward more bound
      // columns, then the smaller relation, then body order — all
      // deterministic, so one rule always compiles to one plan.
      size_t pick = 0;
      if (options.reorder_atoms) {
        AtomCost best;
        size_t best_card = 0;
        bool have_best = false;
        for (size_t i = 0; i < remaining.size(); ++i) {
          const int idx = remaining[i];
          const AtomCost c = cost_of(idx, regs);
          const size_t card = plan->planned_cardinalities[idx].second;
          const bool better =
              !have_best || c.score < best.score ||
              (c.score == best.score &&
               (c.bound_cols > best.bound_cols ||
                (c.bound_cols == best.bound_cols && card < best_card)));
          if (better) {
            best = c;
            best_card = card;
            pick = i;
            have_best = true;
          }
        }
      }
      const int atom_index = remaining[pick];
      remaining.erase(remaining.begin() + pick);
      const datalog::Atom& atom = body[atom_index];
      const AtomCost atom_cost = cost_of(atom_index, regs);

      Op op;
      op.atom_index = atom_index;
      op.predicate = atom.predicate();
      op.arity = atom.arity();
      // Fresh variables enter `regs` only after the whole atom is
      // classified: a repeat within this atom is an intra-row equality,
      // not a probe against a register no upstream operator has written.
      std::unordered_map<SymbolId, int> first_col_in_atom;
      for (int col = 0; col < atom.arity(); ++col) {
        const datalog::Term& t = atom.args()[col];
        if (t.IsConstant()) {
          const auto value = static_cast<ra::Value>(t.symbol());
          op.const_checks.push_back({col, value});
          op.probe_cols.push_back(col);
          op.probe_regs.push_back(-1);
          op.probe_consts.push_back(value);
          continue;
        }
        auto reg_it = regs.find(t.symbol());
        if (reg_it != regs.end()) {
          op.reg_checks.push_back({col, reg_it->second});
          op.probe_cols.push_back(col);
          op.probe_regs.push_back(reg_it->second);
          op.probe_consts.push_back(0);
          continue;
        }
        auto [first_it, fresh] =
            first_col_in_atom.emplace(t.symbol(), col);
        if (!fresh) {
          op.intra_checks.push_back({first_it->second, col});
          continue;
        }
        op.outputs.push_back({col, next_reg});
        ++next_reg;
      }
      for (const RegOutput& o : op.outputs) {
        regs[atom.args()[o.atom_col].symbol()] = o.reg;
      }
      op.kind = OpKind::kIndexScan;
      for (int reg : op.probe_regs) {
        if (reg >= 0) op.kind = OpKind::kHashJoinProbe;
      }
      if (!op.probe_cols.empty()) plan->has_join = true;

      // Estimate: equality selectivity 1/distinct(column) per probe
      // column, multiplied by the cost model's measured correction for
      // this (predicate, probe width) — the same AtomCost the greedy
      // pick ranked on (residual intra-atom checks are not modelled).
      op.base_rows = plan->planned_cardinalities[atom_index].second;
      est *= atom_cost.matches;
      op.est_rows = est;
      op.planned_avg_bucket = atom_cost.avg_bucket;
      op.counter_slot = next_counter++;
      bc.cp.ops.push_back(std::move(op));
    }

    for (SymbolId h : head_var_list) {
      if (bound.count(h) > 0) continue;
      auto it = regs.find(h);
      if (it == regs.end()) continue;
      head_var_home[h] = {static_cast<int>(built.size()), it->second};
      bc.cp.head_vars.push_back(h);
      bc.cp.head_regs.push_back(it->second);
    }
    plan->frame_size = std::max(plan->frame_size, next_reg);
    bc.final_est = est;
    built.push_back(std::move(bc));
  }

  // Existence-only components run first: they are cheap, early-exit, and
  // can zero out the whole rule before any projection work happens.
  std::vector<int> order;
  for (int i = 0; i < static_cast<int>(built.size()); ++i) {
    if (built[i].cp.head_regs.empty()) order.push_back(i);
  }
  std::vector<int> projection_components;
  for (int i = 0; i < static_cast<int>(built.size()); ++i) {
    if (!built[i].cp.head_regs.empty()) {
      projection_components.push_back(i);
      order.push_back(i);
    }
  }
  plan->streaming = projection_components.size() <= 1;
  plan->est_head_rows = 1.0;
  for (int i : projection_components) {
    plan->est_head_rows *= built[i].final_est;
  }

  // Combined-row layout for non-streaming plans:
  // [bound prefix | projection of first projection component | ...].
  std::unordered_map<SymbolId, int> combined_col;
  if (!plan->streaming) {
    int offset = num_bound;
    for (int i : projection_components) {
      ComponentPlan& cp = built[i].cp;
      Op project;
      project.kind = OpKind::kProject;
      project.project_regs = cp.head_regs;
      cp.ops.push_back(std::move(project));
      for (size_t k = 0; k < cp.head_vars.size(); ++k) {
        combined_col[cp.head_vars[k]] = offset + static_cast<int>(k);
      }
      offset += static_cast<int>(cp.head_vars.size());
    }
  }

  for (int i : order) plan->components.push_back(std::move(built[i].cp));

  // Physical probe strategy. Within a multi-join component (two or more
  // register-keyed probes) a probe whose planned average bucket is skewed
  // past the threshold takes the sort-merge access path: long hash chains
  // scatter cache accesses, while the sorted index serves the same
  // candidates from one contiguous range. The signature records every
  // choice so the plan cache can invalidate when drifted cardinalities
  // would pick differently.
  for (ComponentPlan& comp : plan->components) {
    int probe_ops = 0;
    for (const Op& op : comp.ops) {
      if (op.kind == OpKind::kHashJoinProbe) ++probe_ops;
    }
    for (Op& op : comp.ops) {
      if (op.kind != OpKind::kHashJoinProbe) continue;
      if (options.enable_sort_merge && probe_ops >= 2 &&
          op.planned_avg_bucket >= kSortMergeSkewThreshold) {
        op.strategy = ProbeStrategy::kSortMerge;
      }
      plan->strategy_signature +=
          op.strategy == ProbeStrategy::kSortMerge ? 's' : 'h';
    }
  }

  // Head slot mapping. Streaming plans read frame registers directly
  // (pre-bound variables live in the shared register prefix); combined
  // plans read columns of the combined row.
  plan->head.resize(plan->head_arity);
  for (int i = 0; i < plan->head_arity; ++i) {
    const datalog::Term& t = rule.head().args()[i];
    HeadSlot& slot = plan->head[i];
    if (t.IsConstant()) {
      slot.col = -1;
      slot.constant = static_cast<ra::Value>(t.symbol());
      continue;
    }
    if (bound.count(t.symbol()) > 0) {
      // Bound prefix: same position in the frame and the combined row.
      const auto it = std::find(plan->bound_vars.begin(),
                                plan->bound_vars.end(), t.symbol());
      slot.col = static_cast<int>(it - plan->bound_vars.begin());
      continue;
    }
    auto home = head_var_home.find(t.symbol());
    if (home == head_var_home.end()) {
      return Status::InvalidArgument(
          "head variable not bound by the body (rule not range restricted)");
    }
    if (plan->streaming) {
      slot.col = home->second.second;
    } else {
      slot.col = combined_col.at(t.symbol());
    }
  }

  plan->num_counters = next_counter;
  if (next_counter > 0) {
    plan->actual_rows =
        std::make_unique<std::atomic<size_t>[]>(next_counter);
    plan->actual_probes =
        std::make_unique<std::atomic<size_t>[]>(next_counter);
    plan->actual_batches =
        std::make_unique<std::atomic<size_t>[]>(next_counter);
    for (int i = 0; i < next_counter; ++i) {
      plan->actual_rows[i].store(0, std::memory_order_relaxed);
      plan->actual_probes[i].store(0, std::memory_order_relaxed);
      plan->actual_batches[i].store(0, std::memory_order_relaxed);
    }
  }
  return std::shared_ptr<const RulePlan>(std::move(plan));
}

std::string PlanKey(const datalog::Rule& rule,
                    const PlannerOptions& options) {
  std::string key;
  key.reserve(64);
  auto append_atom = [&key](const datalog::Atom& atom) {
    key += std::to_string(atom.predicate());
    key += '(';
    for (const datalog::Term& t : atom.args()) {
      key += t.IsConstant() ? 'c' : 'v';
      key += std::to_string(t.symbol());
      key += ',';
    }
    key += ')';
  };
  append_atom(rule.head());
  key += ":-";
  for (const datalog::Atom& atom : rule.body()) append_atom(atom);
  key += "#d";
  key += std::to_string(options.override_index);
  key += options.reorder_atoms ? "#r1" : "#r0";
  // The physical-strategy mode is part of plan identity: a plan compiled
  // with sort-merge enabled must not serve a lookup that disabled it.
  key += options.enable_sort_merge ? "#s1" : "#s0";
  key += "#b";
  if (options.bindings != nullptr) {
    std::vector<SymbolId> vars;
    for (const auto& [var, value] : *options.bindings) {
      (void)value;
      vars.push_back(var);
    }
    std::sort(vars.begin(), vars.end());
    for (SymbolId v : vars) {
      key += std::to_string(v);
      key += ',';
    }
  }
  return key;
}

}  // namespace recur::eval::plan
