#ifndef RECUR_EVAL_PLAN_COST_MODEL_H_
#define RECUR_EVAL_PLAN_COST_MODEL_H_

// CostModel: the planner's measured feedback loop. Every RulePlan already
// records estimated and actual per-operator cardinalities (rendered by
// ExplainPlan); when the plan cache retires a plan, the est-vs-actual
// ratios fold into per-(predicate, probe-width) correction factors, and
// subsequent planning multiplies its selectivity estimates by the learned
// correction. Corrections are geometric means in log space, clamped so a
// few wild observations cannot capsize the ordering.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>

#include "eval/plan/plan_ir.h"
#include "util/symbol_table.h"

namespace recur::eval::plan {

class CostModel {
 public:
  /// Folds a retiring plan's per-operator est-vs-actual cardinalities
  /// into the correction table. Actual counters are accumulated across
  /// executions, so the plan's execution count divides them back into
  /// per-execution averages first. Thread-safe.
  void Observe(const RulePlan& plan);

  /// Multiplicative correction for the planner's estimate of rows an
  /// access to `predicate` with `probe_width` bound columns passes
  /// downstream. 1.0 until observations exist; clamped to [1/16, 16].
  double Correction(SymbolId predicate, size_t probe_width) const;

  /// Number of Observe() calls folded in (a cheap version stamp: plans
  /// compiled under different calibration states are distinguishable).
  size_t observations() const {
    return observations_.load(std::memory_order_relaxed);
  }

 private:
  struct Accumulator {
    double log_ratio_sum = 0;
    size_t count = 0;
  };

  static uint64_t Key(SymbolId predicate, size_t probe_width) {
    return (static_cast<uint64_t>(predicate) << 4) |
           (probe_width < 15 ? probe_width : 15);
  }

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, Accumulator> corrections_;
  std::atomic<size_t> observations_{0};
};

}  // namespace recur::eval::plan

#endif  // RECUR_EVAL_PLAN_COST_MODEL_H_
