#ifndef RECUR_EVAL_PLAN_EXECUTOR_H_
#define RECUR_EVAL_PLAN_EXECUTOR_H_

// Vectorized push-based executor for compiled RulePlans. Register frames
// flow between operators in column-major batches of up to batch_rows
// lanes: scans bind output registers with contiguous columnar gathers,
// probes hash/Bloom-test/prefetch a whole batch of keys through
// ra::Relation::ProbeBatch before touching any bucket, and ConstFilter
// refines selection vectors instead of copying rows. Candidate rows
// stream out of the arena-backed relation indexes as TupleRef spans — no
// per-tuple hash maps anywhere on the hot path. Resource-governance
// polling (cancel/deadline) and the plan.executor.batch fault site fire
// at batch boundaries once kExecutorBatchRows candidate rows have
// accumulated, so a cancelled evaluation stops mid-rule instead of
// mid-round.

#include <unordered_map>
#include <vector>

#include "eval/execution_context.h"
#include "eval/plan/plan_ir.h"
#include "eval/plan/planner.h"
#include "ra/relation.h"
#include "util/result.h"

namespace recur::eval {
struct EvalStats;
}  // namespace recur::eval

namespace recur::eval::plan {

/// Candidate rows examined between governance polls inside the executor.
/// Independent of the lane count: shrinking batch_rows for the ablation
/// does not change how often a run polls for cancellation.
inline constexpr size_t kExecutorBatchRows = 4096;

/// Default lanes per register batch when ExecOptions::batch_rows is 0.
inline constexpr size_t kExecutorBatchLanes = 1024;

struct ExecOptions {
  /// The delta relation substituted at the plan's delta_index; nullptr
  /// behaves like an unknown relation (no derivations).
  const ra::Relation* override_relation = nullptr;
  /// Values for the plan's bound-variable prefix; must cover every
  /// variable in plan.bound_vars.
  const std::unordered_map<SymbolId, ra::Value>* bindings = nullptr;
  /// Optional governance handle polled per operator batch.
  const ExecutionContext* context = nullptr;
  /// Optional stats sink (tuples_considered / join_probes / ...).
  EvalStats* stats = nullptr;
  /// Lanes per register batch. 0 -> kExecutorBatchLanes; 1 degenerates to
  /// tuple-at-a-time execution (the vectorization-ablation baseline).
  size_t batch_rows = 0;
};

/// Executes `plan` against the relations provided by `lookup`, returning
/// the derived head relation. Unknown relations yield an empty result;
/// relation/atom arity mismatches are InvalidArgument; cancellation and
/// deadline breaches surface as kCancelled / kDeadlineExceeded.
Result<ra::Relation> ExecutePlan(const RulePlan& plan,
                                 const PlanRelationLookup& lookup,
                                 const ExecOptions& options);

/// The standalone ConstFilter primitive: batches `in`'s row ids through a
/// RowBatch whose selection vector each check refines in place, then
/// copies the surviving rows into `out` (same arity), polling `context`
/// at every batch entry. Returns how many rows were new to `out`.
/// Query::FilterInto and full-scan constant-selection paths share this
/// one loop.
Result<size_t> FilterRelation(const ra::Relation& in,
                              const std::vector<ConstCheck>& checks,
                              const ExecutionContext* context,
                              ra::Relation* out);

/// The standalone constant-keyed IndexScan primitive: probes `in`'s hash
/// index on the check columns and copies verified matches into `out`,
/// polling `context` per batch. Returns how many rows were new to `out`.
/// The special query plans route their σ selection steps through this so
/// hand-derived plans share the pipeline's access path and governance.
Result<size_t> SelectInto(const ra::Relation& in,
                          const std::vector<ConstCheck>& checks,
                          const ExecutionContext* context, ra::Relation* out);

}  // namespace recur::eval::plan

#endif  // RECUR_EVAL_PLAN_EXECUTOR_H_
