#include "eval/plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace recur::eval::plan {

namespace {
constexpr double kMaxCorrection = 16.0;
}  // namespace

void CostModel::Observe(const RulePlan& plan) {
  const size_t executions = plan.executions.load(std::memory_order_relaxed);
  if (executions == 0 || plan.num_counters == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ComponentPlan& comp : plan.components) {
    for (const Op& op : comp.ops) {
      if (op.kind == OpKind::kProject || op.counter_slot < 0) continue;
      const double actual =
          static_cast<double>(plan.actual_rows[op.counter_slot].load(
              std::memory_order_relaxed)) /
          static_cast<double>(executions);
      // +1 smoothing on both sides: zero-row operators still teach the
      // model something without driving the log ratio to -inf.
      const double ratio = (actual + 1.0) / (op.est_rows + 1.0);
      Accumulator& acc = corrections_[Key(op.predicate,
                                          op.probe_cols.size())];
      acc.log_ratio_sum += std::log(ratio);
      ++acc.count;
    }
  }
  observations_.fetch_add(1, std::memory_order_relaxed);
}

double CostModel::Correction(SymbolId predicate, size_t probe_width) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = corrections_.find(Key(predicate, probe_width));
  if (it == corrections_.end() || it->second.count == 0) return 1.0;
  const double mean = std::exp(it->second.log_ratio_sum /
                               static_cast<double>(it->second.count));
  return std::clamp(mean, 1.0 / kMaxCorrection, kMaxCorrection);
}

}  // namespace recur::eval::plan
