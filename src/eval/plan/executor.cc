#include "eval/plan/executor.h"

#include <algorithm>

#include "eval/conjunctive.h"
#include "util/fault_injection.h"

namespace recur::eval::plan {

namespace {

/// One plan execution. Lives for a single ExecutePlan call; accumulates
/// per-operator counters locally and flushes them into the shared plan's
/// atomics once at the end, so parallel shard tasks executing one cached
/// plan pay one atomic add per operator, not one per row.
class Runner {
 public:
  Runner(const RulePlan& plan, const PlanRelationLookup& lookup,
         const ExecOptions& options)
      : plan_(plan),
        lookup_(lookup),
        options_(options),
        frame_(static_cast<size_t>(plan.frame_size), 0),
        local_rows_(static_cast<size_t>(plan.num_counters), 0),
        local_probes_(static_cast<size_t>(plan.num_counters), 0),
        out_(plan.head_arity) {}

  Result<ra::Relation> Run();

 private:
  /// Sinks: what happens to a frame that survives a whole pipeline.
  enum class Mode { kExistence, kStream };

  Status ResolveRelations();
  /// Runs ops[op_index...]; returns false to abort enumeration (existence
  /// satisfied, or status_ became non-OK).
  bool RunOps(const ComponentPlan& comp, size_t op_index, Mode mode,
              ra::Relation* project_target);
  bool RowPasses(const Op& op, ra::TupleRef row) const;
  bool EmitHead(const ra::Value* source);
  /// Operator-batch governance poll.
  bool Tick();
  void FlushCounters();

  const RulePlan& plan_;
  const PlanRelationLookup& lookup_;
  const ExecOptions& options_;
  std::vector<ra::Value> frame_;
  std::vector<ra::Value> key_;  // probe-key scratch
  std::unordered_map<int, const ra::Relation*> relations_;  // by atom index
  std::vector<size_t> local_rows_;
  std::vector<size_t> local_probes_;
  size_t local_head_rows_ = 0;
  size_t produced_ = 0;
  size_t rows_since_tick_ = 0;
  bool existence_found_ = false;
  bool missing_relation_ = false;
  Status status_;
  ra::Relation out_;
};

Status Runner::ResolveRelations() {
  for (const ComponentPlan& comp : plan_.components) {
    for (const Op& op : comp.ops) {
      if (op.kind == OpKind::kProject) continue;
      const ra::Relation* rel = op.atom_index == plan_.delta_index
                                    ? options_.override_relation
                                    : lookup_(op.predicate);
      if (rel == nullptr) {
        missing_relation_ = true;
        continue;
      }
      if (rel->arity() != op.arity) {
        return Status::InvalidArgument(
            "relation arity does not match atom arity");
      }
      relations_[op.atom_index] = rel;
    }
  }
  return Status::OK();
}

bool Runner::RowPasses(const Op& op, ra::TupleRef row) const {
  // Probe-key columns are re-verified here: multi-column candidates come
  // from a hash bucket and may collide.
  for (const ConstCheck& c : op.const_checks) {
    if (row[c.atom_col] != c.value) return false;
  }
  for (const RegCheck& c : op.reg_checks) {
    if (row[c.atom_col] != frame_[c.reg]) return false;
  }
  for (const IntraCheck& c : op.intra_checks) {
    if (row[c.first_col] != row[c.later_col]) return false;
  }
  return true;
}

bool Runner::Tick() {
  if (++rows_since_tick_ < kExecutorBatchRows) return true;
  rows_since_tick_ = 0;
  status_ = util::FaultInjector::Instance().Check("plan.executor.batch");
  if (status_.ok() && options_.context != nullptr) {
    status_ = options_.context->CheckCancel();
  }
  return status_.ok();
}

bool Runner::EmitHead(const ra::Value* source) {
  ra::Value* dst = out_.StageRow();
  for (int i = 0; i < plan_.head_arity; ++i) {
    const HeadSlot& slot = plan_.head[i];
    dst[i] = slot.col >= 0 ? source[slot.col] : slot.constant;
  }
  ++local_head_rows_;
  if (out_.CommitStagedRow()) ++produced_;
  return true;
}

bool Runner::RunOps(const ComponentPlan& comp, size_t op_index, Mode mode,
                    ra::Relation* project_target) {
  if (op_index == comp.ops.size()) {
    if (mode == Mode::kExistence) {
      existence_found_ = true;
      return false;  // one witness is enough
    }
    return EmitHead(frame_.data());
  }
  const Op& op = comp.ops[op_index];
  if (op.kind == OpKind::kProject) {
    ra::Value* dst = project_target->StageRow();
    for (int reg : op.project_regs) *dst++ = frame_[reg];
    project_target->CommitStagedRow();
    return true;
  }

  auto it = relations_.find(op.atom_index);
  if (it == relations_.end()) return true;  // unknown relation: no rows
  const ra::Relation& rel = *it->second;

  // On a row that survives the checks: bind outputs, count, descend.
  auto push = [&](ra::TupleRef row) {
    if (!Tick()) return false;
    if (!RowPasses(op, row)) return true;
    for (const RegOutput& o : op.outputs) frame_[o.reg] = row[o.atom_col];
    if (op.counter_slot >= 0) ++local_rows_[op.counter_slot];
    return RunOps(comp, op_index + 1, mode, project_target);
  };

  if (op.probe_cols.empty()) {
    for (ra::TupleRef row : rel.rows()) {
      if (!push(row)) return false;
    }
    return true;
  }
  if (op.counter_slot >= 0) ++local_probes_[op.counter_slot];
  if (op.probe_cols.size() == 1) {
    const ra::Value v = op.probe_regs[0] >= 0 ? frame_[op.probe_regs[0]]
                                              : op.probe_consts[0];
    for (int row_id : rel.RowsWithValue(op.probe_cols[0], v)) {
      if (!push(rel.rows()[row_id])) return false;
    }
    return true;
  }
  key_.resize(op.probe_cols.size());
  for (size_t i = 0; i < op.probe_cols.size(); ++i) {
    key_[i] = op.probe_regs[i] >= 0 ? frame_[op.probe_regs[i]]
                                    : op.probe_consts[i];
  }
  for (int row_id : rel.RowsWithKey(op.probe_cols, key_.data())) {
    if (!push(rel.rows()[row_id])) return false;
  }
  return true;
}

void Runner::FlushCounters() {
  for (int i = 0; i < plan_.num_counters; ++i) {
    if (local_rows_[i] > 0) {
      plan_.actual_rows[i].fetch_add(local_rows_[i],
                                     std::memory_order_relaxed);
    }
    if (local_probes_[i] > 0) {
      plan_.actual_probes[i].fetch_add(local_probes_[i],
                                       std::memory_order_relaxed);
    }
  }
  if (local_head_rows_ > 0) {
    plan_.actual_head_rows.fetch_add(local_head_rows_,
                                     std::memory_order_relaxed);
  }
  if (options_.stats != nullptr) {
    size_t considered = 0;
    size_t probes = 0;
    for (int i = 0; i < plan_.num_counters; ++i) {
      considered += local_rows_[i];
      probes += local_probes_[i];
    }
    options_.stats->tuples_considered += considered;
    options_.stats->join_probes += probes;
    options_.stats->tuples_produced += produced_;
  }
}

Result<ra::Relation> Runner::Run() {
  RECUR_RETURN_IF_ERROR(ResolveRelations());
  // Load the bound prefix into the frame.
  for (size_t i = 0; i < plan_.bound_vars.size(); ++i) {
    frame_[i] = options_.bindings->at(plan_.bound_vars[i]);
  }

  // A plan that reads a relation nobody knows derives nothing — but a
  // missing relation is not an error (matches the evaluator's historical
  // contract for unknown predicates).
  if (missing_relation_) {
    FlushCounters();
    return std::move(out_);
  }

  // Existence components (ordered first by the planner): each must have a
  // witness or the rule derives nothing.
  size_t first_projection = 0;
  for (const ComponentPlan& comp : plan_.components) {
    if (!comp.head_regs.empty()) break;
    ++first_projection;
    existence_found_ = comp.ops.empty();
    RunOps(comp, 0, Mode::kExistence, nullptr);
    if (!status_.ok()) {
      FlushCounters();
      return status_;
    }
    if (!existence_found_) {
      FlushCounters();
      return std::move(out_);
    }
  }

  if (plan_.streaming) {
    bool streamed = false;
    for (size_t c = first_projection; c < plan_.components.size(); ++c) {
      RunOps(plan_.components[c], 0, Mode::kStream, nullptr);
      streamed = true;
      if (!status_.ok()) {
        FlushCounters();
        return status_;
      }
    }
    if (!streamed) {
      // Head fed entirely by constants and the bound prefix (empty body,
      // or every component an existence check).
      EmitHead(frame_.data());
    }
    FlushCounters();
    return std::move(out_);
  }

  // Combined mode: materialize each projection component, then recombine
  // by Cartesian product under the bound prefix.
  std::vector<ra::Relation> parts;
  for (size_t c = first_projection; c < plan_.components.size(); ++c) {
    const ComponentPlan& comp = plan_.components[c];
    ra::Relation part(static_cast<int>(comp.head_regs.size()));
    RunOps(comp, 0, Mode::kStream, &part);
    if (!status_.ok()) {
      FlushCounters();
      return status_;
    }
    if (part.empty()) {
      FlushCounters();
      return std::move(out_);  // one empty component empties the rule
    }
    parts.push_back(std::move(part));
  }

  ra::Relation combined(static_cast<int>(plan_.bound_vars.size()));
  {
    ra::Value* dst = combined.StageRow();
    std::copy(frame_.begin(),
              frame_.begin() + plan_.bound_vars.size(), dst);
    combined.CommitStagedRow();
  }
  for (const ra::Relation& part : parts) {
    ra::Relation next(combined.arity() + part.arity());
    next.Reserve(combined.size() * part.size());
    for (ra::TupleRef a : combined.rows()) {
      for (ra::TupleRef b : part.rows()) {
        ra::Value* dst = next.StageRow();
        dst = std::copy(a.begin(), a.end(), dst);
        std::copy(b.begin(), b.end(), dst);
        next.CommitStagedRow();
        if (!Tick()) {
          FlushCounters();
          return status_;
        }
      }
    }
    combined = std::move(next);
  }
  for (ra::TupleRef row : combined.rows()) {
    EmitHead(row.data());
    if (!Tick()) {
      FlushCounters();
      return status_;
    }
  }
  FlushCounters();
  return std::move(out_);
}

}  // namespace

Result<ra::Relation> ExecutePlan(const RulePlan& plan,
                                 const PlanRelationLookup& lookup,
                                 const ExecOptions& options) {
  Runner runner(plan, lookup, options);
  return runner.Run();
}

Result<size_t> FilterRelation(const ra::Relation& in,
                              const std::vector<ConstCheck>& checks,
                              const ExecutionContext* context,
                              ra::Relation* out) {
  size_t inserted = 0;
  size_t row_index = 0;
  // Poll at batch *entry* (including row 0) so an already-cancelled
  // context stops the scan before any row is copied.
  for (ra::TupleRef row : in.rows()) {
    if (context != nullptr && row_index++ % kExecutorBatchRows == 0) {
      RECUR_RETURN_IF_ERROR(context->CheckCancel());
    }
    bool keep = true;
    for (const ConstCheck& c : checks) {
      if (row[c.atom_col] != c.value) {
        keep = false;
        break;
      }
    }
    if (keep && out->Insert(row)) ++inserted;
  }
  return inserted;
}

Result<size_t> SelectInto(const ra::Relation& in,
                          const std::vector<ConstCheck>& checks,
                          const ExecutionContext* context, ra::Relation* out) {
  if (checks.empty()) return FilterRelation(in, checks, context, out);
  std::vector<int> cols;
  std::vector<ra::Value> key;
  cols.reserve(checks.size());
  key.reserve(checks.size());
  for (const ConstCheck& c : checks) {
    cols.push_back(c.atom_col);
    key.push_back(c.value);
  }
  size_t inserted = 0;
  size_t row_index = 0;
  ra::RowsView rows = in.rows();
  // RowsWithKey candidates are a superset under hash collisions; the
  // checks re-verify every key column. Poll at batch entry (see
  // FilterRelation).
  for (int r : in.RowsWithKey(cols, key.data())) {
    if (context != nullptr && row_index++ % kExecutorBatchRows == 0) {
      RECUR_RETURN_IF_ERROR(context->CheckCancel());
    }
    ra::TupleRef row = rows[r];
    bool keep = true;
    for (const ConstCheck& c : checks) {
      if (row[c.atom_col] != c.value) {
        keep = false;
        break;
      }
    }
    if (keep && out->Insert(row)) ++inserted;
  }
  return inserted;
}

}  // namespace recur::eval::plan
