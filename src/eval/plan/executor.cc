#include "eval/plan/executor.h"

#include <algorithm>
#include <numeric>

#include "eval/conjunctive.h"
#include "util/fault_injection.h"

namespace recur::eval::plan {

namespace {

/// Column-major register batch: lane l of register r lives at
/// regs[r * capacity + l], so a scan binds one output register for a
/// whole batch with a single contiguous gather and a filter touches one
/// column without striding over frames.
struct RegBatch {
  size_t capacity = 0;
  size_t lanes = 0;
  std::vector<ra::Value> regs;

  void Configure(size_t frame_size, size_t cap) {
    capacity = cap;
    lanes = 0;
    // resize, not assign: stale lane values from a previous component are
    // never read — every register consulted by a check, head slot, or
    // projection is written by an upstream op first — and skipping the
    // re-zero matters when small semi-naive deltas reconfigure batches
    // every rule call.
    regs.resize(frame_size * cap);
  }
  ra::Value* Col(int reg) {
    return regs.data() + static_cast<size_t>(reg) * capacity;
  }
  const ra::Value* Col(int reg) const {
    return regs.data() + static_cast<size_t>(reg) * capacity;
  }
};

/// One plan execution. Lives for a single ExecutePlan call; accumulates
/// per-operator counters locally and flushes them into the shared plan's
/// atomics once at the end, so parallel shard tasks executing one cached
/// plan pay one atomic add per operator, not one per row or batch.
class Runner {
 public:
  Runner(const RulePlan& plan, const PlanRelationLookup& lookup,
         const ExecOptions& options)
      : plan_(plan),
        lookup_(lookup),
        options_(options),
        batch_cap_(options.batch_rows == 0 ? kExecutorBatchLanes
                                           : options.batch_rows),
        local_rows_(static_cast<size_t>(plan.num_counters), 0),
        local_probes_(static_cast<size_t>(plan.num_counters), 0),
        local_batches_(static_cast<size_t>(plan.num_counters), 0),
        out_(plan.head_arity) {}

  Result<ra::Relation> Run();

 private:
  /// Sinks: what happens to a lane that survives a whole pipeline.
  enum class Mode { kExistence, kStream };

  Status ResolveRelations();
  /// Seeds batches_[0] with the bound prefix and pushes it through the
  /// component's pipeline; returns false to abort enumeration (existence
  /// satisfied, or status_ became non-OK).
  bool RunComponent(const ComponentPlan& comp, Mode mode,
                    ra::Relation* project_target);
  /// Consumes batches_[op_index] through ops[op_index...], flushing
  /// batches_[op_index + 1] downstream as it fills.
  bool Drive(const ComponentPlan& comp, size_t op_index, Mode mode,
             ra::Relation* project_target);
  bool SinkBatch(const RegBatch& batch, Mode mode);
  bool RowPassesLane(const Op& op, ra::TupleRef row, const RegBatch& batch,
                     size_t lane) const;
  /// Row ids of `rel` passing the op's lane-independent (const + intra)
  /// checks; computed once per (op, relation) and reused across batches —
  /// relations are immutable for the lifetime of a Runner.
  const std::vector<int>& ScanIds(const Op& op, const ra::Relation& rel);
  bool EmitHead(const ra::Value* source);
  /// Governance poll, due once kExecutorBatchRows candidate rows have
  /// accumulated since the last poll. Called at batch/lane boundaries.
  bool MaybePoll();
  void FlushCounters();

  /// Per-depth probe/scan scratch. Drive() recurses into downstream
  /// operators while still iterating its own candidates, so scratch must
  /// be owned per op depth — shared buffers would be clobbered mid-loop.
  struct DepthScratch {
    std::vector<ra::Value> keys;  // lane-major probe keys
    std::vector<uint64_t> hashes;
    std::vector<const std::vector<int>*> cands;
    std::vector<size_t> lane_order;
    std::vector<int> sorted_cand;
    std::vector<int> filtered_ids;
  };

  const RulePlan& plan_;
  const PlanRelationLookup& lookup_;
  const ExecOptions& options_;
  const size_t batch_cap_;
  std::vector<RegBatch> batches_;                           // by op depth
  std::vector<DepthScratch> scratch_;                       // by op depth
  std::unordered_map<int, const ra::Relation*> relations_;  // by atom index
  std::unordered_map<const Op*, std::vector<int>> scan_ids_;
  std::vector<ra::Value> seed_;      // bound-variable prefix values
  std::vector<ra::Value> emit_buf_;  // lane-major head rows for bulk insert
  std::vector<size_t> local_rows_;
  std::vector<size_t> local_probes_;
  std::vector<size_t> local_batches_;
  size_t local_bloom_probes_ = 0;
  size_t local_bloom_skips_ = 0;
  size_t local_head_rows_ = 0;
  size_t produced_ = 0;
  size_t rows_since_tick_ = 0;
  bool existence_found_ = false;
  bool missing_relation_ = false;
  Status status_;
  ra::Relation out_;
};

Status Runner::ResolveRelations() {
  for (const ComponentPlan& comp : plan_.components) {
    for (const Op& op : comp.ops) {
      if (op.kind == OpKind::kProject) continue;
      const ra::Relation* rel = op.atom_index == plan_.delta_index
                                    ? options_.override_relation
                                    : lookup_(op.predicate);
      if (rel == nullptr) {
        missing_relation_ = true;
        continue;
      }
      if (rel->arity() != op.arity) {
        return Status::InvalidArgument(
            "relation arity does not match atom arity");
      }
      relations_[op.atom_index] = rel;
    }
  }
  return Status::OK();
}

bool Runner::RowPassesLane(const Op& op, ra::TupleRef row,
                           const RegBatch& batch, size_t lane) const {
  // Probe-key columns are re-verified here: multi-column candidates come
  // from a hash bucket and may collide.
  for (const ConstCheck& c : op.const_checks) {
    if (row[c.atom_col] != c.value) return false;
  }
  for (const RegCheck& c : op.reg_checks) {
    if (row[c.atom_col] != batch.Col(c.reg)[lane]) return false;
  }
  for (const IntraCheck& c : op.intra_checks) {
    if (row[c.first_col] != row[c.later_col]) return false;
  }
  return true;
}

const std::vector<int>& Runner::ScanIds(const Op& op,
                                        const ra::Relation& rel) {
  auto it = scan_ids_.find(&op);
  if (it != scan_ids_.end()) return it->second;
  std::vector<int>& ids = scan_ids_[&op];
  const size_t n = rel.size();
  ids.reserve(n);
  if (op.const_checks.empty() && op.intra_checks.empty()) {
    ids.resize(n);
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }
  ra::RowsView rows = rel.rows();
  for (size_t r = 0; r < n; ++r) {
    ra::TupleRef row = rows[r];
    bool keep = true;
    for (const ConstCheck& c : op.const_checks) {
      if (row[c.atom_col] != c.value) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const IntraCheck& c : op.intra_checks) {
        if (row[c.first_col] != row[c.later_col]) {
          keep = false;
          break;
        }
      }
    }
    if (keep) ids.push_back(static_cast<int>(r));
  }
  return ids;
}

bool Runner::MaybePoll() {
  if (rows_since_tick_ < kExecutorBatchRows) return true;
  rows_since_tick_ = 0;
  status_ = util::FaultInjector::Instance().Check("plan.executor.batch");
  if (status_.ok() && options_.context != nullptr) {
    status_ = options_.context->CheckCancel();
  }
  return status_.ok();
}

bool Runner::EmitHead(const ra::Value* source) {
  ra::Value* dst = out_.StageRow();
  for (int i = 0; i < plan_.head_arity; ++i) {
    const HeadSlot& slot = plan_.head[i];
    dst[i] = slot.col >= 0 ? source[slot.col] : slot.constant;
  }
  ++local_head_rows_;
  if (out_.CommitStagedRow()) ++produced_;
  return true;
}

bool Runner::SinkBatch(const RegBatch& batch, Mode mode) {
  if (mode == Mode::kExistence) {
    existence_found_ = true;
    return false;  // one witness is enough
  }
  // Transpose the surviving lanes into a lane-major head-row buffer and
  // bulk-insert: one dedup-table growth check, batched row hashing, and
  // slot prefetch for the whole batch instead of per-row commits.
  const size_t width = static_cast<size_t>(plan_.head_arity);
  emit_buf_.resize(batch.lanes * width);
  for (int i = 0; i < plan_.head_arity; ++i) {
    const HeadSlot& slot = plan_.head[i];
    ra::Value* dst = emit_buf_.data() + i;
    if (slot.col >= 0) {
      const ra::Value* src = batch.Col(slot.col);
      for (size_t l = 0; l < batch.lanes; ++l) dst[l * width] = src[l];
    } else {
      for (size_t l = 0; l < batch.lanes; ++l) dst[l * width] = slot.constant;
    }
  }
  local_head_rows_ += batch.lanes;
  produced_ += out_.InsertBatch(emit_buf_.data(), batch.lanes);
  return true;
}

bool Runner::Drive(const ComponentPlan& comp, size_t op_index, Mode mode,
                   ra::Relation* project_target) {
  RegBatch& cur = batches_[op_index];
  if (cur.lanes == 0) return true;
  if (op_index == comp.ops.size()) return SinkBatch(cur, mode);

  const Op& op = comp.ops[op_index];
  if (op.kind == OpKind::kProject) {
    // Pipeline sink of a combined-mode component: materialize the
    // component's head registers via the bulk-insert kernel;
    // recombination happens in Run().
    const size_t width = op.project_regs.size();
    emit_buf_.resize(cur.lanes * width);
    for (size_t i = 0; i < width; ++i) {
      const ra::Value* src = cur.Col(op.project_regs[i]);
      ra::Value* dst = emit_buf_.data() + i;
      for (size_t l = 0; l < cur.lanes; ++l) dst[l * width] = src[l];
    }
    project_target->InsertBatch(emit_buf_.data(), cur.lanes);
    return true;
  }

  auto rel_it = relations_.find(op.atom_index);
  if (rel_it == relations_.end()) return true;  // unknown relation: no rows
  const ra::Relation& rel = *rel_it->second;
  if (op.counter_slot >= 0) ++local_batches_[op.counter_slot];

  RegBatch& next = batches_[op_index + 1];
  DepthScratch& scratch = scratch_[op_index];
  const bool sink_next = op_index + 1 == comp.ops.size();

  // Appends input lane `l` extended with `row`'s outputs to the next
  // batch, flushing downstream when it fills. Existence pipelines
  // short-circuit here: the first surviving lane is the witness.
  auto emit_lane = [&](size_t l, ra::TupleRef row) -> bool {
    if (sink_next && mode == Mode::kExistence) {
      existence_found_ = true;
      return false;
    }
    const size_t ol = next.lanes;
    for (int r = 0; r < plan_.frame_size; ++r) {
      next.Col(r)[ol] = cur.Col(r)[l];
    }
    for (const RegOutput& o : op.outputs) {
      next.Col(o.reg)[ol] = row[o.atom_col];
    }
    if (op.counter_slot >= 0) ++local_rows_[op.counter_slot];
    if (++next.lanes == next.capacity) {
      if (!Drive(comp, op_index + 1, mode, project_target)) return false;
      next.lanes = 0;
    }
    return true;
  };

  if (op.probe_cols.empty()) {
    // Scan: lane-independent checks are pre-resolved into a cached row-id
    // selection; the single-input-lane fast path (every component opener)
    // broadcasts the lane and binds outputs with columnar gathers.
    const std::vector<int>& base_ids = ScanIds(op, rel);
    ra::RowsView rows = rel.rows();
    if (cur.lanes == 1) {
      const std::vector<int>* ids = &base_ids;
      if (!op.reg_checks.empty()) {
        scratch.filtered_ids.clear();
        for (int id : base_ids) {
          ra::TupleRef row = rows[static_cast<size_t>(id)];
          bool keep = true;
          for (const RegCheck& c : op.reg_checks) {
            if (row[c.atom_col] != cur.Col(c.reg)[0]) {
              keep = false;
              break;
            }
          }
          if (keep) scratch.filtered_ids.push_back(id);
        }
        ids = &scratch.filtered_ids;
      }
      rows_since_tick_ += rel.size();
      if (sink_next && mode == Mode::kExistence) {
        if (!ids->empty()) {
          existence_found_ = true;
          return false;
        }
        return MaybePoll();
      }
      size_t pos = 0;
      while (pos < ids->size()) {
        const size_t n =
            std::min(ids->size() - pos, next.capacity - next.lanes);
        const size_t base = next.lanes;
        for (int r = 0; r < plan_.frame_size; ++r) {
          std::fill_n(next.Col(r) + base, n, cur.Col(r)[0]);
        }
        for (const RegOutput& o : op.outputs) {
          rel.GatherColumn(ids->data() + pos, n, o.atom_col,
                           next.Col(o.reg) + base);
        }
        if (op.counter_slot >= 0) local_rows_[op.counter_slot] += n;
        next.lanes += n;
        pos += n;
        if (next.lanes == next.capacity) {
          if (!Drive(comp, op_index + 1, mode, project_target)) return false;
          next.lanes = 0;
        }
        if (!MaybePoll()) return false;
      }
    } else {
      for (size_t l = 0; l < cur.lanes; ++l) {
        rows_since_tick_ += base_ids.size();
        for (int id : base_ids) {
          ra::TupleRef row = rows[static_cast<size_t>(id)];
          bool keep = true;
          for (const RegCheck& c : op.reg_checks) {
            if (row[c.atom_col] != cur.Col(c.reg)[l]) {
              keep = false;
              break;
            }
          }
          if (keep && !emit_lane(l, row)) return false;
        }
        if (!MaybePoll()) return false;
      }
    }
  } else {
    // Probe: gather the batch's keys lane-major, then resolve candidates
    // through the strategy the planner chose.
    const size_t lanes = cur.lanes;
    const size_t width = op.probe_cols.size();
    if (op.counter_slot >= 0) local_probes_[op.counter_slot] += lanes;
    scratch.keys.resize(lanes * width);
    for (size_t l = 0; l < lanes; ++l) {
      for (size_t i = 0; i < width; ++i) {
        scratch.keys[l * width + i] = op.probe_regs[i] >= 0
                                          ? cur.Col(op.probe_regs[i])[l]
                                          : op.probe_consts[i];
      }
    }
    ra::RowsView rows = rel.rows();
    const ra::Relation::SortedIndex* sorted =
        op.strategy == ProbeStrategy::kSortMerge
            ? rel.EnsureSortedIndex(op.probe_cols)
            : nullptr;
    if (sorted != nullptr) {
      // Sort-merge: hash the batch, visit lanes in hash order so the
      // binary searches walk the sorted run near-sequentially.
      scratch.hashes.resize(lanes);
      ra::Relation::HashKeysBatch(scratch.keys.data(), lanes, width,
                                  scratch.hashes.data());
      scratch.lane_order.resize(lanes);
      std::iota(scratch.lane_order.begin(), scratch.lane_order.end(), size_t{0});
      std::sort(scratch.lane_order.begin(), scratch.lane_order.end(),
                [&](size_t a, size_t b) {
                  return scratch.hashes[a] < scratch.hashes[b];
                });
      for (size_t l : scratch.lane_order) {
        scratch.sorted_cand.clear();
        rel.SortedCandidates(*sorted, scratch.hashes[l], &scratch.sorted_cand);
        rows_since_tick_ += scratch.sorted_cand.size();
        for (int id : scratch.sorted_cand) {
          ra::TupleRef row = rows[static_cast<size_t>(id)];
          if (RowPassesLane(op, row, cur, l) && !emit_lane(l, row)) {
            return false;
          }
        }
        if (!MaybePoll()) return false;
      }
    } else {
      // Hash: one batched probe — FNV-hash every lane, Bloom-prune,
      // prefetch surviving buckets, then resolve.
      scratch.cands.resize(lanes);
      const size_t skipped = rel.ProbeBatch(op.probe_cols,
                                            scratch.keys.data(), lanes,
                                            scratch.cands.data());
      local_bloom_probes_ += lanes;
      local_bloom_skips_ += skipped;
      for (size_t l = 0; l < lanes; ++l) {
        const std::vector<int>* cand = scratch.cands[l];
        if (cand == nullptr) continue;
        rows_since_tick_ += cand->size();
        for (int id : *cand) {
          ra::TupleRef row = rows[static_cast<size_t>(id)];
          if (RowPassesLane(op, row, cur, l) && !emit_lane(l, row)) {
            return false;
          }
        }
        if (!MaybePoll()) return false;
      }
    }
  }

  if (next.lanes > 0) {
    if (!Drive(comp, op_index + 1, mode, project_target)) return false;
    next.lanes = 0;
  }
  return true;
}

bool Runner::RunComponent(const ComponentPlan& comp, Mode mode,
                          ra::Relation* project_target) {
  const size_t depth = comp.ops.size() + 1;
  if (batches_.size() < depth) batches_.resize(depth);
  if (scratch_.size() < depth) scratch_.resize(depth);
  for (size_t i = 0; i < depth; ++i) {
    batches_[i].Configure(static_cast<size_t>(plan_.frame_size), batch_cap_);
  }
  RegBatch& seed = batches_[0];
  seed.lanes = 1;
  for (size_t i = 0; i < seed_.size(); ++i) {
    seed.Col(static_cast<int>(i))[0] = seed_[i];
  }
  return Drive(comp, 0, mode, project_target);
}

void Runner::FlushCounters() {
  for (int i = 0; i < plan_.num_counters; ++i) {
    if (local_rows_[i] > 0) {
      plan_.actual_rows[i].fetch_add(local_rows_[i],
                                     std::memory_order_relaxed);
    }
    if (local_probes_[i] > 0) {
      plan_.actual_probes[i].fetch_add(local_probes_[i],
                                       std::memory_order_relaxed);
    }
    if (local_batches_[i] > 0) {
      plan_.actual_batches[i].fetch_add(local_batches_[i],
                                        std::memory_order_relaxed);
    }
  }
  if (local_head_rows_ > 0) {
    plan_.actual_head_rows.fetch_add(local_head_rows_,
                                     std::memory_order_relaxed);
  }
  if (local_bloom_probes_ > 0) {
    plan_.bloom_probes.fetch_add(local_bloom_probes_,
                                 std::memory_order_relaxed);
  }
  if (local_bloom_skips_ > 0) {
    plan_.bloom_skips.fetch_add(local_bloom_skips_,
                                std::memory_order_relaxed);
  }
  // Completed executions divide the accumulated actuals back into
  // per-execution averages for drift checks and cost calibration.
  plan_.executions.fetch_add(1, std::memory_order_relaxed);
  if (options_.stats != nullptr) {
    size_t considered = 0;
    size_t probes = 0;
    size_t batches = 0;
    for (int i = 0; i < plan_.num_counters; ++i) {
      considered += local_rows_[i];
      probes += local_probes_[i];
      batches += local_batches_[i];
    }
    options_.stats->tuples_considered += considered;
    options_.stats->join_probes += probes;
    options_.stats->tuples_produced += produced_;
    options_.stats->batches += batches;
    options_.stats->bloom_probes += local_bloom_probes_;
    options_.stats->bloom_skips += local_bloom_skips_;
  }
}

Result<ra::Relation> Runner::Run() {
  RECUR_RETURN_IF_ERROR(ResolveRelations());
  // Load the bound prefix.
  seed_.resize(plan_.bound_vars.size());
  for (size_t i = 0; i < plan_.bound_vars.size(); ++i) {
    seed_[i] = options_.bindings->at(plan_.bound_vars[i]);
  }

  // A plan that reads a relation nobody knows derives nothing — but a
  // missing relation is not an error (matches the evaluator's historical
  // contract for unknown predicates).
  if (missing_relation_) {
    FlushCounters();
    return std::move(out_);
  }

  // Existence components (ordered first by the planner): each must have a
  // witness or the rule derives nothing.
  size_t first_projection = 0;
  for (const ComponentPlan& comp : plan_.components) {
    if (!comp.head_regs.empty()) break;
    ++first_projection;
    existence_found_ = comp.ops.empty();
    RunComponent(comp, Mode::kExistence, nullptr);
    if (!status_.ok()) {
      FlushCounters();
      return status_;
    }
    if (!existence_found_) {
      FlushCounters();
      return std::move(out_);
    }
  }

  if (plan_.streaming) {
    bool streamed = false;
    for (size_t c = first_projection; c < plan_.components.size(); ++c) {
      RunComponent(plan_.components[c], Mode::kStream, nullptr);
      streamed = true;
      if (!status_.ok()) {
        FlushCounters();
        return status_;
      }
    }
    if (!streamed) {
      // Head fed entirely by constants and the bound prefix (empty body,
      // or every component an existence check).
      std::vector<ra::Value> frame(static_cast<size_t>(plan_.frame_size), 0);
      std::copy(seed_.begin(), seed_.end(), frame.begin());
      EmitHead(frame.data());
    }
    FlushCounters();
    return std::move(out_);
  }

  // Combined mode: materialize each projection component, then recombine
  // by Cartesian product under the bound prefix.
  std::vector<ra::Relation> parts;
  for (size_t c = first_projection; c < plan_.components.size(); ++c) {
    const ComponentPlan& comp = plan_.components[c];
    ra::Relation part(static_cast<int>(comp.head_regs.size()));
    RunComponent(comp, Mode::kStream, &part);
    if (!status_.ok()) {
      FlushCounters();
      return status_;
    }
    if (part.empty()) {
      FlushCounters();
      return std::move(out_);  // one empty component empties the rule
    }
    parts.push_back(std::move(part));
  }

  ra::Relation combined(static_cast<int>(plan_.bound_vars.size()));
  {
    ra::Value* dst = combined.StageRow();
    std::copy(seed_.begin(), seed_.end(), dst);
    combined.CommitStagedRow();
  }
  for (const ra::Relation& part : parts) {
    ra::Relation next(combined.arity() + part.arity());
    next.Reserve(combined.size() * part.size());
    for (ra::TupleRef a : combined.rows()) {
      for (ra::TupleRef b : part.rows()) {
        ra::Value* dst = next.StageRow();
        dst = std::copy(a.begin(), a.end(), dst);
        std::copy(b.begin(), b.end(), dst);
        next.CommitStagedRow();
        ++rows_since_tick_;
        if (!MaybePoll()) {
          FlushCounters();
          return status_;
        }
      }
    }
    combined = std::move(next);
  }
  for (ra::TupleRef row : combined.rows()) {
    EmitHead(row.data());
    ++rows_since_tick_;
    if (!MaybePoll()) {
      FlushCounters();
      return status_;
    }
  }
  FlushCounters();
  return std::move(out_);
}

}  // namespace

Result<ra::Relation> ExecutePlan(const RulePlan& plan,
                                 const PlanRelationLookup& lookup,
                                 const ExecOptions& options) {
  Runner runner(plan, lookup, options);
  return runner.Run();
}

Result<size_t> FilterRelation(const ra::Relation& in,
                              const std::vector<ConstCheck>& checks,
                              const ExecutionContext* context,
                              ra::Relation* out) {
  size_t inserted = 0;
  ra::RowsView rows = in.rows();
  RowBatch batch;
  batch.relation = &in;
  // Poll at batch *entry* (including the first) so an already-cancelled
  // context stops the scan before any row is copied.
  for (size_t start = 0; start < in.size(); start += kExecutorBatchRows) {
    if (context != nullptr) {
      RECUR_RETURN_IF_ERROR(context->CheckCancel());
    }
    const size_t n = std::min(kExecutorBatchRows, in.size() - start);
    batch.Clear();
    batch.row_ids.resize(n);
    std::iota(batch.row_ids.begin(), batch.row_ids.end(),
              static_cast<int>(start));
    batch.selection.resize(n);
    std::iota(batch.selection.begin(), batch.selection.end(), 0);
    // Each check refines the selection vector in place — surviving
    // positions compact to the front; no row is copied until the sink.
    for (const ConstCheck& c : checks) {
      size_t kept = 0;
      for (size_t s = 0; s < batch.selection.size(); ++s) {
        const int pos = batch.selection[s];
        if (rows[static_cast<size_t>(batch.row_ids[pos])][c.atom_col] ==
            c.value) {
          batch.selection[kept++] = pos;
        }
      }
      batch.selection.resize(kept);
      if (kept == 0) break;
    }
    for (int pos : batch.selection) {
      if (out->Insert(rows[static_cast<size_t>(batch.row_ids[pos])])) {
        ++inserted;
      }
    }
  }
  return inserted;
}

Result<size_t> SelectInto(const ra::Relation& in,
                          const std::vector<ConstCheck>& checks,
                          const ExecutionContext* context, ra::Relation* out) {
  if (checks.empty()) return FilterRelation(in, checks, context, out);
  std::vector<int> cols;
  std::vector<ra::Value> key;
  cols.reserve(checks.size());
  key.reserve(checks.size());
  for (const ConstCheck& c : checks) {
    cols.push_back(c.atom_col);
    key.push_back(c.value);
  }
  size_t inserted = 0;
  size_t row_index = 0;
  ra::RowsView rows = in.rows();
  // RowsWithKey candidates are a superset under hash collisions; the
  // checks re-verify every key column. Poll at batch entry (see
  // FilterRelation).
  for (int r : in.RowsWithKey(cols, key.data())) {
    if (context != nullptr && row_index++ % kExecutorBatchRows == 0) {
      RECUR_RETURN_IF_ERROR(context->CheckCancel());
    }
    ra::TupleRef row = rows[r];
    bool keep = true;
    for (const ConstCheck& c : checks) {
      if (row[c.atom_col] != c.value) {
        keep = false;
        break;
      }
    }
    if (keep && out->Insert(row)) ++inserted;
  }
  return inserted;
}

}  // namespace recur::eval::plan
