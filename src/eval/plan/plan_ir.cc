#include "eval/plan/plan_ir.h"

#include <cstdio>

namespace recur::eval::plan {

namespace {

std::string PredName(SymbolId pred, const SymbolTable* symbols) {
  if (symbols != nullptr) return symbols->NameOf(pred);
  return "p" + std::to_string(pred);
}

std::string VarName(SymbolId var, const SymbolTable* symbols) {
  if (symbols != nullptr) return symbols->NameOf(var);
  return "v" + std::to_string(var);
}

std::string FormatEst(double est) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", est);
  return buf;
}

void AppendOp(const RulePlan& plan, const Op& op, const SymbolTable* symbols,
              std::string* out) {
  *out += "    ";
  *out += ToString(op.kind);
  if (op.kind == OpKind::kProject) {
    *out += " regs[";
    for (size_t i = 0; i < op.project_regs.size(); ++i) {
      if (i > 0) *out += ",";
      *out += std::to_string(op.project_regs[i]);
    }
    *out += "]\n";
    return;
  }
  *out += " " + PredName(op.predicate, symbols) + "(atom " +
          std::to_string(op.atom_index) + ")";
  if (op.atom_index == plan.delta_index) *out += " [delta]";
  if (op.probe_cols.empty()) {
    *out += " full-scan";
  } else {
    *out += " key[";
    for (size_t i = 0; i < op.probe_cols.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "c" + std::to_string(op.probe_cols[i]) + "=";
      if (op.probe_regs[i] >= 0) {
        *out += "r" + std::to_string(op.probe_regs[i]);
      } else {
        *out += std::to_string(op.probe_consts[i]);
      }
    }
    *out += "]";
    if (op.strategy == ProbeStrategy::kSortMerge) *out += " sort-merge";
  }
  int residual = static_cast<int>(op.const_checks.size() +
                                  op.reg_checks.size() +
                                  op.intra_checks.size());
  // Probe columns are always re-verified; only report checks beyond them.
  residual -= static_cast<int>(op.probe_cols.size());
  if (residual > 0) {
    *out += " +" + std::to_string(residual) + " checks";
  }
  *out += " rows=" + std::to_string(op.base_rows);
  *out += " est=" + FormatEst(op.est_rows);
  if (op.counter_slot >= 0) {
    *out += " actual=" +
            std::to_string(plan.actual_rows[op.counter_slot].load(
                std::memory_order_relaxed));
    size_t probes = plan.actual_probes[op.counter_slot].load(
        std::memory_order_relaxed);
    if (probes > 0) *out += " probes=" + std::to_string(probes);
    size_t batches = plan.actual_batches[op.counter_slot].load(
        std::memory_order_relaxed);
    if (batches > 0) *out += " batches=" + std::to_string(batches);
  }
  *out += "\n";
}

}  // namespace

const char* ToString(OpKind kind) {
  switch (kind) {
    case OpKind::kIndexScan: return "IndexScan";
    case OpKind::kHashJoinProbe: return "HashJoinProbe";
    case OpKind::kConstFilter: return "ConstFilter";
    case OpKind::kProject: return "Project";
    case OpKind::kEmitHead: return "EmitHead";
  }
  return "?";
}

std::string ExplainPlan(const RulePlan& plan, const SymbolTable* symbols) {
  std::string out = "RulePlan(head arity " + std::to_string(plan.head_arity) +
                    ", " + std::to_string(plan.components.size()) +
                    " component" +
                    (plan.components.size() == 1 ? "" : "s");
  if (plan.delta_index >= 0) {
    out += ", delta atom " + std::to_string(plan.delta_index);
  }
  if (!plan.bound_vars.empty()) {
    out += ", bound {";
    for (size_t i = 0; i < plan.bound_vars.size(); ++i) {
      if (i > 0) out += ",";
      out += VarName(plan.bound_vars[i], symbols);
    }
    out += "}";
  }
  out += ")\n";
  for (size_t c = 0; c < plan.components.size(); ++c) {
    const ComponentPlan& comp = plan.components[c];
    out += "  component " + std::to_string(c);
    if (comp.head_regs.empty()) out += " (existence)";
    out += ":\n";
    for (const Op& op : comp.ops) AppendOp(plan, op, symbols, &out);
  }
  out += "  EmitHead est=" + FormatEst(plan.est_head_rows) + " actual=" +
         std::to_string(
             plan.actual_head_rows.load(std::memory_order_relaxed)) +
         "\n";
  const size_t bloom_probes =
      plan.bloom_probes.load(std::memory_order_relaxed);
  if (bloom_probes > 0) {
    out += "  bloom probes=" + std::to_string(bloom_probes) + " skipped=" +
           std::to_string(plan.bloom_skips.load(std::memory_order_relaxed)) +
           "\n";
  }
  return out;
}

}  // namespace recur::eval::plan
