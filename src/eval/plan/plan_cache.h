#ifndef RECUR_EVAL_PLAN_PLAN_CACHE_H_
#define RECUR_EVAL_PLAN_PLAN_CACHE_H_

// PlanCache: memoizes compiled RulePlans across fixpoint rounds (and, for
// the compiled evaluator, across queries). Keys are structural — (rule
// content, delta position, binding signature, physical-strategy mode) —
// so rules synthesized on the fly still hit. A cached plan is recompiled
// when the cardinality of some referenced relation has drifted past a
// ratio threshold since planning, or when the drifted cardinalities would
// flip a probe operator's physical strategy (hash vs sort-merge). Retired
// plans feed their est-vs-actual cardinalities into the cache's CostModel,
// so every recompile plans with better-calibrated selectivities.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/rule.h"
#include "eval/plan/cost_model.h"
#include "eval/plan/plan_ir.h"
#include "eval/plan/planner.h"
#include "util/result.h"

namespace recur::eval::plan {

class PlanCache {
 public:
  struct Options {
    /// A cached plan is invalidated when some planned relation's
    /// (cardinality + 1) ratio, new vs plan-time, exceeds this factor in
    /// either direction.
    double invalidation_ratio = 4.0;
    /// With false every lookup recompiles — the ablation baseline.
    bool enabled = true;
  };

  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;
    /// Of the invalidations, how many were triggered (or accompanied) by
    /// a physical-strategy flip rather than cardinality drift alone.
    size_t strategy_invalidations = 0;
  };

  PlanCache() : options_(Options()) {}
  explicit PlanCache(Options options) : options_(options) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for (rule, planner options) or compiles one.
  /// Thread-safe; concurrent callers serialize on one mutex, so engines
  /// precompile before fanning out shard tasks.
  Result<std::shared_ptr<const RulePlan>> GetOrCompile(
      const datalog::Rule& rule, const PlanRelationLookup& lookup,
      const PlannerOptions& planner_options);

  CacheStats stats() const;

  /// Snapshot of every cached plan (for ExplainPlan surfacing).
  std::vector<std::shared_ptr<const RulePlan>> Plans() const;

  /// The cache's measured est-vs-actual calibration (fed by retiring
  /// plans; consulted by every compile through this cache).
  const CostModel& calibration() const { return calibration_; }

 private:
  bool CardinalitiesDrifted(const RulePlan& plan,
                            const datalog::Rule& rule,
                            const PlanRelationLookup& lookup,
                            const PlannerOptions& planner_options) const;
  bool StrategyDrifted(const RulePlan& plan, const datalog::Rule& rule,
                       const PlanRelationLookup& lookup,
                       const PlannerOptions& planner_options) const;

  const Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const RulePlan>> plans_;
  CacheStats stats_;
  CostModel calibration_;
};

}  // namespace recur::eval::plan

#endif  // RECUR_EVAL_PLAN_PLAN_CACHE_H_
