#ifndef RECUR_EVAL_PLAN_PLANNER_H_
#define RECUR_EVAL_PLAN_PLANNER_H_

// RulePlanner: compiles one datalog rule (for one delta position and one
// bound-variable signature) into a physical RulePlan. Join order is chosen
// greedily by estimated cost — access work plus rows fed downstream, with
// selectivities corrected by the CostModel's measured est-vs-actual
// calibration — so a cached plan embodies the cardinality picture it was
// compiled against; the PlanCache recompiles when that picture drifts.
// Probe operators in multi-join bodies additionally pick a physical
// strategy: hash probing by default, sort-merge when the planned average
// bucket is skewed enough that hash chains would scatter cache accesses.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "datalog/rule.h"
#include "eval/plan/plan_ir.h"
#include "ra/relation.h"
#include "util/result.h"

namespace recur::eval {
/// Resolves a predicate to its current relation (mirrors the alias in
/// eval/conjunctive.h; redeclared here so the planner layer does not
/// depend on the evaluator umbrella header). Returning nullptr means
/// "unknown relation" and yields no derivations.
using PlanRelationLookup = std::function<const ra::Relation*(SymbolId)>;
}  // namespace recur::eval

namespace recur::eval::plan {

class CostModel;

/// Planned candidate rows per probe (base_rows scaled by probe-column
/// selectivity) at or above which a multi-join body's probe operator
/// switches from hash probing to the sort-merge access path.
inline constexpr double kSortMergeSkewThreshold = 8.0;

struct PlannerOptions {
  /// Body position whose relation is replaced by the delta; -1 for none.
  int override_index = -1;
  /// The delta relation itself — consulted only for plan-time
  /// cardinality; the executor re-resolves data at run time.
  const ra::Relation* override_relation = nullptr;
  /// Pre-bound variables. Only the key set shapes the plan (it is the
  /// binding signature); values are execution inputs.
  const std::unordered_map<SymbolId, ra::Value>* bindings = nullptr;
  /// With false, atoms run in body order within each component.
  bool reorder_atoms = true;
  /// Measured est-vs-actual calibration applied to selectivity estimates;
  /// null plans from raw statistics (the PlanCache wires its own model in).
  const CostModel* calibration = nullptr;
  /// Allow the sort-merge probe strategy for skewed multi-join bodies.
  /// Part of the plan key: toggling it must not alias cached plans.
  bool enable_sort_merge = true;
};

/// Compiles `rule` into a plan. Fails with InvalidArgument when a head
/// variable is bound neither by the body nor by the binding signature
/// (rule not range restricted).
Result<std::shared_ptr<const RulePlan>> PlanRule(
    const datalog::Rule& rule, const PlanRelationLookup& lookup,
    const PlannerOptions& options);

/// Structural cache key for (rule, delta position, binding signature).
/// Content-based, not address-based: evaluators that synthesize rules on
/// the fly (compiled levels) still hit the cache across calls.
std::string PlanKey(const datalog::Rule& rule, const PlannerOptions& options);

}  // namespace recur::eval::plan

#endif  // RECUR_EVAL_PLAN_PLANNER_H_
