#include "eval/plan/plan_cache.h"

namespace recur::eval::plan {

bool PlanCache::CardinalitiesDrifted(
    const RulePlan& plan, const datalog::Rule& rule,
    const PlanRelationLookup& lookup,
    const PlannerOptions& planner_options) const {
  for (const auto& [atom_index, planned] : plan.planned_cardinalities) {
    const ra::Relation* rel =
        atom_index == planner_options.override_index
            ? planner_options.override_relation
            : lookup(rule.body()[atom_index].predicate());
    const size_t now = rel ? rel->size() : 0;
    // +1 smoothing keeps empty-at-plan-time relations from dividing by
    // zero and from invalidating on the first insert.
    const double ratio = static_cast<double>(now + 1) /
                         static_cast<double>(planned + 1);
    if (ratio > options_.invalidation_ratio ||
        ratio < 1.0 / options_.invalidation_ratio) {
      return true;
    }
  }
  return false;
}

bool PlanCache::StrategyDrifted(const RulePlan& plan,
                                const datalog::Rule& rule,
                                const PlanRelationLookup& lookup,
                                const PlannerOptions& planner_options) const {
  if (plan.strategy_signature.empty()) return false;
  for (const ComponentPlan& comp : plan.components) {
    size_t probe_ops = 0;
    for (const Op& op : comp.ops) {
      if (op.kind == OpKind::kHashJoinProbe) ++probe_ops;
    }
    for (const Op& op : comp.ops) {
      if (op.kind != OpKind::kHashJoinProbe) continue;
      const ra::Relation* rel =
          op.atom_index == planner_options.override_index
              ? planner_options.override_relation
              : lookup(rule.body()[op.atom_index].predicate());
      const size_t now = rel ? rel->size() : 0;
      // Rescale the planned bucket estimate by the cardinality ratio —
      // an O(1) stand-in for recomputing distinct counts — and check
      // whether the sort-merge decision would flip under it.
      const double scaled = op.planned_avg_bucket *
                            static_cast<double>(now + 1) /
                            static_cast<double>(op.base_rows + 1);
      const bool want_sort_merge = planner_options.enable_sort_merge &&
                                   probe_ops >= 2 &&
                                   scaled >= kSortMergeSkewThreshold;
      const bool have_sort_merge = op.strategy == ProbeStrategy::kSortMerge;
      if (want_sort_merge != have_sort_merge) return true;
    }
  }
  return false;
}

Result<std::shared_ptr<const RulePlan>> PlanCache::GetOrCompile(
    const datalog::Rule& rule, const PlanRelationLookup& lookup,
    const PlannerOptions& planner_options) {
  // All compiles through this cache plan with the cache's measured
  // calibration unless the caller wired an explicit model.
  PlannerOptions effective = planner_options;
  if (effective.calibration == nullptr) effective.calibration = &calibration_;
  if (!options_.enabled) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
    }
    return PlanRule(rule, lookup, effective);
  }
  const std::string key = PlanKey(rule, planner_options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    const bool drifted =
        CardinalitiesDrifted(*it->second, rule, lookup, planner_options);
    const bool strategy_flip =
        StrategyDrifted(*it->second, rule, lookup, planner_options);
    if (!drifted && !strategy_flip) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.invalidations;
    if (strategy_flip) ++stats_.strategy_invalidations;
    // Retiring plans teach the cost model their est-vs-actual history,
    // so the recompile below already plans with the corrected picture.
    calibration_.Observe(*it->second);
    plans_.erase(it);
  }
  ++stats_.misses;
  RECUR_ASSIGN_OR_RETURN(std::shared_ptr<const RulePlan> plan,
                         PlanRule(rule, lookup, effective));
  plans_.emplace(key, plan);
  return plan;
}

PlanCache::CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::shared_ptr<const RulePlan>> PlanCache::Plans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const RulePlan>> out;
  out.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) out.push_back(plan);
  return out;
}

}  // namespace recur::eval::plan
