#include "eval/plan/plan_cache.h"

namespace recur::eval::plan {

bool PlanCache::CardinalitiesDrifted(
    const RulePlan& plan, const datalog::Rule& rule,
    const PlanRelationLookup& lookup,
    const PlannerOptions& planner_options) const {
  for (const auto& [atom_index, planned] : plan.planned_cardinalities) {
    const ra::Relation* rel =
        atom_index == planner_options.override_index
            ? planner_options.override_relation
            : lookup(rule.body()[atom_index].predicate());
    const size_t now = rel ? rel->size() : 0;
    // +1 smoothing keeps empty-at-plan-time relations from dividing by
    // zero and from invalidating on the first insert.
    const double ratio = static_cast<double>(now + 1) /
                         static_cast<double>(planned + 1);
    if (ratio > options_.invalidation_ratio ||
        ratio < 1.0 / options_.invalidation_ratio) {
      return true;
    }
  }
  return false;
}

Result<std::shared_ptr<const RulePlan>> PlanCache::GetOrCompile(
    const datalog::Rule& rule, const PlanRelationLookup& lookup,
    const PlannerOptions& planner_options) {
  if (!options_.enabled) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
    }
    return PlanRule(rule, lookup, planner_options);
  }
  const std::string key = PlanKey(rule, planner_options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    if (!CardinalitiesDrifted(*it->second, rule, lookup, planner_options)) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.invalidations;
    plans_.erase(it);
  }
  ++stats_.misses;
  RECUR_ASSIGN_OR_RETURN(std::shared_ptr<const RulePlan> plan,
                         PlanRule(rule, lookup, planner_options));
  plans_.emplace(key, plan);
  return plan;
}

PlanCache::CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::shared_ptr<const RulePlan>> PlanCache::Plans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const RulePlan>> out;
  out.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) out.push_back(plan);
  return out;
}

}  // namespace recur::eval::plan
