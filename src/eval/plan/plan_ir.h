#ifndef RECUR_EVAL_PLAN_PLAN_IR_H_
#define RECUR_EVAL_PLAN_PLAN_IR_H_

// The physical-plan IR shared by every evaluator: a rule body compiles
// into per-component push pipelines of access operators over a flat
// register frame, terminated by a head emitter. Plans are compiled once
// per (rule, delta position, bound-variable signature) by the planner and
// re-executed across fixpoint rounds; estimated cardinalities are fixed at
// plan time while actual row counts accumulate in atomic per-operator
// counters, so ExplainPlan can render both side by side.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ra/relation.h"
#include "util/symbol_table.h"

namespace recur::eval::plan {

/// Physical operator kinds. IndexScan opens a component (full scan or a
/// probe keyed purely by constants); HashJoinProbe keys the probe on at
/// least one register bound by an upstream operator — the physical join.
/// ConstFilter applies residual equality checks to an already-open row
/// stream (the standalone form drives Query::FilterInto); Project
/// materializes a component's head-variable registers; EmitHead stages
/// the final head tuple.
enum class OpKind {
  kIndexScan,
  kHashJoinProbe,
  kConstFilter,
  kProject,
  kEmitHead,
};

const char* ToString(OpKind kind);

/// Physical access strategy of a probe operator. kHash probes the
/// relation's bucketed hash index (Bloom-filtered, bucket-prefetched);
/// kSortMerge probes a sorted (key hash, row) index — chosen by the
/// planner for skewed multi-join bodies where long hash chains would
/// scatter cache accesses.
enum class ProbeStrategy {
  kHash,
  kSortMerge,
};

/// A batch of candidate rows flowing between operators: row ids into
/// `relation`'s arena plus a selection vector of the positions (indexes
/// into row_ids) that survive the checks applied so far. ConstFilter
/// refines `selection` in place instead of copying rows; downstream
/// operators read only the selected positions, and materialization is
/// deferred to the pipeline sink.
struct RowBatch {
  const ra::Relation* relation = nullptr;
  std::vector<int> row_ids;
  std::vector<int> selection;

  void Clear() {
    row_ids.clear();
    selection.clear();
  }
  size_t selected() const { return selection.size(); }
};

/// Residual equality checks verified against the candidate atom row. The
/// probe key columns are re-verified here too: multi-column candidates
/// come from a hash bucket and may collide.
struct ConstCheck {
  int atom_col;
  ra::Value value;
};
struct RegCheck {
  int atom_col;
  int reg;
};
/// Repeated variable within one atom: both columns must agree.
struct IntraCheck {
  int first_col;
  int later_col;
};
/// A newly bound variable: atom column -> register.
struct RegOutput {
  int atom_col;
  int reg;
};

/// One pipeline operator. A single tagged struct (rather than a class
/// hierarchy) keeps execution a tight switch over POD fields with no
/// virtual dispatch in the per-row loop.
struct Op {
  OpKind kind = OpKind::kIndexScan;

  /// Body position of the accessed atom; the executor substitutes the
  /// delta relation when this equals the plan's delta_index.
  int atom_index = -1;
  SymbolId predicate = kInvalidSymbol;
  int arity = 0;

  /// Probe key (empty -> full scan): relation columns and, aligned with
  /// them, the key source per column — frame register when probe_regs[i]
  /// >= 0, else the constant probe_consts[i].
  std::vector<int> probe_cols;
  std::vector<int> probe_regs;
  std::vector<ra::Value> probe_consts;

  std::vector<ConstCheck> const_checks;
  std::vector<RegCheck> reg_checks;
  std::vector<IntraCheck> intra_checks;
  std::vector<RegOutput> outputs;

  /// kProject: registers materialized into the component relation.
  std::vector<int> project_regs;

  /// Cardinality of the accessed relation at plan time.
  size_t base_rows = 0;
  /// Estimated rows this operator passes downstream per plan execution.
  double est_rows = 0;
  /// Slot into RulePlan::actual_rows / actual_probes / actual_batches.
  int counter_slot = -1;

  /// Physical access strategy for probe operators (ignored on scans).
  ProbeStrategy strategy = ProbeStrategy::kHash;
  /// Expected candidate rows per probe at plan time (base_rows scaled by
  /// the probe columns' selectivity) — the skew signal behind the
  /// strategy choice; the plan cache re-derives it on drift checks.
  double planned_avg_bucket = 0;
};

/// One connectivity component of the rule body: the access pipeline plus
/// the head-variable registers it owns. A component with no head
/// registers is a pure existence check — the executor early-exits on the
/// first satisfying row and fails the whole rule if none exists.
struct ComponentPlan {
  std::vector<Op> ops;
  std::vector<int> head_regs;
  std::vector<SymbolId> head_vars;
};

/// Where one head position's value comes from at emit time.
struct HeadSlot {
  /// For single-component (streaming) plans: a frame register. For
  /// multi-component plans: a column of the combined row
  /// [bound-variable prefix | component projections...]. -1 -> constant.
  int col = -1;
  ra::Value constant = 0;
};

/// A compiled rule plan. Immutable after planning except for the actual
/// per-operator row counters, which executions accumulate atomically (the
/// parallel engine runs one cached plan from many shard tasks).
struct RulePlan {
  /// Bound-variable signature (sorted); register i holds bound_vars[i].
  std::vector<SymbolId> bound_vars;
  int frame_size = 0;
  std::vector<ComponentPlan> components;
  std::vector<HeadSlot> head;
  int head_arity = 0;
  /// Body position whose relation the executor overrides with the delta;
  /// -1 when the plan reads full relations everywhere.
  int delta_index = -1;
  /// True when any operator probes an index (register- or constant-keyed)
  /// — exactly the executions that count join_probes in EvalStats.
  bool has_join = false;
  /// True when at most one component owns head variables: the executor
  /// streams that component's frames straight into EmitHead with no
  /// intermediate materialization. Multi-component plans materialize each
  /// component's Project output and combine by Cartesian product (the
  /// paper's disconnected-guard principle, which keeps depth-k bounded
  /// expansions polynomial).
  bool streaming = true;
  /// Estimated head rows per execution (pre-dedup).
  double est_head_rows = 0;

  /// (atom index, relation cardinality) observed at plan time; the plan
  /// cache recompiles when these ratios drift past its threshold.
  std::vector<std::pair<int, size_t>> planned_cardinalities;

  /// Actual rows passed downstream / probes issued / batches processed,
  /// per counter_slot, summed over every execution of this plan.
  std::unique_ptr<std::atomic<size_t>[]> actual_rows;
  std::unique_ptr<std::atomic<size_t>[]> actual_probes;
  std::unique_ptr<std::atomic<size_t>[]> actual_batches;
  /// Head tuples staged (pre-dedup) across executions. Mutable like the
  /// per-operator counters: executions run against a const shared plan.
  mutable std::atomic<size_t> actual_head_rows{0};
  /// Completed executions — divides the accumulated actuals back into
  /// per-execution averages, which is what the cost model calibrates on.
  mutable std::atomic<size_t> executions{0};
  /// Bloom-filter telemetry across executions: probes that consulted a
  /// filter, and how many of those it pruned before any bucket access.
  mutable std::atomic<size_t> bloom_probes{0};
  mutable std::atomic<size_t> bloom_skips{0};
  /// One char per probe operator, in component order: 'h' (hash) or
  /// 's' (sort-merge). The plan cache invalidates a cached plan whose
  /// recorded strategies would no longer be chosen.
  std::string strategy_signature;
  int num_counters = 0;
};

/// Renders the plan tree with estimated and per-execution-accumulated
/// actual cardinalities. With `symbols`, predicates and variables print by
/// name; otherwise as p<id>/v<id>.
std::string ExplainPlan(const RulePlan& plan,
                        const SymbolTable* symbols = nullptr);

}  // namespace recur::eval::plan

#endif  // RECUR_EVAL_PLAN_PLAN_IR_H_
