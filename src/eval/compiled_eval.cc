#include "eval/compiled_eval.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

#include "eval/plan/plan_cache.h"
#include "ra/operators.h"
#include "util/fault_injection.h"

namespace recur::eval {

namespace {

/// Builds the per-level rule for one exit under a query adornment:
///   __level(<free head vars>) :- <exit body>, __frontier_i(<head var i>)
///                                 for every bound position i.
/// Joining the frontier atoms realizes "selections before joins": the
/// current frontier sets restrict the exit join at every level.
datalog::Rule MakeLevelRule(const datalog::Rule& exit, const Query& query,
                            const std::vector<SymbolId>& frontier_preds,
                            SymbolId level_pred) {
  std::vector<datalog::Term> head_args;
  for (int i : query.FreePositions()) {
    head_args.push_back(exit.head().args()[i]);
  }
  // Frontier atoms come first so the greedy atom ordering starts from the
  // (small) frontier sets — selections before joins.
  std::vector<datalog::Atom> body;
  for (int i : query.BoundPositions()) {
    body.emplace_back(frontier_preds[i],
                      std::vector<datalog::Term>{exit.head().args()[i]});
  }
  body.insert(body.end(), exit.body().begin(), exit.body().end());
  return datalog::Rule(datalog::Atom(level_pred, std::move(head_args)),
                       std::move(body));
}

/// A free position that needs backward folding: its column in the level
/// result and its materialized step relation S(consequent, antecedent).
struct FoldColumn {
  int column;
  const ra::Relation* step;
};

/// One backward fold: replaces every foldable column value by its
/// predecessors through the step relation (join on the antecedent side).
ra::Relation FoldOnce(const ra::Relation& acc,
                      const std::vector<FoldColumn>& folds) {
  ra::Relation cur = acc;
  for (const FoldColumn& f : folds) {
    ra::Relation next(cur.arity());
    next.Reserve(cur.size());
    for (ra::TupleRef t : cur.rows()) {
      for (int row : f.step->RowsWithValue(1, t[f.column])) {
        ra::Value* dst = next.StageRow();
        std::copy(t.begin(), t.end(), dst);
        dst[f.column] = f.step->rows()[row][0];
        next.CommitStagedRow();
      }
    }
    cur = std::move(next);
  }
  return cur;
}

/// Serializes the evolving frontier sets for cycle detection.
std::string FrontierKey(const std::vector<std::optional<ra::ValueSet>>&
                            frontiers) {
  std::string key;
  for (const auto& f : frontiers) {
    if (!f.has_value()) continue;
    std::vector<ra::Value> sorted(f->begin(), f->end());
    std::sort(sorted.begin(), sorted.end());
    for (ra::Value v : sorted) {
      key += std::to_string(v);
      key += ",";
    }
    key += ";";
  }
  return key;
}

}  // namespace

Result<StableEvaluator> StableEvaluator::Create(
    datalog::LinearRecursiveRule recursive, std::vector<datalog::Rule> exits,
    SymbolTable* symbols) {
  if (exits.empty()) {
    return Status::InvalidArgument("at least one exit rule is required");
  }
  for (const datalog::Rule& exit : exits) {
    if (exit.head().predicate() != recursive.recursive_predicate() ||
        exit.head().arity() != recursive.dimension()) {
      return Status::InvalidArgument(
          "exit rule head does not match the recursive predicate");
    }
    if (exit.IsRecursive()) {
      return Status::InvalidArgument("exit rules must be non-recursive");
    }
  }
  RECUR_ASSIGN_OR_RETURN(classify::Classification cls,
                         classify::Classify(recursive));
  if (!cls.strongly_stable) {
    return Status::InvalidArgument(
        "recursive rule is not strongly stable; use CreateWithTransform");
  }
  StableEvaluator out;
  RECUR_ASSIGN_OR_RETURN(out.chains_,
                         ExtractChains(recursive, cls, symbols));
  out.recursive_ = std::move(recursive);
  out.exits_ = std::move(exits);
  out.symbols_ = symbols;
  out.plan_cache_ = std::make_shared<plan::PlanCache>();
  for (int i = 0; i < out.recursive_.dimension(); ++i) {
    out.frontier_preds_.push_back(
        symbols->Intern("__frontier_" + std::to_string(i)));
  }
  return out;
}

Result<StableEvaluator> StableEvaluator::CreateWithTransform(
    const datalog::LinearRecursiveRule& formula,
    const datalog::Rule& exit_rule, SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(classify::Classification cls,
                         classify::Classify(formula));
  if (cls.strongly_stable) {
    return Create(formula, {exit_rule}, symbols);
  }
  RECUR_ASSIGN_OR_RETURN(
      transform::StableForm sf,
      transform::ToStableForm(formula, cls, exit_rule, symbols));
  return Create(std::move(sf.recursive), std::move(sf.exits), symbols);
}

datalog::Program StableEvaluator::EquivalentProgram() const {
  datalog::Program program;
  program.AddRule(recursive_.rule());
  for (const datalog::Rule& exit : exits_) program.AddRule(exit);
  return program;
}

Result<ra::Relation> StableEvaluator::Answer(
    const Query& query, const ra::Database& edb,
    const CompiledEvalOptions& options, CompiledEvalStats* stats) const {
  int n = dimension();
  if (query.pred != recursive_.recursive_predicate() ||
      query.arity() != n) {
    return Status::InvalidArgument(
        "query does not match the recursive predicate");
  }
  ContextScope ctx(options.fixpoint.context, options.fixpoint.limits);

  // Local (per-call) relations shadowing the EDB: the frontier sets.
  std::unordered_map<SymbolId, ra::Relation> locals;
  RelationLookup lookup = [&locals,
                           &edb](SymbolId pred) -> const ra::Relation* {
    auto it = locals.find(pred);
    if (it != locals.end()) return &it->second;
    return edb.Find(pred);
  };

  // Every pipeline entry from this call shares the evaluator's plan cache
  // and this call's governance context.
  ConjunctiveOptions conj;
  conj.plan_cache = plan_cache_.get();
  conj.context = ctx.get();
  conj.batch_rows = options.fixpoint.executor_batch_rows;

  // Materialize step relations for non-identity chains.
  std::vector<std::optional<ra::Relation>> steps(n);
  for (const PositionChain& chain : chains_.chains) {
    if (chain.identity) continue;
    RECUR_ASSIGN_OR_RETURN(steps[chain.position],
                           MaterializeStep(chain, lookup, stats, conj));
  }
  RECUR_ASSIGN_OR_RETURN(bool guard_ok,
                         GuardHolds(chains_, lookup, stats, conj));

  std::vector<int> bound = query.BoundPositions();
  std::vector<int> free = query.FreePositions();
  int bound_nonid = 0;
  int free_nonid = 0;
  for (int i : bound) {
    if (!chains_.chains[i].identity) ++bound_nonid;
  }
  for (int i : free) {
    if (!chains_.chains[i].identity) ++free_nonid;
  }

  // Level rules, one per exit.
  SymbolId level_pred = symbols_->Intern("__level");
  std::vector<datalog::Rule> level_rules;
  level_rules.reserve(exits_.size());
  for (const datalog::Rule& exit : exits_) {
    level_rules.push_back(
        MakeLevelRule(exit, query, frontier_preds_, level_pred));
  }

  // Initialize bound frontiers with the query constants.
  std::vector<std::optional<ra::ValueSet>> frontiers(n);
  auto publish_frontier = [&](int i) {
    locals[frontier_preds_[i]] = ra::FromValues(*frontiers[i]);
  };
  for (int i : bound) {
    frontiers[i] = ra::ValueSet{*query.bindings[i]};
    publish_frontier(i);
  }

  // Evaluates all exits at the current level. Every mode loops through
  // here, so this is the shared governance poll point.
  auto eval_level = [&]() -> Result<ra::Relation> {
    RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
    RECUR_FAULT_POINT("compiled.level");
    ra::Relation out(static_cast<int>(free.size()));
    for (const datalog::Rule& rule : level_rules) {
      RECUR_ASSIGN_OR_RETURN(ra::Relation r,
                             EvaluateRule(rule, lookup, conj, stats));
      out.InsertAll(r);
    }
    return out;
  };

  // Columns of the level result that need backward folding.
  std::vector<FoldColumn> folds;
  for (size_t c = 0; c < free.size(); ++c) {
    int position = free[c];
    if (!chains_.chains[position].identity) {
      folds.push_back({static_cast<int>(c), &*steps[position]});
    }
  }

  auto note_mode = [&](CompiledEvalStats::Mode m) {
    if (stats != nullptr) stats->mode = m;
  };
  auto bump_level = [&]() {
    if (stats != nullptr) ++stats->levels;
  };

  ra::Relation acc(static_cast<int>(free.size()));

  if (options.allow_dedup && bound_nonid == 0) {
    // Every bound frontier is constant, so the level input never changes:
    // answers = ∪_k fold^k(R), a plain closure (joins distribute over
    // union, so folding the accumulated set is exact).
    note_mode(free_nonid == 0 ? CompiledEvalStats::Mode::kSingleLevel
                              : CompiledEvalStats::Mode::kBackwardClosure);
    RECUR_ASSIGN_OR_RETURN(acc, eval_level());
    bump_level();
    if (guard_ok && free_nonid > 0) {
      ra::Relation delta = acc;
      while (!delta.empty()) {
        RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
        ra::Relation next = FoldOnce(delta, folds);
        ra::Relation fresh(acc.arity());
        for (ra::TupleRef t : next.rows()) {
          if (!acc.Contains(t)) fresh.Insert(t);
        }
        acc.InsertAll(fresh);
        delta = std::move(fresh);
        bump_level();
        if (stats != nullptr) {
          stats->total_tuples = acc.size();
          stats->arena_bytes = acc.ArenaBytes();
        }
        RECUR_RETURN_IF_ERROR(
            ctx->CheckBudgets(acc.size(), acc.ArenaBytes()));
      }
    }
  } else if (options.allow_dedup && bound_nonid == 1 && free_nonid == 0) {
    // Classic reachability: one evolving frontier, identity free side, so
    // only the union of frontiers matters — BFS with a visited set.
    note_mode(CompiledEvalStats::Mode::kForwardBfs);
    int p = -1;
    for (int i : bound) {
      if (!chains_.chains[i].identity) p = i;
    }
    ra::ValueSet visited = *frontiers[p];
    for (;;) {
      RECUR_ASSIGN_OR_RETURN(ra::Relation level, eval_level());
      acc.InsertAll(level);
      bump_level();
      if (stats != nullptr) {
        stats->total_tuples = acc.size();
        stats->arena_bytes = acc.ArenaBytes();
      }
      RECUR_RETURN_IF_ERROR(ctx->CheckBudgets(acc.size(), acc.ArenaBytes()));
      if (!guard_ok) break;
      RECUR_ASSIGN_OR_RETURN(
          ra::ValueSet next,
          ra::Step(*steps[p], 0, 1, *frontiers[p]));
      ra::ValueSet fresh;
      for (ra::Value v : next) {
        if (visited.insert(v).second) fresh.insert(v);
      }
      if (fresh.empty()) break;
      frontiers[p] = std::move(fresh);
      publish_frontier(p);
    }
  } else {
    // Synchronized level iteration: chain powers on different positions
    // share the level index k, exactly as the compiled formulas require.
    note_mode(CompiledEvalStats::Mode::kSynchronized);
    int cap = options.max_levels >= 0
                  ? options.max_levels
                  : static_cast<int>(edb.ActiveDomainSize()) + 1;
    std::vector<ra::Relation> level_results;
    std::set<std::string> seen_states;
    size_t level_tuples = 0;
    size_t level_bytes = 0;
    bool converged = false;
    for (int k = 0; k <= cap; ++k) {
      RECUR_ASSIGN_OR_RETURN(ra::Relation level, eval_level());
      level_results.push_back(std::move(level));
      bump_level();
      level_tuples += level_results.back().size();
      level_bytes += level_results.back().ArenaBytes();
      if (stats != nullptr) {
        stats->total_tuples = level_tuples;
        stats->arena_bytes = level_bytes;
      }
      RECUR_RETURN_IF_ERROR(ctx->CheckBudgets(level_tuples, level_bytes));
      if (!guard_ok) {
        converged = true;
        break;
      }
      // Advance the evolving frontiers.
      bool any_empty = false;
      for (int i : bound) {
        if (chains_.chains[i].identity) continue;
        RECUR_ASSIGN_OR_RETURN(ra::ValueSet next,
                               ra::Step(*steps[i], 0, 1, *frontiers[i]));
        frontiers[i] = std::move(next);
        publish_frontier(i);
        if (frontiers[i]->empty()) any_empty = true;
      }
      if (any_empty) {
        converged = true;
        break;
      }
      if (!seen_states.insert(FrontierKey(frontiers)).second) {
        break;  // frontier state cycled: no convergence on this data
      }
    }
    if (!converged) {
      if (stats != nullptr) stats->fell_back = true;
      if (!options.fallback_to_seminaive) {
        return Status::Unsupported(
            "synchronized compiled evaluation did not converge (cyclic "
            "data); enable fallback_to_seminaive");
      }
      // Hand the fallback the same context so the deadline clock keeps
      // running from the compiled attempt instead of restarting.
      FixpointOptions fallback_fp = options.fixpoint;
      fallback_fp.context = ctx.get();
      return SemiNaiveAnswer(EquivalentProgram(), edb, query, fallback_fp,
                             stats);
    }
    // Combine levels.
    if (folds.empty()) {
      for (const ra::Relation& r : level_results) acc.InsertAll(r);
    } else if (options.free_mode == FreeMode::kHorner) {
      acc = level_results.back();
      for (int j = static_cast<int>(level_results.size()) - 2; j >= 0;
           --j) {
        ra::Relation folded = FoldOnce(acc, folds);
        acc = std::move(folded);
        acc.InsertAll(level_results[j]);
      }
    } else {
      for (size_t j = 0; j < level_results.size(); ++j) {
        ra::Relation r = level_results[j];
        for (size_t step = 0; step < j; ++step) {
          r = FoldOnce(r, folds);
        }
        acc.InsertAll(r);
      }
    }
  }

  // Assemble full-arity answers: bound columns carry the query constants.
  ra::Relation out(n);
  out.Reserve(acc.size());
  for (ra::TupleRef t : acc.rows()) {
    ra::Value* dst = out.StageRow();
    for (int i : bound) dst[i] = *query.bindings[i];
    for (size_t c = 0; c < free.size(); ++c) {
      dst[free[c]] = t[static_cast<int>(c)];
    }
    out.CommitStagedRow();
  }
  return out;
}

}  // namespace recur::eval
