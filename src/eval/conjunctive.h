#ifndef RECUR_EVAL_CONJUNCTIVE_H_
#define RECUR_EVAL_CONJUNCTIVE_H_

#include <functional>
#include <unordered_map>

#include "datalog/rule.h"
#include "ra/relation.h"
#include "util/result.h"

namespace recur::eval {

/// Resolves a predicate to its current relation. Returning nullptr means
/// "empty relation of unknown arity" and yields no derivations.
using RelationLookup = std::function<const ra::Relation*(SymbolId)>;

/// Options for EvaluateRule.
struct ConjunctiveOptions {
  /// Pre-bound variables (e.g. query constants pushed into the rule);
  /// implements the paper's "selections before joins" principle.
  const std::unordered_map<SymbolId, ra::Value>* bindings = nullptr;
  /// Greedily reorder body atoms so that atoms sharing variables with the
  /// already-bound set run first (sideways information passing). With
  /// false, atoms run left to right.
  bool reorder_atoms = true;
  /// Replace the relation of the body atom at this index (used by
  /// semi-naive evaluation to substitute the delta); -1 for none.
  int override_index = -1;
  const ra::Relation* override_relation = nullptr;
};

/// Statistics accumulated across evaluator runs.
struct EvalStats {
  int iterations = 0;           // fixpoint rounds (or levels)
  size_t tuples_considered = 0; // intermediate binding tuples materialized
  size_t tuples_produced = 0;   // new head tuples
};

/// Evaluates the conjunctive body of `rule` against the relations provided
/// by `lookup` and returns the derived head relation (head constants are
/// emitted literally; repeated variables and constants inside body atoms
/// act as equality/selection predicates). This is the workhorse shared by
/// the naive/semi-naive fixpoints and by bounded-formula evaluation.
Result<ra::Relation> EvaluateRule(const datalog::Rule& rule,
                                  const RelationLookup& lookup,
                                  const ConjunctiveOptions& options = {},
                                  EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_CONJUNCTIVE_H_
