#ifndef RECUR_EVAL_CONJUNCTIVE_H_
#define RECUR_EVAL_CONJUNCTIVE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/rule.h"
#include "ra/relation.h"
#include "util/result.h"

namespace recur::eval {

class ExecutionContext;
namespace plan {
class PlanCache;
}  // namespace plan

/// Resolves a predicate to its current relation. Returning nullptr means
/// "empty relation of unknown arity" and yields no derivations.
using RelationLookup = std::function<const ra::Relation*(SymbolId)>;

/// Options for EvaluateRule.
struct ConjunctiveOptions {
  /// Pre-bound variables (e.g. query constants pushed into the rule);
  /// implements the paper's "selections before joins" principle.
  const std::unordered_map<SymbolId, ra::Value>* bindings = nullptr;
  /// Reorder body atoms (greedy boundness, then smaller relation first)
  /// when compiling the physical plan (sideways information passing).
  /// With false, atoms run left to right within each component.
  bool reorder_atoms = true;
  /// Replace the relation of the body atom at this index (used by
  /// semi-naive evaluation to substitute the delta); -1 for none.
  int override_index = -1;
  const ra::Relation* override_relation = nullptr;
  /// Reuse compiled plans across calls (fixpoint rounds, levels,
  /// queries). Without a cache every call compiles a fresh plan.
  plan::PlanCache* plan_cache = nullptr;
  /// Governance handle polled at operator-batch granularity inside the
  /// executor; cancellation surfaces as kCancelled mid-rule.
  const ExecutionContext* context = nullptr;
  /// Append the executed plan's ExplainPlan() rendering to
  /// EvalStats::plans.
  bool explain = false;
  /// Lanes per executor register batch. 0 -> the executor default
  /// (plan::kExecutorBatchLanes); 1 degenerates to tuple-at-a-time
  /// execution (the vectorization-ablation baseline).
  size_t batch_rows = 0;
};

/// Per-rule slice of one fixpoint round (only filled in when
/// FixpointOptions::collect_stats is set).
struct RuleRoundStats {
  int rule_index = 0;           // position in Program::rules()
  size_t tuples_derived = 0;    // head tuples the rule body produced
  size_t tuples_deduped = 0;    // of those, already known (dropped)
  size_t join_probes = 0;       // hash-index probes while joining
  /// Summed task time; under the parallel engine this is CPU seconds
  /// across shards, not wall time.
  double seconds = 0;
};

/// One fixpoint round of the stats tree.
struct RoundStats {
  int round = 0;
  size_t tuples_derived = 0;
  size_t tuples_deduped = 0;
  size_t join_probes = 0;
  size_t index_rebuilds = 0;    // from-scratch column index builds
  double eval_seconds = 0;      // wall time of the rule-evaluation stage
  double merge_seconds = 0;     // wall time of the dedup/merge stage
  std::vector<RuleRoundStats> rules;
};

/// Statistics accumulated across evaluator runs. The flat counters are
/// always cheap and always filled; the per-round `rounds` tree is only
/// populated by the fixpoint evaluators when
/// FixpointOptions::collect_stats is set.
struct EvalStats {
  int iterations = 0;           // fixpoint rounds (or levels)
  size_t tuples_considered = 0; // intermediate binding tuples materialized
  size_t tuples_produced = 0;   // new head tuples
  size_t join_probes = 0;       // hash-index probes across all joins
  size_t index_rebuilds = 0;    // from-scratch column index builds observed
  /// Partial-progress footprint, updated every round even on error return:
  /// total IDB tuples materialized and their resident arena bytes. These
  /// are what a caller inspects after kDeadlineExceeded / kCancelled /
  /// kResourceExhausted to see how far the fixpoint got.
  size_t total_tuples = 0;
  size_t arena_bytes = 0;
  /// Physical-plan executions this run, and how many of those plans
  /// contained an index-probe operator (a join). join_probes can only be
  /// nonzero when plans_with_joins is — the differential harness asserts
  /// that invariant across the whole corpus.
  size_t plans_executed = 0;
  size_t plans_with_joins = 0;
  /// Vectorized-executor telemetry: register batches pushed through plan
  /// operators, index probes that consulted a Bloom filter, and how many
  /// of those the filter pruned before any bucket access.
  size_t batches = 0;
  size_t bloom_probes = 0;
  size_t bloom_skips = 0;
  std::vector<RoundStats> rounds;
  /// ExplainPlan() renderings, appended per EvaluateRule call when
  /// ConjunctiveOptions::explain is set.
  std::vector<std::string> plans;

  /// Renders the stats tree ("round 3: 120 derived, 40 deduped, ...")
  /// for tools and examples; flat counters only when rounds is empty.
  std::string FormatTree() const;

  /// Folds another run's flat counters into this one — what the traffic
  /// harness does to aggregate engine stats across the many evaluations of
  /// one op node. Additive counters sum; the partial-progress footprints
  /// (total_tuples, arena_bytes) take the max, since they are sizes of
  /// independent materializations, not flows. The per-round tree and plan
  /// renderings are left untouched.
  void Accumulate(const EvalStats& other);
};

/// Evaluates the conjunctive body of `rule` against the relations provided
/// by `lookup` and returns the derived head relation (head constants are
/// emitted literally; repeated variables and constants inside body atoms
/// act as equality/selection predicates). This is the workhorse shared by
/// every engine: the rule is compiled to a physical plan (cached via
/// ConjunctiveOptions::plan_cache when provided) and executed through the
/// shared push-based pipeline in eval/plan/.
Result<ra::Relation> EvaluateRule(const datalog::Rule& rule,
                                  const RelationLookup& lookup,
                                  const ConjunctiveOptions& options = {},
                                  EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_CONJUNCTIVE_H_
