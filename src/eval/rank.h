#ifndef RECUR_EVAL_RANK_H_
#define RECUR_EVAL_RANK_H_

#include "datalog/expansion.h"
#include "ra/database.h"
#include "util/result.h"

namespace recur::eval {

/// Empirically determines the rank of a recursive formula on a concrete
/// database: evaluates the depth-k expansions (recursive predicate
/// resolved against `exit_rule`) for k = 0..max_depth and reports the
/// largest k whose expansion produced a tuple not derived by any earlier
/// depth. The paper's rank is the supremum of this value over all
/// databases; for a bounded formula the classifier's rank_bound must
/// dominate it on every database (checked in the property tests).
Result<int> EmpiricalRank(const datalog::LinearRecursiveRule& formula,
                          const datalog::Rule& exit_rule,
                          const ra::Database& edb, SymbolTable* symbols,
                          int max_depth);

}  // namespace recur::eval

#endif  // RECUR_EVAL_RANK_H_
