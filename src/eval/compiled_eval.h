#ifndef RECUR_EVAL_COMPILED_EVAL_H_
#define RECUR_EVAL_COMPILED_EVAL_H_

#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "eval/chain.h"
#include "eval/query.h"
#include "eval/seminaive.h"
#include "ra/database.h"
#include "transform/stable_form.h"

namespace recur::eval {

namespace plan {
class PlanCache;
}  // namespace plan

/// How the free-position chain powers of a synchronized plan are evaluated.
enum class FreeMode {
  /// Backward (Horner) fold: iterate levels once forward to collect the
  /// per-level exit joins, then fold from the deepest level back — O(K)
  /// column joins in total.
  kHorner,
  /// Level-wise, exactly as the paper's plans are written
  /// (∪_k ...(chain)^k...): level k re-applies the chain k times — O(K^2)
  /// column joins. Kept as the ablation baseline.
  kLevelwise,
};

struct CompiledEvalOptions {
  FreeMode free_mode = FreeMode::kHorner;
  /// Cap on expansion levels in synchronized mode; -1 means
  /// active-domain-size + 1.
  int max_levels = -1;
  /// When synchronized iteration does not converge (cyclic data), fall back
  /// to semi-naive evaluation of the equivalent program instead of
  /// failing.
  bool fallback_to_seminaive = true;
  /// Allow the exact dedup modes (forward BFS / backward closure) when the
  /// query shape admits them; disable to force synchronized mode
  /// (ablation).
  bool allow_dedup = true;
  /// Options for any semi-naive evaluation a plan runs (the kSemiNaive
  /// strategy and the cyclic-data fallback): threading, sharding, stats.
  FixpointOptions fixpoint;
};

struct CompiledEvalStats : EvalStats {
  /// Expansion levels actually evaluated.
  int levels = 0;
  /// Which execution mode ran.
  enum class Mode { kSingleLevel, kForwardBfs, kBackwardClosure,
                    kSynchronized } mode = Mode::kSynchronized;
  bool fell_back = false;
};

/// Compiled (Henschen-Naqvi style) evaluator for a strongly stable
/// recursive rule with one or more exit rules. Per query it picks one of
/// four execution modes based on which positions are bound and which
/// positions have non-identity chains:
///
///  - all chains identity                      -> single level (exits only)
///  - one non-identity chain, on a bound
///    position, free side all identity        -> forward BFS with visited
///                                               set (always terminates)
///  - no bound position has a non-identity
///    chain                                   -> backward closure over the
///                                               free chains (always
///                                               terminates)
///  - otherwise                               -> synchronized level
///                                               iteration; exact, and
///                                               terminating whenever some
///                                               bound frontier empties
///                                               (e.g. acyclic data);
///                                               detects non-convergence
///                                               and falls back
///
/// The level-synchronization requirement is intrinsic to the paper's
/// compiled formulas (chain powers on different positions share the same
/// k), which is why dedup across levels is only sound in the shapes above.
class StableEvaluator {
 public:
  /// Wraps an already-stable recursive rule and its exit rules.
  static Result<StableEvaluator> Create(
      datalog::LinearRecursiveRule recursive,
      std::vector<datalog::Rule> exits, SymbolTable* symbols);

  /// Transforms `formula` to stable form first if necessary (classes
  /// A1-A5; fails for B-F).
  static Result<StableEvaluator> CreateWithTransform(
      const datalog::LinearRecursiveRule& formula,
      const datalog::Rule& exit_rule, SymbolTable* symbols);

  /// Answers `query` against `edb`.
  Result<ra::Relation> Answer(const Query& query, const ra::Database& edb,
                              const CompiledEvalOptions& options = {},
                              CompiledEvalStats* stats = nullptr) const;

  const datalog::LinearRecursiveRule& recursive() const { return recursive_; }
  const std::vector<datalog::Rule>& exits() const { return exits_; }
  const StableChains& chains() const { return chains_; }
  int dimension() const { return recursive_.dimension(); }

  /// The equivalent Datalog program (recursive rule + exits), used by the
  /// semi-naive fallback and handy for cross-checking in tests.
  datalog::Program EquivalentProgram() const;

 private:
  StableEvaluator() = default;

  datalog::LinearRecursiveRule recursive_;
  std::vector<datalog::Rule> exits_;
  StableChains chains_;
  SymbolTable* symbols_ = nullptr;
  std::vector<SymbolId> frontier_preds_;  // synthetic, one per position
  /// Level/step/guard rules are structurally identical across levels and
  /// Answer calls, so their physical plans persist with the evaluator.
  /// (shared_ptr: PlanCache owns a mutex and the evaluator must stay
  /// movable; the cache itself is thread-safe.)
  std::shared_ptr<plan::PlanCache> plan_cache_;
};

}  // namespace recur::eval

#endif  // RECUR_EVAL_COMPILED_EVAL_H_
