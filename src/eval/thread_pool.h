#ifndef RECUR_EVAL_THREAD_POOL_H_
#define RECUR_EVAL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace recur::eval {

/// A fixed-size pool of worker threads draining a shared task queue.
/// The parallel semi-naive engine creates one pool per fixpoint call and
/// submits one task per (rule, delta-atom, shard) each round; Wait() is the
/// per-round barrier.
///
/// Exception contract: tasks may throw. The first exception a worker
/// catches is captured, the still-queued tasks are dropped (tasks already
/// running finish normally), and the next Wait() surfaces the failure as a
/// Status — std::bad_alloc as kResourceExhausted, any other std::exception
/// as kInternal carrying its what(). Wait() then resets the pool so it can
/// be reused for the next batch. Exceptions never escape a worker thread
/// and never reach std::terminate.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks (unless a failure or CancelPending() already
  /// dropped them), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for an idle worker.
  void Submit(std::function<void()> task);

  /// Drops every queued-but-not-started task (running tasks finish).
  /// The per-batch barrier semantics of Wait() are unaffected: it still
  /// returns only once the running tasks have drained.
  void CancelPending();

  /// Blocks until every submitted task has finished running or been
  /// dropped. Returns OK on a clean batch, otherwise the Status of the
  /// batch's first task exception (see the class comment), and re-arms the
  /// pool for the next batch either way.
  Status Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
  bool cancel_pending_ = false;        // drop queued tasks until Wait()
  std::exception_ptr first_exception_; // first task failure of the batch
};

/// Splits [0, n) across the pool: invokes fn(i) for every i, num_threads
/// at a time, and returns once all calls finish. fn must be safe to call
/// concurrently for distinct i. If a call throws, remaining queued calls
/// are dropped and the first exception comes back as a Status (see
/// ThreadPool::Wait).
Status ParallelFor(ThreadPool* pool, int n,
                   const std::function<void(int)>& fn);

}  // namespace recur::eval

#endif  // RECUR_EVAL_THREAD_POOL_H_
