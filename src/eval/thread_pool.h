#ifndef RECUR_EVAL_THREAD_POOL_H_
#define RECUR_EVAL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recur::eval {

/// A fixed-size pool of worker threads draining a shared task queue.
/// The parallel semi-naive engine creates one pool per fixpoint call and
/// submits one task per (rule, delta-atom, shard) each round; Wait() is the
/// per-round barrier. Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for an idle worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
};

/// Splits [0, n) across the pool: invokes fn(i) for every i, num_threads
/// at a time, and returns when all calls finish. fn must be safe to call
/// concurrently for distinct i.
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn);

}  // namespace recur::eval

#endif  // RECUR_EVAL_THREAD_POOL_H_
