#ifndef RECUR_EVAL_QUERY_H_
#define RECUR_EVAL_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "datalog/atom.h"
#include "eval/execution_context.h"
#include "ra/relation.h"
#include "util/result.h"

namespace recur::eval {

/// A query over the recursive predicate: P(a, Y) binds position 0 to the
/// constant `a` and leaves position 1 free. The paper writes these as
/// query forms like P(d, v, v).
struct Query {
  SymbolId pred = kInvalidSymbol;
  std::vector<std::optional<ra::Value>> bindings;

  int arity() const { return static_cast<int>(bindings.size()); }

  /// Bitmask of bound positions (bit i set <=> position i bound) — the
  /// adornment, e.g. "bf" == 0b01.
  uint32_t adornment() const;

  /// Adornment in the conventional string form, e.g. "bff".
  std::string AdornmentString() const;

  /// Positions that are bound / free, in order.
  std::vector<int> BoundPositions() const;
  std::vector<int> FreePositions() const;

  /// Builds a query from an atom: constants bind, variables stay free.
  static Query FromAtom(const datalog::Atom& atom);

  /// Filters a fully materialized relation for `pred` down to the rows
  /// matching the bound positions (the brute-force reference semantics of
  /// a query: evaluate everything, then select).
  Result<ra::Relation> Filter(const ra::Relation& full) const;

  /// Like Filter, but streams matching rows straight into `out`'s arena
  /// instead of materializing an intermediate relation. `out` must have
  /// the query's arity. Returns the number of rows newly inserted. When a
  /// context is given, cancellation/deadline is polled every few thousand
  /// rows so a scan over a huge materialization stays interruptible.
  Result<size_t> FilterInto(const ra::Relation& full, ra::Relation* out,
                            const ExecutionContext* ctx = nullptr) const;
};

}  // namespace recur::eval

#endif  // RECUR_EVAL_QUERY_H_
