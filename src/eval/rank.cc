#include "eval/rank.h"

#include "eval/conjunctive.h"

namespace recur::eval {

Result<int> EmpiricalRank(const datalog::LinearRecursiveRule& formula,
                          const datalog::Rule& exit_rule,
                          const ra::Database& edb, SymbolTable* symbols,
                          int max_depth) {
  RelationLookup lookup = [&edb](SymbolId pred) { return edb.Find(pred); };
  ra::Relation accumulated(formula.dimension());
  int rank = 0;
  for (int k = 0; k <= max_depth; ++k) {
    RECUR_ASSIGN_OR_RETURN(
        datalog::Rule depth_rule,
        datalog::ExpandWithExit(formula, k, exit_rule, symbols));
    RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                           EvaluateRule(depth_rule, lookup));
    size_t fresh = accumulated.InsertAll(derived);
    if (fresh > 0) rank = k;
  }
  return rank;
}

}  // namespace recur::eval
