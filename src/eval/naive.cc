#include "eval/naive.h"

#include <algorithm>

namespace recur::eval {

namespace {

/// Initializes IDB relations: arity from rule heads, seeded with any facts
/// the database already holds under an IDB predicate.
Result<IdbRelations> InitializeIdb(const datalog::Program& program,
                                   const ra::Database& edb) {
  IdbRelations idb;
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    SymbolId pred = rule.head().predicate();
    int arity = rule.head().arity();
    auto it = idb.find(pred);
    if (it == idb.end()) {
      idb.emplace(pred, ra::Relation(arity));
      const ra::Relation* facts = edb.Find(pred);
      if (facts != nullptr) {
        if (facts->arity() != arity) {
          return Status::InvalidArgument(
              "facts and rules disagree on predicate arity");
        }
        idb[pred].InsertAll(*facts);
      }
    } else if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          "rules disagree on predicate arity");
    }
  }
  return idb;
}

}  // namespace

Result<IdbRelations> NaiveEvaluate(const datalog::Program& program,
                                   const ra::Database& edb,
                                   const FixpointOptions& options,
                                   EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb, InitializeIdb(program, edb));
  RelationLookup lookup = [&idb, &edb](SymbolId pred) -> const ra::Relation* {
    auto it = idb.find(pred);
    if (it != idb.end()) return &it->second;
    return edb.Find(pred);
  };
  for (int round = 0; round < options.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    bool changed = false;
    for (const datalog::Rule& rule : program.rules()) {
      if (rule.IsFact()) continue;
      RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                             EvaluateRule(rule, lookup, {}, stats));
      if (idb[rule.head().predicate()].InsertAll(derived) > 0) {
        changed = true;
      }
    }
    if (!changed) return idb;
  }
  return Status::Internal("naive fixpoint exceeded max_iterations");
}

Result<ra::Relation> NaiveAnswer(const datalog::Program& program,
                                 const ra::Database& edb, const Query& query,
                                 const FixpointOptions& options,
                                 EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb,
                         NaiveEvaluate(program, edb, options, stats));
  auto it = idb.find(query.pred);
  if (it == idb.end()) {
    return Status::NotFound("query predicate has no rules");
  }
  return query.Filter(it->second);
}

}  // namespace recur::eval
