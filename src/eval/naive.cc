#include "eval/naive.h"

#include <algorithm>
#include <chrono>
#include <new>
#include <optional>
#include <string>

#include "eval/plan/plan_cache.h"
#include "util/fault_injection.h"

namespace recur::eval {

namespace {

/// Initializes IDB relations: arity from rule heads, seeded with any facts
/// the database already holds under an IDB predicate.
Result<IdbRelations> InitializeIdb(const datalog::Program& program,
                                   const ra::Database& edb) {
  IdbRelations idb;
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    SymbolId pred = rule.head().predicate();
    int arity = rule.head().arity();
    auto it = idb.find(pred);
    if (it == idb.end()) {
      idb.emplace(pred, ra::Relation(arity));
      const ra::Relation* facts = edb.Find(pred);
      if (facts != nullptr) {
        if (facts->arity() != arity) {
          return Status::InvalidArgument(
              "facts and rules disagree on predicate arity");
        }
        idb[pred].InsertAll(*facts);
      }
    } else if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          "rules disagree on predicate arity");
    }
  }
  return idb;
}

/// Sums tuples and arena bytes across the IDB and leaves them in `stats`
/// (when present) so partial progress survives an error return. Returns the
/// totals for budget checks.
std::pair<size_t, size_t> RecordFootprint(const IdbRelations& idb,
                                          EvalStats* stats) {
  size_t tuples = 0;
  size_t bytes = 0;
  for (const auto& [pred, rel] : idb) {
    (void)pred;
    tuples += rel.size();
    bytes += rel.ArenaBytes();
  }
  if (stats != nullptr) {
    stats->total_tuples = tuples;
    stats->arena_bytes = bytes;
  }
  return {tuples, bytes};
}

Result<IdbRelations> NaiveEvaluateImpl(const datalog::Program& program,
                                       const ra::Database& edb,
                                       const FixpointOptions& options,
                                       EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb, InitializeIdb(program, edb));
  ContextScope ctx(options.context, options.limits);
  const ResourceLimits& limits = ctx->limits();
  // One plan per rule for the whole fixpoint; rounds re-execute the cached
  // physical plan until IDB cardinalities drift past the threshold.
  plan::PlanCache plan_cache(
      plan::PlanCache::Options{.enabled = options.plan_cache});
  RelationLookup lookup = [&idb, &edb](SymbolId pred) -> const ra::Relation* {
    auto it = idb.find(pred);
    if (it != idb.end()) return &it->second;
    return edb.Find(pred);
  };
  const bool collect = options.collect_stats && stats != nullptr;
  using Clock = std::chrono::steady_clock;
  for (int round = 0; round < limits.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
    RECUR_FAULT_POINT("naive.round");
    RoundStats round_stats;
    round_stats.round = round;
    auto round_start = Clock::now();
    bool changed = false;
    int rule_index = -1;
    for (const datalog::Rule& rule : program.rules()) {
      ++rule_index;
      if (rule.IsFact()) continue;
      auto rule_start = Clock::now();
      size_t probes_before = stats != nullptr ? stats->join_probes : 0;
      ConjunctiveOptions conj;
      conj.plan_cache = &plan_cache;
      conj.context = ctx.get();
      conj.batch_rows = options.executor_batch_rows;
      RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                             EvaluateRule(rule, lookup, conj, stats));
      size_t added = idb[rule.head().predicate()].InsertAll(derived);
      if (added > 0) changed = true;
      if (collect) {
        RuleRoundStats rr;
        rr.rule_index = rule_index;
        rr.tuples_derived = derived.size();
        rr.tuples_deduped = derived.size() - added;
        rr.join_probes = stats->join_probes - probes_before;
        rr.seconds =
            std::chrono::duration<double>(Clock::now() - rule_start)
                .count();
        round_stats.tuples_derived += rr.tuples_derived;
        round_stats.tuples_deduped += rr.tuples_deduped;
        round_stats.join_probes += rr.join_probes;
        round_stats.rules.push_back(rr);
      }
    }
    if (collect) {
      round_stats.eval_seconds =
          std::chrono::duration<double>(Clock::now() - round_start).count();
      stats->rounds.push_back(std::move(round_stats));
    }
    auto [total_tuples, arena_bytes] = RecordFootprint(idb, stats);
    RECUR_RETURN_IF_ERROR(ctx->CheckBudgets(total_tuples, arena_bytes));
    if (!changed) {
      if (stats != nullptr) {
        for (const auto& [pred, rel] : idb) {
          (void)pred;
          stats->index_rebuilds += rel.index_rebuilds();
        }
      }
      return idb;
    }
  }
  return Status::ResourceExhausted(
      "naive fixpoint did not converge within max_iterations (" +
      std::to_string(limits.max_iterations) + " rounds)");
}

}  // namespace

Result<IdbRelations> NaiveEvaluate(const datalog::Program& program,
                                   const ra::Database& edb,
                                   const FixpointOptions& options,
                                   EvalStats* stats) {
  // Allocation failure inside the fixpoint must surface as a Status, not an
  // exception: no exceptions cross public API boundaries.
  try {
    return NaiveEvaluateImpl(program, edb, options, stats);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "allocation failure during naive fixpoint");
  }
}

Result<ra::Relation> NaiveAnswer(const datalog::Program& program,
                                 const ra::Database& edb, const Query& query,
                                 const FixpointOptions& options,
                                 EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb,
                         NaiveEvaluate(program, edb, options, stats));
  auto it = idb.find(query.pred);
  if (it == idb.end()) {
    return Status::NotFound("query predicate has no rules");
  }
  return query.Filter(it->second);
}

}  // namespace recur::eval
