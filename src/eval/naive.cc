#include "eval/naive.h"

#include <algorithm>
#include <chrono>

namespace recur::eval {

namespace {

/// Initializes IDB relations: arity from rule heads, seeded with any facts
/// the database already holds under an IDB predicate.
Result<IdbRelations> InitializeIdb(const datalog::Program& program,
                                   const ra::Database& edb) {
  IdbRelations idb;
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    SymbolId pred = rule.head().predicate();
    int arity = rule.head().arity();
    auto it = idb.find(pred);
    if (it == idb.end()) {
      idb.emplace(pred, ra::Relation(arity));
      const ra::Relation* facts = edb.Find(pred);
      if (facts != nullptr) {
        if (facts->arity() != arity) {
          return Status::InvalidArgument(
              "facts and rules disagree on predicate arity");
        }
        idb[pred].InsertAll(*facts);
      }
    } else if (it->second.arity() != arity) {
      return Status::InvalidArgument(
          "rules disagree on predicate arity");
    }
  }
  return idb;
}

}  // namespace

Result<IdbRelations> NaiveEvaluate(const datalog::Program& program,
                                   const ra::Database& edb,
                                   const FixpointOptions& options,
                                   EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb, InitializeIdb(program, edb));
  RelationLookup lookup = [&idb, &edb](SymbolId pred) -> const ra::Relation* {
    auto it = idb.find(pred);
    if (it != idb.end()) return &it->second;
    return edb.Find(pred);
  };
  const bool collect = options.collect_stats && stats != nullptr;
  using Clock = std::chrono::steady_clock;
  for (int round = 0; round < options.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    RoundStats round_stats;
    round_stats.round = round;
    auto round_start = Clock::now();
    bool changed = false;
    int rule_index = -1;
    for (const datalog::Rule& rule : program.rules()) {
      ++rule_index;
      if (rule.IsFact()) continue;
      auto rule_start = Clock::now();
      size_t probes_before = stats != nullptr ? stats->join_probes : 0;
      RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                             EvaluateRule(rule, lookup, {}, stats));
      size_t added = idb[rule.head().predicate()].InsertAll(derived);
      if (added > 0) changed = true;
      if (collect) {
        RuleRoundStats rr;
        rr.rule_index = rule_index;
        rr.tuples_derived = derived.size();
        rr.tuples_deduped = derived.size() - added;
        rr.join_probes = stats->join_probes - probes_before;
        rr.seconds =
            std::chrono::duration<double>(Clock::now() - rule_start)
                .count();
        round_stats.tuples_derived += rr.tuples_derived;
        round_stats.tuples_deduped += rr.tuples_deduped;
        round_stats.join_probes += rr.join_probes;
        round_stats.rules.push_back(rr);
      }
    }
    if (collect) {
      round_stats.eval_seconds =
          std::chrono::duration<double>(Clock::now() - round_start).count();
      stats->rounds.push_back(std::move(round_stats));
    }
    if (!changed) {
      if (stats != nullptr) {
        for (const auto& [pred, rel] : idb) {
          (void)pred;
          stats->index_rebuilds += rel.index_rebuilds();
        }
      }
      return idb;
    }
  }
  return Status::Internal("naive fixpoint exceeded max_iterations");
}

Result<ra::Relation> NaiveAnswer(const datalog::Program& program,
                                 const ra::Database& edb, const Query& query,
                                 const FixpointOptions& options,
                                 EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb,
                         NaiveEvaluate(program, edb, options, stats));
  auto it = idb.find(query.pred);
  if (it == idb.end()) {
    return Status::NotFound("query predicate has no rules");
  }
  return query.Filter(it->second);
}

}  // namespace recur::eval
