#ifndef RECUR_EVAL_SEMINAIVE_H_
#define RECUR_EVAL_SEMINAIVE_H_

#include "eval/naive.h"

namespace recur::eval {

/// Semi-naive bottom-up fixpoint: every round joins each rule once per IDB
/// body atom with that atom restricted to the previous round's delta, so
/// derivations are not endlessly recomputed. Produces the same relations
/// as NaiveEvaluate.
Result<IdbRelations> SemiNaiveEvaluate(const datalog::Program& program,
                                       const ra::Database& edb,
                                       const FixpointOptions& options = {},
                                       EvalStats* stats = nullptr);

/// Answers `query` by semi-naive materialization followed by selection.
Result<ra::Relation> SemiNaiveAnswer(const datalog::Program& program,
                                     const ra::Database& edb,
                                     const Query& query,
                                     const FixpointOptions& options = {},
                                     EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_SEMINAIVE_H_
