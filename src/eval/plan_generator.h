#ifndef RECUR_EVAL_PLAN_GENERATOR_H_
#define RECUR_EVAL_PLAN_GENERATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "eval/compiled_eval.h"
#include "eval/query.h"
#include "transform/bounded_expand.h"
#include "transform/compiled_expr.h"

namespace recur::eval {

/// How a query over a classified formula will be executed.
enum class Strategy {
  /// Strongly stable (disjoint unit cycles): compiled chain evaluation.
  kStableCompiled,
  /// Classes A3-A5: unfold to stable form (multiple exits), then compiled
  /// chain evaluation.
  kTransformedCompiled,
  /// Bounded (classes B, D, permutational combos): expand to the
  /// equivalent finite non-recursive set, evaluate each with the query
  /// constants pushed down.
  kBoundedExpansion,
  /// Classes C, E and unbounded mixes: the paper gives no general method;
  /// we evaluate semi-naive (the per-example paper plans live in
  /// special_plans.h).
  kSemiNaive,
};

const char* ToString(Strategy s);

/// A compiled query plan: the strategy, a printable compiled formula in the
/// paper's notation, and the executable state.
class QueryPlan {
 public:
  Strategy strategy() const { return strategy_; }
  const classify::Classification& classification() const { return cls_; }
  const transform::CompiledExpr& symbolic() const { return symbolic_; }

  /// Runs the plan.
  Result<ra::Relation> Execute(const Query& query, const ra::Database& edb,
                               const CompiledEvalOptions& options = {},
                               CompiledEvalStats* stats = nullptr) const;

  /// Human-readable description: strategy + compiled formula.
  std::string ToString() const;

 private:
  friend class PlanGenerator;

  Strategy strategy_ = Strategy::kSemiNaive;
  classify::Classification cls_;
  transform::CompiledExpr symbolic_ =
      transform::CompiledExpr::Relation("E");
  std::optional<StableEvaluator> stable_;
  std::vector<datalog::Rule> bounded_rules_;
  datalog::Program program_;  // recursive rule + exits (semi-naive path)
  /// Bounded-expansion rules are fixed per plan and their cache keys carry
  /// the binding *signature*, not values, so plans persist across queries.
  std::shared_ptr<plan::PlanCache> bounded_cache_;
};

/// Generates query plans from a recursive formula and its exit rule by
/// classifying the formula and picking the per-class compilation the paper
/// prescribes.
class PlanGenerator {
 public:
  explicit PlanGenerator(SymbolTable* symbols) : symbols_(symbols) {}

  /// Builds the plan for `formula` with `exit_rule`. The plan is
  /// query-independent (the compiled evaluator specializes per adornment at
  /// Execute time).
  Result<QueryPlan> Plan(const datalog::LinearRecursiveRule& formula,
                         const datalog::Rule& exit_rule) const;

 private:
  SymbolTable* symbols_;
};

}  // namespace recur::eval

#endif  // RECUR_EVAL_PLAN_GENERATOR_H_
