#include "eval/maintenance.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "eval/plan/plan_cache.h"
#include "util/fault_injection.h"

namespace recur::eval {

namespace {

/// Per-run working state threaded through the three maintenance passes.
struct MaintenanceRun {
  const datalog::Program& program;
  const ra::Database& old_edb;
  const ra::Database& new_edb;
  const EdbDeltas& deltas;
  ra::Database* idb;
  plan::PlanCache* plan_cache;
  const ExecutionContext* ctx;
  EvalStats* stats;
  /// Lanes per executor register batch (0 = vectorized default).
  size_t batch_rows;
  /// Rounds used so far across all three passes, charged against
  /// ResourceLimits::max_iterations like fixpoint rounds.
  int* rounds_used;

  /// Lookups resolving IDB predicates to the resident relations and
  /// everything else to the old / new extensional state.
  RelationLookup old_lookup;
  RelationLookup new_lookup;

  bool IsIdb(SymbolId pred) const { return idb->Find(pred) != nullptr; }

  const ra::Relation* EdbInserts(SymbolId pred) const {
    auto it = deltas.find(pred);
    if (it == deltas.end() || it->second.inserts.empty()) return nullptr;
    return &it->second.inserts;
  }
  const ra::Relation* EdbDeletes(SymbolId pred) const {
    auto it = deltas.find(pred);
    if (it == deltas.end() || it->second.deletes.empty()) return nullptr;
    return &it->second.deletes;
  }
};

/// One empty same-arity relation per resident IDB predicate — the shape of
/// the per-round candidate / delta / fresh working sets.
IdbRelations EmptyLikeIdb(const ra::Database& idb) {
  IdbRelations out;
  for (const auto& [pred, rel] : idb.relations()) {
    out.emplace(pred, ra::Relation(rel->arity()));
  }
  return out;
}

/// Creates (or arity-checks) one resident relation per IDB predicate.
Status EnsureIdbRelations(const datalog::Program& program,
                          ra::Database* idb) {
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    RECUR_RETURN_IF_ERROR(
        idb->GetOrCreate(rule.head().predicate(), rule.head().arity())
            .status());
  }
  return Status::OK();
}

/// Governance + accounting at the top of every maintenance round, shared
/// by all three passes: one fault site, one cancel poll, one iteration.
Status BeginRound(const MaintenanceRun& run) {
  if (++*run.rounds_used > run.ctx->limits().max_iterations) {
    return Status::ResourceExhausted(
        "incremental maintenance did not converge within max_iterations (" +
        std::to_string(run.ctx->limits().max_iterations) + " rounds)");
  }
  if (run.stats != nullptr) ++run.stats->iterations;
  RECUR_RETURN_IF_ERROR(run.ctx->CheckCancel());
  RECUR_FAULT_POINT("eval.maintain.round");
  return Status::OK();
}

/// Updates the partial-progress footprint in stats and enforces budgets —
/// maintenance charges the resident IDB exactly as a fixpoint charges its
/// materialization.
Status CheckFootprint(const MaintenanceRun& run) {
  const size_t tuples = run.idb->TotalTuples();
  const size_t bytes = run.idb->TotalArenaBytes();
  if (run.stats != nullptr) {
    run.stats->total_tuples = tuples;
    run.stats->arena_bytes = bytes;
  }
  return run.ctx->CheckBudgets(tuples, bytes);
}

bool AllEmpty(const IdbRelations& rels) {
  return std::all_of(rels.begin(), rels.end(),
                     [](const auto& kv) { return kv.second.empty(); });
}

/// Evaluates `rule` with the body atom at `index` overridden by `delta`,
/// routing every derived head tuple through `sink`.
Status FireDelta(const MaintenanceRun& run, const datalog::Rule& rule,
                 const RelationLookup& lookup, int index,
                 const ra::Relation* delta,
                 const std::function<void(ra::TupleRef)>& sink) {
  ConjunctiveOptions conj;
  conj.override_index = index;
  conj.override_relation = delta;
  conj.plan_cache = run.plan_cache;
  conj.context = run.ctx;
  conj.batch_rows = run.batch_rows;
  RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                         EvaluateRule(rule, lookup, conj, run.stats));
  for (ra::TupleRef t : derived.rows()) sink(t);
  return Status::OK();
}

/// Pass 1 (DRed overestimate): every IDB tuple with at least one
/// derivation through a deleted tuple, computed against the *old* state.
/// Round 0 substitutes the extensional deletion deltas per body position;
/// later rounds propagate the intensional candidates semi-naively.
Status CollectDeletionCandidates(const MaintenanceRun& run,
                                 IdbRelations* cand) {
  *cand = EmptyLikeIdb(*run.idb);
  IdbRelations delta = EmptyLikeIdb(*run.idb);
  // Extensional facts stored under IDB predicate names (the recursive
  // predicate's base tuples) that the batch deletes are candidates
  // directly.
  for (auto& [pred, d] : delta) {
    const ra::Relation* deleted = run.EdbDeletes(pred);
    if (deleted == nullptr) continue;
    const ra::Relation* resident = run.idb->Find(pred);
    for (ra::TupleRef t : deleted->rows()) {
      if (resident->Contains(t) && (*cand)[pred].Insert(t)) d.Insert(t);
    }
  }

  bool first_round = true;
  while (true) {
    RECUR_RETURN_IF_ERROR(BeginRound(run));
    IdbRelations fresh = EmptyLikeIdb(*run.idb);
    auto sink_for = [&](SymbolId head) {
      const ra::Relation* resident = run.idb->Find(head);
      return [&, head, resident](ra::TupleRef t) {
        if (resident->Contains(t) && !(*cand)[head].Contains(t)) {
          fresh[head].Insert(t);
        }
      };
    };
    for (const datalog::Rule& rule : run.program.rules()) {
      if (rule.IsFact()) continue;
      auto sink = sink_for(rule.head().predicate());
      for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
        SymbolId body_pred = rule.body()[i].predicate();
        if (run.IsIdb(body_pred)) {
          const ra::Relation& d = delta[body_pred];
          if (d.empty()) continue;
          RECUR_RETURN_IF_ERROR(
              FireDelta(run, rule, run.old_lookup, i, &d, sink));
        } else if (first_round) {
          const ra::Relation* d = run.EdbDeletes(body_pred);
          if (d == nullptr) continue;
          RECUR_RETURN_IF_ERROR(
              FireDelta(run, rule, run.old_lookup, i, d, sink));
        }
      }
    }
    first_round = false;
    if (AllEmpty(fresh)) return Status::OK();
    for (auto& [pred, rel] : fresh) {
      (*cand)[pred].InsertAll(rel);
      delta[pred] = std::move(rel);
    }
  }
}

/// Pass 2 (rederive): after the candidates are bulk-erased, candidates
/// with an alternative derivation from the pruned state — or still backed
/// by a surviving extensional base fact — are put back, then their
/// consequences semi-naively until no candidate moves.
Status Rederive(const MaintenanceRun& run, const IdbRelations& cand) {
  IdbRelations delta = EmptyLikeIdb(*run.idb);
  // Base facts: a candidate still present in the new extensional state
  // needs no derivation to survive.
  for (auto& [pred, d] : delta) {
    const auto cit = cand.find(pred);
    if (cit == cand.end() || cit->second.empty()) continue;
    const ra::Relation* base = run.new_edb.Find(pred);
    if (base == nullptr || base->arity() != cit->second.arity()) continue;
    ra::Relation* resident = run.idb->FindMutable(pred);
    for (ra::TupleRef t : base->rows()) {
      if (cit->second.Contains(t) && resident->Insert(t)) d.Insert(t);
    }
  }

  bool first_round = true;
  while (true) {
    RECUR_RETURN_IF_ERROR(BeginRound(run));
    IdbRelations fresh = EmptyLikeIdb(*run.idb);
    auto sink_for = [&](SymbolId head) {
      const ra::Relation* resident = run.idb->Find(head);
      return [&, head, resident](ra::TupleRef t) {
        if (cand.at(head).Contains(t) && !resident->Contains(t)) {
          fresh[head].Insert(t);
        }
      };
    };
    for (const datalog::Rule& rule : run.program.rules()) {
      if (rule.IsFact()) continue;
      const auto cit = cand.find(rule.head().predicate());
      if (cit == cand.end() || cit->second.empty()) continue;
      auto sink = sink_for(rule.head().predicate());
      if (first_round) {
        // Full evaluation against the pruned state: any candidate it
        // still derives survives on non-deleted support alone.
        ConjunctiveOptions conj;
        conj.plan_cache = run.plan_cache;
        conj.context = run.ctx;
        conj.batch_rows = run.batch_rows;
        RECUR_ASSIGN_OR_RETURN(
            ra::Relation derived,
            EvaluateRule(rule, run.new_lookup, conj, run.stats));
        for (ra::TupleRef t : derived.rows()) sink(t);
      } else {
        for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
          SymbolId body_pred = rule.body()[i].predicate();
          if (!run.IsIdb(body_pred)) continue;
          const ra::Relation& d = delta[body_pred];
          if (d.empty()) continue;
          RECUR_RETURN_IF_ERROR(
              FireDelta(run, rule, run.new_lookup, i, &d, sink));
        }
      }
    }
    first_round = false;
    if (AllEmpty(fresh)) return Status::OK();
    for (auto& [pred, rel] : fresh) {
      run.idb->FindMutable(pred)->InsertAll(rel);
      delta[pred] = std::move(rel);
    }
    RECUR_RETURN_IF_ERROR(CheckFootprint(run));
  }
}

/// Pass 3 (insert propagation): round 0 substitutes the extensional
/// insertion deltas per body position against the *new* state, later
/// rounds are exactly the semi-naive IDB rounds. With `bootstrap` set
/// (initial load: nothing existed before this batch) each rule fires at
/// its first extensional delta position only — every other position would
/// re-derive the identical set, since the old side of every mixed old/new
/// combination is empty.
Status PropagateInserts(const MaintenanceRun& run, bool bootstrap) {
  IdbRelations delta = EmptyLikeIdb(*run.idb);
  // Extensional inserts under IDB predicate names seed the resident
  // relation (and the first semi-naive round) directly.
  for (auto& [pred, d] : delta) {
    const ra::Relation* inserted = run.EdbInserts(pred);
    if (inserted == nullptr) continue;
    ra::Relation* resident = run.idb->FindMutable(pred);
    for (ra::TupleRef t : inserted->rows()) {
      if (resident->Insert(t)) d.Insert(t);
    }
  }

  bool first_round = true;
  while (true) {
    RECUR_RETURN_IF_ERROR(BeginRound(run));
    IdbRelations fresh = EmptyLikeIdb(*run.idb);
    auto sink_for = [&](SymbolId head) {
      const ra::Relation* resident = run.idb->Find(head);
      return [&, head, resident](ra::TupleRef t) {
        if (!resident->Contains(t)) fresh[head].Insert(t);
      };
    };
    for (const datalog::Rule& rule : run.program.rules()) {
      if (rule.IsFact()) continue;
      auto sink = sink_for(rule.head().predicate());
      for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
        SymbolId body_pred = rule.body()[i].predicate();
        if (run.IsIdb(body_pred)) {
          const ra::Relation& d = delta[body_pred];
          if (d.empty()) continue;
          RECUR_RETURN_IF_ERROR(
              FireDelta(run, rule, run.new_lookup, i, &d, sink));
        } else if (first_round) {
          const ra::Relation* d = run.EdbInserts(body_pred);
          if (d == nullptr) continue;
          RECUR_RETURN_IF_ERROR(
              FireDelta(run, rule, run.new_lookup, i, d, sink));
          if (bootstrap) break;
        }
      }
    }
    first_round = false;
    if (AllEmpty(fresh)) return Status::OK();
    for (auto& [pred, rel] : fresh) {
      run.idb->FindMutable(pred)->InsertAll(rel);
      delta[pred] = std::move(rel);
    }
    RECUR_RETURN_IF_ERROR(CheckFootprint(run));
  }
}

}  // namespace

Status MaintainDeltas(const datalog::Program& program,
                      const ra::Database& old_edb,
                      const ra::Database& new_edb, const EdbDeltas& deltas,
                      ra::Database* idb, const MaintenanceOptions& options,
                      EvalStats* stats) {
  const bool bootstrap = idb->TotalTuples() == 0;
  RECUR_RETURN_IF_ERROR(EnsureIdbRelations(program, idb));

  ContextScope ctx(options.context, options.limits);
  plan::PlanCache local_cache;
  int rounds_used = 0;
  MaintenanceRun run{
      .program = program,
      .old_edb = old_edb,
      .new_edb = new_edb,
      .deltas = deltas,
      .idb = idb,
      .plan_cache =
          options.plan_cache != nullptr ? options.plan_cache : &local_cache,
      .ctx = ctx.get(),
      .stats = stats,
      .batch_rows = options.executor_batch_rows,
      .rounds_used = &rounds_used,
      .old_lookup = {},
      .new_lookup = {},
  };
  run.old_lookup = [idb, &old_edb](SymbolId pred) -> const ra::Relation* {
    const ra::Relation* r = idb->Find(pred);
    return r != nullptr ? r : old_edb.Find(pred);
  };
  run.new_lookup = [idb, &new_edb](SymbolId pred) -> const ra::Relation* {
    const ra::Relation* r = idb->Find(pred);
    return r != nullptr ? r : new_edb.Find(pred);
  };

  bool any_deletes = false;
  bool any_inserts = false;
  for (const auto& [pred, d] : deltas) {
    (void)pred;
    any_deletes = any_deletes || !d.deletes.empty();
    any_inserts = any_inserts || !d.inserts.empty();
  }

  if (any_deletes) {
    // The overestimate must see the pre-delta state, so the prune waits
    // until the candidate fixpoint closes.
    IdbRelations cand;
    RECUR_RETURN_IF_ERROR(CollectDeletionCandidates(run, &cand));
    for (auto& [pred, victims] : cand) {
      if (!victims.empty()) idb->FindMutable(pred)->EraseRows(victims);
    }
    if (stats != nullptr) {
      for (const auto& [pred, victims] : cand) {
        (void)pred;
        stats->index_rebuilds += victims.index_rebuilds();
      }
    }
    RECUR_RETURN_IF_ERROR(Rederive(run, cand));
  }
  if (any_inserts) {
    RECUR_RETURN_IF_ERROR(PropagateInserts(run, bootstrap));
  }
  return CheckFootprint(run);
}

Status ApplyDeltasToEdb(const EdbDeltas& deltas, ra::Database* edb) {
  for (const auto& [pred, delta] : deltas) {
    if (delta.empty()) continue;
    const int arity =
        delta.inserts.empty() ? delta.deletes.arity() : delta.inserts.arity();
    RECUR_ASSIGN_OR_RETURN(ra::Relation * rel, edb->GetOrCreate(pred, arity));
    if (!delta.deletes.empty()) rel->EraseRows(delta.deletes);
    if (!delta.inserts.empty()) rel->InsertAll(delta.inserts);
  }
  return Status::OK();
}

}  // namespace recur::eval
