#include "eval/chain.h"

#include <unordered_set>

namespace recur::eval {

Result<StableChains> ExtractChains(const datalog::LinearRecursiveRule& formula,
                                   const classify::Classification& cls,
                                   SymbolTable* symbols) {
  if (!cls.strongly_stable) {
    return Status::InvalidArgument(
        "chains can only be extracted from a strongly stable formula; "
        "transform classes A3-A5 to stable form first");
  }
  const graph::IGraph& ig = cls.igraph;
  const graph::CondensedGraph& condensed = cls.condensed;

  // Group the non-recursive atoms by the cluster their variables live in
  // (all variables of one atom are pairwise connected, hence one cluster).
  int num_clusters = condensed.num_clusters();
  std::vector<std::vector<datalog::Atom>> cluster_atoms(num_clusters);
  std::vector<datalog::Atom> no_variable_atoms;
  for (const datalog::Atom& atom : formula.NonRecursiveAtoms()) {
    std::vector<SymbolId> vars = atom.Variables();
    if (vars.empty()) {
      no_variable_atoms.push_back(atom);  // propositional guard
      continue;
    }
    int vertex = ig.graph().FindVertex(vars[0], 0);
    if (vertex < 0) {
      return Status::Internal("atom variable missing from the I-graph");
    }
    cluster_atoms[condensed.cluster_of(vertex)].push_back(atom);
  }

  StableChains out;
  std::unordered_set<int> position_clusters;
  for (int i = 0; i < formula.dimension(); ++i) {
    int head_vertex = ig.HeadVertex(i);
    int body_vertex = ig.BodyVertex(i);
    int cluster = condensed.cluster_of(head_vertex);
    if (condensed.cluster_of(body_vertex) != cluster) {
      return Status::Internal(
          "stable formula with consequent/antecedent variables in "
          "different clusters");
    }
    position_clusters.insert(cluster);

    PositionChain chain;
    chain.position = i;
    SymbolId head_var = ig.graph().vertex(head_vertex).var;
    SymbolId body_var = ig.graph().vertex(body_vertex).var;
    if (head_vertex == body_vertex && cluster_atoms[cluster].empty()) {
      chain.identity = true;
    } else {
      SymbolId step_pred =
          symbols->Intern("__step_" + std::to_string(i));
      datalog::Atom head(step_pred,
                         {datalog::Term::Variable(head_var),
                          datalog::Term::Variable(body_var)});
      chain.step_rule =
          datalog::Rule(std::move(head), cluster_atoms[cluster]);
    }
    out.chains.push_back(std::move(chain));
  }

  // Guard: atoms in clusters not owned by any position.
  for (int c = 0; c < num_clusters; ++c) {
    if (position_clusters.count(c) > 0) continue;
    for (const datalog::Atom& atom : cluster_atoms[c]) {
      out.guard_atoms.push_back(atom);
    }
  }
  for (const datalog::Atom& atom : no_variable_atoms) {
    out.guard_atoms.push_back(atom);
  }
  return out;
}

Result<ra::Relation> MaterializeStep(const PositionChain& chain,
                                     const RelationLookup& lookup,
                                     EvalStats* stats,
                                     const ConjunctiveOptions& conj) {
  if (chain.identity) {
    return Status::InvalidArgument("identity chains have no step relation");
  }
  return EvaluateRule(chain.step_rule, lookup, conj, stats);
}

Result<bool> GuardHolds(const StableChains& chains,
                        const RelationLookup& lookup, EvalStats* stats,
                        const ConjunctiveOptions& conj) {
  if (chains.guard_atoms.empty()) return true;
  SymbolTable scratch;
  datalog::Atom head(scratch.Intern("__guard"), {});
  datalog::Rule guard_rule(std::move(head), chains.guard_atoms);
  RECUR_ASSIGN_OR_RETURN(ra::Relation result,
                         EvaluateRule(guard_rule, lookup, conj, stats));
  return !result.empty();
}

}  // namespace recur::eval
