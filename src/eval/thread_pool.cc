#include "eval/thread_pool.h"

#include <new>
#include <utility>

namespace recur::eval {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    if (cancel_pending_ || first_exception_ != nullptr) {
      // The caller abandoned a failed batch without Wait()-ing: don't run
      // its leftovers during teardown.
      in_flight_ -= queue_.size();
      queue_.clear();
    }
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancel_pending_ || first_exception_ != nullptr) {
      // The batch already failed; admitting more work would interleave a
      // dead batch with the next one.
      return;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::CancelPending() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_pending_ = true;
    in_flight_ -= queue_.size();
    queue_.clear();
    if (in_flight_ == 0) all_done_.notify_all();
  }
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  std::exception_ptr failure = std::exchange(first_exception_, nullptr);
  cancel_pending_ = false;  // re-arm for the next batch
  if (failure == nullptr) return Status::OK();
  try {
    std::rethrow_exception(failure);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failure in worker task");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("worker task threw a non-standard exception");
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
      // Fail fast: the batch is lost either way, so don't burn cores on
      // tasks whose results Wait() will discard.
      in_flight_ -= queue_.size();
      queue_.clear();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, int n,
                   const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  return pool->Wait();
}

}  // namespace recur::eval
