#include "eval/thread_pool.h"

#include <utility>

namespace recur::eval {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace recur::eval
