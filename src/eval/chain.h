#ifndef RECUR_EVAL_CHAIN_H_
#define RECUR_EVAL_CHAIN_H_

#include <vector>

#include "classify/classifier.h"
#include "datalog/linear_rule.h"
#include "eval/conjunctive.h"
#include "util/result.h"

namespace recur::eval {

/// One recursive position's expansion step in a *stable* formula. Each
/// position lives on its own unit cycle (Theorem 1); one expansion relates
/// the consequent variable to the antecedent variable through the
/// non-recursive atoms of the cycle's cluster:
///
///   __step_i(HeadVar_i, BodyVar_i) :- <cluster atoms>.
///
/// For a pure self directed loop with no atoms the step is the identity.
struct PositionChain {
  int position = -1;
  /// True when head and body variable coincide and the cluster has no
  /// atoms: values pass through unchanged.
  bool identity = false;
  /// The step rule (meaningful when !identity). Materializing it against a
  /// database yields the binary step relation S_i(consequent, antecedent).
  datalog::Rule step_rule;
};

/// All chains of a stable formula plus its guard: atoms sitting in clusters
/// not owned by any position's cycle. One copy of the guard conjunction is
/// added per expansion, so if the guard is unsatisfiable only depth 0
/// contributes; if satisfiable it contributes nothing further.
struct StableChains {
  std::vector<PositionChain> chains;  // indexed by position
  std::vector<datalog::Atom> guard_atoms;
};

/// Extracts per-position chains from a strongly stable formula. Fails with
/// InvalidArgument if `cls` does not certify strong stability (transform
/// first for classes A3-A5).
Result<StableChains> ExtractChains(const datalog::LinearRecursiveRule& formula,
                                   const classify::Classification& cls,
                                   SymbolTable* symbols);

/// Materializes the binary step relation S_i for a non-identity chain.
/// `conj` (plan cache, governance context) is forwarded to the pipeline.
Result<ra::Relation> MaterializeStep(const PositionChain& chain,
                                     const RelationLookup& lookup,
                                     EvalStats* stats = nullptr,
                                     const ConjunctiveOptions& conj = {});

/// True if the guard conjunction is satisfiable in the database (vacuously
/// true when there are no guard atoms).
Result<bool> GuardHolds(const StableChains& chains,
                        const RelationLookup& lookup,
                        EvalStats* stats = nullptr,
                        const ConjunctiveOptions& conj = {});

}  // namespace recur::eval

#endif  // RECUR_EVAL_CHAIN_H_
