#ifndef RECUR_EVAL_MAINTENANCE_H_
#define RECUR_EVAL_MAINTENANCE_H_

#include <unordered_map>

#include "datalog/program.h"
#include "eval/naive.h"
#include "ra/database.h"

namespace recur::eval {

/// One predicate's extensional change set: tuples added and tuples removed
/// by a server write batch. Both relations share the predicate's arity.
struct EdbDelta {
  EdbDelta() = default;
  explicit EdbDelta(int arity) : inserts(arity), deletes(arity) {}

  ra::Relation inserts;
  ra::Relation deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// The change sets of one maintenance batch, keyed by predicate.
using EdbDeltas = std::unordered_map<SymbolId, EdbDelta>;

/// Applies `deltas` to `edb` in place: per touched predicate, deletes are
/// erased before inserts land (so a batch that deletes and re-inserts a
/// tuple keeps it), and relations are created on first touch. This is the
/// single definition of "what a batch does to the EDB" — the resident
/// server's write path and write-ahead-log replay both go through it, so a
/// replayed log reconstructs exactly the EDB the original batches built.
Status ApplyDeltasToEdb(const EdbDeltas& deltas, ra::Database* edb);

struct MaintenanceOptions {
  /// Resource ceilings; exactly the fixpoint semantics (iterations count
  /// maintenance rounds across the deletion, rederivation, and insertion
  /// passes). When `context` is set its limits win.
  ResourceLimits limits;
  /// Optional externally owned context: shared deadline, external Cancel.
  const ExecutionContext* context = nullptr;
  /// Plan cache shared across maintenance runs — delta-overridden rule
  /// plans are keyed by (rule, delta position), so a resident server that
  /// keeps one cache recompiles nothing on steady-state batches. When
  /// null a private per-run cache is used.
  plan::PlanCache* plan_cache = nullptr;
  /// Lanes per executor register batch. 0 -> the vectorized default; 1
  /// degenerates to tuple-at-a-time execution (the ablation baseline).
  size_t executor_batch_rows = 0;
};

/// Incrementally maintains the resident IDB database `idb` (one relation
/// per IDB predicate, created on first use) after the extensional
/// database changed from `old_edb` to `new_edb` by `deltas` (the caller
/// applies the deltas to produce `new_edb`; copy-on-write Database forks
/// make both the fork and the resident-IDB fork cheap — only relations a
/// batch actually touches detach).
///
/// Deletions run DRed-style: an overestimate of affected IDB tuples is
/// computed against the *old* state by substituting each deletion delta
/// per rule body position (semi-naive, reusing the cached delta plans),
/// the candidates are bulk-erased, and survivors with alternative
/// derivations are re-derived from the pruned state. Insertions then
/// propagate with the standard semi-naive rounds against the *new* state.
/// Rules with no atom touched by any delta never fire.
///
/// `idb` must hold the fixpoint of `program` over `old_edb` on entry
/// (empty `idb` + everything-as-inserts bootstraps initial load through
/// the same code path). On success it holds the fixpoint over `new_edb`,
/// byte-identical to recomputation up to row order. On error (cancel,
/// deadline, budget, fault) `idb` may hold partially maintained state —
/// callers that need atomicity run against a copy-on-write fork and
/// discard it, which is what the resident server does.
///
/// Stats: `iterations` counts maintenance rounds across all passes;
/// footprint counters track the resident IDB like a fixpoint run.
Status MaintainDeltas(const datalog::Program& program,
                      const ra::Database& old_edb,
                      const ra::Database& new_edb, const EdbDeltas& deltas,
                      ra::Database* idb,
                      const MaintenanceOptions& options = {},
                      EvalStats* stats = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_MAINTENANCE_H_
