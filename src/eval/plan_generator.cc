#include "eval/plan_generator.h"

#include "eval/plan/plan_cache.h"
#include "eval/seminaive.h"
#include "transform/plan_lowering.h"
#include "transform/stable_form.h"

namespace recur::eval {

namespace {

using transform::CompiledExpr;

/// Display label of a chain: the concatenated predicate names of its step
/// conjunction ("A", "ABC"), or "id" for identity chains.
std::string ChainLabel(const PositionChain& chain,
                       const SymbolTable& symbols) {
  if (chain.identity) return "id";
  std::string label;
  for (const datalog::Atom& atom : chain.step_rule.body()) {
    label += symbols.NameOf(atom.predicate());
  }
  return label.empty() ? "=" : label;
}

/// Symbolic compiled formula for a stable evaluator:
///   σE_0, ..., ∪_k [{σC_1^k ∥ ... ∥ σC_n^k} - E].
CompiledExpr StableSymbolic(const StableEvaluator& evaluator,
                            const SymbolTable& symbols) {
  std::vector<CompiledExpr> steps;
  std::vector<CompiledExpr> chain_powers;
  for (const PositionChain& chain : evaluator.chains().chains) {
    chain_powers.push_back(CompiledExpr::Power(
        CompiledExpr::Relation(ChainLabel(chain, symbols))));
  }
  std::vector<CompiledExpr> exit_names;
  for (size_t i = 0; i < evaluator.exits().size(); ++i) {
    std::string name = evaluator.exits().size() == 1
                           ? "E"
                           : "E_" + std::to_string(i);
    exit_names.push_back(CompiledExpr::Relation(name));
    steps.push_back(
        CompiledExpr::Select(CompiledExpr::Relation(name)));
  }
  CompiledExpr body = CompiledExpr::JoinChain(
      {CompiledExpr::Parallel(std::move(chain_powers)),
       exit_names.size() == 1 ? exit_names[0]
                              : CompiledExpr::Parallel(exit_names)});
  steps.push_back(CompiledExpr::UnionK(std::move(body)));
  return CompiledExpr::Sequence(std::move(steps));
}

/// Symbolic form for a bounded expansion: one σ(depth-i conjunction) per
/// depth. Each depth rule is lowered through the shared physical planner
/// and raised back to paper notation, so the symbolic form describes the
/// very plan Execute runs (the outer σ is the query-constant pushdown
/// applied per query).
CompiledExpr BoundedSymbolic(const std::vector<datalog::Rule>& rules,
                             const SymbolTable& symbols) {
  std::vector<CompiledExpr> steps;
  PlanRelationLookup no_edb = [](SymbolId) -> const ra::Relation* {
    return nullptr;
  };
  for (const datalog::Rule& rule : rules) {
    auto lowered = transform::LowerRule(rule, no_edb);
    if (lowered.ok()) {
      steps.push_back(
          CompiledExpr::Select(transform::RaisePlan(**lowered, symbols)));
      continue;
    }
    // Unplannable rule (should not happen for bounded expansions): fall
    // back to the plain body conjunction.
    std::vector<CompiledExpr> atoms;
    for (const datalog::Atom& atom : rule.body()) {
      atoms.push_back(
          CompiledExpr::Relation(symbols.NameOf(atom.predicate())));
    }
    steps.push_back(
        CompiledExpr::Select(CompiledExpr::JoinChain(std::move(atoms))));
  }
  return CompiledExpr::Sequence(std::move(steps));
}

}  // namespace

const char* ToString(Strategy s) {
  switch (s) {
    case Strategy::kStableCompiled:
      return "stable-compiled";
    case Strategy::kTransformedCompiled:
      return "transformed-compiled";
    case Strategy::kBoundedExpansion:
      return "bounded-expansion";
    case Strategy::kSemiNaive:
      return "semi-naive";
  }
  return "?";
}

Result<ra::Relation> QueryPlan::Execute(const Query& query,
                                        const ra::Database& edb,
                                        const CompiledEvalOptions& options,
                                        CompiledEvalStats* stats) const {
  switch (strategy_) {
    case Strategy::kStableCompiled:
    case Strategy::kTransformedCompiled:
      return stable_->Answer(query, edb, options, stats);
    case Strategy::kBoundedExpansion: {
      ContextScope ctx(options.fixpoint.context, options.fixpoint.limits);
      ra::Relation out(query.arity());
      RelationLookup lookup = [&edb](SymbolId pred) {
        return edb.Find(pred);
      };
      for (const datalog::Rule& rule : bounded_rules_) {
        RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
        // Push the query constants into the rule head variables
        // (selection before joins). A head variable bound to two
        // different constants makes the rule unsatisfiable for this query.
        std::unordered_map<SymbolId, ra::Value> bindings;
        bool satisfiable = true;
        for (int i = 0; i < query.arity() && satisfiable; ++i) {
          if (!query.bindings[i].has_value()) continue;
          const datalog::Term& arg = rule.head().args()[i];
          if (arg.IsConstant()) {
            satisfiable =
                static_cast<ra::Value>(arg.symbol()) == *query.bindings[i];
            continue;
          }
          auto [it, inserted] =
              bindings.emplace(arg.symbol(), *query.bindings[i]);
          if (!inserted && it->second != *query.bindings[i]) {
            satisfiable = false;
          }
        }
        if (!satisfiable) continue;
        ConjunctiveOptions conj;
        conj.bindings = &bindings;
        conj.plan_cache = bounded_cache_.get();
        conj.context = ctx.get();
        RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                               EvaluateRule(rule, lookup, conj, stats));
        // Select straight into the answer arena: no intermediate relation
        // per expansion level.
        out.Reserve(out.size() + derived.size());
        RECUR_RETURN_IF_ERROR(
            query.FilterInto(derived, &out, ctx.get()).status());
        RECUR_RETURN_IF_ERROR(
            ctx->CheckBudgets(out.size(), out.ArenaBytes()));
      }
      if (stats != nullptr) {
        stats->levels = static_cast<int>(bounded_rules_.size());
      }
      return out;
    }
    case Strategy::kSemiNaive:
      return SemiNaiveAnswer(program_, edb, query, options.fixpoint, stats);
  }
  return Status::Internal("unknown strategy");
}

std::string QueryPlan::ToString() const {
  return std::string(eval::ToString(strategy_)) + ": " +
         symbolic_.ToString();
}

Result<QueryPlan> PlanGenerator::Plan(
    const datalog::LinearRecursiveRule& formula,
    const datalog::Rule& exit_rule) const {
  RECUR_ASSIGN_OR_RETURN(classify::Classification cls,
                         classify::Classify(formula));
  QueryPlan plan;
  plan.cls_ = cls;
  plan.program_.AddRule(formula.rule());
  plan.program_.AddRule(exit_rule);

  if (cls.strongly_stable) {
    plan.strategy_ = Strategy::kStableCompiled;
    RECUR_ASSIGN_OR_RETURN(
        StableEvaluator evaluator,
        StableEvaluator::Create(formula, {exit_rule}, symbols_));
    plan.symbolic_ = StableSymbolic(evaluator, *symbols_);
    plan.stable_ = std::move(evaluator);
    return plan;
  }
  if (cls.transformable_to_stable) {
    plan.strategy_ = Strategy::kTransformedCompiled;
    RECUR_ASSIGN_OR_RETURN(
        transform::StableForm sf,
        transform::ToStableForm(formula, cls, exit_rule, symbols_));
    RECUR_ASSIGN_OR_RETURN(
        StableEvaluator evaluator,
        StableEvaluator::Create(std::move(sf.recursive),
                                std::move(sf.exits), symbols_));
    plan.symbolic_ = StableSymbolic(evaluator, *symbols_);
    plan.stable_ = std::move(evaluator);
    return plan;
  }
  if (cls.bounded) {
    plan.strategy_ = Strategy::kBoundedExpansion;
    RECUR_ASSIGN_OR_RETURN(
        transform::BoundedForm bf,
        transform::ExpandBounded(formula, cls, exit_rule, symbols_));
    plan.symbolic_ = BoundedSymbolic(bf.rules, *symbols_);
    plan.bounded_rules_ = std::move(bf.rules);
    plan.bounded_cache_ = std::make_shared<plan::PlanCache>();
    return plan;
  }
  plan.strategy_ = Strategy::kSemiNaive;
  plan.symbolic_ = transform::CompiledExpr::Relation(
      "semi-naive fixpoint (no general compiled form for this class)");
  return plan;
}

}  // namespace recur::eval
