#include "eval/seminaive.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "eval/plan/plan_cache.h"
#include "eval/plan/planner.h"
#include "eval/thread_pool.h"
#include "util/fault_injection.h"

namespace recur::eval {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Shared setup for both engines: seed full/delta with any EDB facts under
/// IDB predicates and validate arities.
Status InitializeFullAndDelta(const datalog::Program& program,
                              const ra::Database& edb, IdbRelations* full,
                              IdbRelations* delta) {
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    SymbolId pred = rule.head().predicate();
    int arity = rule.head().arity();
    auto it = full->find(pred);
    if (it == full->end()) {
      full->emplace(pred, ra::Relation(arity));
      delta->emplace(pred, ra::Relation(arity));
      const ra::Relation* facts = edb.Find(pred);
      if (facts != nullptr) {
        if (facts->arity() != arity) {
          return Status::InvalidArgument(
              "facts and rules disagree on predicate arity");
        }
        (*full)[pred].InsertAll(*facts);
        (*delta)[pred].InsertAll(*facts);
      }
    } else if (it->second.arity() != arity) {
      return Status::InvalidArgument("rules disagree on predicate arity");
    }
  }
  return Status::OK();
}

/// Round 0: rules with no IDB body atom fire once from the EDB alone.
Status FireExitRules(const datalog::Program& program,
                     const RelationLookup& lookup,
                     const std::function<bool(SymbolId)>& is_idb,
                     plan::PlanCache* plan_cache, size_t batch_rows,
                     IdbRelations* full, IdbRelations* delta,
                     EvalStats* stats) {
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    bool has_idb_atom = std::any_of(
        rule.body().begin(), rule.body().end(),
        [&](const datalog::Atom& a) { return is_idb(a.predicate()); });
    if (has_idb_atom) continue;
    ConjunctiveOptions conj;
    conj.plan_cache = plan_cache;
    conj.batch_rows = batch_rows;
    RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                           EvaluateRule(rule, lookup, conj, stats));
    for (ra::TupleRef t : derived.rows()) {
      if ((*full)[rule.head().predicate()].Insert(t)) {
        (*delta)[rule.head().predicate()].Insert(t);
      }
    }
  }
  return Status::OK();
}

/// Adds the index builds visible at fixpoint end: the persistent full
/// relations and the EDB. Builds on per-round temporaries (deltas, shards)
/// are added by the round loops as the temporaries are discarded.
void AccumulateIndexRebuilds(const IdbRelations& full,
                             const ra::Database& edb, EvalStats* stats) {
  if (stats == nullptr) return;
  for (const auto& [pred, rel] : full) {
    (void)pred;
    stats->index_rebuilds += rel.index_rebuilds();
  }
  for (const auto& [pred, rel] : edb.relations()) {
    (void)pred;
    stats->index_rebuilds += rel->index_rebuilds();
  }
}

/// Sums tuples and arena bytes across `full` and leaves them in `stats`
/// (when present) so partial progress survives an error return. Returns the
/// totals for budget checks.
std::pair<size_t, size_t> RecordFootprint(const IdbRelations& full,
                                          EvalStats* stats) {
  size_t tuples = 0;
  size_t bytes = 0;
  for (const auto& [pred, rel] : full) {
    (void)pred;
    tuples += rel.size();
    bytes += rel.ArenaBytes();
  }
  if (stats != nullptr) {
    stats->total_tuples = tuples;
    stats->arena_bytes = bytes;
  }
  return {tuples, bytes};
}

// ---------------------------------------------------------------------------
// Serial engine
// ---------------------------------------------------------------------------

Result<IdbRelations> SerialSemiNaive(const datalog::Program& program,
                                     const ra::Database& edb,
                                     const FixpointOptions& options,
                                     EvalStats* stats) {
  IdbRelations full;
  IdbRelations delta;
  RECUR_RETURN_IF_ERROR(
      InitializeFullAndDelta(program, edb, &full, &delta));

  RelationLookup lookup = [&full,
                           &edb](SymbolId pred) -> const ra::Relation* {
    auto it = full.find(pred);
    if (it != full.end()) return &it->second;
    return edb.Find(pred);
  };
  auto is_idb = [&full](SymbolId pred) { return full.count(pred) > 0; };
  // One cache for the whole fixpoint: each (rule, delta position) compiles
  // once and re-executes every round until delta cardinalities drift.
  plan::PlanCache plan_cache(
      plan::PlanCache::Options{.enabled = options.plan_cache});
  RECUR_RETURN_IF_ERROR(
      FireExitRules(program, lookup, is_idb, &plan_cache,
                    options.executor_batch_rows, &full, &delta, stats));

  ContextScope ctx(options.context, options.limits);
  const ResourceLimits& limits = ctx->limits();
  const bool collect = options.collect_stats && stats != nullptr;
  for (int round = 0; round < limits.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    // Governance runs ahead of the convergence check so a breached deadline
    // or Cancel() surfaces even when the fixpoint would close this round.
    RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
    RECUR_FAULT_POINT("seminaive.serial.round");
    bool any_delta = false;
    for (const auto& [pred, d] : delta) {
      if (!d.empty()) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) {
      AccumulateIndexRebuilds(full, edb, stats);
      return full;
    }

    RoundStats round_stats;
    round_stats.round = round;
    size_t rebuilds_before = 0;
    if (collect) {
      for (const auto& [pred, rel] : full) {
        (void)pred;
        rebuilds_before += rel.index_rebuilds();
      }
    }
    auto round_start = Clock::now();

    // New tuples derived this round, per head predicate.
    IdbRelations fresh;
    for (auto& [pred, rel] : full) {
      fresh.emplace(pred, ra::Relation(rel.arity()));
    }
    int rule_index = -1;
    for (const datalog::Rule& rule : program.rules()) {
      ++rule_index;
      if (rule.IsFact()) continue;
      RuleRoundStats rr;
      rr.rule_index = rule_index;
      auto rule_start = Clock::now();
      size_t probes_before = stats != nullptr ? stats->join_probes : 0;
      for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
        SymbolId body_pred = rule.body()[i].predicate();
        if (!is_idb(body_pred)) continue;
        const ra::Relation& d = delta[body_pred];
        if (d.empty()) continue;
        ConjunctiveOptions conj;
        conj.override_index = i;
        conj.override_relation = &d;
        conj.plan_cache = &plan_cache;
        conj.context = ctx.get();
        conj.batch_rows = options.executor_batch_rows;
        RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                               EvaluateRule(rule, lookup, conj, stats));
        rr.tuples_derived += derived.size();
        ra::Relation& head_fresh = fresh[rule.head().predicate()];
        const ra::Relation& head_full = full[rule.head().predicate()];
        for (ra::TupleRef t : derived.rows()) {
          if (head_full.Contains(t) || !head_fresh.Insert(t)) {
            ++rr.tuples_deduped;
          }
        }
      }
      if (collect) rr.join_probes = stats->join_probes - probes_before;
      if (collect && (rr.tuples_derived > 0 || rr.join_probes > 0)) {
        rr.seconds = SecondsSince(rule_start);
        round_stats.tuples_derived += rr.tuples_derived;
        round_stats.tuples_deduped += rr.tuples_deduped;
        round_stats.join_probes += rr.join_probes;
        round_stats.rules.push_back(std::move(rr));
      }
    }
    auto merge_start = Clock::now();
    size_t delta_rebuilds = 0;
    for (auto& [pred, rel] : fresh) {
      full[pred].Reserve(full[pred].size() + rel.size());
      full[pred].InsertAll(rel);
      // The outgoing delta is discarded here; bank its index builds.
      delta_rebuilds += delta[pred].index_rebuilds();
      delta[pred] = std::move(rel);
    }
    if (stats != nullptr) stats->index_rebuilds += delta_rebuilds;
    if (collect) {
      round_stats.eval_seconds =
          std::chrono::duration<double>(merge_start - round_start).count();
      round_stats.merge_seconds = SecondsSince(merge_start);
      round_stats.index_rebuilds = delta_rebuilds;
      for (const auto& [pred, rel] : full) {
        (void)pred;
        round_stats.index_rebuilds += rel.index_rebuilds();
      }
      round_stats.index_rebuilds -= rebuilds_before;
      stats->rounds.push_back(std::move(round_stats));
    }
    auto [total_tuples, arena_bytes] = RecordFootprint(full, stats);
    RECUR_RETURN_IF_ERROR(ctx->CheckBudgets(total_tuples, arena_bytes));
  }
  return Status::ResourceExhausted(
      "semi-naive fixpoint did not converge within max_iterations (" +
      std::to_string(limits.max_iterations) + " rounds)");
}

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

/// First argument position of body atom `atom_index` whose variable also
/// occurs in another body atom — the column the join will most likely probe
/// on, and therefore the column deltas are hash-sharded by. -1 means no
/// shared variable; shard on the whole tuple.
int JoinKeyColumn(const datalog::Rule& rule, int atom_index) {
  const datalog::Atom& atom = rule.body()[atom_index];
  for (int p = 0; p < atom.arity(); ++p) {
    const datalog::Term& t = atom.args()[p];
    if (!t.IsVariable()) continue;
    for (int j = 0; j < static_cast<int>(rule.body().size()); ++j) {
      if (j == atom_index) continue;
      for (const datalog::Term& u : rule.body()[j].args()) {
        if (u.IsVariable() && u.symbol() == t.symbol()) return p;
      }
    }
  }
  return -1;
}

uint64_t MixValue(ra::Value v) {
  // splitmix64 finalizer: spreads consecutive ids across shards.
  uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Splits `delta` into `num_shards` relations by hashing the join-key
/// column (or the whole tuple when key < 0).
std::vector<ra::Relation> ShardDelta(const ra::Relation& delta, int key,
                                     int num_shards) {
  std::vector<ra::Relation> shards;
  shards.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards.emplace_back(delta.arity());
  }
  for (ra::TupleRef t : delta.rows()) {
    uint64_t h = key >= 0 ? MixValue(t[key]) : ra::TupleHash{}(t);
    shards[h % num_shards].Insert(t);
  }
  return shards;
}

/// A concurrent tuple set, sharded by tuple hash so writers on different
/// buckets never contend. Each bucket is an arena-backed Relation, so the
/// parallel merge path allocates nothing per tuple. One per head predicate
/// per round; the merge stage drains it into the next delta.
class ConcurrentDedup {
 public:
  ConcurrentDedup(int num_buckets, int arity) : buckets_(num_buckets) {
    for (Bucket& b : buckets_) b.tuples = ra::Relation(arity);
  }

  /// Returns true if `t` was not in the set yet.
  bool Add(ra::TupleRef t) {
    Bucket& b = buckets_[ra::TupleHash{}(t) % buckets_.size()];
    std::lock_guard<std::mutex> lock(b.mutex);
    return b.tuples.Insert(t);
  }

  size_t size() const {
    size_t n = 0;
    for (const Bucket& b : buckets_) n += b.tuples.size();
    return n;
  }

  /// Moves all tuples into `out` and empties the set. Buckets hold
  /// disjoint hash slices, so the unchecked bulk append applies.
  void DrainInto(ra::Relation* out) {
    out->Reserve(out->size() + size());
    for (Bucket& b : buckets_) {
      for (ra::TupleRef t : b.tuples.rows()) out->InsertUnchecked(t);
      b.tuples.Clear();
    }
  }

 private:
  struct Bucket {
    std::mutex mutex;
    ra::Relation tuples{0};
  };
  std::vector<Bucket> buckets_;
};

Result<IdbRelations> ParallelSemiNaive(const datalog::Program& program,
                                       const ra::Database& edb,
                                       const FixpointOptions& options,
                                       EvalStats* stats) {
  IdbRelations full;
  IdbRelations delta;
  RECUR_RETURN_IF_ERROR(
      InitializeFullAndDelta(program, edb, &full, &delta));

  RelationLookup lookup = [&full,
                           &edb](SymbolId pred) -> const ra::Relation* {
    auto it = full.find(pred);
    if (it != full.end()) return &it->second;
    return edb.Find(pred);
  };
  auto is_idb = [&full](SymbolId pred) { return full.count(pred) > 0; };
  // Shared across rounds and shard tasks: plans are compiled serially at
  // round setup (below) and then executed concurrently — tasks only hit.
  plan::PlanCache plan_cache(
      plan::PlanCache::Options{.enabled = options.plan_cache});
  RECUR_RETURN_IF_ERROR(
      FireExitRules(program, lookup, is_idb, &plan_cache,
                    options.executor_batch_rows, &full, &delta, stats));

  const int num_shards = options.shard_count > 0
                             ? options.shard_count
                             : 4 * options.num_threads;
  const bool collect = options.collect_stats && stats != nullptr;
  ThreadPool pool(options.num_threads);

  // Per-head-predicate concurrent dedup sets, reused across rounds.
  std::map<SymbolId, ConcurrentDedup> dedup;
  for (const auto& [pred, rel] : full) {
    dedup.emplace(pred,
                  ConcurrentDedup(4 * options.num_threads, rel.arity()));
  }

  struct Task {
    const datalog::Rule* rule = nullptr;
    int rule_index = 0;
    int atom_index = 0;
    const ra::Relation* shard = nullptr;
  };

  ContextScope ctx(options.context, options.limits);
  const ResourceLimits& limits = ctx->limits();
  std::mutex stats_mutex;
  for (int round = 0; round < limits.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    // Governance runs ahead of the convergence check so a breached deadline
    // or Cancel() surfaces even when the fixpoint would close this round.
    RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
    RECUR_FAULT_POINT("seminaive.parallel.round");
    bool any_delta = false;
    for (const auto& [pred, d] : delta) {
      if (!d.empty()) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) {
      AccumulateIndexRebuilds(full, edb, stats);
      return full;
    }

    RoundStats round_stats;
    round_stats.round = round;
    size_t rebuilds_before = 0;
    if (collect) {
      for (const auto& [pred, rel] : full) {
        (void)pred;
        rebuilds_before += rel.index_rebuilds();
      }
    }
    auto round_start = Clock::now();

    // Build the task list: one task per (rule, IDB body atom, delta
    // shard). Shards are cached per (predicate, join-key column) so rules
    // probing the same column reuse the partition. Tiny deltas stay in one
    // shard — splitting them only buys scheduling overhead.
    std::map<std::pair<SymbolId, int>, std::vector<ra::Relation>> shards;
    std::vector<Task> tasks;
    int rule_index = -1;
    for (const datalog::Rule& rule : program.rules()) {
      ++rule_index;
      if (rule.IsFact()) continue;
      for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
        SymbolId body_pred = rule.body()[i].predicate();
        if (!is_idb(body_pred)) continue;
        const ra::Relation& d = delta[body_pred];
        if (d.empty()) continue;
        int effective_shards =
            d.size() < 64 ? 1 : num_shards;
        int key = JoinKeyColumn(rule, i);
        auto shard_key = std::make_pair(body_pred,
                                        effective_shards == 1 ? -2 : key);
        auto it = shards.find(shard_key);
        if (it == shards.end()) {
          it = shards
                   .emplace(shard_key,
                            ShardDelta(d, key, effective_shards))
                   .first;
        }
        // Precompile the (rule, delta-position) plan serially before the
        // fan-out, keyed and cardinality-estimated against a
        // representative shard, so concurrent tasks only take cache hits.
        const ra::Relation* representative = nullptr;
        for (const ra::Relation& shard : it->second) {
          if (!shard.empty()) {
            representative = &shard;
            break;
          }
        }
        if (representative != nullptr) {
          plan::PlannerOptions planner_options;
          planner_options.override_index = i;
          planner_options.override_relation = representative;
          RECUR_RETURN_IF_ERROR(
              plan_cache.GetOrCompile(rule, lookup, planner_options)
                  .status());
        }
        for (const ra::Relation& shard : it->second) {
          if (shard.empty()) continue;
          tasks.push_back(Task{&rule, rule_index, i, &shard});
        }
      }
    }

    // Evaluation stage: workers derive tuples and push anything not
    // already in `full` through the concurrent dedup sets. `full`, the
    // EDB, and the shards are frozen until the merge stage, so concurrent
    // Contains/probe reads (and synchronized lazy index builds) are safe.
    std::vector<Status> task_status(tasks.size(), Status::OK());
    std::vector<RuleRoundStats> rule_acc(program.rules().size());
    for (size_t t = 0; t < tasks.size(); ++t) {
      rule_acc[tasks[t].rule_index].rule_index = tasks[t].rule_index;
    }
    for (size_t t = 0; t < tasks.size(); ++t) {
      pool.Submit([&, t] {
        const Task& task = tasks[t];
        // Shard-task-granularity polling: a Cancel() or deadline breach
        // mid-round turns the remaining tasks into cheap no-ops. A kThrow /
        // kBadAlloc fault here propagates into the pool's exception path.
        Status governed = ctx->CheckCancel();
        if (governed.ok()) {
          governed =
              util::FaultInjector::Instance().Check("seminaive.parallel.task");
        }
        if (!governed.ok()) {
          task_status[t] = std::move(governed);
          return;
        }
        auto task_start = Clock::now();
        EvalStats local;
        ConjunctiveOptions conj;
        conj.override_index = task.atom_index;
        conj.override_relation = task.shard;
        conj.plan_cache = &plan_cache;
        conj.context = ctx.get();
        conj.batch_rows = options.executor_batch_rows;
        Result<ra::Relation> derived =
            EvaluateRule(*task.rule, lookup, conj,
                         stats != nullptr ? &local : nullptr);
        if (!derived.ok()) {
          task_status[t] = derived.status();
          return;
        }
        SymbolId head = task.rule->head().predicate();
        const ra::Relation& head_full = full.at(head);
        ConcurrentDedup& head_dedup = dedup.at(head);
        size_t deduped = 0;
        for (ra::TupleRef tuple : derived->rows()) {
          if (head_full.Contains(tuple) || !head_dedup.Add(tuple)) {
            ++deduped;
          }
        }
        if (stats != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats->tuples_considered += local.tuples_considered;
          stats->tuples_produced += local.tuples_produced;
          stats->join_probes += local.join_probes;
          RuleRoundStats& rr = rule_acc[task.rule_index];
          rr.tuples_derived += derived->size();
          rr.tuples_deduped += deduped;
          rr.join_probes += local.join_probes;
          rr.seconds += SecondsSince(task_start);
        }
      });
    }
    RECUR_RETURN_IF_ERROR(pool.Wait());
    for (const Status& s : task_status) {
      RECUR_RETURN_IF_ERROR(s);
    }

    // Merge stage (single-threaded): drain the dedup sets into the next
    // delta and append to full — incremental index maintenance makes this
    // an append, not a rebuild.
    auto merge_start = Clock::now();
    for (auto& [pred, d] : dedup) {
      ra::Relation next_delta(full.at(pred).arity());
      d.DrainInto(&next_delta);
      ra::Relation& head_full = full.at(pred);
      head_full.Reserve(head_full.size() + next_delta.size());
      head_full.InsertAll(next_delta);
      delta[pred] = std::move(next_delta);
    }
    // The shards are discarded at end of round; bank their index builds.
    size_t shard_rebuilds = 0;
    for (const auto& [key, vec] : shards) {
      (void)key;
      for (const ra::Relation& s : vec) {
        shard_rebuilds += s.index_rebuilds();
      }
    }
    if (stats != nullptr) stats->index_rebuilds += shard_rebuilds;
    if (collect) {
      round_stats.eval_seconds =
          std::chrono::duration<double>(merge_start - round_start).count();
      round_stats.merge_seconds = SecondsSince(merge_start);
      for (RuleRoundStats& rr : rule_acc) {
        if (rr.tuples_derived == 0 && rr.join_probes == 0) continue;
        round_stats.tuples_derived += rr.tuples_derived;
        round_stats.tuples_deduped += rr.tuples_deduped;
        round_stats.join_probes += rr.join_probes;
        round_stats.rules.push_back(std::move(rr));
      }
      round_stats.index_rebuilds = shard_rebuilds;
      for (const auto& [pred, rel] : full) {
        (void)pred;
        round_stats.index_rebuilds += rel.index_rebuilds();
      }
      round_stats.index_rebuilds -= rebuilds_before;
      stats->rounds.push_back(std::move(round_stats));
    }
    auto [total_tuples, arena_bytes] = RecordFootprint(full, stats);
    RECUR_RETURN_IF_ERROR(ctx->CheckBudgets(total_tuples, arena_bytes));
  }
  return Status::ResourceExhausted(
      "semi-naive fixpoint did not converge within max_iterations (" +
      std::to_string(limits.max_iterations) + " rounds)");
}

}  // namespace

Result<IdbRelations> SemiNaiveEvaluate(const datalog::Program& program,
                                       const ra::Database& edb,
                                       const FixpointOptions& options,
                                       EvalStats* stats) {
  // Allocation failure inside the fixpoint must surface as a Status, not an
  // exception: no exceptions cross public API boundaries.
  try {
    if (options.num_threads > 1) {
      return ParallelSemiNaive(program, edb, options, stats);
    }
    return SerialSemiNaive(program, edb, options, stats);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "allocation failure during semi-naive fixpoint");
  }
}

Result<ra::Relation> SemiNaiveAnswer(const datalog::Program& program,
                                     const ra::Database& edb,
                                     const Query& query,
                                     const FixpointOptions& options,
                                     EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb,
                         SemiNaiveEvaluate(program, edb, options, stats));
  auto it = idb.find(query.pred);
  if (it == idb.end()) {
    return Status::NotFound("query predicate has no rules");
  }
  return query.Filter(it->second);
}

}  // namespace recur::eval
