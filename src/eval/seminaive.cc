#include "eval/seminaive.h"

#include <algorithm>

#include "ra/operators.h"

namespace recur::eval {

Result<IdbRelations> SemiNaiveEvaluate(const datalog::Program& program,
                                       const ra::Database& edb,
                                       const FixpointOptions& options,
                                       EvalStats* stats) {
  // Full and delta relations per IDB predicate.
  IdbRelations full;
  IdbRelations delta;
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    SymbolId pred = rule.head().predicate();
    int arity = rule.head().arity();
    auto it = full.find(pred);
    if (it == full.end()) {
      full.emplace(pred, ra::Relation(arity));
      delta.emplace(pred, ra::Relation(arity));
      const ra::Relation* facts = edb.Find(pred);
      if (facts != nullptr) {
        if (facts->arity() != arity) {
          return Status::InvalidArgument(
              "facts and rules disagree on predicate arity");
        }
        full[pred].InsertAll(*facts);
        delta[pred].InsertAll(*facts);
      }
    } else if (it->second.arity() != arity) {
      return Status::InvalidArgument("rules disagree on predicate arity");
    }
  }

  RelationLookup lookup = [&full,
                           &edb](SymbolId pred) -> const ra::Relation* {
    auto it = full.find(pred);
    if (it != full.end()) return &it->second;
    return edb.Find(pred);
  };
  auto is_idb = [&full](SymbolId pred) { return full.count(pred) > 0; };

  // Round 0: rules with no IDB body atom fire once from the EDB alone.
  for (const datalog::Rule& rule : program.rules()) {
    if (rule.IsFact()) continue;
    bool has_idb_atom = std::any_of(
        rule.body().begin(), rule.body().end(),
        [&](const datalog::Atom& a) { return is_idb(a.predicate()); });
    if (has_idb_atom) continue;
    RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                           EvaluateRule(rule, lookup, {}, stats));
    for (const ra::Tuple& t : derived.rows()) {
      if (full[rule.head().predicate()].Insert(t)) {
        delta[rule.head().predicate()].Insert(t);
      }
    }
  }

  for (int round = 0; round < options.max_iterations; ++round) {
    if (stats != nullptr) ++stats->iterations;
    bool any_delta = false;
    for (const auto& [pred, d] : delta) {
      if (!d.empty()) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) return full;

    // New tuples derived this round, per head predicate.
    IdbRelations fresh;
    for (auto& [pred, rel] : full) {
      fresh.emplace(pred, ra::Relation(rel.arity()));
    }
    for (const datalog::Rule& rule : program.rules()) {
      if (rule.IsFact()) continue;
      for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
        SymbolId body_pred = rule.body()[i].predicate();
        if (!is_idb(body_pred)) continue;
        const ra::Relation& d = delta[body_pred];
        if (d.empty()) continue;
        ConjunctiveOptions conj;
        conj.override_index = i;
        conj.override_relation = &d;
        RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                               EvaluateRule(rule, lookup, conj, stats));
        for (const ra::Tuple& t : derived.rows()) {
          if (!full[rule.head().predicate()].Contains(t)) {
            fresh[rule.head().predicate()].Insert(t);
          }
        }
      }
    }
    for (auto& [pred, rel] : fresh) {
      full[pred].InsertAll(rel);
      delta[pred] = std::move(rel);
    }
  }
  return Status::Internal("semi-naive fixpoint exceeded max_iterations");
}

Result<ra::Relation> SemiNaiveAnswer(const datalog::Program& program,
                                     const ra::Database& edb,
                                     const Query& query,
                                     const FixpointOptions& options,
                                     EvalStats* stats) {
  RECUR_ASSIGN_OR_RETURN(IdbRelations idb,
                         SemiNaiveEvaluate(program, edb, options, stats));
  auto it = idb.find(query.pred);
  if (it == idb.end()) {
    return Status::NotFound("query predicate has no rules");
  }
  return query.Filter(it->second);
}

}  // namespace recur::eval
