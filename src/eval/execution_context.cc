#include "eval/execution_context.h"

#include <sstream>

namespace recur::eval {

Status ExecutionContext::CheckCancel() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::Cancelled("evaluation cancelled by caller");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    std::ostringstream msg;
    msg << "deadline of " << limits_.deadline_seconds
        << "s elapsed after " << ElapsedSeconds() << "s";
    return Status::DeadlineExceeded(msg.str());
  }
  return Status::OK();
}

Status ExecutionContext::CheckBudgets(size_t total_tuples,
                                      size_t arena_bytes) const {
  if (limits_.max_total_tuples > 0 && total_tuples > limits_.max_total_tuples) {
    std::ostringstream msg;
    msg << "tuple budget exceeded: " << total_tuples << " tuples derived, "
        << "limit " << limits_.max_total_tuples;
    return Status::ResourceExhausted(msg.str());
  }
  if (limits_.max_arena_bytes > 0 && arena_bytes > limits_.max_arena_bytes) {
    std::ostringstream msg;
    msg << "arena budget exceeded: " << arena_bytes << " bytes resident, "
        << "limit " << limits_.max_arena_bytes;
    return Status::ResourceExhausted(msg.str());
  }
  return Status::OK();
}

}  // namespace recur::eval
