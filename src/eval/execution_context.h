#ifndef RECUR_EVAL_EXECUTION_CONTEXT_H_
#define RECUR_EVAL_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>

#include "util/status.h"

namespace recur::eval {

/// Hard ceilings on a single fixpoint evaluation. A zero (or negative, for
/// the deadline) value means "unlimited" — except max_iterations, which is
/// always enforced to keep unbounded recursions from spinning forever.
struct ResourceLimits {
  /// Maximum fixpoint rounds before the engine gives up with
  /// kResourceExhausted.
  int max_iterations = 1 << 20;
  /// Wall-clock budget in seconds, measured from ExecutionContext
  /// construction. Breaching it yields kDeadlineExceeded.
  double deadline_seconds = 0.0;
  /// Ceiling on the total tuple count across all IDB relations.
  /// Breaching it yields kResourceExhausted.
  size_t max_total_tuples = 0;
  /// Ceiling on the total arena footprint (bytes) across all IDB
  /// relations. Breaching it yields kResourceExhausted.
  size_t max_arena_bytes = 0;
};

/// Shared state between a running evaluation and its caller: the effective
/// resource limits, the evaluation's start time (deadlines are measured
/// from construction), and a cancel flag the caller may set from any thread.
///
/// Engines poll CheckCancel() at round and shard-task granularity and
/// CheckBudgets() after each merge, so a breach or Cancel() stops the
/// fixpoint within one round (plus the currently running tasks) and
/// surfaces as a typed Status with partial progress left in EvalStats.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ExecutionContext(const ResourceLimits& limits = ResourceLimits())
      : limits_(limits), start_(Clock::now()) {
    if (limits_.deadline_seconds > 0.0) {
      deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   limits_.deadline_seconds));
      has_deadline_ = true;
    }
  }

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Requests cooperative cancellation; safe from any thread. The engine
  /// observes it at its next poll point and returns kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  const ResourceLimits& limits() const { return limits_; }

  /// Seconds elapsed since the context was constructed.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// OK unless cancelled (kCancelled) or past the deadline
  /// (kDeadlineExceeded).
  Status CheckCancel() const;

  /// OK unless a tuple or arena-byte ceiling is breached
  /// (kResourceExhausted).
  Status CheckBudgets(size_t total_tuples, size_t arena_bytes) const;

 private:
  const ResourceLimits limits_;
  const Clock::time_point start_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
};

/// Resolves the effective context for one engine invocation: the caller's
/// context when provided (shared deadline + external Cancel handle — its
/// limits win), otherwise a private context built from `limits` whose
/// deadline clock starts now. Keeps the private context alive for the
/// scope of the evaluation.
class ContextScope {
 public:
  ContextScope(const ExecutionContext* external,
               const ResourceLimits& limits) {
    if (external != nullptr) {
      ctx_ = external;
    } else {
      local_.emplace(limits);
      ctx_ = &*local_;
    }
  }

  const ExecutionContext* get() const { return ctx_; }
  const ExecutionContext* operator->() const { return ctx_; }

 private:
  std::optional<ExecutionContext> local_;
  const ExecutionContext* ctx_ = nullptr;
};

}  // namespace recur::eval

#endif  // RECUR_EVAL_EXECUTION_CONTEXT_H_
