#include "eval/special_plans.h"

#include "eval/plan/executor.h"
#include "ra/operators.h"
#include "util/fault_injection.h"

namespace recur::eval {

namespace {

Result<const ra::Relation*> Rel(const ra::Database& edb,
                                const SymbolTable& symbols, const char* name,
                                int arity) {
  SymbolId id = symbols.Lookup(name);
  const ra::Relation* rel = id == kInvalidSymbol ? nullptr : edb.Find(id);
  if (rel == nullptr) {
    return Status::NotFound(std::string("relation ") + name +
                            " missing from the database");
  }
  if (rel->arity() != arity) {
    return Status::InvalidArgument(std::string("relation ") + name +
                                   " has unexpected arity");
  }
  return rel;
}

/// One closure-round tick shared by all plans: counts the iteration, gives
/// fault injection a stop, and polls cancellation/deadline when governed.
Status RoundTick(EvalStats* stats, const ExecutionContext* ctx) {
  if (stats != nullptr) ++stats->iterations;
  RECUR_FAULT_POINT("special_plans.round");
  if (ctx != nullptr) RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
  return Status::OK();
}

/// A pair value for the dependent-plan frontiers.
using Pair = std::pair<ra::Value, ra::Value>;
struct PairHash {
  size_t operator()(const Pair& p) const {
    return std::hash<uint64_t>()(static_cast<uint64_t>(p.first) * 1000003u ^
                                 static_cast<uint64_t>(p.second));
  }
};
using PairSet = std::unordered_set<Pair, PairHash>;

}  // namespace

Result<ra::Relation> S9PlanBoundFirst(const ra::Database& edb,
                                      const SymbolTable& symbols,
                                      ra::Value d, EvalStats* stats,
                                      const ExecutionContext* ctx) {
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* a, Rel(edb, symbols, "A", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* b, Rel(edb, symbols, "B", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* e, Rel(edb, symbols, "E", 3));

  ra::Relation out(3);
  // σE: the exit contributes the depth-0 answers directly — the pipeline's
  // constant-keyed IndexScan primitive (shared governance polling).
  RECUR_RETURN_IF_ERROR(plan::SelectInto(*e, {{0, d}}, ctx, &out).status());

  // σA: the bound position feeds only the y column; the recursion is
  // disconnected from it.
  ra::ValueSet y_values;
  for (int row : a->RowsWithValue(0, d)) {
    y_values.insert(a->rows()[row][1]);
  }
  if (y_values.empty()) return out;

  // Z_1 = π_z(E ⋈ B) (join on both u and v); Z_{k+1} = π_z(σ_{v∈Z_k}B · A).
  ra::ValueSet z_all;
  ra::ValueSet z_delta;
  for (ra::TupleRef t : e->rows()) {
    if (b->Contains({t[0], t[2]})) z_delta.insert(t[1]);
  }
  RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
  while (!z_delta.empty()) {
    ra::ValueSet fresh;
    for (ra::Value v : z_delta) z_all.insert(v);
    // v ∈ Z_k, (u,v) ∈ B, A(u,z) -> z ∈ Z_{k+1}.
    for (ra::Value v : z_delta) {
      for (int brow : b->RowsWithValue(1, v)) {
        ra::Value u = b->rows()[brow][0];
        for (int arow : a->RowsWithValue(0, u)) {
          ra::Value z = a->rows()[arow][1];
          if (z_all.count(z) == 0) fresh.insert(z);
        }
      }
    }
    z_delta = std::move(fresh);
    RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
  }

  // (σA) × (∪_k ...): Cartesian product of the two independent parts.
  for (ra::Value y : y_values) {
    for (ra::Value z : z_all) {
      out.Insert({d, y, z});
    }
  }
  return out;
}

Result<ra::Relation> S9PlanBoundThird(const ra::Database& edb,
                                      const SymbolTable& symbols,
                                      ra::Value d, EvalStats* stats,
                                      const ExecutionContext* ctx) {
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* a, Rel(edb, symbols, "A", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* b, Rel(edb, symbols, "B", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* e, Rel(edb, symbols, "E", 3));

  ra::Relation out(3);
  // σE: depth-0 answers, via the pipeline's constant-keyed IndexScan.
  RECUR_RETURN_IF_ERROR(plan::SelectInto(*e, {{2, d}}, ctx, &out).status());

  // ∃ ∪_k [(AB)^k (E ⋈ B)]: M_1 = {d}; M_{k+1} = π_v(σ_{m∈M_k}(A) ⋈ B);
  // witness at depth k iff ∃ (u,v) ∈ B, m ∈ M_k: E(u, m, v).
  ra::ValueSet m_all;
  ra::ValueSet m_delta{d};
  bool witness = false;
  while (!witness && !m_delta.empty()) {
    RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
    for (ra::Value m : m_delta) {
      for (int erow : e->RowsWithValue(1, m)) {
        ra::TupleRef t = e->rows()[erow];
        if (b->Contains({t[0], t[2]})) {
          witness = true;
          break;
        }
      }
      if (witness) break;
    }
    if (witness) break;
    ra::ValueSet fresh;
    for (ra::Value m : m_delta) m_all.insert(m);
    for (ra::Value m : m_delta) {
      // A(u, m), B(u, v) -> v ∈ M_{k+1}.
      for (int arow : a->RowsWithValue(1, m)) {
        ra::Value u = a->rows()[arow][0];
        for (int brow : b->RowsWithValue(0, u)) {
          ra::Value v = b->rows()[brow][1];
          if (m_all.count(v) == 0) fresh.insert(v);
        }
      }
    }
    m_delta = std::move(fresh);
  }

  // If the existence check succeeds, every tuple of A answers the query.
  if (witness) {
    for (ra::TupleRef t : a->rows()) {
      out.Insert({t[0], t[1], d});
    }
  }
  return out;
}

Result<ra::Relation> S11Plan(const ra::Database& edb,
                             const SymbolTable& symbols, ra::Value d,
                             EvalStats* stats, const ExecutionContext* ctx) {
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* a, Rel(edb, symbols, "A", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* b, Rel(edb, symbols, "B", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* c, Rel(edb, symbols, "C", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* e, Rel(edb, symbols, "E", 2));

  ra::Relation out(2);
  // σE: depth-0 answers, via the pipeline's constant-keyed IndexScan.
  RECUR_RETURN_IF_ERROR(plan::SelectInto(*e, {{0, d}}, ctx, &out).status());

  // First-layer pairs: σA-C — (x1, y1) with A(d, x1) ∧ C(x1, y1).
  PairSet first_layer;
  for (int arow : a->RowsWithValue(0, d)) {
    ra::Value x1 = a->rows()[arow][1];
    for (int crow : c->RowsWithValue(0, x1)) {
      first_layer.insert({x1, c->rows()[crow][1]});
    }
  }

  // Forward closure under the lock-step pair walk
  // (x,y) -> (x',y') iff A(x,x') ∧ B(y,y') ∧ C(x',y').
  PairSet forward = first_layer;
  PairSet delta = first_layer;
  while (!delta.empty()) {
    RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
    PairSet fresh;
    for (const Pair& p : delta) {
      for (int arow : a->RowsWithValue(0, p.first)) {
        ra::Value x2 = a->rows()[arow][1];
        for (int brow : b->RowsWithValue(0, p.second)) {
          ra::Value y2 = b->rows()[brow][1];
          if (c->Contains({x2, y2})) {
            Pair q{x2, y2};
            if (forward.insert(q).second) fresh.insert(q);
          }
        }
      }
    }
    delta = std::move(fresh);
  }

  // Backward reach-E closure within the forward region.
  PairSet reach;
  PairSet rdelta;
  for (const Pair& p : forward) {
    if (e->Contains({p.first, p.second})) {
      reach.insert(p);
      rdelta.insert(p);
    }
  }
  while (!rdelta.empty()) {
    RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
    PairSet fresh;
    for (const Pair& q : rdelta) {
      // Predecessors p with A(p.x, q.x) ∧ B(p.y, q.y), restricted to the
      // forward region (which already enforces C).
      for (int arow : a->RowsWithValue(1, q.first)) {
        ra::Value x = a->rows()[arow][0];
        for (int brow : b->RowsWithValue(1, q.second)) {
          Pair p{x, b->rows()[brow][0]};
          if (forward.count(p) > 0 && reach.insert(p).second) {
            fresh.insert(p);
          }
        }
      }
    }
    rdelta = std::move(fresh);
  }

  // Answers: B-preimages of first-layer pairs that reach E.
  for (const Pair& p : first_layer) {
    if (reach.count(p) == 0) continue;
    for (int brow : b->RowsWithValue(1, p.second)) {
      out.Insert({d, b->rows()[brow][0]});
    }
  }
  return out;
}

Result<ra::Relation> S12Plan(const ra::Database& edb,
                             const SymbolTable& symbols, ra::Value d,
                             int max_levels, EvalStats* stats,
                             const ExecutionContext* ctx) {
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* a, Rel(edb, symbols, "A", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* b, Rel(edb, symbols, "B", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* c, Rel(edb, symbols, "C", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* dd, Rel(edb, symbols, "D", 2));
  RECUR_ASSIGN_OR_RETURN(const ra::Relation* e, Rel(edb, symbols, "E", 3));

  ra::Relation out(3);
  // Depth 0: σE, via the pipeline's constant-keyed IndexScan.
  RECUR_RETURN_IF_ERROR(plan::SelectInto(*e, {{0, d}}, ctx, &out).status());

  // Level relation over (v1, u_k, v_k): the first-layer v (which links to
  // the answer y through B) threaded along the dependent (u, v) walk.
  ra::Relation level(3);
  for (int arow : a->RowsWithValue(0, d)) {
    ra::Value u1 = a->rows()[arow][1];
    for (int crow : c->RowsWithValue(0, u1)) {
      ra::Value v1 = c->rows()[crow][1];
      level.Insert({v1, u1, v1});
    }
  }

  for (int k = 1; k <= max_levels && !level.empty(); ++k) {
    RECUR_RETURN_IF_ERROR(RoundTick(stats, ctx));
    // E join: (v1, w_k) for E(u_k, v_k, w_k).
    ra::Relation vw(2);
    for (ra::TupleRef t : level.rows()) {
      for (int erow : e->RowsWithValue(0, t[1])) {
        ra::TupleRef et = e->rows()[erow];
        if (et[1] == t[2]) vw.Insert({t[0], et[2]});
      }
    }
    // D^k: fold w back to z through k applications of D (level-wise, as
    // the paper's plan is written).
    for (int step = 0; step < k && !vw.empty(); ++step) {
      ra::Relation next(2);
      for (ra::TupleRef t : vw.rows()) {
        for (int drow : dd->RowsWithValue(0, t[1])) {
          next.Insert({t[0], dd->rows()[drow][1]});
        }
      }
      vw = std::move(next);
    }
    // B(y, v1) gives the answers.
    for (ra::TupleRef t : vw.rows()) {
      for (int brow : b->RowsWithValue(1, t[0])) {
        out.Insert({d, b->rows()[brow][0], t[1]});
      }
    }
    // Advance the dependent pair walk.
    ra::Relation next_level(3);
    for (ra::TupleRef t : level.rows()) {
      for (int arow : a->RowsWithValue(0, t[1])) {
        ra::Value u2 = a->rows()[arow][1];
        for (int brow : b->RowsWithValue(0, t[2])) {
          ra::Value v2 = b->rows()[brow][1];
          if (c->Contains({u2, v2})) {
            next_level.Insert({t[0], u2, v2});
          }
        }
      }
    }
    level = std::move(next_level);
  }
  return out;
}

}  // namespace recur::eval
