#include "eval/query.h"

#include "eval/plan/executor.h"
#include "util/fault_injection.h"

namespace recur::eval {

uint32_t Query::adornment() const {
  uint32_t a = 0;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].has_value()) a |= (1u << i);
  }
  return a;
}

std::string Query::AdornmentString() const {
  std::string s;
  for (const auto& b : bindings) s += b.has_value() ? 'b' : 'f';
  return s;
}

std::vector<int> Query::BoundPositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].has_value()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Query::FreePositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (!bindings[i].has_value()) out.push_back(static_cast<int>(i));
  }
  return out;
}

Query Query::FromAtom(const datalog::Atom& atom) {
  Query q;
  q.pred = atom.predicate();
  q.bindings.reserve(atom.args().size());
  for (const datalog::Term& t : atom.args()) {
    if (t.IsConstant()) {
      q.bindings.emplace_back(static_cast<ra::Value>(t.symbol()));
    } else {
      q.bindings.emplace_back(std::nullopt);
    }
  }
  return q;
}

Result<ra::Relation> Query::Filter(const ra::Relation& full) const {
  if (full.arity() != arity()) {
    return Status::InvalidArgument("query arity does not match relation");
  }
  ra::Relation out(arity());
  std::vector<plan::ConstCheck> checks;
  for (int i = 0; i < arity(); ++i) {
    if (bindings[i].has_value()) checks.push_back({i, *bindings[i]});
  }
  RECUR_RETURN_IF_ERROR(
      plan::FilterRelation(full, checks, nullptr, &out).status());
  return out;
}

Result<size_t> Query::FilterInto(const ra::Relation& full,
                                 ra::Relation* out,
                                 const ExecutionContext* ctx) const {
  if (full.arity() != arity() || out->arity() != arity()) {
    return Status::InvalidArgument("query arity does not match relation");
  }
  RECUR_FAULT_POINT("query.filter_into");
  // The bound positions become ConstChecks for the pipeline's shared
  // ConstFilter primitive, which owns the batch-granularity governance
  // polling.
  std::vector<plan::ConstCheck> checks;
  for (int i = 0; i < arity(); ++i) {
    if (bindings[i].has_value()) checks.push_back({i, *bindings[i]});
  }
  return plan::FilterRelation(full, checks, ctx, out);
}

}  // namespace recur::eval
