#include "eval/query.h"

#include "util/fault_injection.h"

namespace recur::eval {

uint32_t Query::adornment() const {
  uint32_t a = 0;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].has_value()) a |= (1u << i);
  }
  return a;
}

std::string Query::AdornmentString() const {
  std::string s;
  for (const auto& b : bindings) s += b.has_value() ? 'b' : 'f';
  return s;
}

std::vector<int> Query::BoundPositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].has_value()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Query::FreePositions() const {
  std::vector<int> out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (!bindings[i].has_value()) out.push_back(static_cast<int>(i));
  }
  return out;
}

Query Query::FromAtom(const datalog::Atom& atom) {
  Query q;
  q.pred = atom.predicate();
  q.bindings.reserve(atom.args().size());
  for (const datalog::Term& t : atom.args()) {
    if (t.IsConstant()) {
      q.bindings.emplace_back(static_cast<ra::Value>(t.symbol()));
    } else {
      q.bindings.emplace_back(std::nullopt);
    }
  }
  return q;
}

Result<ra::Relation> Query::Filter(const ra::Relation& full) const {
  if (full.arity() != arity()) {
    return Status::InvalidArgument("query arity does not match relation");
  }
  ra::Relation out(arity());
  for (ra::TupleRef t : full.rows()) {
    bool match = true;
    for (int i = 0; i < arity(); ++i) {
      if (bindings[i].has_value() && t[i] != *bindings[i]) {
        match = false;
        break;
      }
    }
    if (match) out.Insert(t);
  }
  return out;
}

Result<size_t> Query::FilterInto(const ra::Relation& full,
                                 ra::Relation* out,
                                 const ExecutionContext* ctx) const {
  if (full.arity() != arity() || out->arity() != arity()) {
    return Status::InvalidArgument("query arity does not match relation");
  }
  RECUR_FAULT_POINT("query.filter_into");
  size_t inserted = 0;
  ra::RowsView rows = full.rows();
  for (size_t row = 0; row < rows.size(); ++row) {
    if (ctx != nullptr && (row & 4095u) == 0) {
      RECUR_RETURN_IF_ERROR(ctx->CheckCancel());
    }
    ra::TupleRef t = rows[row];
    bool match = true;
    for (int i = 0; i < arity(); ++i) {
      if (bindings[i].has_value() && t[i] != *bindings[i]) {
        match = false;
        break;
      }
    }
    if (match && out->Insert(t)) ++inserted;
  }
  return inserted;
}

}  // namespace recur::eval
