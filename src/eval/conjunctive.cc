#include "eval/conjunctive.h"

#include <algorithm>
#include <cstdio>

#include "graph/components.h"

namespace recur::eval {

namespace {

/// A growing set of variable bindings represented as a relation whose
/// columns correspond to `vars`.
struct BindingSet {
  std::vector<SymbolId> vars;
  ra::Relation rel{0};

  int ColumnOf(SymbolId var) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Extends `bindings` with one atom: for every binding row, finds the
/// matching atom rows (constants and already-bound variables must agree,
/// repeated variables must agree among themselves) and appends values for
/// newly seen variables.
Status ExtendWithAtom(const datalog::Atom& atom, const ra::Relation& rel,
                      BindingSet* bindings, EvalStats* stats) {
  if (rel.arity() != atom.arity()) {
    return Status::InvalidArgument(
        "relation arity does not match atom arity");
  }
  // Classify atom argument positions.
  struct BoundCheck {
    int atom_col;
    int binding_col;
  };
  struct ConstCheck {
    int atom_col;
    ra::Value value;
  };
  std::vector<BoundCheck> bound_checks;
  std::vector<ConstCheck> const_checks;
  // For repeated fresh variables within the atom: (first col, later col).
  std::vector<std::pair<int, int>> intra_checks;
  // Newly bound variables: (atom col, var).
  std::vector<std::pair<int, SymbolId>> fresh;
  for (int i = 0; i < atom.arity(); ++i) {
    const datalog::Term& t = atom.args()[i];
    if (t.IsConstant()) {
      const_checks.push_back({i, static_cast<ra::Value>(t.symbol())});
      continue;
    }
    int bcol = bindings->ColumnOf(t.symbol());
    if (bcol >= 0) {
      bound_checks.push_back({i, bcol});
      continue;
    }
    bool repeated = false;
    for (const auto& [col, var] : fresh) {
      if (var == t.symbol()) {
        intra_checks.emplace_back(col, i);
        repeated = true;
        break;
      }
    }
    if (!repeated) fresh.emplace_back(i, t.symbol());
  }

  BindingSet next;
  next.vars = bindings->vars;
  for (const auto& [col, var] : fresh) next.vars.push_back(var);
  next.rel = ra::Relation(static_cast<int>(next.vars.size()));

  // Candidate atom rows for one binding row.
  auto matches = [&](ra::TupleRef brow, ra::TupleRef arow) {
    for (const ConstCheck& c : const_checks) {
      if (arow[c.atom_col] != c.value) return false;
    }
    for (const BoundCheck& c : bound_checks) {
      if (arow[c.atom_col] != brow[c.binding_col]) return false;
    }
    for (const auto& [first, later] : intra_checks) {
      if (arow[first] != arow[later]) return false;
    }
    return true;
  };
  // Stages the extended binding row straight into the output arena: the
  // old binding columns, then the newly bound values.
  auto emit = [&](ra::TupleRef brow, ra::TupleRef arow) {
    ra::Value* dst = next.rel.StageRow();
    dst = std::copy(brow.begin(), brow.end(), dst);
    for (const auto& [col, var] : fresh) {
      (void)var;
      *dst++ = arow[col];
    }
    if (stats != nullptr) ++stats->tuples_considered;
    next.rel.CommitStagedRow();
  };

  for (ra::TupleRef brow : bindings->rel.rows()) {
    if (!bound_checks.empty()) {
      // Probe the relation's hash index on the first bound column.
      const BoundCheck& probe = bound_checks[0];
      if (stats != nullptr) ++stats->join_probes;
      for (int row : rel.RowsWithValue(probe.atom_col,
                                       brow[probe.binding_col])) {
        if (matches(brow, rel.rows()[row])) emit(brow, rel.rows()[row]);
      }
    } else if (!const_checks.empty()) {
      const ConstCheck& probe = const_checks[0];
      if (stats != nullptr) ++stats->join_probes;
      for (int row : rel.RowsWithValue(probe.atom_col, probe.value)) {
        if (matches(brow, rel.rows()[row])) emit(brow, rel.rows()[row]);
      }
    } else {
      for (ra::TupleRef arow : rel.rows()) {
        if (matches(brow, arow)) emit(brow, arow);
      }
    }
  }
  *bindings = std::move(next);
  return Status::OK();
}

/// Number of variables an atom shares with the bound set (for greedy
/// sideways-information-passing ordering); constants count as well.
int Boundness(const datalog::Atom& atom, const BindingSet& bindings,
              const std::unordered_map<SymbolId, ra::Value>* pre_bound) {
  int score = 0;
  for (const datalog::Term& t : atom.args()) {
    if (t.IsConstant() || bindings.ColumnOf(t.symbol()) >= 0 ||
        (pre_bound != nullptr && pre_bound->count(t.symbol()) > 0)) {
      ++score;
    }
  }
  return score;
}

/// Evaluates one connectivity component of the body (the atom indexes in
/// `atom_indexes`) into a binding set. Pre-bound variables are seeded as
/// an initial single-row binding.
Result<BindingSet> EvaluateComponent(
    const datalog::Rule& rule, const std::vector<int>& atom_indexes,
    const RelationLookup& lookup, const ConjunctiveOptions& options,
    EvalStats* stats) {
  BindingSet bindings;
  if (options.bindings != nullptr && !options.bindings->empty()) {
    ra::Tuple seed;
    for (const auto& [var, value] : *options.bindings) {
      bindings.vars.push_back(var);
      seed.push_back(value);
    }
    bindings.rel = ra::Relation(static_cast<int>(seed.size()));
    bindings.rel.Insert(std::move(seed));
  } else {
    bindings.rel = ra::Relation(0);
    bindings.rel.Insert(ra::Tuple{});
  }

  std::vector<int> remaining = atom_indexes;
  while (!remaining.empty()) {
    size_t pick = 0;
    if (options.reorder_atoms) {
      int best = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        int score =
            Boundness(rule.body()[remaining[i]], bindings, nullptr);
        if (score > best) {
          best = score;
          pick = i;
        }
      }
    }
    int atom_index = remaining[pick];
    remaining.erase(remaining.begin() + pick);

    const datalog::Atom& atom = rule.body()[atom_index];
    const ra::Relation* rel = nullptr;
    if (atom_index == options.override_index) {
      rel = options.override_relation;
    } else {
      rel = lookup(atom.predicate());
    }
    if (rel == nullptr) {
      // Unknown relation: no derivations.
      bindings.rel = ra::Relation(
          static_cast<int>(bindings.vars.size()));
      return bindings;
    }
    RECUR_RETURN_IF_ERROR(ExtendWithAtom(atom, *rel, &bindings, stats));
    if (bindings.rel.empty()) return bindings;
  }
  return bindings;
}

}  // namespace

std::string EvalStats::FormatTree() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "fixpoint: %d rounds, %zu produced, %zu considered, "
                "%zu probes, %zu index rebuilds\n",
                iterations, tuples_produced, tuples_considered, join_probes,
                index_rebuilds);
  std::string out = line;
  for (const RoundStats& r : rounds) {
    std::snprintf(line, sizeof(line),
                  "  round %d: %zu derived, %zu deduped, %zu probes, "
                  "%zu rebuilds, eval %.3fms, merge %.3fms\n",
                  r.round, r.tuples_derived, r.tuples_deduped,
                  r.join_probes, r.index_rebuilds, r.eval_seconds * 1e3,
                  r.merge_seconds * 1e3);
    out += line;
    for (const RuleRoundStats& rr : r.rules) {
      if (rr.tuples_derived == 0 && rr.join_probes == 0) continue;
      std::snprintf(line, sizeof(line),
                    "    rule %d: %zu derived, %zu deduped, %zu probes, "
                    "%.3fms\n",
                    rr.rule_index, rr.tuples_derived, rr.tuples_deduped,
                    rr.join_probes, rr.seconds * 1e3);
      out += line;
    }
  }
  return out;
}

Result<ra::Relation> EvaluateRule(const datalog::Rule& rule,
                                  const RelationLookup& lookup,
                                  const ConjunctiveOptions& options,
                                  EvalStats* stats) {
  int num_atoms = static_cast<int>(rule.body().size());

  // Partition the body atoms by shared *unbound* variables. Pre-bound
  // variables are constants for this evaluation, so atoms related only
  // through them stay independent. Disconnected groups are evaluated
  // separately and recombined by projection + Cartesian product /
  // existence checking — the paper's evaluation principle, and the only
  // way depth-k expansions of bounded formulas (k disconnected copies)
  // stay polynomial.
  graph::UnionFind uf(num_atoms);
  {
    std::unordered_map<SymbolId, int> first_atom_with_var;
    for (int i = 0; i < num_atoms; ++i) {
      for (const datalog::Term& t : rule.body()[i].args()) {
        if (!t.IsVariable()) continue;
        if (options.bindings != nullptr &&
            options.bindings->count(t.symbol()) > 0) {
          continue;
        }
        auto [it, inserted] =
            first_atom_with_var.emplace(t.symbol(), i);
        if (!inserted) uf.Union(i, it->second);
      }
    }
  }
  std::unordered_map<int, std::vector<int>> components;
  for (int i = 0; i < num_atoms; ++i) {
    components[uf.Find(i)].push_back(i);
  }

  // Evaluate each component and project it onto the head variables it
  // owns (plus a satisfiability check for head-free components).
  struct ComponentResult {
    std::vector<SymbolId> head_vars;  // head variables in this component
    ra::Relation projected{0};
  };
  std::vector<SymbolId> head_var_list;
  for (const datalog::Term& t : rule.head().args()) {
    if (t.IsVariable() &&
        std::find(head_var_list.begin(), head_var_list.end(),
                  t.symbol()) == head_var_list.end()) {
      head_var_list.push_back(t.symbol());
    }
  }
  std::vector<ComponentResult> results;
  for (auto& [root, atom_indexes] : components) {
    (void)root;
    RECUR_ASSIGN_OR_RETURN(
        BindingSet bindings,
        EvaluateComponent(rule, atom_indexes, lookup, options, stats));
    if (bindings.rel.empty()) {
      return ra::Relation(rule.head().arity());  // unsatisfiable
    }
    ComponentResult result;
    std::vector<int> columns;
    for (SymbolId h : head_var_list) {
      int col = bindings.ColumnOf(h);
      // Pre-bound head variables are handled via the bindings map below;
      // they are present in every component's seed, so attribute them to
      // no component.
      bool pre_bound = options.bindings != nullptr &&
                       options.bindings->count(h) > 0;
      if (col >= 0 && !pre_bound) {
        result.head_vars.push_back(h);
        columns.push_back(col);
      }
    }
    if (result.head_vars.empty()) continue;  // pure existence check
    ra::Relation projected(static_cast<int>(columns.size()));
    projected.Reserve(bindings.rel.size());
    for (ra::TupleRef row : bindings.rel.rows()) {
      ra::Value* dst = projected.StageRow();
      for (int c : columns) *dst++ = row[c];
      projected.CommitStagedRow();
    }
    result.projected = std::move(projected);
    results.push_back(std::move(result));
  }

  // Combine: Cartesian product of the per-component head projections.
  std::vector<SymbolId> combined_vars;
  ra::Relation combined(0);
  combined.Insert(ra::Tuple{});
  for (const ComponentResult& r : results) {
    ra::Relation next(combined.arity() + r.projected.arity());
    next.Reserve(combined.size() * r.projected.size());
    for (ra::TupleRef a : combined.rows()) {
      for (ra::TupleRef b : r.projected.rows()) {
        ra::Value* dst = next.StageRow();
        dst = std::copy(a.begin(), a.end(), dst);
        std::copy(b.begin(), b.end(), dst);
        next.CommitStagedRow();
      }
    }
    combined = std::move(next);
    combined_vars.insert(combined_vars.end(), r.head_vars.begin(),
                         r.head_vars.end());
  }

  // Project to the head.
  auto column_of = [&combined_vars](SymbolId var) {
    for (size_t i = 0; i < combined_vars.size(); ++i) {
      if (combined_vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  };
  ra::Relation out(rule.head().arity());
  std::vector<int> head_cols(rule.head().arity(), -1);
  std::vector<ra::Value> head_consts(rule.head().arity(), 0);
  for (int i = 0; i < rule.head().arity(); ++i) {
    const datalog::Term& t = rule.head().args()[i];
    if (t.IsConstant()) {
      head_consts[i] = static_cast<ra::Value>(t.symbol());
      continue;
    }
    int col = column_of(t.symbol());
    if (col >= 0) {
      head_cols[i] = col;
      continue;
    }
    if (options.bindings != nullptr) {
      auto it = options.bindings->find(t.symbol());
      if (it != options.bindings->end()) {
        head_consts[i] = it->second;
        continue;
      }
    }
    return Status::InvalidArgument(
        "head variable not bound by the body (rule not range restricted)");
  }
  out.Reserve(combined.size());
  for (ra::TupleRef row : combined.rows()) {
    ra::Value* dst = out.StageRow();
    for (int i = 0; i < rule.head().arity(); ++i) {
      dst[i] = head_cols[i] >= 0 ? row[head_cols[i]] : head_consts[i];
    }
    if (out.CommitStagedRow() && stats != nullptr) {
      ++stats->tuples_produced;
    }
  }
  return out;
}

}  // namespace recur::eval
