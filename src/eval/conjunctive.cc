#include "eval/conjunctive.h"

#include <algorithm>
#include <cstdio>

#include "eval/plan/executor.h"
#include "eval/plan/plan_cache.h"
#include "eval/plan/planner.h"

namespace recur::eval {

std::string EvalStats::FormatTree() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "fixpoint: %d rounds, %zu produced, %zu considered, "
                "%zu probes, %zu index rebuilds\n",
                iterations, tuples_produced, tuples_considered, join_probes,
                index_rebuilds);
  std::string out = line;
  for (const RoundStats& r : rounds) {
    std::snprintf(line, sizeof(line),
                  "  round %d: %zu derived, %zu deduped, %zu probes, "
                  "%zu rebuilds, eval %.3fms, merge %.3fms\n",
                  r.round, r.tuples_derived, r.tuples_deduped,
                  r.join_probes, r.index_rebuilds, r.eval_seconds * 1e3,
                  r.merge_seconds * 1e3);
    out += line;
    for (const RuleRoundStats& rr : r.rules) {
      if (rr.tuples_derived == 0 && rr.join_probes == 0) continue;
      std::snprintf(line, sizeof(line),
                    "    rule %d: %zu derived, %zu deduped, %zu probes, "
                    "%.3fms\n",
                    rr.rule_index, rr.tuples_derived, rr.tuples_deduped,
                    rr.join_probes, rr.seconds * 1e3);
      out += line;
    }
  }
  for (const std::string& plan_text : plans) out += plan_text;
  return out;
}

void EvalStats::Accumulate(const EvalStats& other) {
  iterations += other.iterations;
  tuples_considered += other.tuples_considered;
  tuples_produced += other.tuples_produced;
  join_probes += other.join_probes;
  index_rebuilds += other.index_rebuilds;
  total_tuples = std::max(total_tuples, other.total_tuples);
  arena_bytes = std::max(arena_bytes, other.arena_bytes);
  plans_executed += other.plans_executed;
  plans_with_joins += other.plans_with_joins;
  batches += other.batches;
  bloom_probes += other.bloom_probes;
  bloom_skips += other.bloom_skips;
}

Result<ra::Relation> EvaluateRule(const datalog::Rule& rule,
                                  const RelationLookup& lookup,
                                  const ConjunctiveOptions& options,
                                  EvalStats* stats) {
  plan::PlannerOptions planner_options;
  planner_options.override_index = options.override_index;
  planner_options.override_relation = options.override_relation;
  planner_options.bindings = options.bindings;
  planner_options.reorder_atoms = options.reorder_atoms;

  std::shared_ptr<const plan::RulePlan> compiled;
  if (options.plan_cache != nullptr) {
    RECUR_ASSIGN_OR_RETURN(
        compiled,
        options.plan_cache->GetOrCompile(rule, lookup, planner_options));
  } else {
    RECUR_ASSIGN_OR_RETURN(compiled,
                           plan::PlanRule(rule, lookup, planner_options));
  }
  if (stats != nullptr) {
    ++stats->plans_executed;
    if (compiled->has_join) ++stats->plans_with_joins;
  }

  plan::ExecOptions exec;
  exec.override_relation = options.override_relation;
  exec.bindings = options.bindings;
  exec.context = options.context;
  exec.stats = stats;
  exec.batch_rows = options.batch_rows;
  auto result = plan::ExecutePlan(*compiled, lookup, exec);
  if (stats != nullptr && options.explain) {
    stats->plans.push_back(plan::ExplainPlan(*compiled));
  }
  return result;
}

}  // namespace recur::eval
