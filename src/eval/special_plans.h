#ifndef RECUR_EVAL_SPECIAL_PLANS_H_
#define RECUR_EVAL_SPECIAL_PLANS_H_

#include "eval/conjunctive.h"
#include "eval/execution_context.h"
#include "ra/database.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::eval {

/// Hand-derived query evaluation plans for the paper's representative
/// examples of the classes with *no known general method* (unbounded C,
/// dependent E, mixed F). The paper derives these from the resolution
/// graph (§7, §9, §10); we implement them with the RA substrate and verify
/// them against semi-naive evaluation in tests.
///
/// All plans expect the example's EDB relations under their paper names
/// ("A", "B", "C", "D", "E") in `edb`, looked up through `symbols`, and
/// return full-arity answer relations.

/// (s9) P(x,y,z) :- A(x,y) ∧ B(u,v) ∧ P(u,z,v), query P(d, v, v):
///   σE,  (σA) × (∪_k [(E ⋈ B)(BA)^k])
/// The recursion is disconnected from the bound position, so the answer is
/// a Cartesian product of σA(d) with the union of the z-chains.
Result<ra::Relation> S9PlanBoundFirst(const ra::Database& edb,
                                      const SymbolTable& symbols,
                                      ra::Value d,
                                      EvalStats* stats = nullptr,
                                      const ExecutionContext* ctx = nullptr);

/// (s9), query P(v, v, d):
///   σE,  (∃ ∪_k [(AB)^k (E ⋈ B)]) A
/// If any expansion depth has a witness, every tuple of A answers the
/// query (existence checking).
Result<ra::Relation> S9PlanBoundThird(const ra::Database& edb,
                                      const SymbolTable& symbols,
                                      ra::Value d,
                                      EvalStats* stats = nullptr,
                                      const ExecutionContext* ctx = nullptr);

/// (s11) P(x,y) :- A(x,x1) ∧ B(y,y1) ∧ C(x1,y1) ∧ P(x1,y1), query P(d, v):
///   σE,  σA-C-B-E,  ∪_k σA-C-B-[{A ∥ B}-C]^k-C-E
/// The dependent pair (x_i, y_i) walks forward through A/B/C in lockstep;
/// answers are the B-preimages of first-layer pairs that reach E.
Result<ra::Relation> S11Plan(const ra::Database& edb,
                             const SymbolTable& symbols, ra::Value d,
                             EvalStats* stats = nullptr,
                             const ExecutionContext* ctx = nullptr);

/// (s12) P(x,y,z) :- A(x,u) ∧ B(y,v) ∧ C(u,v) ∧ D(w,z) ∧ P(u,v,w),
/// query P(d, v, v):
///   ∪_k σA-C-B-[{A ∥ B}-C]^k-E-D^(k+1)
/// Like s11 for the dependent (u,v) pair, plus the unit-rotational D chain
/// folding the z answers back; level-synchronized, so `max_levels` caps the
/// iteration on cyclic data (use the active-domain size).
Result<ra::Relation> S12Plan(const ra::Database& edb,
                             const SymbolTable& symbols, ra::Value d,
                             int max_levels, EvalStats* stats = nullptr,
                             const ExecutionContext* ctx = nullptr);

}  // namespace recur::eval

#endif  // RECUR_EVAL_SPECIAL_PLANS_H_
