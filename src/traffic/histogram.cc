#include "traffic/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace recur::traffic {

int LatencyHistogram::BucketIndex(uint64_t ns) {
  if (ns < 4) return static_cast<int>(ns);  // exact buckets 0..3
  // Exponent e >= 2; 4 sub-buckets split [2^e, 2^(e+1)) by the next two
  // bits below the leading one. Monotone in ns by construction.
  const int e = 63 - std::countl_zero(ns);
  const int sub = static_cast<int>((ns >> (e - 2)) & 3);
  return (e - 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketMidpointNanos(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int e = index / kSubBuckets + 1;
  const int sub = index % kSubBuckets;
  const uint64_t width = 1ull << (e - 2);  // sub-bucket width
  const uint64_t lower =
      (1ull << e) + static_cast<uint64_t>(sub) * width;
  return lower + width / 2;
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  RecordNanos(static_cast<uint64_t>(std::llround(seconds * 1e9)));
}

void LatencyHistogram::RecordNanos(uint64_t ns) {
  buckets_[static_cast<size_t>(BucketIndex(ns))] += 1;
  count_ += 1;
  sum_ns_ += ns;
  min_ns_ = std::min(min_ns_, ns);
  max_ns_ = std::max(max_ns_, ns);
  sum_sq_ns_ += static_cast<unsigned __int128>(ns) * ns;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  min_ns_ = std::min(min_ns_, other.min_ns_);
  max_ns_ = std::max(max_ns_, other.max_ns_);
  sum_sq_ns_ += other.sum_sq_ns_;
}

double LatencyHistogram::MinSeconds() const {
  return count_ == 0 ? 0.0 : static_cast<double>(min_ns_) * 1e-9;
}

double LatencyHistogram::MaxSeconds() const {
  return static_cast<double>(max_ns_) * 1e-9;
}

double LatencyHistogram::MeanSeconds() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_ns_) / static_cast<double>(count_) * 1e-9;
}

double LatencyHistogram::StddevSeconds() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double mean = static_cast<double>(sum_ns_) / n;
  const double var = static_cast<double>(sum_sq_ns_) / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) * 1e-9 : 0.0;
}

double LatencyHistogram::PercentileSeconds(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested observation, 1-based, nearest-rank definition.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      const uint64_t mid =
          std::clamp(BucketMidpointNanos(i), min_ns_, max_ns_);
      return static_cast<double>(mid) * 1e-9;
    }
  }
  return MaxSeconds();
}

bool operator==(const LatencyHistogram& a, const LatencyHistogram& b) {
  return a.buckets_ == b.buckets_ && a.count_ == b.count_ &&
         a.sum_ns_ == b.sum_ns_ && a.min_ns_ == b.min_ns_ &&
         a.max_ns_ == b.max_ns_ && a.sum_sq_ns_ == b.sum_sq_ns_;
}

}  // namespace recur::traffic
