#ifndef RECUR_TRAFFIC_SPEC_H_
#define RECUR_TRAFFIC_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ra/relation.h"
#include "util/result.h"
#include "util/status.h"

namespace recur::traffic {

/// One synthetic EDB relation of the workload, produced by a
/// workload::Generator method at load time (and on demand by the
/// `load_edb` op). Parameters mirror Generator's signatures; unused ones
/// are ignored per kind.
struct EdbSpec {
  std::string relation;  // predicate name, e.g. "A" or "E"
  /// chain | tree | layered_dag | random_graph | grid | random_rows
  std::string kind = "chain";
  int n = 0;           // chain length / random_graph nodes / random_rows domain
  int m = 0;           // random_graph edges / random_rows rows
  int depth = 0;       // tree
  int fanout = 0;      // tree
  int layers = 0;      // layered_dag
  int width = 0;       // layered_dag
  int out_degree = 0;  // layered_dag
  int w = 0;           // grid
  int h = 0;           // grid
  int arity = 2;       // random_rows
  ra::Value base = 0;

  /// Number of distinct node values the generator draws from — the
  /// default domain for random query bindings and inserted tuples.
  ra::Value DomainSize() const;
};

/// A fault site to arm for the duration of one phase, mapped onto the
/// process-wide util::FaultInjector. `trigger_on_hit` delays the fault to
/// the Nth probe of the site, which is how a spec injects a failure or
/// slowdown mid-phase.
struct FaultArmSpec {
  std::string site;            // e.g. "plan.executor.batch"
  std::string kind = "status"; // status | delay
  /// For kind=status: the injected code, one of internal | cancelled |
  /// deadline_exceeded | resource_exhausted | invalid_argument |
  /// unavailable.
  std::string code = "internal";
  int delay_ms = 0;            // for kind=delay
  int trigger_on_hit = 1;
  bool sticky = true;
};

/// One node of a phase's weighted op mix.
struct OpSpec {
  enum class Kind {
    kFixpoint,     // run a fixpoint engine over the worker's database
    kQuery,        // Query::Filter point query against the worker's last IDB
    kInsert,       // insert random tuples into one EDB relation
    kDelete,       // remove random rows from one EDB relation
    kLoadEdb,      // regenerate one EDB relation from its generator spec
    kServerQuery,  // query the worker's resident server::Database (routed
                   // through the classification dispatch table)
    kServerInsert, // streaming insert batch into the resident server
                   // (incremental maintenance, new epoch)
    kServerDelete, // streaming delete batch into the resident server
    kServerSnapshot, // persist the resident server's current epoch as a
                     // checksummed snapshot (durability is auto-armed for
                     // the phase's workers)
    kServerRestart,  // crash-restart: drop the resident server and revive
                     // it via OpenOrRecover (snapshot load + WAL replay);
                     // the recovery latency is the op latency
  };

  Kind kind = Kind::kFixpoint;
  std::string label;       // node name in the report; defaults to the kind
  double weight = 1.0;

  // kFixpoint:
  std::string engine = "seminaive";  // naive | seminaive
  int threads = 1;                   // engine worker threads
  double deadline_seconds = 0.0;     // 0 = no deadline
  uint64_t max_total_tuples = 0;     // 0 = no tuple budget

  // kQuery: positions bound to a random constant; the rest stay free.
  std::vector<int> bind_positions;

  // kInsert / kDelete / kLoadEdb:
  std::string relation;
  int count = 1;  // tuples inserted / rows deleted per op

  // kServerInsert / kServerDelete: transient failures (resource_exhausted,
  // cancelled) are retried up to `retries` times with exponential backoff
  // starting at `retry_backoff_seconds` (virtual-clock sleeps in
  // --deterministic runs, so retry behaviour is byte-reproducible).
  int retries = 0;
  double retry_backoff_seconds = 0.001;
};

struct PhaseSpec {
  std::string name;
  int threads = 1;
  /// Ops per worker; 0 means "run for duration_seconds instead".
  uint64_t ops = 0;
  double duration_seconds = 0.0;
  /// Poisson arrival rate (ops/second/worker); 0 = closed loop (back to
  /// back). Inter-arrival gaps are exponential draws from the worker PRNG.
  double arrival_rate = 0.0;
  std::vector<OpSpec> mix;
  std::vector<FaultArmSpec> faults;
};

/// A full declarative traffic workload: a program (a paper example or
/// inline rules), generated EDB relations, and a sequence of phases.
struct TrafficSpec {
  std::string name;
  uint64_t seed = 1;
  /// Paper example id ("s1a", "s9", ...) — the program is the example's
  /// recursive + exit rule. Mutually exclusive with `rules`.
  std::string example;
  /// Inline Datalog program text (parser syntax).
  std::string rules;
  /// The queried IDB predicate (head of the recursion).
  std::string query_pred = "P";
  std::vector<EdbSpec> edb;
  /// Domain for random query bindings and inserts; 0 = max EDB DomainSize.
  ra::Value value_range = 0;
  std::vector<PhaseSpec> phases;

  /// Shared-server mode: all workers of every phase hit ONE resident
  /// server::Database through its group-commit admission queue instead of
  /// each owning a private replica. Writes go through Submit (bounded
  /// admission; overload sheds with kUnavailable), reads pin epoch
  /// snapshots. server_snapshot / server_restart ops are rejected in this
  /// mode (restart semantics are per-worker).
  bool shared_server = false;
  /// Admission tuning, read only when shared_server is set (JSON object
  /// "admission": {"queue_depth", "group_batches", "watchdog_seconds"}).
  int admission_queue_depth = 64;
  int admission_group_batches = 8;
  double watchdog_seconds = 0.0;

  /// Effective binding/insert domain (value_range or the EDB-derived
  /// default, never < 1).
  ra::Value EffectiveValueRange() const;
};

/// Parses and validates a spec from JSON text. Unknown op/generator/fault
/// kinds, missing required fields, and type mismatches are
/// kInvalidArgument; malformed JSON is kParseError. Never crashes on
/// truncated or mutated input (see the robustness sweep in tests).
Result<TrafficSpec> ParseTrafficSpec(std::string_view json_text);

/// Reads `path` and parses it.
Result<TrafficSpec> LoadTrafficSpecFile(const std::string& path);

const char* OpKindName(OpSpec::Kind kind);

}  // namespace recur::traffic

#endif  // RECUR_TRAFFIC_SPEC_H_
