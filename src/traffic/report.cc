#include "traffic/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace recur::traffic {
namespace {

double Us(double seconds) { return seconds * 1e6; }

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, key, value);
  if (comma) *out += ", ";
  *out += buf;
}

void AppendField(std::string* out, const char* key, double value,
                 int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.*f", key, decimals, value);
  *out += ", ";
  *out += buf;
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool comma = true) {
  if (comma) *out += ", ";
  *out += "\"";
  *out += key;
  *out += "\": \"";
  *out += util::JsonEscape(value);
  *out += "\"";
}

}  // namespace

void OpNodeStats::MergeFrom(const OpNodeStats& other) {
  latency.Merge(other.latency);
  ok += other.ok;
  errors += other.errors;
  cancelled += other.cancelled;
  deadline_exceeded += other.deadline_exceeded;
  resource_exhausted += other.resource_exhausted;
  sheds += other.sheds;
  other_errors += other.other_errors;
  retries += other.retries;
  tuples += other.tuples;
  eval.Accumulate(other.eval);
}

std::string TrafficReport::ToJson() const {
  std::string out = "[\n";
  // Run header record: identifies the spec and reproducibility mode.
  {
    std::string rec = "{";
    AppendField(&rec, "benchmark", std::string("traffic"), /*comma=*/false);
    AppendField(&rec, "workload", workload);
    AppendField(&rec, "kind", std::string("run"));
    AppendField(&rec, "seed", seed);
    rec += ", \"deterministic\": ";
    rec += deterministic ? "true" : "false";
    rec += "}";
    out += "  " + rec;
  }
  for (const PhaseSummary& phase : phases) {
    std::string rec = "{";
    AppendField(&rec, "benchmark", phase.name, /*comma=*/false);
    AppendField(&rec, "workload", workload);
    AppendField(&rec, "kind", std::string("phase"));
    AppendField(&rec, "phase", phase.name);
    AppendField(&rec, "threads", static_cast<uint64_t>(phase.threads));
    AppendField(&rec, "ops", phase.total_ops);
    AppendField(&rec, "wall_seconds", phase.wall_seconds, 6);
    const double rate = phase.wall_seconds > 0.0
                            ? static_cast<double>(phase.total_ops) /
                                  phase.wall_seconds
                            : 0.0;
    AppendField(&rec, "ops_per_sec", rate, 1);
    rec += "}";
    out += ",\n  " + rec;
  }
  for (const OpNodeStats& node : nodes) {
    std::string rec = "{";
    AppendField(&rec, "benchmark", node.BenchmarkName(), /*comma=*/false);
    AppendField(&rec, "workload", workload);
    AppendField(&rec, "kind", std::string("op"));
    AppendField(&rec, "phase", node.phase);
    AppendField(&rec, "op", node.op);
    AppendField(&rec, "threads", static_cast<uint64_t>(node.threads));
    AppendField(&rec, "count", node.latency.count());
    AppendField(&rec, "ok", node.ok);
    AppendField(&rec, "errors", node.errors);
    AppendField(&rec, "cancelled", node.cancelled);
    AppendField(&rec, "deadline_exceeded", node.deadline_exceeded);
    AppendField(&rec, "resource_exhausted", node.resource_exhausted);
    AppendField(&rec, "sheds", node.sheds);
    AppendField(&rec, "retries", node.retries);
    AppendField(&rec, "tuples", node.tuples);
    AppendField(&rec, "join_probes",
                static_cast<uint64_t>(node.eval.join_probes));
    AppendField(&rec, "plans_executed",
                static_cast<uint64_t>(node.eval.plans_executed));
    AppendField(&rec, "mean_us", Us(node.latency.MeanSeconds()), 3);
    AppendField(&rec, "min_us", Us(node.latency.MinSeconds()), 3);
    AppendField(&rec, "max_us", Us(node.latency.MaxSeconds()), 3);
    AppendField(&rec, "stddev_us", Us(node.latency.StddevSeconds()), 3);
    AppendField(&rec, "p50_us", Us(node.latency.PercentileSeconds(0.50)), 3);
    AppendField(&rec, "p95_us", Us(node.latency.PercentileSeconds(0.95)), 3);
    AppendField(&rec, "p99_us", Us(node.latency.PercentileSeconds(0.99)), 3);
    rec += "}";
    out += ",\n  " + rec;
  }
  if (shared_server.present) {
    std::string rec = "{";
    AppendField(&rec, "benchmark", std::string("shared_server"),
                /*comma=*/false);
    AppendField(&rec, "workload", workload);
    AppendField(&rec, "kind", std::string("server"));
    AppendField(&rec, "submitted", shared_server.submitted);
    AppendField(&rec, "admitted", shared_server.admitted);
    AppendField(&rec, "sheds", shared_server.sheds);
    AppendField(&rec, "committed_batches", shared_server.committed_batches);
    AppendField(&rec, "groups", shared_server.groups);
    AppendField(&rec, "max_group", shared_server.max_group);
    AppendField(&rec, "queue_high_water", shared_server.queue_high_water);
    AppendField(&rec, "quarantined", shared_server.quarantined);
    AppendField(&rec, "bisection_splits", shared_server.bisection_splits);
    AppendField(&rec, "watchdog_trips", shared_server.watchdog_trips);
    AppendField(&rec, "final_epoch", shared_server.final_epoch);
    rec += "}";
    out += ",\n  " + rec;
  }
  out += "\n]\n";
  return out;
}

Result<Violations> CompareTrafficJson(std::string_view run_json,
                                      std::string_view baseline_json,
                                      double tolerance, double slack_us) {
  RECUR_ASSIGN_OR_RETURN(util::JsonValue run, util::ParseJson(run_json));
  RECUR_ASSIGN_OR_RETURN(util::JsonValue baseline,
                         util::ParseJson(baseline_json));
  if (!run.is_array() || !baseline.is_array()) {
    return Status::InvalidArgument(
        "traffic comparison expects BENCH_traffic.json arrays");
  }

  Violations violations;
  for (const util::JsonValue& base : baseline.items()) {
    if (!base.is_object()) continue;
    RECUR_ASSIGN_OR_RETURN(std::string kind, base.StringOr("kind", ""));
    if (kind != "op") continue;
    RECUR_ASSIGN_OR_RETURN(std::string name, base.StringOr("benchmark", ""));
    RECUR_ASSIGN_OR_RETURN(double base_count, base.NumberOr("count", 0));
    RECUR_ASSIGN_OR_RETURN(double base_p95, base.NumberOr("p95_us", 0));
    if (name.empty() || base_count <= 0) continue;

    const util::JsonValue* match = nullptr;
    for (const util::JsonValue& rec : run.items()) {
      if (!rec.is_object()) continue;
      const util::JsonValue* bench = rec.Find("benchmark");
      const util::JsonValue* k = rec.Find("kind");
      if (bench != nullptr && bench->is_string() &&
          bench->string_value() == name && k != nullptr && k->is_string() &&
          k->string_value() == "op") {
        match = &rec;
        break;
      }
    }
    if (match == nullptr) {
      violations.push_back("node '" + name +
                           "' present in baseline but missing from run");
      continue;
    }
    RECUR_ASSIGN_OR_RETURN(double run_count, match->NumberOr("count", 0));
    RECUR_ASSIGN_OR_RETURN(double run_p95, match->NumberOr("p95_us", 0));
    if (run_count <= 0) {
      violations.push_back("node '" + name + "' executed no ops in the run");
      continue;
    }
    const double allowed = base_p95 * (1.0 + tolerance) + slack_us;
    if (run_p95 > allowed) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "p95 regression: %.3fus > allowed %.3fus "
                    "(baseline %.3fus, tolerance %.0f%%, slack %.0fus)",
                    run_p95, allowed, base_p95, tolerance * 100.0, slack_us);
      violations.push_back("node '" + name + "': " + buf);
    }
  }
  return violations;
}

}  // namespace recur::traffic
