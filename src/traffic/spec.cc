#include "traffic/spec.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "catalog/paper_examples.h"
#include "util/json.h"

namespace recur::traffic {
namespace {

using util::JsonValue;

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("traffic spec: " + what);
}

Result<int> IntField(const JsonValue& obj, std::string_view key,
                     int fallback) {
  RECUR_ASSIGN_OR_RETURN(double d, obj.NumberOr(key, fallback));
  if (d != static_cast<double>(static_cast<long long>(d))) {
    return Invalid("field '" + std::string(key) + "' must be an integer");
  }
  return static_cast<int>(d);
}

Result<uint64_t> U64Field(const JsonValue& obj, std::string_view key,
                          uint64_t fallback) {
  RECUR_ASSIGN_OR_RETURN(double d,
                         obj.NumberOr(key, static_cast<double>(fallback)));
  if (d < 0 || d != static_cast<double>(static_cast<uint64_t>(d))) {
    return Invalid("field '" + std::string(key) +
                   "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(d);
}

Result<EdbSpec> ParseEdb(const JsonValue& obj) {
  if (!obj.is_object()) return Invalid("edb entry must be an object");
  EdbSpec e;
  RECUR_ASSIGN_OR_RETURN(e.relation, obj.StringOr("relation", ""));
  if (e.relation.empty()) return Invalid("edb entry needs a 'relation'");
  RECUR_ASSIGN_OR_RETURN(e.kind, obj.StringOr("kind", "chain"));
  RECUR_ASSIGN_OR_RETURN(e.n, IntField(obj, "n", 0));
  RECUR_ASSIGN_OR_RETURN(e.m, IntField(obj, "m", 0));
  RECUR_ASSIGN_OR_RETURN(e.depth, IntField(obj, "depth", 0));
  RECUR_ASSIGN_OR_RETURN(e.fanout, IntField(obj, "fanout", 0));
  RECUR_ASSIGN_OR_RETURN(e.layers, IntField(obj, "layers", 0));
  RECUR_ASSIGN_OR_RETURN(e.width, IntField(obj, "width", 0));
  RECUR_ASSIGN_OR_RETURN(e.out_degree, IntField(obj, "out_degree", 0));
  RECUR_ASSIGN_OR_RETURN(e.w, IntField(obj, "w", 0));
  RECUR_ASSIGN_OR_RETURN(e.h, IntField(obj, "h", 0));
  RECUR_ASSIGN_OR_RETURN(e.arity, IntField(obj, "arity", 2));
  RECUR_ASSIGN_OR_RETURN(int base, IntField(obj, "base", 0));
  e.base = base;

  const std::string& k = e.kind;
  if (k == "chain") {
    if (e.n <= 0) return Invalid("chain edb needs n > 0");
  } else if (k == "tree") {
    if (e.depth <= 0 || e.fanout <= 0) {
      return Invalid("tree edb needs depth > 0 and fanout > 0");
    }
  } else if (k == "layered_dag") {
    if (e.layers <= 0 || e.width <= 0 || e.out_degree <= 0) {
      return Invalid("layered_dag edb needs layers/width/out_degree > 0");
    }
  } else if (k == "random_graph") {
    if (e.n <= 1 || e.m <= 0) {
      return Invalid("random_graph edb needs n > 1 and m > 0");
    }
  } else if (k == "grid") {
    if (e.w <= 0 || e.h <= 0) return Invalid("grid edb needs w > 0 and h > 0");
  } else if (k == "random_rows") {
    if (e.arity <= 0 || e.n <= 0 || e.m <= 0) {
      return Invalid("random_rows edb needs arity/n/m > 0");
    }
  } else {
    return Invalid("unknown edb kind '" + k + "'");
  }
  return e;
}

Result<FaultArmSpec> ParseFault(const JsonValue& obj) {
  if (!obj.is_object()) return Invalid("fault entry must be an object");
  FaultArmSpec f;
  RECUR_ASSIGN_OR_RETURN(f.site, obj.StringOr("site", ""));
  if (f.site.empty()) return Invalid("fault entry needs a 'site'");
  RECUR_ASSIGN_OR_RETURN(f.kind, obj.StringOr("kind", "status"));
  if (f.kind != "status" && f.kind != "delay") {
    return Invalid("fault kind must be 'status' or 'delay'");
  }
  RECUR_ASSIGN_OR_RETURN(f.code, obj.StringOr("code", "internal"));
  if (f.code != "internal" && f.code != "cancelled" &&
      f.code != "deadline_exceeded" && f.code != "resource_exhausted" &&
      f.code != "invalid_argument" && f.code != "unavailable") {
    return Invalid("unknown fault status code '" + f.code + "'");
  }
  RECUR_ASSIGN_OR_RETURN(f.delay_ms, IntField(obj, "delay_ms", 0));
  if (f.kind == "delay" && f.delay_ms <= 0) {
    return Invalid("delay fault needs delay_ms > 0");
  }
  RECUR_ASSIGN_OR_RETURN(f.trigger_on_hit, IntField(obj, "trigger_on_hit", 1));
  if (f.trigger_on_hit < 1) return Invalid("trigger_on_hit must be >= 1");
  RECUR_ASSIGN_OR_RETURN(f.sticky, obj.BoolOr("sticky", true));
  return f;
}

Result<OpSpec> ParseOp(const JsonValue& obj) {
  if (!obj.is_object()) return Invalid("mix entry must be an object");
  OpSpec op;
  RECUR_ASSIGN_OR_RETURN(std::string kind, obj.StringOr("op", ""));
  if (kind == "fixpoint") {
    op.kind = OpSpec::Kind::kFixpoint;
  } else if (kind == "query") {
    op.kind = OpSpec::Kind::kQuery;
  } else if (kind == "insert") {
    op.kind = OpSpec::Kind::kInsert;
  } else if (kind == "delete") {
    op.kind = OpSpec::Kind::kDelete;
  } else if (kind == "load_edb") {
    op.kind = OpSpec::Kind::kLoadEdb;
  } else if (kind == "server_query") {
    op.kind = OpSpec::Kind::kServerQuery;
  } else if (kind == "server_insert") {
    op.kind = OpSpec::Kind::kServerInsert;
  } else if (kind == "server_delete") {
    op.kind = OpSpec::Kind::kServerDelete;
  } else if (kind == "server_snapshot") {
    op.kind = OpSpec::Kind::kServerSnapshot;
  } else if (kind == "server_restart") {
    op.kind = OpSpec::Kind::kServerRestart;
  } else {
    return Invalid("unknown op kind '" + kind + "'");
  }
  RECUR_ASSIGN_OR_RETURN(op.label, obj.StringOr("label", kind));
  RECUR_ASSIGN_OR_RETURN(op.weight, obj.NumberOr("weight", 1.0));
  if (!(op.weight > 0.0)) return Invalid("op weight must be > 0");

  RECUR_ASSIGN_OR_RETURN(op.engine, obj.StringOr("engine", "seminaive"));
  if (op.engine != "naive" && op.engine != "seminaive") {
    return Invalid("fixpoint engine must be 'naive' or 'seminaive'");
  }
  RECUR_ASSIGN_OR_RETURN(op.threads, IntField(obj, "threads", 1));
  if (op.threads < 1) return Invalid("op threads must be >= 1");
  RECUR_ASSIGN_OR_RETURN(op.deadline_seconds,
                         obj.NumberOr("deadline_seconds", 0.0));
  if (op.deadline_seconds < 0.0) {
    return Invalid("deadline_seconds must be >= 0");
  }
  RECUR_ASSIGN_OR_RETURN(op.max_total_tuples,
                         U64Field(obj, "max_total_tuples", 0));

  if (const JsonValue* bind = obj.Find("bind"); bind != nullptr) {
    if (!bind->is_array()) return Invalid("'bind' must be an array");
    for (const JsonValue& b : bind->items()) {
      if (!b.is_number() || b.number_value() < 0) {
        return Invalid("'bind' entries must be non-negative positions");
      }
      op.bind_positions.push_back(static_cast<int>(b.number_value()));
    }
  }
  RECUR_ASSIGN_OR_RETURN(op.relation, obj.StringOr("relation", ""));
  RECUR_ASSIGN_OR_RETURN(op.count, IntField(obj, "count", 1));
  if (op.count < 1) return Invalid("op count must be >= 1");
  RECUR_ASSIGN_OR_RETURN(op.retries, IntField(obj, "retries", 0));
  if (op.retries < 0) return Invalid("op retries must be >= 0");
  RECUR_ASSIGN_OR_RETURN(op.retry_backoff_seconds,
                         obj.NumberOr("retry_backoff_seconds", 0.001));
  if (!(op.retry_backoff_seconds > 0.0)) {
    return Invalid("retry_backoff_seconds must be > 0");
  }

  if ((op.kind == OpSpec::Kind::kInsert || op.kind == OpSpec::Kind::kDelete ||
       op.kind == OpSpec::Kind::kLoadEdb ||
       op.kind == OpSpec::Kind::kServerInsert ||
       op.kind == OpSpec::Kind::kServerDelete) &&
      op.relation.empty()) {
    return Invalid(std::string(OpKindName(op.kind)) +
                   " op needs a 'relation'");
  }
  return op;
}

Result<PhaseSpec> ParsePhase(const JsonValue& obj, size_t index) {
  if (!obj.is_object()) return Invalid("phase must be an object");
  PhaseSpec phase;
  RECUR_ASSIGN_OR_RETURN(phase.name,
                         obj.StringOr("name", "phase" + std::to_string(index)));
  RECUR_ASSIGN_OR_RETURN(phase.threads, IntField(obj, "threads", 1));
  if (phase.threads < 1) return Invalid("phase threads must be >= 1");
  RECUR_ASSIGN_OR_RETURN(phase.ops, U64Field(obj, "ops", 0));
  RECUR_ASSIGN_OR_RETURN(phase.duration_seconds,
                         obj.NumberOr("duration_seconds", 0.0));
  if (phase.ops == 0 && !(phase.duration_seconds > 0.0)) {
    return Invalid("phase '" + phase.name +
                   "' needs ops > 0 or duration_seconds > 0");
  }
  RECUR_ASSIGN_OR_RETURN(phase.arrival_rate,
                         obj.NumberOr("arrival_rate", 0.0));
  if (phase.arrival_rate < 0.0) return Invalid("arrival_rate must be >= 0");

  const JsonValue* mix = obj.Find("mix");
  if (mix == nullptr || !mix->is_array() || mix->items().empty()) {
    return Invalid("phase '" + phase.name + "' needs a non-empty 'mix'");
  }
  for (const JsonValue& entry : mix->items()) {
    RECUR_ASSIGN_OR_RETURN(OpSpec op, ParseOp(entry));
    phase.mix.push_back(std::move(op));
  }
  for (size_t i = 0; i < phase.mix.size(); ++i) {
    for (size_t j = i + 1; j < phase.mix.size(); ++j) {
      if (phase.mix[i].label == phase.mix[j].label) {
        return Invalid("phase '" + phase.name + "' has duplicate op label '" +
                       phase.mix[i].label + "' (set distinct 'label's)");
      }
    }
  }
  if (const JsonValue* faults = obj.Find("faults"); faults != nullptr) {
    if (!faults->is_array()) return Invalid("'faults' must be an array");
    for (const JsonValue& entry : faults->items()) {
      RECUR_ASSIGN_OR_RETURN(FaultArmSpec f, ParseFault(entry));
      phase.faults.push_back(std::move(f));
    }
  }
  return phase;
}

}  // namespace

ra::Value EdbSpec::DomainSize() const {
  if (kind == "chain") return n + 1;
  if (kind == "tree") {
    // Nodes of a complete fanout-ary tree of `depth` levels below the root.
    ra::Value nodes = 1, level = 1;
    for (int d = 0; d < depth; ++d) {
      level *= fanout;
      nodes += level;
    }
    return nodes;
  }
  if (kind == "layered_dag") return static_cast<ra::Value>(layers) * width;
  if (kind == "random_graph") return n;
  if (kind == "grid") return static_cast<ra::Value>(w) * h;
  if (kind == "random_rows") return n;
  return 1;
}

ra::Value TrafficSpec::EffectiveValueRange() const {
  if (value_range > 0) return value_range;
  ra::Value max_domain = 1;
  for (const EdbSpec& e : edb) {
    max_domain = std::max(max_domain, e.DomainSize());
  }
  return max_domain;
}

const char* OpKindName(OpSpec::Kind kind) {
  switch (kind) {
    case OpSpec::Kind::kFixpoint: return "fixpoint";
    case OpSpec::Kind::kQuery: return "query";
    case OpSpec::Kind::kInsert: return "insert";
    case OpSpec::Kind::kDelete: return "delete";
    case OpSpec::Kind::kLoadEdb: return "load_edb";
    case OpSpec::Kind::kServerQuery: return "server_query";
    case OpSpec::Kind::kServerInsert: return "server_insert";
    case OpSpec::Kind::kServerDelete: return "server_delete";
    case OpSpec::Kind::kServerSnapshot: return "server_snapshot";
    case OpSpec::Kind::kServerRestart: return "server_restart";
  }
  return "unknown";
}

Result<TrafficSpec> ParseTrafficSpec(std::string_view json_text) {
  RECUR_ASSIGN_OR_RETURN(JsonValue root, util::ParseJson(json_text));
  if (!root.is_object()) return Invalid("top level must be an object");

  TrafficSpec spec;
  RECUR_ASSIGN_OR_RETURN(spec.name, root.StringOr("name", ""));
  if (spec.name.empty()) return Invalid("missing 'name'");
  RECUR_ASSIGN_OR_RETURN(spec.seed, U64Field(root, "seed", 1));
  RECUR_ASSIGN_OR_RETURN(spec.example, root.StringOr("example", ""));
  RECUR_ASSIGN_OR_RETURN(spec.rules, root.StringOr("rules", ""));
  if (spec.example.empty() == spec.rules.empty()) {
    return Invalid("exactly one of 'example' or 'rules' must be set");
  }
  if (!spec.example.empty() &&
      catalog::FindExample(spec.example.c_str()) == nullptr) {
    return Invalid("unknown paper example '" + spec.example + "'");
  }
  RECUR_ASSIGN_OR_RETURN(spec.query_pred, root.StringOr("query_pred", "P"));
  RECUR_ASSIGN_OR_RETURN(int value_range, IntField(root, "value_range", 0));
  if (value_range < 0) return Invalid("value_range must be >= 0");
  spec.value_range = value_range;

  const JsonValue* edb = root.Find("edb");
  if (edb == nullptr || !edb->is_array() || edb->items().empty()) {
    return Invalid("missing non-empty 'edb' array");
  }
  for (const JsonValue& entry : edb->items()) {
    RECUR_ASSIGN_OR_RETURN(EdbSpec e, ParseEdb(entry));
    for (const EdbSpec& prior : spec.edb) {
      if (prior.relation == e.relation) {
        return Invalid("duplicate edb relation '" + e.relation + "'");
      }
    }
    spec.edb.push_back(std::move(e));
  }

  RECUR_ASSIGN_OR_RETURN(spec.shared_server,
                         root.BoolOr("shared_server", false));
  if (const JsonValue* admission = root.Find("admission");
      admission != nullptr) {
    if (!admission->is_object()) return Invalid("'admission' must be an object");
    if (!spec.shared_server) {
      return Invalid("'admission' requires shared_server: true");
    }
    RECUR_ASSIGN_OR_RETURN(spec.admission_queue_depth,
                           IntField(*admission, "queue_depth", 64));
    if (spec.admission_queue_depth < 1) {
      return Invalid("admission queue_depth must be >= 1");
    }
    RECUR_ASSIGN_OR_RETURN(spec.admission_group_batches,
                           IntField(*admission, "group_batches", 8));
    if (spec.admission_group_batches < 1) {
      return Invalid("admission group_batches must be >= 1");
    }
    RECUR_ASSIGN_OR_RETURN(spec.watchdog_seconds,
                           admission->NumberOr("watchdog_seconds", 0.0));
    if (spec.watchdog_seconds < 0.0) {
      return Invalid("admission watchdog_seconds must be >= 0");
    }
  }

  const JsonValue* phases = root.Find("phases");
  if (phases == nullptr || !phases->is_array() || phases->items().empty()) {
    return Invalid("missing non-empty 'phases' array");
  }
  for (size_t i = 0; i < phases->items().size(); ++i) {
    RECUR_ASSIGN_OR_RETURN(PhaseSpec phase,
                           ParsePhase(phases->items()[i], i));
    spec.phases.push_back(std::move(phase));
  }

  // Ops that name a relation must name a declared EDB relation.
  for (const PhaseSpec& phase : spec.phases) {
    for (const OpSpec& op : phase.mix) {
      if (spec.shared_server &&
          (op.kind == OpSpec::Kind::kServerSnapshot ||
           op.kind == OpSpec::Kind::kServerRestart)) {
        return Invalid("op '" + op.label +
                       "' is not available in shared_server mode");
      }
      if (op.relation.empty()) continue;
      const bool known =
          std::any_of(spec.edb.begin(), spec.edb.end(),
                      [&](const EdbSpec& e) { return e.relation == op.relation; });
      if (!known) {
        return Invalid("op '" + op.label + "' targets undeclared relation '" +
                       op.relation + "'");
      }
    }
  }
  return spec;
}

Result<TrafficSpec> LoadTrafficSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot read traffic spec: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTrafficSpec(buf.str());
}

}  // namespace recur::traffic
