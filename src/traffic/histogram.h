#ifndef RECUR_TRAFFIC_HISTOGRAM_H_
#define RECUR_TRAFFIC_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <limits>

namespace recur::traffic {

/// A fixed-bucket latency histogram: 4 geometric sub-buckets per power of
/// two of nanoseconds (an HDR-histogram-lite), so relative bucket error is
/// bounded by ~12.5% across the whole range [1ns, ~4.6e18ns] with a flat
/// 252-slot array and no allocation.
///
/// Each traffic worker owns one histogram per op node and records into it
/// without synchronization (lock-free by ownership); at phase end the
/// per-worker histograms are merged in worker-id order. Merge is a
/// bucket-wise sum plus exact min/max/sum/sum-of-squares, so it is
/// associative and commutative — the merged result is independent of
/// merge order (property-tested).
///
/// Percentiles are reported as the midpoint of the bucket holding the
/// requested rank, clamped into [min, max] so p100 never exceeds the true
/// maximum and small-count histograms stay sensible.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kNumBuckets = 63 * kSubBuckets;

  /// Records one latency observation. Negative durations (clock skew)
  /// clamp to zero.
  void Record(double seconds);
  void RecordNanos(uint64_t ns);

  /// Adds `other`'s observations into this histogram.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  double MinSeconds() const;
  double MaxSeconds() const;
  double MeanSeconds() const;
  /// Population standard deviation.
  double StddevSeconds() const;
  /// `q` in [0, 1]; q=0.5 is the median. Zero when empty.
  double PercentileSeconds(double q) const;

  /// Exact state equality (buckets and moments) — what the determinism
  /// tests compare.
  friend bool operator==(const LatencyHistogram& a, const LatencyHistogram& b);
  friend bool operator!=(const LatencyHistogram& a,
                         const LatencyHistogram& b) {
    return !(a == b);
  }

  /// Bucket index for a nanosecond value (exposed for tests).
  static int BucketIndex(uint64_t ns);
  /// Midpoint (representative value) of bucket `index`, in nanoseconds.
  static uint64_t BucketMidpointNanos(int index);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t min_ns_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ns_ = 0;
  /// Sum of squared nanoseconds for stddev. Exact 128-bit integer so
  /// accumulation and Merge stay associative — a double here drifts by one
  /// ulp depending on merge order, breaking byte-reproducibility. Wraps
  /// only past ~2^64 observations of multi-second latencies.
  unsigned __int128 sum_sq_ns_ = 0;
};

}  // namespace recur::traffic

#endif  // RECUR_TRAFFIC_HISTOGRAM_H_
