#ifndef RECUR_TRAFFIC_RUNNER_H_
#define RECUR_TRAFFIC_RUNNER_H_

#include <chrono>
#include <thread>

#include "traffic/report.h"
#include "traffic/spec.h"
#include "util/result.h"

namespace recur::traffic {

/// The runner's time source. Each worker thread holds its own clock
/// handle: the real clock is a stateless steady_clock wrapper shared by
/// everyone, while deterministic runs give every worker a private virtual
/// clock so recorded latencies (and therefore the whole report) are
/// byte-reproducible regardless of scheduling.
class TrafficClock {
 public:
  virtual ~TrafficClock() = default;
  /// Monotonic seconds since some fixed origin.
  virtual double Now() = 0;
  virtual void SleepFor(double seconds) = 0;
};

/// std::chrono::steady_clock + this_thread::sleep_for.
class SteadyTrafficClock final : public TrafficClock {
 public:
  double Now() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepFor(double seconds) override {
    if (seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }
};

/// Advances a fixed tick on every Now() call and jumps over sleeps without
/// waiting. With one worker per clock instance, every op observes exactly
/// one tick of latency, so histograms — and the emitted JSON — depend only
/// on the spec and seed.
class VirtualTrafficClock final : public TrafficClock {
 public:
  explicit VirtualTrafficClock(double tick_seconds = 1e-4)
      : tick_(tick_seconds) {}
  double Now() override {
    now_ += tick_;
    return now_;
  }
  void SleepFor(double seconds) override {
    if (seconds > 0) now_ += seconds;
  }
  double now() const { return now_; }

 private:
  double tick_;
  double now_ = 0.0;
};

struct RunnerOptions {
  /// Use per-worker virtual clocks: ops still really execute, but recorded
  /// latencies are synthetic ticks and the report is byte-reproducible.
  /// This is the mode the determinism tests and sanitizer smoke runs use;
  /// leave false to measure real latencies.
  bool deterministic = false;
  double virtual_tick_seconds = 1e-4;
};

/// Executes every phase of `spec` and returns the merged report.
///
/// Execution model: each phase runs `threads` workers on a ThreadPool.
/// A worker owns a seeded PRNG (spec seed + worker id), a private copy of
/// the generated EDB (so insert/delete/fixpoint ops never race between
/// workers), and one lock-free histogram per op node; per-worker results
/// are merged in worker-id order at phase end. Phase fault specs are armed
/// in the process-wide FaultInjector for the phase's duration; op failures
/// are recorded as typed error counts, never propagated.
///
/// Returns a Status only for structural failures (program does not parse,
/// EDB arity clash, ...), not for op-level errors.
Result<TrafficReport> RunTraffic(const TrafficSpec& spec,
                                 const RunnerOptions& options = {});

}  // namespace recur::traffic

#endif  // RECUR_TRAFFIC_RUNNER_H_
