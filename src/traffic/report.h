#ifndef RECUR_TRAFFIC_REPORT_H_
#define RECUR_TRAFFIC_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eval/conjunctive.h"
#include "traffic/histogram.h"
#include "util/result.h"

namespace recur::traffic {

/// Merged statistics for one (phase, op) node of a traffic run.
struct OpNodeStats {
  std::string phase;
  std::string op;  // the op label from the spec
  int threads = 1;
  LatencyHistogram latency;  // every executed op, successful or not
  uint64_t ok = 0;
  uint64_t errors = 0;  // total non-OK ops (the typed counters break it down)
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t resource_exhausted = 0;
  /// Submissions the shared server shed at admission (kUnavailable: queue
  /// full, unmeetable deadline, shutdown). Counted apart from transient
  /// errors — a shed is the overload policy working, not a failure to
  /// retry.
  uint64_t sheds = 0;
  uint64_t other_errors = 0;
  /// Transient-failure retries (bounded per-op by OpSpec::retries). A
  /// retried-then-successful op counts one ok and N retries.
  uint64_t retries = 0;
  /// Result rows this node produced/returned (IDB tuples for fixpoints,
  /// matching rows for queries, mutated rows for insert/delete/load).
  uint64_t tuples = 0;
  /// Flat engine counters accumulated across the node's ops
  /// (EvalStats::Accumulate) — join probes, plans executed, ...
  eval::EvalStats eval;

  /// "<phase>/<op>" — the stable key baseline comparison matches on.
  std::string BenchmarkName() const { return phase + "/" + op; }

  void MergeFrom(const OpNodeStats& other);
};

/// Wall-clock summary of one phase.
struct PhaseSummary {
  std::string name;
  int threads = 1;
  uint64_t total_ops = 0;
  /// In deterministic (virtual clock) runs this is the max virtual elapsed
  /// time across workers, so it is byte-reproducible too.
  double wall_seconds = 0.0;
};

/// Shared-server overload counters of one run, mirrored from
/// server::ServerStats into a single `"kind": "server"` report record
/// (baseline comparison only reads `"kind": "op"` records, so the stats
/// ride along without affecting latency gates).
struct SharedServerStats {
  bool present = false;  // spec ran in shared_server mode
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t sheds = 0;
  uint64_t committed_batches = 0;
  uint64_t groups = 0;
  uint64_t max_group = 0;
  uint64_t queue_high_water = 0;
  uint64_t quarantined = 0;
  uint64_t bisection_splits = 0;
  uint64_t watchdog_trips = 0;
  uint64_t final_epoch = 0;
};

/// A full traffic run: the BENCH_traffic.json payload. The JSON is an
/// array of records in deterministic order (phase records first, then one
/// record per op node, phase-major in mix order, then the shared-server
/// record when present), matching the BENCH_*.json conventions of
/// bench/bench_json.h.
struct TrafficReport {
  std::string workload;  // spec name
  uint64_t seed = 1;
  bool deterministic = false;
  std::vector<PhaseSummary> phases;
  std::vector<OpNodeStats> nodes;
  SharedServerStats shared_server;

  std::string ToJson() const;
};

/// One latency-gate violation, human-readable.
using Violations = std::vector<std::string>;

/// Compares a run's BENCH_traffic.json against a baseline: for every op
/// node in the baseline with a nonzero count, the run's p95 must satisfy
///   run_p95_us <= baseline_p95_us * (1 + tolerance) + slack_us
/// and the node must exist in the run. Returns the violations (empty =
/// pass). `slack_us` absorbs absolute noise on sub-100us nodes so a
/// relative tolerance does not have to cover scheduler jitter.
Result<Violations> CompareTrafficJson(std::string_view run_json,
                                      std::string_view baseline_json,
                                      double tolerance,
                                      double slack_us = 50.0);

}  // namespace recur::traffic

#endif  // RECUR_TRAFFIC_REPORT_H_
