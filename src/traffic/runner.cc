#include "traffic/runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/paper_examples.h"
#include "datalog/parser.h"
#include "eval/naive.h"
#include "eval/query.h"
#include "eval/seminaive.h"
#include "eval/thread_pool.h"
#include "ra/database.h"
#include "server/database.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace recur::traffic {
namespace {

/// Deterministic helpers over mt19937_64. The std <random> distributions
/// are implementation-defined, so reproducible runs draw through these
/// fixed mappings instead.
uint64_t NextBounded(std::mt19937_64& rng, uint64_t n) {
  if (n == 0) return 0;
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(rng()) * n) >> 64);
}

double NextUnit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double NextExponential(std::mt19937_64& rng, double rate) {
  // Inverse CDF; 1-u avoids log(0).
  return -std::log(1.0 - NextUnit(rng)) / rate;
}

ra::Relation GenerateEdb(const EdbSpec& spec, uint64_t seed) {
  workload::Generator gen(seed);
  if (spec.kind == "chain") return gen.Chain(spec.n, spec.base);
  if (spec.kind == "tree") return gen.Tree(spec.depth, spec.fanout, spec.base);
  if (spec.kind == "layered_dag") {
    return gen.LayeredDag(spec.layers, spec.width, spec.out_degree, spec.base);
  }
  if (spec.kind == "random_graph") {
    return gen.RandomGraph(spec.n, spec.m, spec.base);
  }
  if (spec.kind == "grid") return gen.Grid(spec.w, spec.h, spec.base);
  // Validated by the spec parser, so the only remaining kind:
  return gen.RandomRows(spec.arity, spec.n, spec.m, spec.base);
}

/// Immutable per-run state shared (read-only) by all workers.
struct Workload {
  SymbolTable symbols;
  datalog::Program program;
  /// The canonical text `program` was parsed from — what durability-armed
  /// servers persist in snapshots and OpenOrRecover validates against.
  std::string program_text;
  ra::Database base_edb;
  SymbolId query_pred = kInvalidSymbol;
  int query_arity = 0;
  ra::Value value_range = 1;
};

/// A fresh per-worker snapshot/WAL directory. Rooted at
/// $RECUR_DURABILITY_DIR when set (the directory then outlives the run —
/// CI uploads it as a debugging artifact on failure), else the system temp
/// directory (removed with the worker).
std::string MakeDurabilityDir(bool* keep) {
  static std::atomic<uint64_t> counter{0};
  const char* env = std::getenv("RECUR_DURABILITY_DIR");
  *keep = env != nullptr && *env != '\0';
  const std::filesystem::path root =
      *keep ? std::filesystem::path(env)
            : std::filesystem::temp_directory_path();
  const std::string name =
      "recur_traffic_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  return (root / name).string();
}

Result<std::unique_ptr<Workload>> BuildWorkload(const TrafficSpec& spec) {
  auto w = std::make_unique<Workload>();

  std::string program_text = spec.rules;
  if (!spec.example.empty()) {
    const catalog::PaperExample* example =
        catalog::FindExample(spec.example.c_str());
    if (example == nullptr) {
      return Status::InvalidArgument("unknown paper example: " + spec.example);
    }
    program_text = std::string(example->rule) + "\n" + example->exit_rule +
                   "\n";
  }
  RECUR_ASSIGN_OR_RETURN(w->program,
                         datalog::ParseProgram(program_text, &w->symbols));
  RECUR_RETURN_IF_ERROR(w->program.Validate());
  w->program_text = std::move(program_text);

  w->query_pred = w->symbols.Lookup(spec.query_pred);
  for (const datalog::Rule& rule : w->program.rules()) {
    if (rule.head().predicate() == w->query_pred) {
      w->query_arity = rule.head().arity();
      break;
    }
  }
  if (w->query_pred == kInvalidSymbol || w->query_arity == 0) {
    return Status::InvalidArgument("query_pred '" + spec.query_pred +
                                   "' is not the head of any rule");
  }

  // Every EDB relation generates from a seed derived from the spec seed
  // and its position, so the base database is a pure function of the spec.
  for (size_t i = 0; i < spec.edb.size(); ++i) {
    const EdbSpec& e = spec.edb[i];
    ra::Relation rel = GenerateEdb(e, spec.seed * 1000003ull + i);
    RECUR_ASSIGN_OR_RETURN(
        ra::Relation * slot,
        w->base_edb.GetOrCreate(w->symbols.Intern(e.relation), rel.arity()));
    slot->InsertAll(rel);
  }
  w->value_range = spec.EffectiveValueRange();
  return w;
}

/// Per-worker, per-op-node tallies; merged into OpNodeStats at phase end.
struct LocalNode {
  LatencyHistogram latency;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t resource_exhausted = 0;
  uint64_t sheds = 0;
  uint64_t other_errors = 0;
  uint64_t retries = 0;
  uint64_t tuples = 0;
  eval::EvalStats eval;
};

class Worker {
 public:
  Worker(const TrafficSpec& spec, const PhaseSpec& phase,
         const Workload& workload, int worker_id,
         const RunnerOptions& options, server::Database* shared_server)
      : phase_(phase),
        workload_(workload),
        spec_edb_(&spec.edb),
        rng_(spec.seed +
             0x9e3779b97f4a7c15ull * static_cast<uint64_t>(worker_id + 1)),
        db_(workload.base_edb),
        shared_server_(shared_server) {
    if (options.deterministic) {
      virtual_clock_.emplace(options.virtual_tick_seconds);
      clock_ = &*virtual_clock_;
    } else {
      clock_ = &steady_clock_;
    }
    nodes_.resize(phase.mix.size());
    total_weight_ = 0.0;
    for (const OpSpec& op : phase.mix) total_weight_ += op.weight;
  }

  ~Worker() {
    if (!durability_dir_.empty() && !keep_durability_dir_) {
      std::error_code ec;
      std::filesystem::remove_all(durability_dir_, ec);
    }
  }

  void Run() {
    const bool wants_query = std::any_of(
        phase_.mix.begin(), phase_.mix.end(),
        [](const OpSpec& op) { return op.kind == OpSpec::Kind::kQuery; });
    if (wants_query) SeedIdb();
    const bool wants_server =
        std::any_of(phase_.mix.begin(), phase_.mix.end(), [](const OpSpec& op) {
          return op.kind == OpSpec::Kind::kServerQuery ||
                 op.kind == OpSpec::Kind::kServerInsert ||
                 op.kind == OpSpec::Kind::kServerDelete ||
                 op.kind == OpSpec::Kind::kServerSnapshot ||
                 op.kind == OpSpec::Kind::kServerRestart;
        });
    const bool wants_durability =
        std::any_of(phase_.mix.begin(), phase_.mix.end(), [](const OpSpec& op) {
          return op.kind == OpSpec::Kind::kServerSnapshot ||
                 op.kind == OpSpec::Kind::kServerRestart;
        });
    // In shared-server mode every worker hits the one run-wide server;
    // the per-worker replica (and its durability dir) is never booted.
    if (wants_server && shared_server_ == nullptr) {
      SeedServer(wants_durability);
    }

    const double start = clock_->Now();
    double next_arrival = start;
    uint64_t executed = 0;
    while (true) {
      if (phase_.ops > 0) {
        if (executed >= phase_.ops) break;
      } else if (clock_->Now() - start >= phase_.duration_seconds) {
        break;
      }
      if (phase_.arrival_rate > 0.0) {
        next_arrival += NextExponential(rng_, phase_.arrival_rate);
        const double now = clock_->Now();
        if (next_arrival > now) clock_->SleepFor(next_arrival - now);
      }
      const size_t node = PickNode();
      const double t0 = clock_->Now();
      RunOp(phase_.mix[node], &nodes_[node]);
      const double t1 = clock_->Now();
      nodes_[node].latency.Record(t1 - t0);
      ++executed;
    }
    elapsed_ = clock_->Now() - start;
  }

  const std::vector<LocalNode>& nodes() const { return nodes_; }
  double elapsed() const { return elapsed_; }

 private:
  size_t PickNode() {
    double r = NextUnit(rng_) * total_weight_;
    for (size_t i = 0; i + 1 < phase_.mix.size(); ++i) {
      r -= phase_.mix[i].weight;
      if (r < 0.0) return i;
    }
    return phase_.mix.size() - 1;
  }

  ra::Value RandomValue() {
    return static_cast<ra::Value>(
        NextBounded(rng_, static_cast<uint64_t>(workload_.value_range)));
  }

  /// Materializes the IDB once, untimed, so query nodes have a relation to
  /// filter from the first op on. Failures fall through: queries then see
  /// an empty IDB until a fixpoint op succeeds.
  void SeedIdb() {
    eval::FixpointOptions opts;
    auto idb = eval::SemiNaiveEvaluate(workload_.program, db_, opts);
    if (idb.ok()) idb_ = *std::move(idb);
  }

  /// Boots the worker's resident server (untimed, like SeedIdb): private
  /// symbol-table copy (fast-path transforms intern synthetic symbols) and
  /// a private copy-on-write fork of the base EDB. With `durable` a fresh
  /// per-worker snapshot/WAL directory is armed so the snapshot/restart
  /// ops have something to persist to and recover from. Failures fall
  /// through: server ops then count a NotFound error each.
  void SeedServer(bool durable) {
    server_symbols_ = workload_.symbols;
    server::ServerOptions options;
    if (durable) {
      durability_dir_ = MakeDurabilityDir(&keep_durability_dir_);
      options.durability.dir = durability_dir_;
      options.durability.program_text = workload_.program_text;
      // Synthetic-churn latencies should not measure the disk: snapshots
      // still fsync, per-batch WAL appends ride the page cache.
      options.durability.fsync = server::FsyncPolicy::kSnapshot;
    }
    auto server = server::Database::Create(workload_.program, db_,
                                           &server_symbols_,
                                           std::move(options));
    if (server.ok()) server_ = std::move(*server);
  }

  void CountError(const Status& status, LocalNode* node) {
    node->errors += 1;
    switch (status.code()) {
      case StatusCode::kCancelled: node->cancelled += 1; break;
      case StatusCode::kDeadlineExceeded: node->deadline_exceeded += 1; break;
      case StatusCode::kResourceExhausted:
        node->resource_exhausted += 1;
        break;
      case StatusCode::kUnavailable: node->sheds += 1; break;
      default: node->other_errors += 1; break;
    }
  }

  /// The server this worker's server_* ops target: the run-wide shared
  /// server (shared_server mode) or the worker's private replica.
  server::Database* Server() {
    return shared_server_ != nullptr ? shared_server_ : server_.get();
  }

  /// Symbols matching Server(): the shared server interns into the
  /// workload's own table copy, private replicas into the worker's.
  const SymbolTable& ServerSymbols() const {
    return shared_server_ != nullptr ? workload_.symbols : server_symbols_;
  }

  void RunOp(const OpSpec& op, LocalNode* node) {
    switch (op.kind) {
      case OpSpec::Kind::kFixpoint: return RunFixpoint(op, node);
      case OpSpec::Kind::kQuery: return RunQuery(op, node);
      case OpSpec::Kind::kInsert: return RunInsert(op, node);
      case OpSpec::Kind::kDelete: return RunDelete(op, node);
      case OpSpec::Kind::kLoadEdb: return RunLoadEdb(op, node);
      case OpSpec::Kind::kServerQuery: return RunServerQuery(op, node);
      case OpSpec::Kind::kServerInsert:
        return RunServerWrite(op, node, /*deletes=*/false);
      case OpSpec::Kind::kServerDelete:
        return RunServerWrite(op, node, /*deletes=*/true);
      case OpSpec::Kind::kServerSnapshot: return RunServerSnapshot(op, node);
      case OpSpec::Kind::kServerRestart: return RunServerRestart(op, node);
    }
  }

  void RunFixpoint(const OpSpec& op, LocalNode* node) {
    eval::FixpointOptions opts;
    opts.num_threads = op.threads;
    opts.limits.deadline_seconds = op.deadline_seconds;
    opts.limits.max_total_tuples = op.max_total_tuples;
    eval::EvalStats stats;
    auto idb = op.engine == "naive"
                   ? eval::NaiveEvaluate(workload_.program, db_, opts, &stats)
                   : eval::SemiNaiveEvaluate(workload_.program, db_, opts,
                                             &stats);
    node->eval.Accumulate(stats);
    if (!idb.ok()) {
      CountError(idb.status(), node);
      return;
    }
    node->ok += 1;
    if (auto it = idb->find(workload_.query_pred); it != idb->end()) {
      node->tuples += it->second.size();
    }
    idb_ = *std::move(idb);
  }

  void RunQuery(const OpSpec& op, LocalNode* node) {
    eval::Query query;
    query.pred = workload_.query_pred;
    query.bindings.assign(workload_.query_arity, std::nullopt);
    for (int pos : op.bind_positions) {
      if (pos < workload_.query_arity) query.bindings[pos] = RandomValue();
    }
    const ra::Relation* full = nullptr;
    if (auto it = idb_.find(workload_.query_pred); it != idb_.end()) {
      full = &it->second;
    }
    if (full == nullptr) {
      // Nothing materialized yet (seed fixpoint failed): an empty answer.
      node->ok += 1;
      return;
    }
    auto answer = query.Filter(*full);
    if (!answer.ok()) {
      CountError(answer.status(), node);
      return;
    }
    node->ok += 1;
    node->tuples += answer->size();
  }

  void RunInsert(const OpSpec& op, LocalNode* node) {
    ra::Relation* rel = db_.FindMutable(workload_.symbols.Lookup(op.relation));
    if (rel == nullptr) {
      CountError(Status::NotFound("relation " + op.relation), node);
      return;
    }
    size_t inserted = 0;
    ra::Tuple row(static_cast<size_t>(rel->arity()));
    for (int i = 0; i < op.count; ++i) {
      for (ra::Value& v : row) v = RandomValue();
      if (rel->Insert(row)) ++inserted;
    }
    node->ok += 1;
    node->tuples += inserted;
  }

  void RunDelete(const OpSpec& op, LocalNode* node) {
    ra::Relation* rel = db_.FindMutable(workload_.symbols.Lookup(op.relation));
    if (rel == nullptr) {
      CountError(Status::NotFound("relation " + op.relation), node);
      return;
    }
    const size_t size = rel->size();
    if (size == 0) {
      node->ok += 1;
      return;
    }
    // Pick up to `count` distinct victim rows and erase them in place.
    // EraseRows compacts the arena and invalidates every index built on
    // the relation, so churn phases exercise the same invalidation path
    // a resident server's delete batches do (a later keyed lookup must
    // rebuild instead of serving stale rows).
    std::unordered_set<size_t> victim_indexes;
    const size_t want = std::min<size_t>(static_cast<size_t>(op.count), size);
    while (victim_indexes.size() < want) {
      victim_indexes.insert(static_cast<size_t>(NextBounded(rng_, size)));
    }
    ra::Relation victims(rel->arity());
    ra::RowsView rows = rel->rows();
    for (size_t i : victim_indexes) victims.Insert(rows[i]);
    rel->EraseRows(victims);
    node->ok += 1;
    node->tuples += want;
  }

  void RunLoadEdb(const OpSpec& op, LocalNode* node) {
    const EdbSpec* edb_spec = nullptr;
    for (const EdbSpec& e : *spec_edb_) {
      if (e.relation == op.relation) {
        edb_spec = &e;
        break;
      }
    }
    ra::Relation* rel = db_.FindMutable(workload_.symbols.Lookup(op.relation));
    if (edb_spec == nullptr || rel == nullptr) {
      CountError(Status::NotFound("relation " + op.relation), node);
      return;
    }
    *rel = GenerateEdb(*edb_spec, rng_());
    node->ok += 1;
    node->tuples += rel->size();
  }

  /// Per-op governance for the resident server, mirroring the fixpoint
  /// op's deadline/budget fields. Returns nullopt when the op sets none
  /// (the server's own defaults then apply).
  std::optional<eval::ExecutionContext> MakeServerContext(const OpSpec& op) {
    if (op.deadline_seconds <= 0.0 && op.max_total_tuples == 0) {
      return std::nullopt;
    }
    eval::ResourceLimits limits;
    limits.deadline_seconds = op.deadline_seconds;
    limits.max_total_tuples = op.max_total_tuples;
    return std::make_optional<eval::ExecutionContext>(limits);
  }

  void RunServerQuery(const OpSpec& op, LocalNode* node) {
    server::Database* server = Server();
    if (server == nullptr) {
      CountError(Status::NotFound("resident server failed to boot"), node);
      return;
    }
    eval::Query query;
    query.pred = workload_.query_pred;
    query.bindings.assign(workload_.query_arity, std::nullopt);
    for (int pos : op.bind_positions) {
      if (pos < workload_.query_arity) query.bindings[pos] = RandomValue();
    }
    std::optional<eval::ExecutionContext> ctx = MakeServerContext(op);
    auto result = server->Query(query, ctx ? &*ctx : nullptr);
    if (!result.ok()) {
      CountError(result.status(), node);
      return;
    }
    node->ok += 1;
    node->tuples += result->rows.size();
    node->eval.Accumulate(result->stats);
  }

  void RunServerWrite(const OpSpec& op, LocalNode* node, bool deletes) {
    server::Database* server = Server();
    if (server == nullptr) {
      CountError(Status::NotFound("resident server failed to boot"), node);
      return;
    }
    const SymbolId pred = ServerSymbols().Lookup(op.relation);
    server::Database::Snapshot snap = server->snapshot();
    const ra::Relation* rel = snap.edb().Find(pred);
    if (rel == nullptr) {
      CountError(Status::NotFound("relation " + op.relation), node);
      return;
    }
    eval::EdbDelta delta(rel->arity());
    if (deletes) {
      const size_t size = rel->size();
      const size_t want =
          std::min<size_t>(static_cast<size_t>(op.count), size);
      ra::RowsView rows = rel->rows();
      // Sampling with replacement: EdbDelta dedups, so a batch may carry
      // fewer than `count` victims — fine for synthetic churn.
      for (size_t i = 0; i < want; ++i) {
        delta.deletes.Insert(rows[NextBounded(rng_, size)]);
      }
      if (delta.deletes.empty()) {  // empty relation: nothing to delete
        node->ok += 1;
        return;
      }
    } else {
      ra::Tuple row(static_cast<size_t>(rel->arity()));
      for (int i = 0; i < op.count; ++i) {
        for (ra::Value& v : row) v = RandomValue();
        delta.inserts.Insert(row);
      }
    }
    const uint64_t batch = deletes ? delta.deletes.size()
                                   : delta.inserts.size();
    eval::EdbDeltas deltas;
    deltas.emplace(pred, std::move(delta));
    std::optional<eval::ExecutionContext> ctx = MakeServerContext(op);
    // Bounded retry with exponential backoff for transient failures
    // (resource exhaustion, cancellation). Apply/Submit are
    // all-or-nothing, so a retry re-submits the identical batch against
    // whatever epoch is current. kUnavailable is deliberately NOT
    // transient: a shed means the server is overloaded right now, and an
    // immediate retry is exactly the traffic it asked not to get.
    // Backoff sleeps go through the worker clock: virtual in
    // deterministic runs, real otherwise.
    Status status;
    double backoff = op.retry_backoff_seconds;
    for (int attempt = 0;; ++attempt) {
      eval::EvalStats stats;
      if (shared_server_ != nullptr) {
        // Shared mode: through bounded admission + group commit. The
        // op's deadline bounds admission + queue wait + commit.
        status = server->Submit(deltas, op.deadline_seconds, &stats);
      } else {
        status = server->Apply(deltas, ctx ? &*ctx : nullptr, &stats);
      }
      node->eval.Accumulate(stats);
      const bool transient = status.IsResourceExhausted() ||
                             status.IsCancelled();
      if (status.ok() || !transient || attempt >= op.retries) break;
      node->retries += 1;
      clock_->SleepFor(backoff);
      backoff *= 2.0;
    }
    if (!status.ok()) {
      CountError(status, node);
      return;
    }
    node->ok += 1;
    node->tuples += batch;
  }

  void RunServerSnapshot(const OpSpec&, LocalNode* node) {
    if (server_ == nullptr) {
      CountError(Status::NotFound("resident server failed to boot"), node);
      return;
    }
    Status status = server_->SaveSnapshot();
    if (!status.ok()) {
      CountError(status, node);
      return;
    }
    node->ok += 1;
  }

  /// Crash-restart: the resident server is dropped (its epochs and plan
  /// cache die with it) and revived from the durability directory. The
  /// op's recorded latency is the full recovery time — snapshot read,
  /// decode, WAL replay — which is exactly the number the resident
  /// workload's recovery phase puts in BENCH_traffic_resident.json.
  void RunServerRestart(const OpSpec&, LocalNode* node) {
    if (server_ == nullptr || durability_dir_.empty()) {
      CountError(Status::NotFound("resident server failed to boot"), node);
      return;
    }
    server_.reset();
    server::RecoveryInfo info;
    auto server = server::Database::OpenOrRecover(
        durability_dir_, workload_.program_text, &server_symbols_, {}, &info);
    if (!server.ok()) {
      CountError(server.status(), node);
      return;
    }
    server_ = std::move(*server);
    node->ok += 1;
    node->tuples += info.replayed_batches;
    node->eval.Accumulate(info.stats);
  }

  const PhaseSpec& phase_;
  const Workload& workload_;
  const std::vector<EdbSpec>* spec_edb_;
  std::mt19937_64 rng_;
  ra::Database db_;                // private copy; never shared
  eval::IdbRelations idb_;         // last materialized IDB; queries filter
                                   // it as-is until the next fixpoint op
  /// Resident server for the server_* ops (private to the worker, like
  /// db_). The symbol-table copy must outlive the server, which holds a
  /// pointer into it.
  SymbolTable server_symbols_;
  std::unique_ptr<server::Database> server_;
  /// Run-wide shared server (shared_server mode); nullptr otherwise. Not
  /// owned — RunTraffic keeps it alive across all phases.
  server::Database* shared_server_ = nullptr;
  /// Snapshot/WAL directory for snapshot/restart phases; empty while
  /// durability is off. Cleaned up with the worker unless rooted at
  /// $RECUR_DURABILITY_DIR (kept for artifact upload).
  std::string durability_dir_;
  bool keep_durability_dir_ = false;
  std::vector<LocalNode> nodes_;
  double total_weight_ = 1.0;
  double elapsed_ = 0.0;
  SteadyTrafficClock steady_clock_;
  std::optional<VirtualTrafficClock> virtual_clock_;
  TrafficClock* clock_ = nullptr;
};

util::FaultSpec ToFaultSpec(const FaultArmSpec& arm) {
  util::FaultSpec spec;
  if (arm.kind == "delay") {
    spec.kind = util::FaultSpec::Kind::kDelay;
    spec.delay_ms = arm.delay_ms;
  } else {
    spec.kind = util::FaultSpec::Kind::kStatus;
    if (arm.code == "cancelled") {
      spec.code = StatusCode::kCancelled;
    } else if (arm.code == "deadline_exceeded") {
      spec.code = StatusCode::kDeadlineExceeded;
    } else if (arm.code == "resource_exhausted") {
      spec.code = StatusCode::kResourceExhausted;
    } else if (arm.code == "invalid_argument") {
      spec.code = StatusCode::kInvalidArgument;
    } else if (arm.code == "unavailable") {
      spec.code = StatusCode::kUnavailable;
    } else {
      spec.code = StatusCode::kInternal;
    }
    spec.message = "traffic fault at " + arm.site;
  }
  spec.trigger_on_hit = arm.trigger_on_hit;
  spec.sticky = arm.sticky;
  return spec;
}

/// Arms a phase's fault sites on construction, disarms on destruction.
class PhaseFaults {
 public:
  explicit PhaseFaults(const std::vector<FaultArmSpec>& faults) {
    for (const FaultArmSpec& arm : faults) {
      util::FaultInjector::Instance().Arm(arm.site, ToFaultSpec(arm));
      sites_.push_back(arm.site);
    }
  }
  ~PhaseFaults() {
    for (const std::string& site : sites_) {
      util::FaultInjector::Instance().Disarm(site);
    }
  }

 private:
  std::vector<std::string> sites_;
};

}  // namespace

Result<TrafficReport> RunTraffic(const TrafficSpec& spec,
                                 const RunnerOptions& options) {
  RECUR_ASSIGN_OR_RETURN(std::unique_ptr<Workload> workload,
                         BuildWorkload(spec));

  TrafficReport report;
  report.workload = spec.name;
  report.seed = spec.seed;
  report.deterministic = options.deterministic;

  // Shared-server mode: one resident server for the whole run, all
  // phases, all workers; writes go through its group-commit admission
  // queue. The symbol-table copy must outlive the server (declared
  // first, destroyed last).
  SymbolTable shared_symbols = workload->symbols;
  std::unique_ptr<server::Database> shared;
  if (spec.shared_server) {
    RECUR_ASSIGN_OR_RETURN(
        shared, server::Database::Create(workload->program, workload->base_edb,
                                         &shared_symbols));
    server::AdmissionOptions admission;
    admission.max_queue_depth = static_cast<size_t>(spec.admission_queue_depth);
    admission.max_group_batches =
        static_cast<size_t>(spec.admission_group_batches);
    admission.watchdog_seconds = spec.watchdog_seconds;
    shared->EnableAdmission(std::move(admission));
  }

  SteadyTrafficClock wall;
  for (const PhaseSpec& phase : spec.phases) {
    PhaseFaults faults(phase.faults);

    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(static_cast<size_t>(phase.threads));
    for (int i = 0; i < phase.threads; ++i) {
      workers.push_back(std::make_unique<Worker>(spec, phase, *workload, i,
                                                 options, shared.get()));
    }

    const double phase_start = wall.Now();
    eval::ThreadPool pool(phase.threads);
    for (auto& worker : workers) {
      Worker* w = worker.get();
      pool.Submit([w] { w->Run(); });
    }
    RECUR_RETURN_IF_ERROR(pool.Wait());
    const double phase_wall = wall.Now() - phase_start;

    // Deterministic merge: node-major, workers in id order.
    uint64_t total_ops = 0;
    double max_virtual_elapsed = 0.0;
    for (size_t n = 0; n < phase.mix.size(); ++n) {
      OpNodeStats stats;
      stats.phase = phase.name;
      stats.op = phase.mix[n].label;
      stats.threads = phase.threads;
      for (const auto& worker : workers) {
        const LocalNode& local = worker->nodes()[n];
        stats.latency.Merge(local.latency);
        stats.ok += local.ok;
        stats.errors += local.errors;
        stats.cancelled += local.cancelled;
        stats.deadline_exceeded += local.deadline_exceeded;
        stats.resource_exhausted += local.resource_exhausted;
        stats.sheds += local.sheds;
        stats.other_errors += local.other_errors;
        stats.retries += local.retries;
        stats.tuples += local.tuples;
        stats.eval.Accumulate(local.eval);
      }
      total_ops += stats.latency.count();
      report.nodes.push_back(std::move(stats));
    }
    for (const auto& worker : workers) {
      max_virtual_elapsed = std::max(max_virtual_elapsed, worker->elapsed());
    }

    PhaseSummary summary;
    summary.name = phase.name;
    summary.threads = phase.threads;
    summary.total_ops = total_ops;
    summary.wall_seconds =
        options.deterministic ? max_virtual_elapsed : phase_wall;
    report.phases.push_back(std::move(summary));
  }

  if (shared != nullptr) {
    const server::ServerStats stats = shared->overload_stats();
    report.shared_server.present = true;
    report.shared_server.submitted = stats.submitted;
    report.shared_server.admitted = stats.admitted;
    report.shared_server.sheds = stats.sheds;
    report.shared_server.committed_batches = stats.committed_batches;
    report.shared_server.groups = stats.groups;
    report.shared_server.max_group = stats.max_group;
    report.shared_server.queue_high_water = stats.queue_high_water;
    report.shared_server.quarantined = stats.quarantined;
    report.shared_server.bisection_splits = stats.bisection_splits;
    report.shared_server.watchdog_trips = stats.watchdog_trips;
    report.shared_server.final_epoch = shared->epoch();
  }
  return report;
}

}  // namespace recur::traffic
