#include "datalog/unify.h"

namespace recur::datalog {

Status UnifyInto(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.predicate() != b.predicate()) {
    return Status::InvalidArgument("cannot unify atoms of different predicates");
  }
  if (a.arity() != b.arity()) {
    return Status::InvalidArgument("cannot unify atoms of different arities");
  }
  for (int i = 0; i < a.arity(); ++i) {
    Term ta = subst->Walk(a.args()[i]);
    Term tb = subst->Walk(b.args()[i]);
    if (ta == tb) continue;
    if (ta.IsVariable()) {
      subst->Bind(ta.symbol(), tb);
    } else if (tb.IsVariable()) {
      subst->Bind(tb.symbol(), ta);
    } else {
      return Status::InvalidArgument("cannot unify distinct constants");
    }
  }
  return Status::OK();
}

Result<Substitution> Unify(const Atom& a, const Atom& b) {
  Substitution subst;
  RECUR_RETURN_IF_ERROR(UnifyInto(a, b, &subst));
  return subst;
}

}  // namespace recur::datalog
