#ifndef RECUR_DATALOG_RULE_H_
#define RECUR_DATALOG_RULE_H_

#include <string>
#include <vector>

#include "datalog/atom.h"

namespace recur::datalog {

/// A definite Horn clause: `head :- body_1, ..., body_n.`
/// An empty body denotes a fact.
class Rule {
 public:
  Rule() = default;
  Rule(Atom head, std::vector<Atom> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  const Atom& head() const { return head_; }
  Atom* mutable_head() { return &head_; }
  const std::vector<Atom>& body() const { return body_; }
  std::vector<Atom>* mutable_body() { return &body_; }

  bool IsFact() const { return body_.empty(); }

  /// True if some body atom uses the head's predicate.
  bool IsRecursive() const;

  /// Indexes of body atoms whose predicate is `pred`.
  std::vector<int> BodyIndexesOf(SymbolId pred) const;

  /// Body atoms whose predicate differs from `pred`.
  std::vector<Atom> BodyAtomsExcept(SymbolId pred) const;

  /// Distinct variables of the whole rule in first-occurrence order
  /// (head first, then body left to right).
  std::vector<SymbolId> Variables() const;

  /// True if every head variable also occurs in the body ("range
  /// restricted" in [Gall 84]); facts must be ground.
  bool IsRangeRestricted() const;

  /// Renders e.g. "P(x, y) :- A(x, z), P(z, y)."
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head_ == b.head_ && a.body_ == b.body_;
  }

 private:
  Atom head_;
  std::vector<Atom> body_;
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_RULE_H_
