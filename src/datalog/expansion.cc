#include "datalog/expansion.h"

#include "datalog/substitution.h"
#include "datalog/unify.h"

namespace recur::datalog {

Rule RenameVariables(const Rule& rule, int layer,
                     std::unordered_set<SymbolId>* avoid,
                     SymbolTable* symbols) {
  Substitution renaming;
  for (SymbolId var : rule.Variables()) {
    std::string name = symbols->NameOf(var) + std::to_string(layer);
    SymbolId fresh = symbols->Intern(name);
    while (avoid->count(fresh) > 0) {
      name += "'";
      fresh = symbols->Intern(name);
    }
    avoid->insert(fresh);
    renaming.Bind(var, Term::Variable(fresh));
  }
  return renaming.Apply(rule);
}

Result<Rule> UnfoldOnce(const Rule& rule, int body_index,
                        const Rule& definition, int layer,
                        SymbolTable* symbols) {
  if (body_index < 0 ||
      body_index >= static_cast<int>(rule.body().size())) {
    return Status::OutOfRange("body_index out of range in UnfoldOnce");
  }
  std::unordered_set<SymbolId> avoid;
  for (SymbolId v : rule.Variables()) avoid.insert(v);
  Rule renamed = RenameVariables(definition, layer, &avoid, symbols);

  // Bind the renamed head variables to the subgoal's terms (renamed-first
  // order makes fresh head variables map onto the existing rule's terms).
  RECUR_ASSIGN_OR_RETURN(
      Substitution subst,
      Unify(renamed.head(), rule.body()[body_index]));

  std::vector<Atom> body;
  body.reserve(rule.body().size() - 1 + renamed.body().size());
  for (int i = 0; i < static_cast<int>(rule.body().size()); ++i) {
    if (i == body_index) {
      for (const Atom& a : renamed.body()) body.push_back(subst.Apply(a));
    } else {
      body.push_back(subst.Apply(rule.body()[i]));
    }
  }
  return Rule(subst.Apply(rule.head()), std::move(body));
}

Result<Rule> Expand(const LinearRecursiveRule& formula, int k,
                    SymbolTable* symbols) {
  if (k < 1) {
    return Status::OutOfRange("expansion index must be >= 1");
  }
  Rule current = formula.rule();
  SymbolId pred = formula.recursive_predicate();
  for (int layer = 1; layer < k; ++layer) {
    std::vector<int> rec = current.BodyIndexesOf(pred);
    if (rec.size() != 1) {
      return Status::Internal("expansion lost the recursive subgoal");
    }
    RECUR_ASSIGN_OR_RETURN(
        current,
        UnfoldOnce(current, rec[0], formula.rule(), layer, symbols));
  }
  return current;
}

Result<Rule> ExpandWithExit(const LinearRecursiveRule& formula, int k,
                            const Rule& exit_rule, SymbolTable* symbols) {
  if (k < 0) {
    return Status::OutOfRange("expansion index must be >= 0");
  }
  SymbolId pred = formula.recursive_predicate();
  if (exit_rule.head().predicate() != pred ||
      exit_rule.head().arity() != formula.dimension()) {
    return Status::InvalidArgument(
        "exit rule head does not match the recursive predicate");
  }
  if (k == 0) {
    return exit_rule;
  }
  RECUR_ASSIGN_OR_RETURN(Rule expanded, Expand(formula, k, symbols));
  std::vector<int> rec = expanded.BodyIndexesOf(pred);
  if (rec.size() != 1) {
    return Status::Internal("expansion lost the recursive subgoal");
  }
  // Use a layer index beyond the ones consumed by Expand so exit variables
  // get distinct subscripts.
  return UnfoldOnce(expanded, rec[0], exit_rule, k, symbols);
}

}  // namespace recur::datalog
