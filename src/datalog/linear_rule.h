#ifndef RECUR_DATALOG_LINEAR_RULE_H_
#define RECUR_DATALOG_LINEAR_RULE_H_

#include <vector>

#include "datalog/rule.h"
#include "util/result.h"

namespace recur::datalog {

/// A validated linear recursive formula in the paper's restricted language
/// (§2): a function-free Horn clause with
///   - exactly one occurrence of the recursive predicate in the antecedent,
///   - no constants anywhere in the rule,
///   - no variable occurring more than once under the recursive predicate
///     (in either the consequent or the antecedent occurrence),
///   - range restriction (every consequent variable occurs in the
///     antecedent).
///
/// Exit rules `P :- E` play a role only in compiled forms, so they are kept
/// separately (see transform::StableForm); the graph analysis works on the
/// recursive rule alone.
class LinearRecursiveRule {
 public:
  /// Default-constructed objects are empty placeholders (dimension 0) so
  /// that aggregates holding a formula can be built incrementally; every
  /// meaningful instance comes from Create().
  LinearRecursiveRule() = default;

  /// Validates `rule` and wraps it. Returns InvalidArgument describing the
  /// first violated restriction otherwise.
  static Result<LinearRecursiveRule> Create(Rule rule);

  const Rule& rule() const { return rule_; }
  const Atom& head() const { return rule_.head(); }

  /// The single occurrence of the recursive predicate in the body.
  const Atom& recursive_atom() const {
    return rule_.body()[recursive_index_];
  }
  int recursive_index() const { return recursive_index_; }

  /// Body atoms other than the recursive one, in order.
  std::vector<Atom> NonRecursiveAtoms() const {
    return rule_.BodyAtomsExcept(recursive_predicate());
  }

  SymbolId recursive_predicate() const { return rule_.head().predicate(); }

  /// The paper's "dimension": number of argument positions of P.
  int dimension() const { return rule_.head().arity(); }

 private:
  LinearRecursiveRule(Rule rule, int recursive_index)
      : rule_(std::move(rule)), recursive_index_(recursive_index) {}

  Rule rule_;
  int recursive_index_ = -1;
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_LINEAR_RULE_H_
