#ifndef RECUR_DATALOG_PARSER_H_
#define RECUR_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/program.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::datalog {

/// Parses a Datalog program.
///
/// Surface syntax (Prolog-flavoured):
///   P(X, Y) :- A(X, Z), P(Z, Y).     % rule
///   P(X, Y) :- E(X, Y).              % exit rule
///   A(a, b).                         % fact (ground)
///   ?- P(a, Y).                      % query
///
/// Identifiers starting with an upper-case letter or '_' in *argument*
/// position are variables; lower-case identifiers, numbers and quoted
/// strings are constants. Identifiers in predicate position are predicates
/// regardless of case, so the paper's P, A, B... transcribe directly.
/// ',' and '&' both separate body atoms; ':-' and '<-' both mean "if".
Result<Program> ParseProgram(std::string_view input, SymbolTable* symbols);

/// Parses a single clause (rule, fact, or query) terminated by '.'.
Result<Rule> ParseRule(std::string_view input, SymbolTable* symbols);

/// Parses a single atom such as "P(a, Y)" (no trailing '.').
Result<Atom> ParseAtom(std::string_view input, SymbolTable* symbols);

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_PARSER_H_
