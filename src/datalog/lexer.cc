#include "datalog/lexer.h"

#include <cctype>

namespace recur::datalog {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPeriod:
      return "'.'";
    case TokenKind::kImplies:
      return "':-'";
    case TokenKind::kQuery:
      return "'?-'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < input.size(); ++k) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%' || c == '#') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = column;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) advance(1);
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        advance(1);
      }
      tok.kind = TokenKind::kNumber;
      tok.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance(1);
      size_t start = i;
      while (i < input.size() && input[i] != '"') advance(1);
      if (i == input.size()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok.line));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::string(input.substr(start, i - start));
      advance(1);  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '(') {
      tok.kind = TokenKind::kLeftParen;
      advance(1);
    } else if (c == ')') {
      tok.kind = TokenKind::kRightParen;
      advance(1);
    } else if (c == ',' || c == '&') {
      tok.kind = TokenKind::kComma;
      advance(1);
    } else if (c == '.') {
      tok.kind = TokenKind::kPeriod;
      advance(1);
    } else if (c == ':' && i + 1 < input.size() && input[i + 1] == '-') {
      tok.kind = TokenKind::kImplies;
      advance(2);
    } else if (c == '<' && i + 1 < input.size() && input[i + 1] == '-') {
      tok.kind = TokenKind::kImplies;
      advance(2);
    } else if (c == '?' && i + 1 < input.size() && input[i + 1] == '-') {
      tok.kind = TokenKind::kQuery;
      advance(2);
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at line " + std::to_string(line) +
                                ", column " + std::to_string(column));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace recur::datalog
