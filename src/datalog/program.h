#ifndef RECUR_DATALOG_PROGRAM_H_
#define RECUR_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "datalog/rule.h"
#include "util/result.h"

namespace recur::datalog {

/// A Datalog program: a list of rules plus optional query atoms
/// (clauses written `?- P(a, X).` in the surface syntax).
class Program {
 public:
  Program() = default;

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>* mutable_rules() { return &rules_; }
  const std::vector<Atom>& queries() const { return queries_; }
  std::vector<Atom>* mutable_queries() { return &queries_; }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void AddQuery(Atom query) { queries_.push_back(std::move(query)); }

  /// Predicates defined by at least one rule head (IDB predicates).
  std::vector<SymbolId> IdbPredicates() const;

  /// Predicates used in bodies but never defined (EDB predicates).
  std::vector<SymbolId> EdbPredicates() const;

  /// Rules whose head predicate is `pred`.
  std::vector<Rule> RulesFor(SymbolId pred) const;

  /// Validates that every rule is range restricted.
  Status Validate() const;

  std::string ToString(const SymbolTable& symbols) const;

 private:
  std::vector<Rule> rules_;
  std::vector<Atom> queries_;
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_PROGRAM_H_
