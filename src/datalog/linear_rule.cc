#include "datalog/linear_rule.h"

#include <unordered_set>

namespace recur::datalog {

namespace {

/// True if some variable occurs in more than one argument position.
bool HasRepeatedVariable(const Atom& atom) {
  std::unordered_set<SymbolId> seen;
  for (const Term& t : atom.args()) {
    if (!t.IsVariable()) continue;
    if (!seen.insert(t.symbol()).second) return true;
  }
  return false;
}

bool HasConstant(const Atom& atom) {
  for (const Term& t : atom.args()) {
    if (t.IsConstant()) return true;
  }
  return false;
}

}  // namespace

Result<LinearRecursiveRule> LinearRecursiveRule::Create(Rule rule) {
  if (rule.IsFact()) {
    return Status::InvalidArgument("a fact is not a recursive rule");
  }
  SymbolId pred = rule.head().predicate();
  std::vector<int> rec = rule.BodyIndexesOf(pred);
  if (rec.empty()) {
    return Status::InvalidArgument(
        "rule is not recursive: head predicate does not occur in the body");
  }
  if (rec.size() > 1) {
    return Status::Unsupported(
        "non-linear recursion: the recursive predicate occurs more than once "
        "in the antecedent");
  }
  int rec_index = rec[0];
  const Atom& rec_atom = rule.body()[rec_index];
  if (rec_atom.arity() != rule.head().arity()) {
    return Status::InvalidArgument(
        "recursive predicate used with inconsistent arity");
  }
  if (HasConstant(rule.head()) || HasConstant(rec_atom)) {
    return Status::Unsupported(
        "constants are not allowed in the recursive statement");
  }
  for (const Atom& a : rule.body()) {
    if (a.predicate() != pred && HasConstant(a)) {
      return Status::Unsupported(
          "constants are not allowed in the recursive statement");
    }
  }
  if (HasRepeatedVariable(rule.head()) || HasRepeatedVariable(rec_atom)) {
    return Status::Unsupported(
        "a variable may not appear more than once under the recursive "
        "predicate");
  }
  if (!rule.IsRangeRestricted()) {
    return Status::InvalidArgument("rule is not range restricted");
  }
  return LinearRecursiveRule(std::move(rule), rec_index);
}

}  // namespace recur::datalog
