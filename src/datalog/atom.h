#ifndef RECUR_DATALOG_ATOM_H_
#define RECUR_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "datalog/term.h"
#include "util/symbol_table.h"

namespace recur::datalog {

/// An atomic formula: predicate applied to terms, e.g. A(x, z).
class Atom {
 public:
  Atom() : predicate_(kInvalidSymbol) {}
  Atom(SymbolId predicate, std::vector<Term> args)
      : predicate_(predicate), args_(std::move(args)) {}

  SymbolId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>* mutable_args() { return &args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  /// Collects the distinct variables of this atom in first-occurrence order.
  std::vector<SymbolId> Variables() const;

  /// True if any argument is the variable `var`.
  bool ContainsVariable(SymbolId var) const;

  /// Renders e.g. "A(x, z)".
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }

 private:
  SymbolId predicate_;
  std::vector<Term> args_;
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_ATOM_H_
