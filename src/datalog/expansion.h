#ifndef RECUR_DATALOG_EXPANSION_H_
#define RECUR_DATALOG_EXPANSION_H_

#include <unordered_set>

#include "datalog/linear_rule.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::datalog {

/// Renames every variable of `rule` by appending `layer` to its name
/// (x -> x1 for layer 1), following the paper's renumbering convention.
/// Names already present in `avoid` (or introduced by this call) get primes
/// appended until unique. The produced variable ids are recorded into
/// `avoid`.
Rule RenameVariables(const Rule& rule, int layer,
                     std::unordered_set<SymbolId>* avoid,
                     SymbolTable* symbols);

/// One resolution step: unifies `definition.head` (variables renamed with
/// suffix `layer`) with `rule.body()[body_index]` and splices the renamed
/// definition body in its place. This is the paper's "forming the k-th
/// I-graph by renumbering variables and unifying with the (k-1)st
/// expansion".
Result<Rule> UnfoldOnce(const Rule& rule, int body_index,
                        const Rule& definition, int layer,
                        SymbolTable* symbols);

/// The k-th expansion of `formula` (k >= 1). The 1st expansion is the
/// original rule; the k-th unfolds the recursive predicate k-1 times, so it
/// contains k copies of the non-recursive subgoals and one occurrence of P.
Result<Rule> Expand(const LinearRecursiveRule& formula, int k,
                    SymbolTable* symbols);

/// The k-th expansion with the remaining recursive subgoal resolved against
/// `exit_rule` (e.g. P(x..) :- E(x..)), yielding a non-recursive rule.
/// k = 0 resolves the exit rule directly into the head (the "zeroth"
/// expansion P :- E).
Result<Rule> ExpandWithExit(const LinearRecursiveRule& formula, int k,
                            const Rule& exit_rule, SymbolTable* symbols);

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_EXPANSION_H_
