#ifndef RECUR_DATALOG_UNIFY_H_
#define RECUR_DATALOG_UNIFY_H_

#include "datalog/substitution.h"
#include "util/result.h"

namespace recur::datalog {

/// Computes the most general unifier of two atoms (function-free, so this is
/// plain variable binding). Fails if predicates or arities differ or if two
/// distinct constants must be equated.
Result<Substitution> Unify(const Atom& a, const Atom& b);

/// Extends `subst` so that Apply(a) == Apply(b); fails as for Unify.
Status UnifyInto(const Atom& a, const Atom& b, Substitution* subst);

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_UNIFY_H_
