#ifndef RECUR_DATALOG_LEXER_H_
#define RECUR_DATALOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace recur::datalog {

/// Token kinds of the Datalog surface syntax.
enum class TokenKind {
  kIdentifier,   // foo, Foo, x1
  kNumber,       // 42
  kString,       // "quoted constant"
  kLeftParen,    // (
  kRightParen,   // )
  kComma,        // ,
  kPeriod,       // .
  kImplies,      // :- or <-
  kQuery,        // ?-
  kEnd,          // end of input
};

/// One lexed token with its source position (1-based line/column).
struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

/// Returns a printable name for a token kind.
const char* TokenKindToString(TokenKind kind);

/// Lexes `input` into tokens. Comments run from '%' or '#' to end of line.
/// The final token is always kEnd.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_LEXER_H_
