#include "datalog/substitution.h"

namespace recur::datalog {

Term Substitution::Apply(const Term& term) const {
  if (!term.IsVariable()) return term;
  Term walked = Walk(term);
  return walked;
}

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& t : atom.args()) args.push_back(Apply(t));
  return Atom(atom.predicate(), std::move(args));
}

Rule Substitution::Apply(const Rule& rule) const {
  std::vector<Atom> body;
  body.reserve(rule.body().size());
  for (const Atom& a : rule.body()) body.push_back(Apply(a));
  return Rule(Apply(rule.head()), std::move(body));
}

Term Substitution::Walk(Term term) const {
  // Cycle guard: a substitution produced by our unifier is idempotent, but
  // user-constructed ones may chain; bound by map size.
  size_t steps = 0;
  while (term.IsVariable() && steps <= map_.size()) {
    const Term* next = LookUp(term.symbol());
    if (next == nullptr || *next == term) break;
    term = *next;
    ++steps;
  }
  return term;
}

}  // namespace recur::datalog
