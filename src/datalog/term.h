#ifndef RECUR_DATALOG_TERM_H_
#define RECUR_DATALOG_TERM_H_

#include <functional>
#include <string>

#include "util/symbol_table.h"

namespace recur::datalog {

/// A first-order term. The paper's language is function-free, so a term is
/// either a variable or a constant; both are interned symbols.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  Term() : kind_(Kind::kConstant), symbol_(kInvalidSymbol) {}

  static Term Variable(SymbolId id) { return Term(Kind::kVariable, id); }
  static Term Constant(SymbolId id) { return Term(Kind::kConstant, id); }

  Kind kind() const { return kind_; }
  SymbolId symbol() const { return symbol_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }

  /// Renders the term using `symbols` for name lookup.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.symbol_ == b.symbol_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.symbol_ < b.symbol_;
  }

 private:
  Term(Kind kind, SymbolId symbol) : kind_(kind), symbol_(symbol) {}

  Kind kind_;
  SymbolId symbol_;
};

struct TermHash {
  size_t operator()(const Term& t) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(t.kind()) << 32) |
                                 t.symbol());
  }
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_TERM_H_
