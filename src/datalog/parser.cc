#include "datalog/parser.h"

#include <cctype>

#include "datalog/lexer.h"

namespace recur::datalog {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEnd)) {
      if (Check(TokenKind::kQuery)) {
        Advance();
        RECUR_ASSIGN_OR_RETURN(Atom query, ParseAtomInternal());
        RECUR_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
        program.AddQuery(std::move(query));
        continue;
      }
      RECUR_ASSIGN_OR_RETURN(Rule rule, ParseClause());
      program.AddRule(std::move(rule));
    }
    return program;
  }

  Result<Rule> ParseClause() {
    RECUR_ASSIGN_OR_RETURN(Atom head, ParseAtomInternal());
    std::vector<Atom> body;
    if (Check(TokenKind::kImplies)) {
      Advance();
      for (;;) {
        RECUR_ASSIGN_OR_RETURN(Atom atom, ParseAtomInternal());
        body.push_back(std::move(atom));
        if (Check(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    RECUR_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
    return Rule(std::move(head), std::move(body));
  }

  Result<Atom> ParseAtomInternal() {
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected predicate identifier");
    }
    SymbolId pred = symbols_->Intern(Current().text);
    Advance();
    std::vector<Term> args;
    if (Check(TokenKind::kLeftParen)) {
      Advance();
      if (!Check(TokenKind::kRightParen)) {
        for (;;) {
          RECUR_ASSIGN_OR_RETURN(Term term, ParseTerm());
          args.push_back(term);
          if (Check(TokenKind::kComma)) {
            Advance();
            continue;
          }
          break;
        }
      }
      RECUR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
    }
    return Atom(pred, std::move(args));
  }

  bool AtEnd() const { return Check(TokenKind::kEnd); }

 private:
  Result<Term> ParseTerm() {
    const Token& tok = Current();
    switch (tok.kind) {
      case TokenKind::kIdentifier: {
        char first = tok.text[0];
        Term term =
            (std::isupper(static_cast<unsigned char>(first)) || first == '_')
                ? Term::Variable(symbols_->Intern(tok.text))
                : Term::Constant(symbols_->Intern(tok.text));
        Advance();
        return term;
      }
      case TokenKind::kNumber:
      case TokenKind::kString: {
        Term term = Term::Constant(symbols_->Intern(tok.text));
        Advance();
        return term;
      }
      default:
        return Error("expected term");
    }
  }

  const Token& Current() const { return tokens_[pos_]; }
  bool Check(TokenKind kind) const { return Current().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Status::ParseError(
          std::string("expected ") + TokenKindToString(kind) + " but found " +
          TokenKindToString(Current().kind) + " at line " +
          std::to_string(Current().line) + ", column " +
          std::to_string(Current().column));
    }
    Advance();
    return Status::OK();
  }

  Status Error(std::string_view message) const {
    return Status::ParseError(std::string(message) + " at line " +
                              std::to_string(Current().line) + ", column " +
                              std::to_string(Current().column));
  }

  std::vector<Token> tokens_;
  SymbolTable* symbols_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view input, SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens), symbols);
  return parser.ParseProgram();
}

Result<Rule> ParseRule(std::string_view input, SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens), symbols);
  RECUR_ASSIGN_OR_RETURN(Rule rule, parser.ParseClause());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after clause");
  }
  return rule;
}

Result<Atom> ParseAtom(std::string_view input, SymbolTable* symbols) {
  RECUR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens), symbols);
  RECUR_ASSIGN_OR_RETURN(Atom atom, parser.ParseAtomInternal());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after atom");
  }
  return atom;
}

}  // namespace recur::datalog
