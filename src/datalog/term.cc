#include "datalog/term.h"

namespace recur::datalog {

std::string Term::ToString(const SymbolTable& symbols) const {
  return symbols.NameOf(symbol_);
}

}  // namespace recur::datalog
