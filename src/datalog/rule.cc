#include "datalog/rule.h"

#include <algorithm>

namespace recur::datalog {

bool Rule::IsRecursive() const {
  for (const Atom& a : body_) {
    if (a.predicate() == head_.predicate()) return true;
  }
  return false;
}

std::vector<int> Rule::BodyIndexesOf(SymbolId pred) const {
  std::vector<int> out;
  for (size_t i = 0; i < body_.size(); ++i) {
    if (body_[i].predicate() == pred) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<Atom> Rule::BodyAtomsExcept(SymbolId pred) const {
  std::vector<Atom> out;
  for (const Atom& a : body_) {
    if (a.predicate() != pred) out.push_back(a);
  }
  return out;
}

std::vector<SymbolId> Rule::Variables() const {
  std::vector<SymbolId> vars;
  auto add = [&vars](const Atom& atom) {
    for (const Term& t : atom.args()) {
      if (t.IsVariable() &&
          std::find(vars.begin(), vars.end(), t.symbol()) == vars.end()) {
        vars.push_back(t.symbol());
      }
    }
  };
  add(head_);
  for (const Atom& a : body_) add(a);
  return vars;
}

bool Rule::IsRangeRestricted() const {
  for (const Term& t : head_.args()) {
    if (!t.IsVariable()) continue;
    bool found = false;
    for (const Atom& a : body_) {
      if (a.ContainsVariable(t.symbol())) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string Rule::ToString(const SymbolTable& symbols) const {
  std::string out = head_.ToString(symbols);
  if (!body_.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString(symbols);
    }
  }
  out += ".";
  return out;
}

}  // namespace recur::datalog
