#ifndef RECUR_DATALOG_SUBSTITUTION_H_
#define RECUR_DATALOG_SUBSTITUTION_H_

#include <unordered_map>

#include "datalog/rule.h"

namespace recur::datalog {

/// A mapping from variables to terms, applied simultaneously.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `var` to `term`, overwriting an existing binding.
  void Bind(SymbolId var, Term term) { map_[var] = term; }

  /// Returns the binding of `var`, or nullptr if unbound.
  const Term* LookUp(SymbolId var) const {
    auto it = map_.find(var);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

  /// Applies the substitution; unbound variables are left unchanged.
  Term Apply(const Term& term) const;
  Atom Apply(const Atom& atom) const;
  Rule Apply(const Rule& rule) const;

  /// Follows variable-to-variable chains until a non-variable or unbound
  /// variable is reached (used during unification).
  Term Walk(Term term) const;

 private:
  std::unordered_map<SymbolId, Term> map_;
};

}  // namespace recur::datalog

#endif  // RECUR_DATALOG_SUBSTITUTION_H_
