#include "datalog/atom.h"

#include <algorithm>

namespace recur::datalog {

std::vector<SymbolId> Atom::Variables() const {
  std::vector<SymbolId> vars;
  for (const Term& t : args_) {
    if (t.IsVariable() &&
        std::find(vars.begin(), vars.end(), t.symbol()) == vars.end()) {
      vars.push_back(t.symbol());
    }
  }
  return vars;
}

bool Atom::ContainsVariable(SymbolId var) const {
  for (const Term& t : args_) {
    if (t.IsVariable() && t.symbol() == var) return true;
  }
  return false;
}

std::string Atom::ToString(const SymbolTable& symbols) const {
  std::string out = symbols.NameOf(predicate_);
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString(symbols);
  }
  out += ")";
  return out;
}

}  // namespace recur::datalog
