#include "datalog/program.h"

#include <algorithm>

namespace recur::datalog {

std::vector<SymbolId> Program::IdbPredicates() const {
  std::vector<SymbolId> out;
  for (const Rule& r : rules_) {
    SymbolId p = r.head().predicate();
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

std::vector<SymbolId> Program::EdbPredicates() const {
  std::vector<SymbolId> idb = IdbPredicates();
  std::vector<SymbolId> out;
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body()) {
      SymbolId p = a.predicate();
      if (std::find(idb.begin(), idb.end(), p) == idb.end() &&
          std::find(out.begin(), out.end(), p) == out.end()) {
        out.push_back(p);
      }
    }
  }
  return out;
}

std::vector<Rule> Program::RulesFor(SymbolId pred) const {
  std::vector<Rule> out;
  for (const Rule& r : rules_) {
    if (r.head().predicate() == pred) out.push_back(r);
  }
  return out;
}

Status Program::Validate() const {
  for (const Rule& r : rules_) {
    if (!r.IsRangeRestricted()) {
      return Status::InvalidArgument("rule is not range restricted");
    }
  }
  return Status::OK();
}

std::string Program::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString(symbols);
    out += "\n";
  }
  for (const Atom& q : queries_) {
    out += "?- ";
    out += q.ToString(symbols);
    out += ".\n";
  }
  return out;
}

}  // namespace recur::datalog
