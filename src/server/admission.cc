#include "server/admission.h"

#include <algorithm>
#include <exception>
#include <new>
#include <string>
#include <utility>

#include "server/database.h"
#include "util/fault_injection.h"

namespace recur::server {

namespace {

/// Probes a fault site, converting thrown faults into typed statuses:
/// admission runs on client threads that expect a Status, and the
/// committer thread must survive any armed fault kind.
Status ProbeSite(const char* site) {
  try {
    return util::FaultInjector::Instance().Check(site);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("injected allocation failure");
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

/// Folds one batch onto the running merged change set, keeping inserts
/// and deletes disjoint per predicate. The fold preserves sequential
/// semantics: applying the merged set (deletes erased before inserts
/// land — ApplyDeltasToEdb order) produces exactly the EDB the batches
/// would build applied one at a time in submission order, so the single
/// grouped maintenance pass reaches the same fixpoint.
void FoldBatch(const eval::EdbDeltas& batch, eval::EdbDeltas* merged) {
  for (const auto& [pred, delta] : batch) {
    if (delta.empty()) continue;
    const int arity = !delta.inserts.empty() ? delta.inserts.arity()
                                             : delta.deletes.arity();
    auto it = merged->find(pred);
    if (it == merged->end()) {
      it = merged->emplace(pred, eval::EdbDelta(arity)).first;
    }
    eval::EdbDelta& m = it->second;
    if (!delta.deletes.empty()) {
      m.inserts.EraseRows(delta.deletes);
      m.deletes.InsertAll(delta.deletes);
    }
    if (!delta.inserts.empty()) {
      m.deletes.EraseRows(delta.inserts);
      m.inserts.InsertAll(delta.inserts);
    }
  }
}

}  // namespace

struct GroupCommitter::Ticket::Pending {
  eval::EdbDeltas deltas;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// Poison verdict: the "server.commit.group" probe result, taken
  /// exactly once when the batch first joins a commit group so every
  /// bisection retry sees the same deterministic outcome.
  bool injected_checked = false;
  Status injected;

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Status status;
  eval::EvalStats stats;
};

Status GroupCommitter::Ticket::Wait(eval::EvalStats* stats) {
  if (pending_ == nullptr) {
    return Status::Internal("Wait() on an empty admission ticket");
  }
  std::unique_lock<std::mutex> lock(pending_->m);
  pending_->cv.wait(lock, [&] { return pending_->done; });
  if (stats != nullptr) *stats = pending_->stats;
  return pending_->status;
}

GroupCommitter::GroupCommitter(Database* db, AdmissionOptions options)
    : db_(db), options_(std::move(options)) {
  committer_ = std::thread([this] { Loop(); });
}

GroupCommitter::~GroupCommitter() { Shutdown(); }

void GroupCommitter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

GroupCommitter::Ticket GroupCommitter::SubmitAsync(eval::EdbDeltas deltas,
                                                   double deadline_seconds) {
  auto pending = std::make_shared<Ticket::Pending>();
  pending->deltas = std::move(deltas);
  if (deadline_seconds > 0.0) {
    pending->has_deadline = true;
    pending->deadline =
        SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                                 std::chrono::duration<double>(deadline_seconds));
  }

  // The probe runs before the queue lock: a kDelay fault must not
  // serialize every other submitter.
  Status admit = ProbeSite("server.admit");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (!admit.ok()) {
      if (admit.IsUnavailable()) ++stats_.sheds;
    } else if (shutdown_) {
      admit = Status::Unavailable("server is shutting down");
      ++stats_.sheds;
    } else if (queue_.size() >= options_.max_queue_depth) {
      admit = Status::Unavailable(
          "submission queue is full (depth " +
          std::to_string(options_.max_queue_depth) + ")");
      ++stats_.sheds;
    } else {
      if (deadline_seconds > 0.0 && ewma_group_seconds_ > 0.0) {
        // Estimate the wait as full groups ahead of this batch (queued +
        // in flight, plus the group it would itself land in) at the
        // observed commit rate; an unmeetable deadline is shed now
        // instead of timing out after consuming committer time.
        const size_t batches_ahead = queue_.size() + in_flight_;
        const double groups_ahead = static_cast<double>(
            batches_ahead / options_.max_group_batches + 1);
        const double estimate = groups_ahead * ewma_group_seconds_;
        if (deadline_seconds < estimate) {
          admit = Status::Unavailable(
              "deadline unmeetable at the current commit rate");
          ++stats_.sheds;
        }
      }
      if (admit.ok()) {
        queue_.push_back(pending);
        ++stats_.admitted;
        stats_.queue_high_water = std::max(
            stats_.queue_high_water, static_cast<uint64_t>(queue_.size()));
      }
    }
  }
  if (!admit.ok()) {
    Complete(pending, std::move(admit), nullptr);
    return Ticket(std::move(pending));
  }
  cv_.notify_all();
  return Ticket(std::move(pending));
}

Status GroupCommitter::Submit(eval::EdbDeltas deltas, double deadline_seconds,
                              eval::EvalStats* stats) {
  return SubmitAsync(std::move(deltas), deadline_seconds).Wait(stats);
}

void GroupCommitter::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void GroupCommitter::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

size_t GroupCommitter::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServerStats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void GroupCommitter::Loop() {
  for (;;) {
    std::vector<PendingPtr> group;
    std::vector<PendingPtr> expired;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [&] { return shutdown_ || (!paused_ && !queue_.empty()); });
      if (shutdown_) break;
      const auto now = SteadyClock::now();
      while (!queue_.empty() && group.size() < options_.max_group_batches) {
        PendingPtr p = std::move(queue_.front());
        queue_.pop_front();
        if (p->has_deadline && p->deadline <= now) {
          ++stats_.sheds;
          expired.push_back(std::move(p));
          continue;
        }
        group.push_back(std::move(p));
      }
      in_flight_ = group.size();
    }
    for (const PendingPtr& p : expired) {
      Complete(p, Status::Unavailable("deadline expired while queued"),
               nullptr);
    }
    if (group.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = 0;
      continue;
    }
    const auto start = SteadyClock::now();
    CommitGroup(std::move(group));
    const double seconds =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = 0;
      ewma_group_seconds_ = ewma_group_seconds_ == 0.0
                                ? seconds
                                : 0.7 * ewma_group_seconds_ + 0.3 * seconds;
    }
  }

  // Shutdown: everything still queued completes kUnavailable — waiters
  // must never hang on a dying committer.
  std::deque<PendingPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
    stats_.sheds += leftover.size();
  }
  for (const PendingPtr& p : leftover) {
    Complete(p, Status::Unavailable("server is shutting down"), nullptr);
  }
}

void GroupCommitter::CommitGroup(std::vector<PendingPtr> group) {
  // Poison verdicts are taken exactly once per batch, before any attempt,
  // so bisection retries see a stable outcome (the fault's hit counter
  // never advances on a retry).
  for (const PendingPtr& p : group) {
    if (!p->injected_checked) {
      p->injected = ProbeSite("server.commit.group");
      p->injected_checked = true;
    }
  }

  std::deque<std::vector<PendingPtr>> segments;
  segments.push_back(std::move(group));
  while (!segments.empty()) {
    std::vector<PendingPtr> seg = std::move(segments.front());
    segments.pop_front();

    const Status* poison = nullptr;
    for (const PendingPtr& p : seg) {
      if (!p->injected.ok()) {
        poison = &p->injected;
        break;
      }
    }

    if (seg.size() == 1 && poison != nullptr) {
      // Isolated: the poison batch is rejected alone with its original
      // error; every other batch of the group commits around it.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
      }
      Complete(seg[0], *poison, nullptr);
      continue;
    }

    Status status;
    eval::EvalStats stats;
    if (poison != nullptr) {
      // A poisoned batch fails any attempt containing it; skip the pass
      // and go straight to the split.
      status = *poison;
    } else {
      status = AttemptSegment(seg, &stats);
    }

    if (status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.groups;
        stats_.committed_batches += seg.size();
        stats_.max_group =
            std::max(stats_.max_group, static_cast<uint64_t>(seg.size()));
      }
      for (const PendingPtr& p : seg) Complete(p, Status::OK(), &stats);
      continue;
    }

    if (status.IsDeadlineExceeded() || status.IsCancelled()) {
      // Watchdog trip (or external cancel): a property of the pass, not
      // of any one batch — bisection would just re-run the stall. Fail
      // the attempt's waiters; the Database discarded the fork, so
      // readers keep the pre-group snapshot.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (status.IsDeadlineExceeded()) ++stats_.watchdog_trips;
      }
      for (const PendingPtr& p : seg) Complete(p, status, &stats);
      continue;
    }

    if (seg.size() == 1) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
      }
      Complete(seg[0], std::move(status), &stats);
      continue;
    }

    // Deterministic failure in a multi-batch attempt: bisect and retry
    // the halves as their own commits, preserving submission order.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.bisection_splits;
    }
    const size_t mid = seg.size() / 2;
    std::vector<PendingPtr> first(seg.begin(),
                                  seg.begin() + static_cast<long>(mid));
    std::vector<PendingPtr> second(seg.begin() + static_cast<long>(mid),
                                   seg.end());
    segments.push_front(std::move(second));
    segments.push_front(std::move(first));
  }
}

Status GroupCommitter::AttemptSegment(const std::vector<PendingPtr>& segment,
                                      eval::EvalStats* stats) {
  eval::EdbDeltas merged;
  for (const PendingPtr& p : segment) FoldBatch(p->deltas, &merged);

  eval::ResourceLimits limits = options_.group_limits;
  if (options_.watchdog_seconds > 0.0) {
    limits.deadline_seconds = options_.watchdog_seconds;
  }
  eval::ExecutionContext ctx(limits);
  // The watchdog clock is running: a delay fault here (simulating a
  // stalled pass) pushes the attempt past its deadline deterministically.
  Status probe = ProbeSite("server.commit.watchdog");
  if (!probe.ok()) return probe;
  RECUR_RETURN_IF_ERROR(ctx.CheckCancel());
  try {
    return db_->Apply(merged, &ctx, stats);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failure during group commit");
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

void GroupCommitter::Complete(const PendingPtr& pending, Status status,
                              const eval::EvalStats* stats) {
  std::lock_guard<std::mutex> lock(pending->m);
  if (stats != nullptr) pending->stats = *stats;
  pending->status = std::move(status);
  pending->done = true;
  pending->cv.notify_all();
}

}  // namespace recur::server
