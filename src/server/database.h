#ifndef RECUR_SERVER_DATABASE_H_
#define RECUR_SERVER_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "classify/program_analysis.h"
#include "datalog/program.h"
#include "eval/compiled_eval.h"
#include "eval/maintenance.h"
#include "eval/plan/plan_cache.h"
#include "eval/query.h"
#include "ra/database.h"
#include "server/admission.h"
#include "server/durability.h"
#include "util/io.h"

namespace recur::server {

/// How a query over one IDB predicate is answered (§ "classification fast
/// paths"): the dispatch table maps each predicate to the cheapest sound
/// strategy its paper class admits.
enum class RouteKind {
  /// Bounded classes (A4, B, D) and non-recursive predicates: the finite
  /// rule expansion is compiled once and evaluated inline with the query
  /// constants pushed down — zero fixpoint iterations per query.
  kBoundedInline,
  /// Strongly stable classes (A1, A2; A3/A5 after unfolding): the
  /// Henschen–Naqvi iterate-selection evaluator answers from the EDB
  /// without materializing the predicate.
  kIterateSelection,
  /// Everything else: select from the incrementally maintained resident
  /// IDB (always sound; also the fallback when a fast path cannot be
  /// built or does not apply).
  kResidentFilter,
};

const char* ToString(RouteKind kind);

/// One dispatch-table row: how queries on a predicate are routed, plus the
/// precompiled artifacts the route needs.
struct Route {
  RouteKind kind = RouteKind::kResidentFilter;
  /// Why this route was chosen (paper class, rank, or the diagnosis that
  /// forced the fallback) — surfaced in RoutingSummary().
  std::string detail;
  /// kBoundedInline: the non-recursive rules evaluated per query (the
  /// bounded expansion, or the predicate's own rules when non-recursive).
  std::vector<datalog::Rule> inline_rules;
  /// kBoundedInline from a bounded class: the expansion rank.
  int rank = 0;
  /// kIterateSelection: the compiled evaluator (immutable, thread-safe).
  std::shared_ptr<const eval::StableEvaluator> stable;
};

struct ServerOptions {
  /// Default per-operation governance (queries and maintenance runs
  /// alike). A caller-provided ExecutionContext overrides these.
  eval::ResourceLimits limits;
  /// Disable the classification fast paths: every query filters the
  /// resident IDB. Ablation and debugging.
  bool enable_fast_paths = true;
  /// Cap on Theorem 4 unfoldings when transforming A3/A5 formulas to
  /// stable form for iterate-selection; larger unfold counts fall back to
  /// the resident filter.
  int max_unfold = 6;
  /// Snapshot/WAL persistence; durability is off while `durability.dir`
  /// is empty. See server/durability.h.
  DurabilityOptions durability;
};

/// One answered query: the rows, which route produced them, the epoch of
/// the snapshot they were computed against, and the engine stats (bounded
/// inline answers keep stats.iterations == 0).
struct QueryResult {
  ra::Relation rows;
  RouteKind route = RouteKind::kResidentFilter;
  uint64_t epoch = 0;
  eval::EvalStats stats;
};

/// Long-lived deductive database service: keeps the EDB and the derived
/// IDB resident, applies streaming insert/delete batches with incremental
/// view maintenance (eval::MaintainDeltas), and answers queries through a
/// classification dispatch table.
///
/// Storage model — epoch snapshots over copy-on-write state:
///   The entire resident state (EDB + IDB databases) lives in one
///   immutable State published through a shared_ptr. Readers grab a
///   Snapshot (one mutex-guarded shared_ptr copy) and see a consistent
///   epoch for as long as they hold it; the refcount is the reclamation
///   protocol — a superseded epoch is freed when its last reader drops it.
///   A single writer (serialized internally) forks the current State —
///   O(#relations) thanks to ra::Database copy-on-write — applies the
///   delta batch to the fork, runs incremental maintenance on the forked
///   IDB, and publishes the fork atomically. A failed or cancelled write
///   discards the fork, so readers never observe partially maintained
///   state and the resident database is unchanged (all-or-nothing).
///
/// Thread-safety: Query/snapshot/epoch are safe from any number of
/// threads concurrently with each other and with writers. Write calls
/// (Apply/Insert/Delete) are safe from multiple threads and serialize on
/// an internal writer mutex.
///
/// Governance: queries and maintenance runs both run under the resolved
/// ExecutionContext (caller's, else one built from ServerOptions::limits),
/// so deadlines, budgets, and Cancel() apply to server traffic exactly as
/// to standalone fixpoints. Fault site "server.query" fires at query
/// entry.
class Database {
 public:
  /// The immutable state of one epoch.
  struct State {
    uint64_t epoch = 0;
    ra::Database edb;
    ra::Database idb;
  };

  /// A pinned epoch: consistent EDB + IDB view, alive until dropped.
  class Snapshot {
   public:
    uint64_t epoch() const { return state_->epoch; }
    const ra::Database& edb() const { return state_->edb; }
    const ra::Database& idb() const { return state_->idb; }

   private:
    friend class Database;
    explicit Snapshot(std::shared_ptr<const State> state)
        : state_(std::move(state)) {}

    std::shared_ptr<const State> state_;
  };

  /// Builds the dispatch table from classify::AnalyzeProgram, bootstraps
  /// the resident IDB from `edb` through the maintenance path
  /// (everything-as-inserts), and publishes epoch 0. `symbols` must
  /// outlive the server (fast-path transforms intern synthetic symbols).
  static Result<std::unique_ptr<Database>> Create(
      datalog::Program program, ra::Database edb, SymbolTable* symbols,
      ServerOptions options = {});

  /// Revives a server from the durability directory `dir`: loads the
  /// newest valid snapshot (skipping corrupt ones, falling back to older
  /// snapshots or to cold bootstrap from `program_text`), replays the
  /// write-ahead-log suffix through incremental maintenance, and truncates
  /// the torn tail. `program_text` must match the text persisted in the
  /// snapshot (a changed program invalidates the derived IDB —
  /// kUnsupported). All snapshots corrupt is a typed kDataLoss error.
  /// `info`, when given, reports what recovery did; a pure warm start
  /// leaves `info->stats.iterations == 0` (no fixpoint was run).
  static Result<std::unique_ptr<Database>> OpenOrRecover(
      const std::string& dir, std::string_view program_text,
      SymbolTable* symbols, ServerOptions options = {},
      RecoveryInfo* info = nullptr);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Joins the group committer (when admission is enabled) before any
  /// other member is torn down; still-queued submissions complete with
  /// kUnavailable.
  ~Database();

  /// Pins the current epoch.
  Snapshot snapshot() const;
  uint64_t epoch() const { return snapshot().epoch(); }

  /// Answers `query` against the current epoch via the dispatch table.
  /// Routes degrade soundly: fast paths that do not apply to this query
  /// (e.g. base facts stored under the predicate name, arity mismatch
  /// diagnostics aside) fall back to the resident filter.
  Result<QueryResult> Query(const eval::Query& query,
                            const eval::ExecutionContext* ctx = nullptr) const;

  /// Applies one insert/delete batch: forks the state, updates the forked
  /// EDB, incrementally maintains the forked IDB, appends the batch to the
  /// write-ahead log (when durability is armed), publishes the new epoch.
  /// On any error — including a WAL append failure — nothing is published
  /// and the resident state is unchanged.
  Status Apply(const eval::EdbDeltas& deltas,
               const eval::ExecutionContext* ctx = nullptr,
               eval::EvalStats* stats = nullptr);

  /// Persists the current epoch as a checksummed snapshot in the armed
  /// durability directory, truncates the write-ahead log (its records are
  /// now redundant), and prunes snapshots beyond
  /// DurabilityOptions::keep_snapshots. kInvalidArgument when durability
  /// is not armed.
  Status SaveSnapshot();

  bool durability_armed() const { return wal_ != nullptr; }

  /// Turns on the shared-server write frontend: a bounded, deadline-aware
  /// submission queue drained by a single committer thread that coalesces
  /// batches into group commits (one maintenance pass, one WAL record, one
  /// epoch per group). Call once during setup, before concurrent writers
  /// start; calling again replaces the committer (the old one drains
  /// first). Direct Apply/Insert/Delete remain valid alongside — they
  /// serialize with group commits on the writer mutex.
  void EnableAdmission(AdmissionOptions options = {});

  bool admission_enabled() const { return committer_ != nullptr; }

  /// The shared write path: with admission enabled, submits through the
  /// group committer (non-blocking admission; kUnavailable on overload)
  /// and waits for the batch's own outcome. Without it, falls back to a
  /// direct Apply — `deadline_seconds` then bounds the maintenance pass
  /// itself rather than queue wait.
  Status Submit(eval::EdbDeltas deltas, double deadline_seconds = 0.0,
                eval::EvalStats* stats = nullptr);

  /// The committer, for Pause/Resume/SubmitAsync; nullptr while admission
  /// is off.
  GroupCommitter* committer() { return committer_.get(); }

  /// Overload counters; all-zero while admission is off.
  ServerStats overload_stats() const {
    return committer_ != nullptr ? committer_->stats() : ServerStats{};
  }

  /// Single-tuple conveniences over Apply.
  Status Insert(SymbolId pred, ra::Tuple t,
                const eval::ExecutionContext* ctx = nullptr,
                eval::EvalStats* stats = nullptr);
  Status Delete(SymbolId pred, ra::Tuple t,
                const eval::ExecutionContext* ctx = nullptr,
                eval::EvalStats* stats = nullptr);

  const datalog::Program& program() const { return program_; }
  const ServerOptions& options() const { return options_; }

  /// Dispatch-table lookup; nullptr for predicates the analysis did not
  /// report (EDB predicates — queries on them filter the EDB relation).
  const Route* FindRoute(SymbolId pred) const;

  /// One line per IDB predicate: "path(2): iterate-selection — A1 ...".
  std::string RoutingSummary() const;

  /// Shared physical-plan cache stats (maintenance delta plans + bounded
  /// inline plans); steady-state traffic should be all hits.
  eval::plan::PlanCache::CacheStats plan_cache_stats() const {
    return plan_cache_.stats();
  }

 private:
  Database(datalog::Program program, SymbolTable* symbols,
           ServerOptions options)
      : program_(std::move(program)),
        symbols_(symbols),
        options_(std::move(options)) {}

  std::shared_ptr<const State> CurrentState() const;
  void Publish(std::shared_ptr<const State> next);

  /// Builds a server with its dispatch table but no published state —
  /// Create bootstraps through maintenance, OpenOrRecover installs a
  /// decoded snapshot directly.
  static Result<std::unique_ptr<Database>> Make(datalog::Program program,
                                                SymbolTable* symbols,
                                                ServerOptions options);

  /// Apply body; `log_to_wal` is false during recovery replay (the batch
  /// is already in the log).
  Status ApplyImpl(const eval::EdbDeltas& deltas,
                   const eval::ExecutionContext* ctx, eval::EvalStats* stats,
                   bool log_to_wal);

  /// Opens (and truncates, per `truncate_at`) the WAL and, for a fresh
  /// server, writes the initial snapshot. Caller holds writer_mutex_ or is
  /// single-threaded construction.
  Status ArmDurability(int64_t wal_truncate_at);

  /// SaveSnapshot with writer_mutex_ already held.
  Status SaveSnapshotLocked();

  /// Builds the dispatch table row for one analyzed predicate.
  Route BuildRoute(const classify::PredicateReport& report,
                   const std::vector<SymbolId>& idb_preds);

  Result<ra::Relation> AnswerBoundedInline(const Route& route,
                                           const eval::Query& query,
                                           const State& state,
                                           const eval::ExecutionContext* ctx,
                                           eval::EvalStats* stats) const;

  const datalog::Program program_;
  SymbolTable* const symbols_;
  const ServerOptions options_;
  std::unordered_map<SymbolId, Route> routes_;

  /// Guards the published-state pointer only (copy in snapshot(), store in
  /// Publish) — never held across evaluation.
  mutable std::mutex state_mutex_;
  std::shared_ptr<const State> state_;

  /// Serializes writers; readers never take it.
  std::mutex writer_mutex_;

  /// Write-ahead log of applied batches; null while durability is off.
  /// Guarded by writer_mutex_ (only writers and SaveSnapshot touch it).
  std::unique_ptr<util::io::AppendLog> wal_;

  /// Shared across maintenance runs and bounded inline queries; PlanCache
  /// is internally synchronized.
  mutable eval::plan::PlanCache plan_cache_;

  /// Group-commit frontend; null until EnableAdmission. MUST stay the
  /// last member: destruction order joins the committer thread before any
  /// state it touches (WAL, plan cache, published state) is torn down.
  std::unique_ptr<GroupCommitter> committer_;
};

}  // namespace recur::server

#endif  // RECUR_SERVER_DATABASE_H_
