#ifndef RECUR_SERVER_ADMISSION_H_
#define RECUR_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/execution_context.h"
#include "eval/maintenance.h"
#include "util/status.h"

namespace recur::server {

class Database;

/// Overload policy of the shared-server write frontend: how many batches
/// may wait for the committer, how many one group commit coalesces, and
/// how long one maintenance pass may run before the watchdog converts it
/// into kDeadlineExceeded.
struct AdmissionOptions {
  /// Batches allowed to wait in the submission queue. A submission that
  /// finds the queue full is shed with kUnavailable instead of blocking —
  /// bounded memory and bounded client wait under overload.
  size_t max_queue_depth = 64;
  /// Maximum batches coalesced into one group commit (one MaintainDeltas
  /// pass, one WAL record, one published epoch).
  size_t max_group_batches = 8;
  /// Wall-clock budget for one group-commit attempt; 0 disables the
  /// watchdog. A pass that overruns is cancelled cooperatively and every
  /// waiter in the group gets kDeadlineExceeded while readers keep the
  /// pre-group snapshot.
  double watchdog_seconds = 0.0;
  /// Governance for each commit attempt (tuple/arena/iteration budgets).
  /// `watchdog_seconds` overrides its deadline.
  eval::ResourceLimits group_limits;
};

/// Monotonic overload counters of one GroupCommitter, snapshot via
/// stats(). `sheds` counts kUnavailable completions (queue full,
/// unmeetable or expired deadline, shutdown); `quarantined` counts
/// batches rejected alone after bisection isolated them from a failing
/// group.
struct ServerStats {
  uint64_t submitted = 0;         // SubmitAsync calls
  uint64_t admitted = 0;          // entered the queue
  uint64_t sheds = 0;             // completed kUnavailable without work
  uint64_t committed_batches = 0; // batches published (possibly grouped)
  uint64_t groups = 0;            // group commits published (= epochs)
  uint64_t max_group = 0;         // largest published group, in batches
  uint64_t queue_high_water = 0;  // deepest observed submission queue
  uint64_t quarantined = 0;       // poison batches rejected solo
  uint64_t bisection_splits = 0;  // failed groups split for retry
  uint64_t watchdog_trips = 0;    // group passes cut off by the watchdog
};

/// Group-commit frontend for a shared server::Database: writers from any
/// number of threads enqueue EdbDeltas batches into a bounded,
/// deadline-aware submission queue; a single committer thread drains it,
/// coalesces up to max_group_batches into one maintenance pass published
/// under a single epoch (one WAL record per group — the append-before-
/// publish invariant is the Database's own), and completes each waiter
/// with its own Status.
///
/// Overload behavior (explicit, never emergent):
///   * Admission is non-blocking: a full queue, a deadline the current
///     commit rate cannot meet, or a deadline that expires while queued
///     sheds the batch with kUnavailable. No partial work is done.
///   * A group that fails maintenance deterministically is bisected: the
///     halves retry as their own commits, and the poison batch that
///     still fails alone is rejected with its original error while every
///     other batch in the group commits. One bad client cannot wedge the
///     committer.
///   * A watchdog deadline bounds each commit attempt; a stalled pass is
///     cancelled cooperatively (the engines poll per round and per
///     4096-row operator batch) and surfaces as kDeadlineExceeded to its
///     waiters. Readers keep the pre-group snapshot — the Database
///     discards the fork, so no half-published group is ever visible.
///
/// Thread-safety: SubmitAsync/Submit/stats/queue_depth are safe from any
/// thread. Pause/Resume gate the committer's drain loop (tests use them
/// to make group formation deterministic). The destructor shuts the
/// committer down and completes still-queued waiters with kUnavailable.
class GroupCommitter {
 public:
  /// One submitted batch's completion handle. Wait() blocks until the
  /// committer (or admission) completed the batch and returns its Status;
  /// `stats`, when given, receives the maintenance stats of the commit
  /// attempt that carried the batch (shared by the whole group).
  class Ticket {
   public:
    Ticket() = default;
    Status Wait(eval::EvalStats* stats = nullptr);
    bool valid() const { return pending_ != nullptr; }

   private:
    friend class GroupCommitter;
    struct Pending;
    explicit Ticket(std::shared_ptr<Pending> pending)
        : pending_(std::move(pending)) {}

    std::shared_ptr<Pending> pending_;
  };

  GroupCommitter(Database* db, AdmissionOptions options);
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Non-blocking admission: enqueues the batch (waking the committer) or
  /// completes the returned ticket immediately with kUnavailable when the
  /// queue is full, `deadline_seconds` (relative, 0 = none) cannot be met
  /// at the observed commit rate, or the committer is shutting down.
  /// Fault site "server.admit" fires first and its status, when armed,
  /// completes the ticket as-is.
  Ticket SubmitAsync(eval::EdbDeltas deltas, double deadline_seconds = 0.0);

  /// SubmitAsync + Wait: the blocking convenience writers normally use.
  Status Submit(eval::EdbDeltas deltas, double deadline_seconds = 0.0,
                eval::EvalStats* stats = nullptr);

  /// Stops/resumes queue draining. Paused admission still sheds on a full
  /// queue; already-running commits finish. Test seam for deterministic
  /// group formation.
  void Pause();
  void Resume();

  /// Stops the committer thread; queued batches complete kUnavailable.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  size_t queue_depth() const;
  ServerStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  using PendingPtr = std::shared_ptr<Ticket::Pending>;
  using SteadyClock = std::chrono::steady_clock;

  void Loop();
  /// Commits one dequeued group, bisecting on deterministic failures.
  void CommitGroup(std::vector<PendingPtr> group);
  /// One maintenance attempt over `segment` (merged into a single pass).
  Status AttemptSegment(const std::vector<PendingPtr>& segment,
                        eval::EvalStats* stats);
  void Complete(const PendingPtr& pending, Status status,
                const eval::EvalStats* stats);

  Database* const db_;
  const AdmissionOptions options_;

  /// Guards the queue, the stats block, and the pacing estimate.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingPtr> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  /// Batches dequeued into the in-flight group (counted toward the wait
  /// estimate while the committer works on them).
  size_t in_flight_ = 0;
  /// Exponentially weighted average seconds per group commit; 0 until the
  /// first commit. Drives the admission-time deadline estimate.
  double ewma_group_seconds_ = 0.0;
  ServerStats stats_;

  std::thread committer_;
};

}  // namespace recur::server

#endif  // RECUR_SERVER_ADMISSION_H_
