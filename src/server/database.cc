#include "server/database.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "datalog/parser.h"
#include "eval/conjunctive.h"
#include "transform/bounded_expand.h"
#include "util/fault_injection.h"

namespace recur::server {

namespace {

using classify::PredicateReport;
using classify::RecursionKind;

/// True when every body predicate of `rule` (other than `head`) is
/// extensional, i.e. not among the program's IDB predicates. The
/// iterate-selection evaluator reads only the EDB, so it is sound exactly
/// for predicates whose recursion is fed by extensional relations.
bool BodyIsExtensional(const datalog::Rule& rule, SymbolId head,
                       const std::vector<SymbolId>& idb_preds) {
  for (const datalog::Atom& atom : rule.body()) {
    if (atom.predicate() == head) continue;
    if (std::find(idb_preds.begin(), idb_preds.end(), atom.predicate()) !=
        idb_preds.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* ToString(RouteKind kind) {
  switch (kind) {
    case RouteKind::kBoundedInline:
      return "bounded-inline";
    case RouteKind::kIterateSelection:
      return "iterate-selection";
    case RouteKind::kResidentFilter:
      return "resident-filter";
  }
  return "unknown";
}

Route Database::BuildRoute(const PredicateReport& report,
                           const std::vector<SymbolId>& idb_preds) {
  Route route;
  route.detail = report.diagnosis.empty() ? std::string(ToString(report.kind))
                                          : report.diagnosis;
  if (!options_.enable_fast_paths) {
    route.detail = "fast paths disabled";
    return route;
  }

  if (report.kind == RecursionKind::kNonRecursive) {
    route.kind = RouteKind::kBoundedInline;
    route.detail = "non-recursive";
    route.inline_rules = report.exits;
    return route;
  }

  if (report.kind != RecursionKind::kSingleLinear || !report.classification ||
      !report.recursive_rule) {
    return route;  // resident filter
  }
  const classify::Classification& cls = *report.classification;
  const char* cls_name = classify::ToString(cls.formula_class);

  auto formula = datalog::LinearRecursiveRule::Create(*report.recursive_rule);
  if (!formula.ok()) return route;

  // Bounded classes (A4, B, D): expand once, answer every query inline.
  // The expansion resolves the recursive predicate against a single exit
  // rule, so it applies only in the one-exit setting.
  if (cls.bounded && report.exits.size() == 1) {
    auto bounded =
        transform::ExpandBounded(*formula, cls, report.exits[0], symbols_);
    if (bounded.ok()) {
      route.kind = RouteKind::kBoundedInline;
      route.detail = std::string(cls_name) + ", rank " +
                     std::to_string(bounded->rank);
      route.inline_rules = std::move(bounded->rules);
      route.rank = bounded->rank;
      return route;
    }
  }

  // Strongly stable (A1, A2) and transformable (A3, A5 within the unfold
  // cap): Henschen–Naqvi iterate-selection over the EDB. Requires the
  // recursion to be fed by extensional relations only.
  const bool stable_ok =
      cls.strongly_stable ||
      (cls.transformable_to_stable && cls.unfold_count <= options_.max_unfold);
  if (stable_ok &&
      BodyIsExtensional(*report.recursive_rule, report.predicate, idb_preds)) {
    Result<eval::StableEvaluator> evaluator =
        Status::Unsupported("no exit rule");
    if (cls.strongly_stable) {
      evaluator = eval::StableEvaluator::Create(*formula, report.exits,
                                                symbols_);
    } else if (report.exits.size() == 1) {
      evaluator = eval::StableEvaluator::CreateWithTransform(
          *formula, report.exits[0], symbols_);
    }
    if (evaluator.ok()) {
      route.kind = RouteKind::kIterateSelection;
      route.detail = std::string(cls_name) +
                     (cls.strongly_stable ? ", strongly stable"
                                          : ", unfolded to stable");
      route.stable = std::make_shared<const eval::StableEvaluator>(
          std::move(*evaluator));
      return route;
    }
  }

  route.detail = std::string(cls_name) + ", maintained";
  return route;
}

Result<std::unique_ptr<Database>> Database::Make(datalog::Program program,
                                                 SymbolTable* symbols,
                                                 ServerOptions options) {
  if (symbols == nullptr) {
    return Status::InvalidArgument("server::Database needs a symbol table");
  }
  if (!options.durability.dir.empty() &&
      options.durability.program_text.empty()) {
    return Status::InvalidArgument(
        "durability needs the canonical program text (snapshots persist it "
        "so recovery can verify the program)");
  }
  RECUR_ASSIGN_OR_RETURN(classify::ProgramAnalysis analysis,
                         classify::AnalyzeProgram(program));

  std::unique_ptr<Database> db(
      new Database(std::move(program), symbols, std::move(options)));

  std::vector<SymbolId> idb_preds;
  idb_preds.reserve(analysis.predicates.size());
  for (const PredicateReport& report : analysis.predicates) {
    idb_preds.push_back(report.predicate);
  }
  for (const PredicateReport& report : analysis.predicates) {
    db->routes_.emplace(report.predicate, db->BuildRoute(report, idb_preds));
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::Create(datalog::Program program,
                                                   ra::Database edb,
                                                   SymbolTable* symbols,
                                                   ServerOptions options) {
  const bool durable = !options.durability.dir.empty();
  RECUR_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> db,
      Make(std::move(program), symbols, std::move(options)));

  if (durable) {
    // A fresh server must not silently shadow an existing database — that
    // is what OpenOrRecover is for.
    RECUR_ASSIGN_OR_RETURN(auto existing,
                           ListSnapshotFiles(db->options_.durability.dir));
    if (!existing.empty()) {
      return Status::InvalidArgument(
          "durability directory already holds snapshots; use OpenOrRecover");
    }
  }

  // Bootstrap the resident IDB through the maintenance path: every EDB
  // relation becomes an insert delta against an empty database.
  auto state = std::make_shared<State>();
  state->edb = std::move(edb);
  eval::EdbDeltas bootstrap;
  for (const auto& [pred, rel] : state->edb.relations()) {
    eval::EdbDelta delta(rel->arity());
    delta.inserts.InsertAll(*rel);
    bootstrap.emplace(pred, std::move(delta));
  }
  ra::Database empty;
  eval::MaintenanceOptions mopts;
  mopts.limits = db->options_.limits;
  mopts.plan_cache = &db->plan_cache_;
  RECUR_RETURN_IF_ERROR(eval::MaintainDeltas(db->program_, empty, state->edb,
                                             bootstrap, &state->idb, mopts));
  db->Publish(std::move(state));

  if (durable) {
    // Start the log empty and persist epoch 0 immediately: the initial
    // EDB is durable from the first moment, and every later WAL epoch has
    // a snapshot to replay against.
    RECUR_RETURN_IF_ERROR(db->ArmDurability(/*wal_truncate_at=*/0));
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenOrRecover(
    const std::string& dir, std::string_view program_text,
    SymbolTable* symbols, ServerOptions options, RecoveryInfo* info) {
  if (dir.empty()) {
    return Status::InvalidArgument("OpenOrRecover needs a directory");
  }
  options.durability.dir = dir;
  options.durability.program_text = std::string(program_text);

  RecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = RecoveryInfo();

  // Newest decodable snapshot wins. A corrupt snapshot is skipped — but
  // the WAL was truncated when that snapshot was written, so batches
  // between the fallback and the corrupt epoch are unrecoverable.
  RECUR_ASSIGN_OR_RETURN(auto snapshots, ListSnapshotFiles(dir));
  bool have_image = false;
  SnapshotImage image;
  for (const auto& [epoch, path] : snapshots) {
    Result<std::string> payload = util::io::ReadContainerFile(path);
    if (payload.ok()) {
      Result<SnapshotImage> decoded = DecodeSnapshot(*payload, symbols);
      if (decoded.ok()) {
        image = std::move(*decoded);
        have_image = true;
        break;
      }
      if (decoded.status().IsUnsupported()) return decoded.status();
    } else if (payload.status().IsUnsupported()) {
      return payload.status();
    }
    ++info->corrupt_snapshots;
    info->detail += "skipped corrupt snapshot " + path + "; ";
  }
  if (info->corrupt_snapshots > 0) {
    // Whether we fell back or bootstrap cold, acknowledged batches up to
    // the corrupt snapshot's epoch are gone (its WAL prefix was rotated).
    info->data_loss = true;
  }
  if (!have_image && !snapshots.empty()) {
    return Status::DataLoss("every snapshot in " + dir +
                            " failed verification (" + info->detail + ")");
  }

  if (have_image && image.program_text != program_text) {
    return Status::Unsupported(
        "snapshot was taken for a different program text; the persisted "
        "IDB is not the fixpoint of this program");
  }

  RECUR_ASSIGN_OR_RETURN(datalog::Program program,
                         datalog::ParseProgram(program_text, symbols));
  RECUR_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                         Make(std::move(program), symbols,
                              std::move(options)));

  auto state = std::make_shared<State>();
  if (have_image) {
    state->epoch = image.epoch;
    state->edb = std::move(image.edb);
    state->idb = std::move(image.idb);
    info->warm_start = true;
    info->snapshot_epoch = image.epoch;
    db->Publish(std::move(state));
  } else {
    // Cold bootstrap: no snapshot survives (fresh directory, or every file
    // was lost). The program's own ground facts seed the EDB; everything
    // else must come back through WAL replay.
    ra::Database edb;
    RECUR_RETURN_IF_ERROR(edb.LoadFacts(db->program_));
    state->edb = std::move(edb);
    eval::EdbDeltas bootstrap;
    for (const auto& [pred, rel] : state->edb.relations()) {
      eval::EdbDelta delta(rel->arity());
      delta.inserts.InsertAll(*rel);
      bootstrap.emplace(pred, std::move(delta));
    }
    ra::Database empty;
    eval::MaintenanceOptions mopts;
    mopts.limits = db->options_.limits;
    mopts.plan_cache = &db->plan_cache_;
    RECUR_RETURN_IF_ERROR(eval::MaintainDeltas(db->program_, empty,
                                               state->edb, bootstrap,
                                               &state->idb, mopts,
                                               &info->stats));
    db->Publish(std::move(state));
  }

  // Replay the WAL suffix through the same maintenance path live batches
  // take. Epochs must be contiguous from the revived epoch; a gap means
  // the log lost an acknowledged batch — stop there rather than replay a
  // batch against the wrong base state.
  const std::string wal_path = dir + "/" + kWalFileName;
  RECUR_ASSIGN_OR_RETURN(util::io::LogScan scan,
                         util::io::ScanLog(wal_path));
  if (scan.torn_tail) ++info->discarded_wal_records;
  uint64_t expected = info->warm_start ? info->snapshot_epoch : 0;
  // Truncation point for the log once replay settles: the end of the last
  // record replay actually consumed. CRC-intact records past a stop point
  // (epoch gap, undecodable payload) must be cut too — left in place they
  // would sit ahead of new appends, and every later recovery would stop at
  // the same spot and silently discard the acknowledged batches behind it.
  uint64_t wal_keep_bytes = 0;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    Result<WalRecord> record = DecodeWalRecord(scan.records[i], symbols);
    if (!record.ok()) {
      // The frame checksum passed but the payload is malformed — treat it
      // like a torn tail: everything from here on is unusable.
      info->discarded_wal_records += scan.records.size() - i;
      info->data_loss = true;
      info->detail += "undecodable WAL record after epoch " +
                      std::to_string(expected) + ": " +
                      record.status().ToString() + "; ";
      break;
    }
    if (record->epoch <= expected) {  // already in the snapshot
      wal_keep_bytes = scan.record_ends[i];
      continue;
    }
    if (record->epoch != expected + 1) {
      info->discarded_wal_records += scan.records.size() - i;
      info->data_loss = true;
      info->detail += "WAL epoch gap: expected " +
                      std::to_string(expected + 1) + ", found " +
                      std::to_string(record->epoch) + "; ";
      break;
    }
    RECUR_RETURN_IF_ERROR(
        db->ApplyImpl(record->deltas, nullptr, &info->stats,
                      /*log_to_wal=*/false));
    expected = record->epoch;
    wal_keep_bytes = scan.record_ends[i];
    ++info->replayed_batches;
  }

  // Cut the log back to its last intact, replayed record before taking
  // appends again.
  RECUR_RETURN_IF_ERROR(
      db->ArmDurability(static_cast<int64_t>(wal_keep_bytes)));
  return db;
}

Status Database::ArmDurability(int64_t wal_truncate_at) {
  const DurabilityOptions& opts = options_.durability;
  std::error_code ec;
  std::filesystem::create_directories(opts.dir, ec);
  if (ec) {
    return Status::Internal("cannot create durability directory " +
                            opts.dir + ": " + ec.message());
  }
  RECUR_ASSIGN_OR_RETURN(
      util::io::AppendLog wal,
      util::io::AppendLog::Open(opts.dir + "/" + kWalFileName,
                                wal_truncate_at));
  wal_ = std::make_unique<util::io::AppendLog>(std::move(wal));
  // A fresh directory gets its initial snapshot right away so recovery
  // always has a base to replay against.
  RECUR_ASSIGN_OR_RETURN(auto existing, ListSnapshotFiles(opts.dir));
  if (existing.empty()) {
    std::lock_guard<std::mutex> writer(writer_mutex_);
    return SaveSnapshotLocked();
  }
  return Status::OK();
}

Status Database::SaveSnapshot() {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  return SaveSnapshotLocked();
}

Status Database::SaveSnapshotLocked() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "durability is not armed (ServerOptions::durability.dir is empty)");
  }
  const DurabilityOptions& opts = options_.durability;
  std::shared_ptr<const State> state = CurrentState();

  SnapshotImage image;
  image.program_text = opts.program_text;
  image.epoch = state->epoch;
  image.edb = state->edb;  // copy-on-write: O(#relations)
  image.idb = state->idb;
  RECUR_ASSIGN_OR_RETURN(std::string payload,
                         EncodeSnapshot(image, *symbols_));

  const bool sync = opts.fsync != FsyncPolicy::kNone;
  const std::string path = opts.dir + "/" + SnapshotFileName(state->epoch);
  RECUR_RETURN_IF_ERROR(util::io::WriteContainerFile(path, payload, sync));

  // The log's records are all at or below the snapshot epoch now (we hold
  // the writer mutex, so no batch can slip in between).
  RECUR_RETURN_IF_ERROR(wal_->Truncate(sync));

  // Prune superseded snapshots, newest first. Unlink failures are ignored:
  // a stale snapshot wastes disk but never corrupts recovery.
  RECUR_ASSIGN_OR_RETURN(auto snapshots, ListSnapshotFiles(opts.dir));
  const size_t keep = opts.keep_snapshots < 1
                          ? 1
                          : static_cast<size_t>(opts.keep_snapshots);
  for (size_t i = keep; i < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
  }
  return Status::OK();
}

std::shared_ptr<const Database::State> Database::CurrentState() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

void Database::Publish(std::shared_ptr<const State> next) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  state_ = std::move(next);
}

Database::Snapshot Database::snapshot() const { return Snapshot(CurrentState()); }

const Route* Database::FindRoute(SymbolId pred) const {
  auto it = routes_.find(pred);
  return it == routes_.end() ? nullptr : &it->second;
}

std::string Database::RoutingSummary() const {
  std::string out;
  for (const datalog::Rule& rule : program_.rules()) {
    const SymbolId pred = rule.head().predicate();
    auto it = routes_.find(pred);
    if (it == routes_.end()) continue;
    const std::string line = symbols_->NameOf(pred) + "(" +
                             std::to_string(rule.head().arity()) + "): " +
                             ToString(it->second.kind) + " — " +
                             it->second.detail + "\n";
    if (out.find(line) == std::string::npos) out += line;
  }
  return out;
}

Result<ra::Relation> Database::AnswerBoundedInline(
    const Route& route, const eval::Query& query, const State& state,
    const eval::ExecutionContext* ctx, eval::EvalStats* stats) const {
  ra::Relation out(query.arity());
  // Inline rule bodies may reference other IDB predicates (non-recursive
  // predicates layered over maintained ones) — resolve those against the
  // resident IDB, everything else against the EDB.
  auto lookup = [&state](SymbolId pred) -> const ra::Relation* {
    if (const ra::Relation* rel = state.idb.Find(pred)) return rel;
    return state.edb.Find(pred);
  };
  for (const datalog::Rule& rule : route.inline_rules) {
    if (rule.head().arity() != query.arity()) {
      return Status::InvalidArgument("query arity does not match predicate");
    }
    // Push the query constants into the rule as variable bindings
    // (selections before joins). A constant head position must agree with
    // the query binding or the rule contributes nothing.
    std::unordered_map<SymbolId, ra::Value> bindings;
    bool feasible = true;
    const std::vector<datalog::Term>& args = rule.head().args();
    for (int i = 0; i < query.arity() && feasible; ++i) {
      if (!query.bindings[i].has_value()) continue;
      const ra::Value value = *query.bindings[i];
      const datalog::Term& term = args[i];
      if (term.IsConstant()) {
        feasible = static_cast<ra::Value>(term.symbol()) == value;
        continue;
      }
      auto [it, inserted] = bindings.emplace(term.symbol(), value);
      if (!inserted) feasible = it->second == value;
    }
    if (!feasible) continue;

    eval::ConjunctiveOptions copts;
    copts.bindings = &bindings;
    copts.plan_cache = &plan_cache_;
    copts.context = ctx;
    RECUR_ASSIGN_OR_RETURN(ra::Relation derived,
                           eval::EvaluateRule(rule, lookup, copts, stats));
    // Bindings pushed above already restrict variable positions; FilterInto
    // re-checks bound positions to also cover constant heads and repeated
    // head variables.
    RECUR_RETURN_IF_ERROR(query.FilterInto(derived, &out, ctx).status());
  }
  return out;
}

Result<QueryResult> Database::Query(const eval::Query& query,
                                    const eval::ExecutionContext* ctx) const {
  RECUR_FAULT_POINT("server.query");
  Snapshot snap = snapshot();
  eval::ContextScope scope(ctx, options_.limits);
  RECUR_RETURN_IF_ERROR(scope->CheckCancel());

  QueryResult result;
  result.epoch = snap.epoch();

  const Route* route = FindRoute(query.pred);
  RouteKind kind = route == nullptr ? RouteKind::kResidentFilter : route->kind;
  // The fast paths derive the predicate purely from its rules; base facts
  // stored under the predicate name in the EDB would be invisible to them,
  // so such predicates degrade to the (always sound) resident filter.
  if (kind != RouteKind::kResidentFilter) {
    const ra::Relation* base = snap.edb().Find(query.pred);
    if (base != nullptr && !base->empty()) kind = RouteKind::kResidentFilter;
  }

  switch (kind) {
    case RouteKind::kBoundedInline: {
      RECUR_ASSIGN_OR_RETURN(
          result.rows, AnswerBoundedInline(*route, query, *snap.state_,
                                           scope.get(), &result.stats));
      break;
    }
    case RouteKind::kIterateSelection: {
      eval::CompiledEvalOptions copts;
      copts.fixpoint.limits = scope->limits();
      copts.fixpoint.context = scope.get();
      eval::CompiledEvalStats cstats;
      RECUR_ASSIGN_OR_RETURN(
          result.rows, route->stable->Answer(query, snap.edb(), copts,
                                             &cstats));
      result.stats = cstats;
      break;
    }
    case RouteKind::kResidentFilter: {
      // IDB predicates filter the maintained relation; unknown predicates
      // (pure EDB) filter the extensional relation directly.
      const ra::Relation* full = snap.idb().Find(query.pred);
      if (full == nullptr) full = snap.edb().Find(query.pred);
      ra::Relation rows(query.arity());
      if (full != nullptr) {
        RECUR_ASSIGN_OR_RETURN(size_t n,
                               query.FilterInto(*full, &rows, scope.get()));
        result.stats.tuples_produced = n;
        result.stats.tuples_considered = full->size();
      }
      result.rows = std::move(rows);
      break;
    }
  }
  result.route = kind;
  return result;
}

Database::~Database() = default;

Status Database::Apply(const eval::EdbDeltas& deltas,
                       const eval::ExecutionContext* ctx,
                       eval::EvalStats* stats) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  return ApplyImpl(deltas, ctx, stats, /*log_to_wal=*/true);
}

void Database::EnableAdmission(AdmissionOptions options) {
  // Default the group's governance to the server's own limits so a group
  // commit obeys the same budgets a direct Apply would.
  if (options.group_limits.deadline_seconds == 0.0 &&
      options.group_limits.max_total_tuples == 0 &&
      options.group_limits.max_arena_bytes == 0) {
    options.group_limits = options_.limits;
  }
  committer_.reset();  // drain any previous committer first
  committer_ = std::make_unique<GroupCommitter>(this, std::move(options));
}

Status Database::Submit(eval::EdbDeltas deltas, double deadline_seconds,
                        eval::EvalStats* stats) {
  if (committer_ != nullptr) {
    return committer_->Submit(std::move(deltas), deadline_seconds, stats);
  }
  // Admission off: the deadline bounds the pass itself.
  if (deadline_seconds > 0.0) {
    eval::ResourceLimits limits = options_.limits;
    limits.deadline_seconds = deadline_seconds;
    eval::ExecutionContext ctx(limits);
    return Apply(deltas, &ctx, stats);
  }
  return Apply(deltas, nullptr, stats);
}

Status Database::ApplyImpl(const eval::EdbDeltas& deltas,
                           const eval::ExecutionContext* ctx,
                           eval::EvalStats* stats, bool log_to_wal) {
  std::shared_ptr<const State> old = CurrentState();

  auto next = std::make_shared<State>();
  next->epoch = old->epoch + 1;
  next->edb = old->edb;  // copy-on-write forks: only touched
  next->idb = old->idb;  // relations detach below

  RECUR_RETURN_IF_ERROR(eval::ApplyDeltasToEdb(deltas, &next->edb));

  eval::MaintenanceOptions mopts;
  mopts.limits = options_.limits;
  mopts.context = ctx;
  mopts.plan_cache = &plan_cache_;
  // On error the fork is discarded: readers keep the old epoch and the
  // resident state is untouched (write batches are all-or-nothing).
  RECUR_RETURN_IF_ERROR(eval::MaintainDeltas(program_, old->edb, next->edb,
                                             deltas, &next->idb, mopts,
                                             stats));

  // Log before publish: a batch only becomes visible once it is in the
  // WAL, so an append failure discards the fork and the acknowledged
  // history on disk never lags what readers can observe.
  if (log_to_wal && wal_ != nullptr) {
    RECUR_ASSIGN_OR_RETURN(std::string payload,
                           EncodeWalRecord(next->epoch, deltas, *symbols_));
    RECUR_RETURN_IF_ERROR(wal_->Append(
        payload, options_.durability.fsync == FsyncPolicy::kBatch));
  }
  Publish(std::move(next));
  return Status::OK();
}

Status Database::Insert(SymbolId pred, ra::Tuple t,
                        const eval::ExecutionContext* ctx,
                        eval::EvalStats* stats) {
  eval::EdbDeltas deltas;
  eval::EdbDelta delta(static_cast<int>(t.size()));
  delta.inserts.Insert(t);
  deltas.emplace(pred, std::move(delta));
  return Apply(deltas, ctx, stats);
}

Status Database::Delete(SymbolId pred, ra::Tuple t,
                        const eval::ExecutionContext* ctx,
                        eval::EvalStats* stats) {
  eval::EdbDeltas deltas;
  eval::EdbDelta delta(static_cast<int>(t.size()));
  delta.deletes.Insert(t);
  deltas.emplace(pred, std::move(delta));
  return Apply(deltas, ctx, stats);
}

}  // namespace recur::server
