#ifndef RECUR_SERVER_DURABILITY_H_
#define RECUR_SERVER_DURABILITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/conjunctive.h"
#include "eval/maintenance.h"
#include "ra/database.h"
#include "util/io.h"
#include "util/result.h"
#include "util/symbol_table.h"

namespace recur::server {

/// When the durability layer forces data to stable storage.
enum class FsyncPolicy {
  /// Never fsync — fastest; a crash may lose recent batches and an OS
  /// crash may lose the latest snapshot. Tests and ephemeral servers.
  kNone,
  /// fsync the write-ahead log after every batch append and every
  /// snapshot: a batch whose Apply returned OK survives power loss.
  kBatch,
  /// fsync snapshots only (the default): a process crash loses nothing
  /// (the page cache survives), a power loss may lose batches since the
  /// last snapshot but never corrupts — the torn WAL tail is discarded.
  kSnapshot,
};

struct DurabilityOptions {
  /// Snapshot/WAL directory; empty disables durability entirely.
  std::string dir;
  /// Canonical program text, persisted in every snapshot so recovery can
  /// verify it is reviving the same program. Required when `dir` is set.
  std::string program_text;
  FsyncPolicy fsync = FsyncPolicy::kSnapshot;
  /// Snapshot files retained after a new snapshot lands (the newest one
  /// plus keep_snapshots-1 fallbacks for corrupt-snapshot recovery).
  int keep_snapshots = 2;
};

/// What OpenOrRecover did, for logging, tests, and the traffic harness's
/// recovery-latency benchmarks.
struct RecoveryInfo {
  /// A snapshot was loaded (restart skipped the bootstrap fixpoint).
  bool warm_start = false;
  uint64_t snapshot_epoch = 0;
  /// WAL batches replayed through incremental maintenance.
  size_t replayed_batches = 0;
  /// WAL records dropped: the torn tail plus anything after an epoch gap.
  size_t discarded_wal_records = 0;
  /// Snapshot files that failed checksum/decoding and were skipped.
  int corrupt_snapshots = 0;
  /// True when recovery provably lost acknowledged batches (fell back past
  /// a corrupt snapshot whose WAL suffix was already truncated, or hit an
  /// epoch gap in the log).
  bool data_loss = false;
  std::string detail;
  /// Maintenance stats across all replayed batches. A pure warm start
  /// leaves iterations == 0 — the zero-fixpoint-restart guarantee.
  eval::EvalStats stats;
};

/// Everything one snapshot persists: enough to revive a server without
/// re-running the bootstrap fixpoint.
struct SnapshotImage {
  std::string program_text;
  uint64_t epoch = 0;
  ra::Database edb;
  ra::Database idb;
};

/// One write-ahead-log record: the batch that produced `epoch`.
struct WalRecord {
  uint64_t epoch = 0;
  eval::EdbDeltas deltas;
};

/// "snapshot-<epoch, zero-padded to 20 digits>.snap" — zero padding makes
/// lexicographic order equal epoch order.
std::string SnapshotFileName(uint64_t epoch);

inline constexpr char kWalFileName[] = "wal.log";

/// Snapshot files in `dir` as (epoch, full path), newest epoch first. A
/// missing directory yields an empty list. Files that do not match the
/// snapshot naming scheme are ignored.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshotFiles(
    const std::string& dir);

/// Serializes `image` (with `symbols`, persisted name-by-name so a fresh
/// process re-interns to identical ids) into a container payload.
Result<std::string> EncodeSnapshot(const SnapshotImage& image,
                                   const SymbolTable& symbols);

/// Decodes a snapshot payload, restoring the persisted symbols into
/// `symbols` first so every SymbolId in the databases resolves.
Result<SnapshotImage> DecodeSnapshot(std::string_view payload,
                                     SymbolTable* symbols);

/// Serializes one batch as a WAL record payload:
///   [epoch u64] [count u32] { [pred string] [inserts rel] [deletes rel] }
Result<std::string> EncodeWalRecord(uint64_t epoch,
                                    const eval::EdbDeltas& deltas,
                                    const SymbolTable& symbols);

Result<WalRecord> DecodeWalRecord(std::string_view payload,
                                  SymbolTable* symbols);

}  // namespace recur::server

#endif  // RECUR_SERVER_DURABILITY_H_
