#include "server/durability.h"

#include <algorithm>
#include <filesystem>

#include "ra/serialize.h"

namespace recur::server {

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".snap";
/// Snapshot payload format version (inner, on top of the container's own
/// version): bumped when the field layout below changes.
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kWalRecordVersion = 1;

}  // namespace

std::string SnapshotFileName(uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  return kSnapshotPrefix + std::string(20 - digits.size(), '0') + digits +
         kSnapshotSuffix;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshotFiles(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;  // missing directory: nothing persisted yet
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const size_t prefix_len = sizeof(kSnapshotPrefix) - 1;
    const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kSnapshotPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    // SnapshotFileName always writes exactly 20 zero-padded digits, so
    // anything longer — or 20 digits above UINT64_MAX — is a foreign file;
    // skip it rather than let std::stoull throw out_of_range.
    if (digits.empty() || digits.size() > 20 ||
        digits.find_first_not_of("0123456789") != std::string::npos ||
        (digits.size() == 20 && digits > "18446744073709551615")) {
      continue;
    }
    out.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

Result<std::string> EncodeSnapshot(const SnapshotImage& image,
                                   const SymbolTable& symbols) {
  util::io::ByteWriter out;
  out.PutU32(kSnapshotVersion);
  out.PutString(image.program_text);
  ra::SerializeSymbols(symbols, &out);
  out.PutU64(image.epoch);
  RECUR_RETURN_IF_ERROR(ra::SerializeDatabase(image.edb, symbols, &out));
  RECUR_RETURN_IF_ERROR(ra::SerializeDatabase(image.idb, symbols, &out));
  return out.Take();
}

Result<SnapshotImage> DecodeSnapshot(std::string_view payload,
                                     SymbolTable* symbols) {
  util::io::ByteReader in(payload);
  uint32_t version = 0;
  RECUR_RETURN_IF_ERROR(in.GetU32(&version));
  if (version != kSnapshotVersion) {
    return Status::Unsupported("snapshot version " + std::to_string(version) +
                               " is not supported (expected " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  SnapshotImage image;
  RECUR_RETURN_IF_ERROR(in.GetString(&image.program_text));
  RECUR_RETURN_IF_ERROR(ra::DeserializeSymbols(&in, symbols));
  RECUR_RETURN_IF_ERROR(in.GetU64(&image.epoch));
  RECUR_ASSIGN_OR_RETURN(image.edb, ra::DeserializeDatabase(&in, symbols));
  RECUR_ASSIGN_OR_RETURN(image.idb, ra::DeserializeDatabase(&in, symbols));
  if (!in.AtEnd()) {
    return Status::DataLoss("snapshot payload has trailing bytes");
  }
  return image;
}

Result<std::string> EncodeWalRecord(uint64_t epoch,
                                    const eval::EdbDeltas& deltas,
                                    const SymbolTable& symbols) {
  util::io::ByteWriter out;
  out.PutU32(kWalRecordVersion);
  out.PutU64(epoch);
  // Sort by predicate name so identical batches encode to identical bytes.
  std::vector<std::pair<std::string, const eval::EdbDelta*>> entries;
  entries.reserve(deltas.size());
  for (const auto& [pred, delta] : deltas) {
    if (delta.empty()) continue;
    const std::string& name = symbols.NameOf(pred);
    if (name == "<invalid>") {
      return Status::Internal("delta predicate id " + std::to_string(pred) +
                              " is not in the symbol table");
    }
    entries.emplace_back(name, &delta);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, delta] : entries) {
    out.PutString(name);
    ra::SerializeRelation(delta->inserts, &out);
    ra::SerializeRelation(delta->deletes, &out);
  }
  return out.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload,
                                  SymbolTable* symbols) {
  util::io::ByteReader in(payload);
  uint32_t version = 0;
  RECUR_RETURN_IF_ERROR(in.GetU32(&version));
  if (version != kWalRecordVersion) {
    return Status::Unsupported("WAL record version " +
                               std::to_string(version) +
                               " is not supported (expected " +
                               std::to_string(kWalRecordVersion) + ")");
  }
  WalRecord record;
  RECUR_RETURN_IF_ERROR(in.GetU64(&record.epoch));
  uint32_t count = 0;
  RECUR_RETURN_IF_ERROR(in.GetU32(&count));
  std::string name;
  for (uint32_t i = 0; i < count; ++i) {
    RECUR_RETURN_IF_ERROR(in.GetString(&name));
    if (name.empty()) {
      return Status::DataLoss("WAL record names an empty predicate");
    }
    eval::EdbDelta delta;
    RECUR_ASSIGN_OR_RETURN(delta.inserts, ra::DeserializeRelation(&in));
    RECUR_ASSIGN_OR_RETURN(delta.deletes, ra::DeserializeRelation(&in));
    record.deltas.emplace(symbols->Intern(name), std::move(delta));
  }
  if (!in.AtEnd()) {
    return Status::DataLoss("WAL record payload has trailing bytes");
  }
  return record;
}

}  // namespace recur::server
