#ifndef RECUR_RA_OPERATORS_H_
#define RECUR_RA_OPERATORS_H_

#include <utility>
#include <vector>

#include "ra/relation.h"
#include "util/result.h"

namespace recur::ra {

/// σ: rows of `r` whose `column` equals `v`.
Result<Relation> Select(const Relation& r, int column, Value v);

/// σ with a set predicate: rows whose `column` value is in `values`.
Result<Relation> SelectIn(const Relation& r, int column,
                          const ValueSet& values);

/// π: keeps `columns` in the given order (duplicates removed).
Result<Relation> Project(const Relation& r, const std::vector<int>& columns);

/// ⋈: equi-join on (left column, right column) pairs. Output columns are
/// all of `left` followed by the non-join columns of `right` (in order).
/// Hash join on the first join pair, residual predicates checked per row.
Result<Relation> Join(const Relation& left, const Relation& right,
                      const std::vector<std::pair<int, int>>& on);

/// Nested-loop variant of Join with identical semantics (ablation baseline).
Result<Relation> JoinNestedLoop(const Relation& left, const Relation& right,
                                const std::vector<std::pair<int, int>>& on);

/// Semi-join: rows of `left` having at least one match in `right`.
Result<Relation> SemiJoin(const Relation& left, const Relation& right,
                          const std::vector<std::pair<int, int>>& on);

/// ∪ (arities must match).
Result<Relation> Union(const Relation& a, const Relation& b);

/// Set difference a - b (arities must match).
Result<Relation> Difference(const Relation& a, const Relation& b);

/// × : Cartesian product; output columns are a's then b's. The paper's
/// plans use this when the bound and free parts of a query are not
/// connected (§6, Example 9).
Relation Product(const Relation& a, const Relation& b);

/// ∃ : existence check — the paper's plans answer "all tuples of A" when a
/// disconnected subquery is non-empty.
inline bool Exists(const Relation& r) { return !r.empty(); }

/// Builds a unary relation from a value set.
Relation FromValues(const ValueSet& values);

/// Applies one binary edge step: the set of `to_col` values of rows whose
/// `from_col` is in `frontier`. The basic move of chain evaluation.
Result<ValueSet> Step(const Relation& r, int from_col, int to_col,
                      const ValueSet& frontier);

}  // namespace recur::ra

#endif  // RECUR_RA_OPERATORS_H_
