#include "ra/database.h"

namespace recur::ra {

Relation* Database::Detach(std::shared_ptr<Relation>& slot) {
  // use_count can read a stale (higher) value while another copy of this
  // Database is being destroyed concurrently; that only costs a spurious
  // clone. It can never read 1 while another copy still holds the slot.
  if (slot.use_count() > 1) slot = std::make_shared<Relation>(*slot);
  return slot.get();
}

Result<Relation*> Database::GetOrCreate(SymbolId pred, int arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, std::make_shared<Relation>(arity)).first;
  } else if (it->second->arity() != arity) {
    return Status::InvalidArgument(
        "relation exists with different arity (" +
        std::to_string(it->second->arity()) + " vs requested " +
        std::to_string(arity) + ")");
  }
  return Detach(it->second);
}

const Relation* Database::Find(SymbolId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutable(SymbolId pred) {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : Detach(it->second);
}

Status Database::AddFact(SymbolId pred, Tuple t) {
  RECUR_ASSIGN_OR_RETURN(Relation * rel,
                         GetOrCreate(pred, static_cast<int>(t.size())));
  rel->Insert(std::move(t));
  return Status::OK();
}

Status Database::LoadFacts(const datalog::Program& program) {
  for (const datalog::Rule& rule : program.rules()) {
    if (!rule.IsFact()) continue;
    Tuple t;
    t.reserve(rule.head().args().size());
    for (const datalog::Term& term : rule.head().args()) {
      if (!term.IsConstant()) {
        return Status::InvalidArgument("non-ground fact in program");
      }
      t.push_back(static_cast<Value>(term.symbol()));
    }
    RECUR_RETURN_IF_ERROR(AddFact(rule.head().predicate(), std::move(t)));
  }
  return Status::OK();
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel->size();
  return total;
}

size_t Database::TotalArenaBytes() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel->ArenaBytes();
  return total;
}

size_t Database::ActiveDomainSize() const {
  ValueSet domain;
  for (const auto& [pred, rel] : relations_) {
    for (TupleRef t : rel->rows()) {
      for (Value v : t) domain.insert(v);
    }
  }
  return domain.size();
}

}  // namespace recur::ra
